//! The SVRG sparsity cliff (paper §1.2 / Fig. 1): on sparse data the
//! dense full-gradient term µ makes every SVRG iteration cost O(d)
//! instead of O(nnz), so SVRG-ASGD wins per-epoch but loses — badly — on
//! the wall clock. This example measures both on the same dataset.
//!
//! ```sh
//! cargo run --release --example svrg_cost
//! ```

use is_asgd::prelude::*;

fn main() {
    // Sparse enough that d/nnz ≈ 250: the dense add dominates.
    let mut profile = PaperProfile::KddAlgebra.scaled().scaled_by(0.05);
    profile.mean_nnz = 20;
    println!(
        "generating {} (d={}, n={}, nnz/row≈{})…\n",
        profile.name, profile.dim, profile.n_samples, profile.mean_nnz
    );
    let data = generate(&profile, 23);
    let obj = Objective::new(LogisticLoss, Regularizer::L2 { eta: 1e-4 });

    let epochs = 6;
    let cfg = TrainConfig::default()
        .with_epochs(epochs)
        .with_step_size(0.1);
    let exec = Execution::Simulated { tau: 8, workers: 4 };

    println!("running ASGD (index-compressed updates)…");
    let asgd = train(&data.dataset, &obj, Algorithm::Asgd, exec, &cfg, "kdd").unwrap();
    println!("running IS-ASGD (index-compressed + importance sampling)…");
    let is_asgd = train(&data.dataset, &obj, Algorithm::IsAsgd, exec, &cfg, "kdd").unwrap();
    println!("running SVRG-ASGD (dense µ added every iteration)…");
    let svrg = train(
        &data.dataset,
        &obj,
        Algorithm::SvrgAsgd(SvrgVariant::Literature),
        exec,
        &cfg,
        "kdd",
    )
    .unwrap();

    println!(
        "\n{:<10} {:>12} {:>12} {:>12}",
        "algorithm", "train (s)", "s/epoch", "best err"
    );
    for (name, r) in [("ASGD", &asgd), ("IS-ASGD", &is_asgd), ("SVRG-ASGD", &svrg)] {
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.4}",
            name,
            r.train_secs,
            r.train_secs / epochs as f64,
            r.trace.best_error().unwrap()
        );
    }
    let slowdown = svrg.train_secs / asgd.train_secs;
    println!(
        "\nSVRG-ASGD per-epoch cost is {slowdown:.0}x ASGD's here (d/nnz = {:.0}).\n\
         At the paper's scales (d up to 3·10⁷, density 10⁻⁷) the same ratio makes\n\
         SVRG-ASGD ~2 hours per epoch — 'computationally infeasible' (§1.2).",
        data.dataset.dim() as f64 / data.dataset.mean_nnz()
    );
    assert!(
        slowdown > 5.0,
        "the sparsity cliff should be clearly visible"
    );
}
