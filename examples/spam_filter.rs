//! A spam-filter-shaped workload: bag-of-words text classification on a
//! News20-like profile (the paper's small/dense case), comparing ASGD
//! against IS-ASGD epoch-for-epoch and on the wall clock.
//!
//! ```sh
//! cargo run --release --example spam_filter
//! ```

use is_asgd::prelude::*;

fn main() {
    // News20-like: relatively dense bag-of-words rows, near-uniform
    // importance (ψ/n ≈ 0.97) — the regime where IS gains are modest but
    // still present (paper Fig. 3-a).
    let profile = PaperProfile::News20.scaled().scaled_by(0.25);
    println!(
        "generating {} (d={}, n={})…",
        profile.name, profile.dim, profile.n_samples
    );
    let data = generate(&profile, 7);
    let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-5 });
    let cfg = TrainConfig::default().with_epochs(10).with_step_size(0.5);

    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let exec = Execution::Threads(host);
    println!("running ASGD and IS-ASGD with {host} lock-free threads…\n");

    let asgd = train(
        &data.dataset,
        &obj,
        Algorithm::Asgd,
        exec,
        &cfg,
        profile.name,
    )
    .expect("asgd");
    let is_asgd = train(
        &data.dataset,
        &obj,
        Algorithm::IsAsgd,
        exec,
        &cfg,
        profile.name,
    )
    .expect("is-asgd");

    println!("epoch  ASGD err   IS-ASGD err");
    for (a, b) in asgd.trace.points.iter().zip(&is_asgd.trace.points) {
        println!(
            "{:>5}  {:>8.4}  {:>10.4}",
            a.epoch, a.error_rate, b.error_rate
        );
    }

    // The paper's Fig. 4 marker: when does each reach ASGD's optimum?
    let opt = asgd.trace.best_error().unwrap();
    let t_asgd = time_to_error(&asgd.trace, opt);
    let t_is = time_to_error(&is_asgd.trace, opt);
    println!("\nASGD optimum error: {opt:.4}");
    println!("  ASGD reached it at    {t_asgd:?} s");
    println!("  IS-ASGD reached it at {t_is:?} s");
    if let (Some(a), Some(b)) = (t_asgd, t_is) {
        if b > 0.0 {
            println!(
                "  absolute speedup: {:.2}x (paper range: 1.13–1.54x)",
                a / b
            );
        }
    }
    println!(
        "  IS setup overhead: {:.1}% of training time (paper: 1.1–7.7%)",
        is_asgd.setup_overhead() * 100.0
    );
}
