//! Distributed IS-SGD across simulated nodes (paper §2.3's
//! "cores/nodes" setting): each node trains on its local shard and the
//! cluster synchronizes by model averaging. Demonstrates why the shard
//! *layout* matters — the per-node sampling distribution is distorted
//! exactly as the paper's Fig. 2 worked example — and how Algorithm 3's
//! importance balancing (plus the greedy-LPT extension) repairs it.
//!
//! Run with: `cargo run --release --example distributed_nodes`

use is_asgd::cluster::node::run as run_cluster;
use is_asgd::prelude::*;

fn main() {
    // A stream of documents sorted by length — heavy-tailed importance in
    // the worst possible arrival order for contiguous sharding.
    let profile = DatasetProfile {
        name: "doc_stream",
        dim: 4_000,
        n_samples: 10_000,
        mean_nnz: 25,
        zipf_exponent: 0.9,
        target_psi_norm: 0.55,
        target_rho: 10.0,
        label_noise: 0.05,
        planted_density: 0.1,
        feature_kind: FeatureKind::GaussianScaled,
        noise_nnz_coupling: 1.0,
    };
    let data = generate(&profile, 7);
    let weights = importance_weights(
        &data.dataset,
        &LogisticLoss,
        Regularizer::None,
        ImportanceScheme::LipschitzSmoothness,
    );
    let mut order: Vec<usize> = (0..data.dataset.n_samples()).collect();
    order.sort_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap());
    let sorted = data.dataset.reordered(&order).expect("valid permutation");

    let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-5 });
    println!("8-node cluster, 6 rounds of local IS-SGD + averaging\n");
    println!(
        "{:<12} {:>18} {:>12} {:>12}",
        "layout", "phi_max/mean", "final_obj", "final_err"
    );
    for (policy, label) in [
        (BalancePolicy::Identity, "as-arrived"),
        (BalancePolicy::ForceShuffle, "shuffled"),
        (BalancePolicy::ForceBalance, "head-tail"),
        (BalancePolicy::ForceGreedy, "greedy-lpt"),
    ] {
        let cfg = ClusterConfig {
            nodes: 8,
            rounds: 6,
            local_epochs: 1,
            step_size: 0.1,
            importance: ImportanceScheme::GradNormBound { radius: 1.0 },
            balance: policy,
            sync: SyncStrategy::Average,
            seed: 42,
            ..ClusterConfig::default()
        };
        let r = run_cluster(&sorted, &obj, &cfg).expect("cluster run");
        let last = r.rounds.last().unwrap();
        println!(
            "{:<12} {:>18.4} {:>12.4} {:>12.4}",
            label, r.phi_imbalance, last.objective, last.error_rate
        );
    }
    println!(
        "\nΦ_a is each node's importance mass (paper Eq. 18); Eq. 19 wants them\n\
         equal. 'as-arrived' concentrates all heavy documents on one node;\n\
         greedy-LPT equalizes Φ to within rounding and head-tail (Alg. 3)\n\
         helps but loses ground on right-skewed importance distributions."
    );
}
