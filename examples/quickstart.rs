//! Quickstart: generate a sparse dataset, train IS-ASGD, inspect the trace.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use is_asgd::prelude::*;

fn main() {
    // 1. A synthetic sparse binary-classification dataset with a planted
    //    ground-truth hyperplane (learnable by construction).
    let mut profile = DatasetProfile::tiny();
    profile.n_samples = 4_000;
    profile.dim = 2_000;
    let data = generate(&profile, 42);
    println!(
        "dataset: n={}, d={}, density={:.2e}",
        data.dataset.n_samples(),
        data.dataset.dim(),
        data.dataset.density()
    );

    // 2. The paper's evaluation objective: L1-regularized logistic loss.
    let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-5 });

    // 3. How much can importance sampling help here? (Eq. 13 vs Eq. 14.)
    let weights = importance_weights(
        &data.dataset,
        &LogisticLoss,
        obj.reg,
        ImportanceScheme::LipschitzSmoothness,
    );
    println!(
        "IS convergence-bound improvement factor: {:.4}",
        is_improvement_factor(&weights)
    );

    // 4. Train IS-ASGD (paper Algorithm 4). `Simulated` reproduces any
    //    concurrency level deterministically; switch to
    //    `Execution::Threads(k)` for real lock-free threads.
    let cfg = TrainConfig::default().with_epochs(8).with_step_size(0.5);
    let run = train(
        &data.dataset,
        &obj,
        Algorithm::IsAsgd,
        Execution::Simulated {
            tau: 16,
            workers: 4,
        },
        &cfg,
        "quickstart",
    )
    .expect("training failed");

    println!("\nepoch  objective   rmse     error");
    for p in &run.trace.points {
        println!(
            "{:>5}  {:>9.4}  {:>7.4}  {:>6.4}",
            p.epoch, p.objective, p.rmse, p.error_rate
        );
    }
    println!(
        "\nbalanced shards: {:?}   setup: {:.1} ms   train: {:.1} ms",
        run.balanced,
        run.setup_secs * 1e3,
        run.train_secs * 1e3
    );
    assert!(
        run.final_metrics.error_rate < 0.2,
        "should learn the planted model"
    );
}
