//! Using real LibSVM files: the experiment pipeline accepts any LibSVM
//! dataset in place of the synthetic profiles. This example writes a
//! generated dataset to LibSVM text, reads it back (as you would read
//! News20/URL/KDD from disk), verifies the round-trip, and trains on it.
//!
//! ```sh
//! cargo run --release --example libsvm_roundtrip
//! ```

use is_asgd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut profile = DatasetProfile::tiny();
    profile.n_samples = 2_000;
    profile.dim = 1_000;
    let data = generate(&profile, 5);

    // Write LibSVM text (1-based indices, `label idx:val …` lines).
    let path = std::env::temp_dir().join("isasgd_example.libsvm");
    libsvm::write_file(&data.dataset, &path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("wrote {} ({bytes} bytes)", path.display());

    // Read it back exactly as you would a real LibSVM download.
    let loaded = libsvm::read_file(&path, Some(profile.dim))?;
    assert_eq!(loaded.n_samples(), data.dataset.n_samples());
    assert_eq!(loaded.nnz(), data.dataset.nnz());
    println!(
        "reloaded: n={}, d={}, density={:.2e}",
        loaded.n_samples(),
        loaded.dim(),
        loaded.density()
    );

    // Inspect it the way `experiments -- table1` does…
    let stats = DatasetStats::compute(&loaded);
    let w = importance_weights(
        &loaded,
        &LogisticLoss,
        Regularizer::None,
        ImportanceScheme::LipschitzSmoothness,
    );
    let prof = ImportanceProfile::compute(&w);
    println!(
        "stats: mean nnz/row = {:.1}, psi/n = {:.4}, rho = {:.2e}",
        stats.mean_nnz, prof.psi_normalized, prof.rho
    );

    // …and train on it.
    let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-5 });
    let cfg = TrainConfig::default().with_epochs(6).with_step_size(0.5);
    let run = train(
        &loaded,
        &obj,
        Algorithm::IsAsgd,
        Execution::Simulated {
            tau: 16,
            workers: 4,
        },
        &cfg,
        "libsvm-file",
    )?;
    println!(
        "trained IS-ASGD: best error {:.4} in {:.1} ms",
        run.trace.best_error().unwrap(),
        run.train_secs * 1e3
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
