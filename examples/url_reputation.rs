//! A malicious-URL-detection-shaped workload (the paper's ICML_URL case):
//! large, very sparse features. Demonstrates the importance-profile
//! diagnostics (ψ, ρ), the Algorithm-4 balancing decision, and a τ sweep
//! showing IS-ASGD's concurrency robustness (paper Fig. 3-c).
//!
//! ```sh
//! cargo run --release --example url_reputation
//! ```

use is_asgd::prelude::*;

fn main() {
    let profile = PaperProfile::Url.scaled().scaled_by(0.2);
    println!(
        "generating {} (d={}, n={})…",
        profile.name, profile.dim, profile.n_samples
    );
    let data = generate(&profile, 11);
    let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-5 });

    // --- Importance diagnostics (paper Table 1 / §2.4) ---------------
    let weights = importance_weights(
        &data.dataset,
        &LogisticLoss,
        obj.reg,
        ImportanceScheme::LipschitzSmoothness,
    );
    let prof = ImportanceProfile::compute(&weights);
    println!(
        "importance profile: psi/n = {:.4}, rho = {:.2e} (zeta = 5e-4)",
        prof.psi_normalized, prof.rho
    );
    println!(
        "Algorithm 4 would {} this dataset before sharding.\n",
        if prof.rho >= 5e-4 {
            "head-tail balance"
        } else {
            "randomly shuffle"
        }
    );

    // --- Conflict structure (paper §3.1) ------------------------------
    let conflicts = ConflictStats::estimate(&data.dataset, 200, 3);
    println!(
        "conflict graph: avg degree Δ̄ ≈ {:.1} (n = {}), Δ̄/n = {:.3}",
        conflicts.avg_degree,
        data.dataset.n_samples(),
        conflicts.normalized_degree
    );

    // --- Concurrency robustness: τ sweep ------------------------------
    // Paper Fig. 3-c: ASGD degrades visibly from τ=16 to τ=44 on URL
    // while IS-ASGD stays near the SGD curve.
    let cfg = TrainConfig::default()
        .with_epochs(8)
        .with_step_size(PaperProfile::Url.paper_step_size());
    println!("\n  tau   ASGD best-err   IS-ASGD best-err");
    for tau in [16usize, 32, 44] {
        let exec = Execution::Simulated { tau, workers: 8 };
        let asgd = train(&data.dataset, &obj, Algorithm::Asgd, exec, &cfg, "url").unwrap();
        let is = train(&data.dataset, &obj, Algorithm::IsAsgd, exec, &cfg, "url").unwrap();
        println!(
            "{:>5}   {:>12.4}   {:>15.4}",
            tau,
            asgd.trace.best_error().unwrap(),
            is.trace.best_error().unwrap()
        );
    }
}
