//! Plugging a custom loss into the solver family: a Huberized hinge
//! (quadratically-smoothed hinge) loss, which is GLM-shaped and therefore
//! gets index-compressed gradients and importance weights for free.
//!
//! ```sh
//! cargo run --release --example custom_loss
//! ```

use is_asgd::prelude::*;

/// Huberized hinge: quadratic near the hinge point, linear beyond it.
///
/// ℓ(m) = 0                     for m ≥ 1
///      = (1-m)²/(2δ)           for 1-δ < m < 1
///      = (1-m) - δ/2           for m ≤ 1-δ
#[derive(Debug, Clone, Copy)]
struct HuberHinge {
    delta: f64,
}

impl Loss for HuberHinge {
    fn value(&self, m: f64) -> f64 {
        let g = 1.0 - m;
        if g <= 0.0 {
            0.0
        } else if g < self.delta {
            g * g / (2.0 * self.delta)
        } else {
            g - self.delta / 2.0
        }
    }

    fn derivative(&self, m: f64) -> f64 {
        let g = 1.0 - m;
        if g <= 0.0 {
            0.0
        } else if g < self.delta {
            -g / self.delta
        } else {
            -1.0
        }
    }

    fn smoothness(&self) -> f64 {
        1.0 / self.delta
    }

    fn derivative_bound(&self, _x_norm: f64, _radius: f64) -> f64 {
        1.0 // |ℓ'| ≤ 1 everywhere — nicer than the plain squared hinge
    }

    fn name(&self) -> &'static str {
        "huber_hinge"
    }
}

fn main() {
    let mut profile = DatasetProfile::tiny();
    profile.n_samples = 3_000;
    profile.dim = 1_500;
    let data = generate(&profile, 99);

    let obj = Objective::new(HuberHinge { delta: 0.5 }, Regularizer::L2 { eta: 1e-4 });

    // The importance machinery works for any `Loss` implementation: the
    // weights come from `smoothness()`·‖x‖² + curvature.
    let w = importance_weights(
        &data.dataset,
        &HuberHinge { delta: 0.5 },
        obj.reg,
        ImportanceScheme::LipschitzSmoothness,
    );
    println!(
        "custom-loss importance: IS factor = {:.4}",
        is_improvement_factor(&w)
    );

    let cfg = TrainConfig::default().with_epochs(8).with_step_size(0.2);
    for (algo, exec, label) in [
        (Algorithm::Sgd, Execution::Sequential, "SGD"),
        (Algorithm::IsSgd, Execution::Sequential, "IS-SGD"),
        (
            Algorithm::IsAsgd,
            Execution::Simulated {
                tau: 16,
                workers: 4,
            },
            "IS-ASGD(τ=16)",
        ),
    ] {
        let r = train(&data.dataset, &obj, algo, exec, &cfg, "custom").unwrap();
        println!(
            "{label:<14} final objective {:.4}, error {:.4}",
            r.final_metrics.objective, r.final_metrics.error_rate
        );
    }
}
