//! L2-regularized squared-hinge SVM — the paper's Eq. 16 worked example.
//!
//! The squared hinge `(⌊1 − y·wᵀx⌋₊)²` has an *unbounded* gradient
//! (`‖∇f_i‖ ≤ 2(1 + ‖x_i‖/√η)‖x_i‖ + √η`, Eq. 16), so unlike the
//! saturated logistic loss, overshoot on heavy rows amplifies itself —
//! this is the loss family where importance sampling's step equalization
//! is load-bearing. The demo trains ASGD and IS-ASGD at a step size near
//! the uniform-sampling stability edge and prints both trajectories.
//!
//! Run with: `cargo run --release --example svm_hinge`

use is_asgd::prelude::*;

fn main() {
    // Heavy-tailed row norms: sup L ≈ 13× L̄ (ψ/n = 0.5).
    let profile = DatasetProfile {
        name: "svm_demo",
        dim: 2_000,
        n_samples: 8_000,
        mean_nnz: 16,
        zipf_exponent: 0.8,
        target_psi_norm: 0.5,
        target_rho: 0.25,
        label_noise: 0.0,
        planted_density: 0.3,
        feature_kind: FeatureKind::GaussianScaled,
        noise_nnz_coupling: 0.0,
    };
    let data = generate(&profile, 11);
    let obj = Objective::new(SquaredHingeLoss, Regularizer::L2 { eta: 1e-4 });

    // Eq. 16 bound drives the importance weights; report the spread.
    let w = importance_weights(
        &data.dataset,
        &SquaredHingeLoss,
        obj.reg,
        ImportanceScheme::LipschitzSmoothness,
    );
    let mean = w.iter().sum::<f64>() / w.len() as f64;
    let sup = w.iter().cloned().fold(0.0, f64::max);
    println!(
        "squared-hinge importance: L̄ = {mean:.3}, sup L = {sup:.3} ({:.1}× spread)\n",
        sup / mean
    );

    // λ at the uniform stability edge; IS's corrections keep its
    // effective steps at λ·L̄ ≪ λ·sup L.
    let lambda = 0.5 / sup;
    let exec = Execution::Simulated {
        tau: 32,
        workers: 8,
    };
    let mk = |scheme| {
        let mut c = TrainConfig::default()
            .with_epochs(10)
            .with_step_size(lambda)
            .with_seed(11);
        c.importance = scheme;
        c
    };
    let asgd = train(
        &data.dataset,
        &obj,
        Algorithm::Asgd,
        exec,
        &mk(ImportanceScheme::Uniform),
        "svm",
    )
    .expect("asgd");
    // IS at its own stability edge (tuned-λ protocol — see
    // EXPERIMENTS.md "Where the 1.13–1.54× lives").
    let mut cfg = mk(ImportanceScheme::LipschitzSmoothness);
    cfg.step_size = 0.4 / mean;
    let is_asgd =
        train(&data.dataset, &obj, Algorithm::IsAsgd, exec, &cfg, "svm").expect("is-asgd");

    println!("epoch   ASGD obj    IS-ASGD obj");
    for (a, b) in asgd.trace.points.iter().zip(&is_asgd.trace.points) {
        println!("{:>5} {:>11.5} {:>13.5}", a.epoch, a.objective, b.objective);
    }
    println!(
        "\nfinal error: ASGD {:.4}, IS-ASGD {:.4}",
        asgd.final_metrics.error_rate, is_asgd.final_metrics.error_rate
    );
    println!(
        "IS-ASGD runs a {:.0}× larger step at equal stability — the sup-vs-mean\n\
         dependence of the paper's Lemma 2 made visible.",
        (0.4 / mean) / lambda
    );
}
