//! The synthetic profiles must land on the paper's Table-1 targets — the
//! contract that makes the substitution (DESIGN.md §2) valid.

use is_asgd::balance::metrics::{psi_normalized, rho};
use is_asgd::prelude::*;

fn weights_of(data: &GeneratedData) -> Vec<f64> {
    importance_weights(
        &data.dataset,
        &LogisticLoss,
        Regularizer::None,
        ImportanceScheme::LipschitzSmoothness,
    )
}

#[test]
fn profiles_hit_psi_targets() {
    for p in PaperProfile::ALL {
        // Reduced n for test speed; moments converge by ~2k samples.
        let mut prof = p.scaled().scaled_by(0.05);
        prof.n_samples = prof.n_samples.max(2500);
        let data = generate(&prof, 1);
        let w = weights_of(&data);
        let measured = psi_normalized(&w);
        let (_, _, _, target, _) = p.paper_table1();
        assert!(
            (measured - target).abs() < 0.04,
            "{}: psi/n {measured:.4} vs paper {target}",
            p.id()
        );
    }
}

#[test]
fn profiles_hit_rho_targets_within_factor_two() {
    for p in PaperProfile::ALL {
        let mut prof = p.scaled().scaled_by(0.05);
        prof.n_samples = prof.n_samples.max(2500);
        let data = generate(&prof, 2);
        let w = weights_of(&data);
        let measured = rho(&w);
        let (_, _, _, _, target) = p.paper_table1();
        assert!(
            measured / target < 2.0 && target / measured < 2.0,
            "{}: rho {measured:.2e} vs paper {target:.2e}",
            p.id()
        );
    }
}

#[test]
fn density_ordering_matches_paper() {
    let densities: Vec<(&str, f64)> = PaperProfile::ALL
        .iter()
        .map(|p| {
            let prof = p.scaled().scaled_by(0.02);
            let data = generate(&prof, 3);
            (p.id(), data.dataset.density())
        })
        .collect();
    // news20 > url > kdd_* — same ordering as Table 1.
    assert!(densities[0].1 > densities[1].1, "{densities:?}");
    assert!(densities[1].1 > densities[2].1, "{densities:?}");
    assert!(densities[2].1 >= densities[3].1, "{densities:?}");
}

#[test]
fn labels_are_learnable_on_every_profile() {
    // Sanity: a quick IS-ASGD run reduces the error on each profile well
    // below the zero-model baseline.
    let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-6 });
    for p in PaperProfile::ALL {
        let prof = p.scaled().scaled_by(0.02);
        let data = generate(&prof, 4);
        let zero_err = obj
            .eval(&data.dataset, &vec![0.0; data.dataset.dim()])
            .error_rate;
        let cfg = TrainConfig::default().with_epochs(5).with_step_size(0.3);
        let r = train(
            &data.dataset,
            &obj,
            Algorithm::IsAsgd,
            Execution::Simulated { tau: 8, workers: 4 },
            &cfg,
            p.id(),
        )
        .unwrap();
        assert!(
            r.final_metrics.error_rate < zero_err,
            "{}: {} !< {zero_err}",
            p.id(),
            r.final_metrics.error_rate
        );
    }
}

#[test]
fn adaptive_policy_resolves_like_the_paper() {
    // §4: News20 (highest ρ) is balanced; the rest are shuffled. Our
    // synthetic ρ values straddle ζ=5e-4 the same way… except that all
    // four paper values are ≤ ζ; what the evaluation actually did is
    // balance the *highest-ρ* dataset. We assert the adaptive rule picks
    // balancing exactly for datasets with ρ ≥ ζ.
    use is_asgd::balance::{decide, BalancePolicy};
    for p in PaperProfile::ALL {
        let mut prof = p.scaled().scaled_by(0.05);
        prof.n_samples = prof.n_samples.max(2500);
        let data = generate(&prof, 6);
        let w = weights_of(&data);
        let d = decide(&w, BalancePolicy::default(), 0, 8);
        assert_eq!(
            d.balanced,
            d.rho >= 5e-4,
            "{}: balanced={} rho={:.2e}",
            p.id(),
            d.balanced,
            d.rho
        );
    }
}
