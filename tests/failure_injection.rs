//! Failure-injection tests: malformed inputs must surface typed errors
//! (never panics) through every public entry point.

use is_asgd::prelude::*;
use is_asgd::sparse::SparseError;

#[test]
fn libsvm_malformed_inputs() {
    let cases: &[(&str, &str)] = &[
        ("+1 0:1\n", "zero (1-based) index"),
        ("+1 1:abc\n", "non-numeric value"),
        ("+1 xyz\n", "missing colon"),
        ("nolabel\n", "unparseable label"),
        ("+1 2:1 2:3\n", "duplicate index"),
    ];
    for (text, what) in cases {
        let r = libsvm::parse_reader(text.as_bytes(), None);
        assert!(r.is_err(), "{what} must be rejected: {text:?}");
    }
}

#[test]
fn libsvm_missing_file() {
    let r = libsvm::read_file("/nonexistent/path/file.libsvm", None);
    assert!(matches!(r, Err(SparseError::Io(_))));
}

#[test]
fn builder_rejects_nan_and_out_of_range() {
    let mut b = DatasetBuilder::new(10);
    assert!(matches!(
        b.push_row(&[(0, f64::NAN)], 1.0),
        Err(SparseError::NonFiniteValue { .. })
    ));
    assert!(matches!(
        b.push_row(&[(10, 1.0)], 1.0),
        Err(SparseError::IndexOutOfBounds { .. })
    ));
    assert!(matches!(
        b.push_row(&[(0, 1.0)], 2.5),
        Err(SparseError::BadLabel { .. })
    ));
    // Builder state survives rejected rows.
    b.push_row(&[(0, 1.0)], 1.0).unwrap();
    assert_eq!(b.len(), 1);
}

#[test]
fn samplers_reject_degenerate_weights() {
    assert!(AliasTable::new(&[]).is_err());
    assert!(AliasTable::new(&[0.0, 0.0]).is_err());
    assert!(AliasTable::new(&[-1.0, 2.0]).is_err());
    assert!(AliasTable::new(&[f64::INFINITY]).is_err());
    assert!(SampleSequence::weighted(&[1.0], 0, SequenceMode::ShuffleOnce, 0).is_err());
}

#[test]
fn trainer_rejects_all_invalid_configs() {
    let data = generate(&DatasetProfile::tiny(), 1);
    let obj = Objective::new(LogisticLoss, Regularizer::None);
    let base = TrainConfig::default();

    // Degenerate execution parameters.
    for exec in [
        Execution::Threads(0),
        Execution::Simulated { tau: 4, workers: 0 },
        Execution::Simulated {
            tau: 4,
            workers: usize::MAX,
        },
    ] {
        assert!(
            train(&data.dataset, &obj, Algorithm::IsAsgd, exec, &base, "x").is_err(),
            "{exec:?}"
        );
    }
    // Degenerate hyper-parameters.
    for cfg in [
        base.with_step_size(0.0),
        base.with_step_size(-1.0),
        base.with_step_size(f64::INFINITY),
        base.with_epochs(0),
    ] {
        assert!(train(
            &data.dataset,
            &obj,
            Algorithm::Sgd,
            Execution::Sequential,
            &cfg,
            "x"
        )
        .is_err());
    }
}

#[test]
fn reorder_with_out_of_range_indices() {
    let data = generate(&DatasetProfile::tiny(), 2);
    let n = data.dataset.n_samples();
    assert!(data.dataset.reordered(&[n]).is_err());
    assert!(data.dataset.reordered(&[]).unwrap().is_empty());
}

#[test]
fn empty_dataset_paths() {
    let empty = DatasetBuilder::new(8).finish();
    let obj = Objective::new(LogisticLoss, Regularizer::None);
    // Evaluation of an empty dataset is defined (no panic, zero counts).
    let m = obj.eval(&empty, &[0.0; 8]);
    assert_eq!(m.error_rate, 0.0);
    // Training is rejected.
    assert!(train(
        &empty,
        &obj,
        Algorithm::Sgd,
        Execution::Sequential,
        &TrainConfig::default(),
        "e"
    )
    .is_err());
    // Stats still computable.
    let s = DatasetStats::compute(&empty);
    assert_eq!(s.n_samples, 0);
}

#[test]
fn all_zero_rows_still_train() {
    // Rows with empty support: gradient is zero, importance weight floors
    // to a positive value; training must not NaN or divide by zero.
    let mut b = DatasetBuilder::new(4);
    b.push_row(&[], 1.0).unwrap();
    b.push_row(&[(0, 1.0)], -1.0).unwrap();
    b.push_row(&[], -1.0).unwrap();
    b.push_row(&[(1, 2.0)], 1.0).unwrap();
    let ds = b.finish();
    let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 0.01 });
    let cfg = TrainConfig::default().with_epochs(3);
    let r = train(
        &ds,
        &obj,
        Algorithm::IsSgd,
        Execution::Sequential,
        &cfg,
        "zeros",
    )
    .unwrap();
    assert!(r.model.iter().all(|x| x.is_finite()));
}

#[test]
fn extreme_importance_skew_stays_finite() {
    // One sample with a 10⁶× larger norm: corrections span 6 orders of
    // magnitude; training must stay finite (small λ).
    let mut b = DatasetBuilder::new(4);
    b.push_row(&[(0, 1e3)], 1.0).unwrap();
    for i in 0..50 {
        b.push_row(
            &[((i % 4) as u32, 1e-3)],
            if i % 2 == 0 { 1.0 } else { -1.0 },
        )
        .unwrap();
    }
    let ds = b.finish();
    let obj = Objective::new(LogisticLoss, Regularizer::None);
    let cfg = TrainConfig::default().with_epochs(2).with_step_size(1e-3);
    let r = train(
        &ds,
        &obj,
        Algorithm::IsSgd,
        Execution::Sequential,
        &cfg,
        "skew",
    )
    .unwrap();
    assert!(r.model.iter().all(|x| x.is_finite()));
    assert!(r.final_metrics.objective.is_finite());
}
