//! Integration tests asserting the paper's *qualitative claims* hold in
//! this implementation — the same shapes the experiment harness reports,
//! at test-suite scale.

use is_asgd::prelude::*;

fn obj() -> Objective<LogisticLoss> {
    Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-6 })
}

/// A dataset with heavy-tailed row norms ⇒ skewed Lipschitz constants ⇒
/// the regime where IS provably helps (ψ ≪ n).
fn skewed_data(n: usize, seed: u64) -> GeneratedData {
    let p = DatasetProfile {
        name: "skewed",
        dim: 500,
        n_samples: n,
        mean_nnz: 12,
        zipf_exponent: 0.8,
        target_psi_norm: 0.55,
        target_rho: 1e-2,
        label_noise: 0.0,
        planted_density: 0.3,
        feature_kind: FeatureKind::GaussianScaled,
        noise_nnz_coupling: 1.0,
    };
    generate(&p, seed)
}

/// §2.2: IS-SGD's *iterative* convergence beats uniform SGD's in the
/// regime its theory targets — squared (Kaczmarz-style) loss, step size
/// near the uniform-sampling stability edge (λ tuned to sup L for
/// uniform vs L̄ for IS; Eqs. 28–29). Averaged over seeds.
///
/// (For the saturated logistic loss at small scale the per-seed outcome
/// is a coin flip at mild λ — the full-scale fig3 sweep shows the
/// aggregate gains; this test pins the provable regime.)
#[test]
fn is_sgd_beats_sgd_per_epoch_in_kaczmarz_regime() {
    let mut is_wins = 0usize;
    let seeds = [11u64, 22, 33, 44, 55, 66, 77];
    let obj = Objective::new(SquaredLoss, Regularizer::L2 { eta: 1e-4 });
    for &s in &seeds {
        let data = skewed_data(1500, s);
        let cfg = TrainConfig::default()
            .with_epochs(3)
            .with_step_size(1.0)
            .with_seed(s);
        let sgd = train(
            &data.dataset,
            &obj,
            Algorithm::Sgd,
            Execution::Sequential,
            &cfg,
            "sk",
        )
        .unwrap();
        let is = train(
            &data.dataset,
            &obj,
            Algorithm::IsSgd,
            Execution::Sequential,
            &cfg,
            "sk",
        )
        .unwrap();
        if is.final_metrics.objective < sgd.final_metrics.objective {
            is_wins += 1;
        }
    }
    assert!(
        is_wins >= 6,
        "IS-SGD should beat SGD on nearly all seeds (won {is_wins}/{})",
        seeds.len()
    );
}

/// §1.2 / Fig. 1: SVRG's per-epoch wall-clock is far above ASGD's on
/// sparse data because of the dense µ term.
#[test]
fn svrg_pays_the_dense_mu_cost_on_sparse_data() {
    let p = DatasetProfile {
        name: "sparse",
        dim: 20_000,
        n_samples: 2_000,
        mean_nnz: 10,
        zipf_exponent: 1.0,
        target_psi_norm: 0.9,
        target_rho: 1e-4,
        label_noise: 0.0,
        planted_density: 0.05,
        feature_kind: FeatureKind::GaussianScaled,
        noise_nnz_coupling: 1.0,
    };
    let data = generate(&p, 3);
    let cfg = TrainConfig::default().with_epochs(2).with_step_size(0.1);
    let exec = Execution::Simulated { tau: 4, workers: 2 };
    let asgd = train(&data.dataset, &obj(), Algorithm::Asgd, exec, &cfg, "sp").unwrap();
    let svrg = train(
        &data.dataset,
        &obj(),
        Algorithm::SvrgAsgd(SvrgVariant::Literature),
        exec,
        &cfg,
        "sp",
    )
    .unwrap();
    let ratio = svrg.train_secs / asgd.train_secs.max(1e-9);
    assert!(
        ratio > 10.0,
        "SVRG should be ≫ slower per epoch on d/nnz = 2000 data (got {ratio:.1}x)"
    );
}

/// §2.4 / Fig. 2: head-tail balancing equalizes shard importance against
/// the adversarial (importance-sorted) layout it was designed for, and
/// the greedy-LPT extension stays balanced even on the right-skewed
/// distributions where the paper's pair heuristic degrades (see
/// EXPERIMENTS.md, "balancing under skew").
#[test]
fn balancing_equalizes_shard_importance() {
    use is_asgd::balance::{greedy_lpt_balance, head_tail_balance, ShardReport};
    let data = skewed_data(2000, 9);
    let mut w = importance_weights(
        &data.dataset,
        &LogisticLoss,
        Regularizer::None,
        ImportanceScheme::LipschitzSmoothness,
    );
    // Adversarial baseline: data arrives sorted by importance (e.g. by
    // document length) — the worst case for contiguous sharding.
    w.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sorted_layout: Vec<usize> = (0..w.len()).collect();
    let head_tail = head_tail_balance(&w);
    for k in [4usize, 8, 16] {
        let r_sorted = ShardReport::analyze(&w, &sorted_layout, k).unwrap();
        let r_ht = ShardReport::analyze(&w, &head_tail, k).unwrap();
        let greedy = greedy_lpt_balance(&w, k).unwrap();
        let r_g = ShardReport::analyze(&w, &greedy, k).unwrap();
        assert!(
            r_ht.imbalance_ratio < r_sorted.imbalance_ratio,
            "k={k}: head-tail {} must beat sorted layout {}",
            r_ht.imbalance_ratio,
            r_sorted.imbalance_ratio
        );
        assert!(
            r_g.imbalance_ratio < 1.05,
            "k={k}: greedy should be near-perfect, got {}",
            r_g.imbalance_ratio
        );
        assert!(
            r_g.imbalance_ratio <= r_ht.imbalance_ratio + 1e-9,
            "k={k}: greedy {} ≤ head-tail {}",
            r_g.imbalance_ratio,
            r_ht.imbalance_ratio
        );
    }
}

/// Eq. 13–14: the theoretical IS gain factor orders the four Table-1
/// profiles the same way the paper's Fig. 3 orders their empirical gains.
#[test]
fn is_gain_ordering_matches_table1() {
    let mut factors = Vec::new();
    for p in PaperProfile::ALL {
        let prof = p.scaled().scaled_by(0.02);
        let data = generate(&prof, 5);
        let w = importance_weights(
            &data.dataset,
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::LipschitzSmoothness,
        );
        factors.push((p.id(), is_improvement_factor(&w)));
    }
    // news20 (ψ/n=0.972) < url (0.964) < kdd_algebra (0.892) < kdd_bridge (0.877)
    assert!(factors[0].1 < factors[2].1, "{factors:?}");
    assert!(factors[1].1 < factors[2].1, "{factors:?}");
    assert!(factors[2].1 < factors[3].1, "{factors:?}");
}

/// §3.1: higher τ produces a more perturbed trajectory (measured as
/// distance from the τ=0 trajectory), monotonically in expectation.
#[test]
fn staleness_perturbation_grows_with_tau() {
    let data = skewed_data(1000, 17);
    let cfg = TrainConfig::default().with_epochs(2).with_step_size(0.3);
    let reference = train(
        &data.dataset,
        &obj(),
        Algorithm::Sgd,
        Execution::Simulated { tau: 0, workers: 4 },
        &cfg,
        "tau",
    )
    .unwrap();
    let mut prev_dist = 0.0;
    for tau in [4usize, 64, 512] {
        let r = train(
            &data.dataset,
            &obj(),
            Algorithm::Sgd,
            Execution::Simulated { tau, workers: 4 },
            &cfg,
            "tau",
        )
        .unwrap();
        let dist: f64 = reference
            .model
            .iter()
            .zip(&r.model)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(
            dist > prev_dist * 0.5,
            "tau={tau}: perturbation {dist} should grow (prev {prev_dist})"
        );
        prev_dist = dist;
    }
    assert!(prev_dist > 0.0);
}

/// §4.2: IS setup (weights + balancing + sequences) is a small fraction
/// of training time on a real workload.
#[test]
fn is_setup_overhead_is_small() {
    let data = skewed_data(4000, 21);
    let cfg = TrainConfig::default().with_epochs(8).with_step_size(0.3);
    let r = train(
        &data.dataset,
        &obj(),
        Algorithm::IsAsgd,
        Execution::Simulated {
            tau: 16,
            workers: 4,
        },
        &cfg,
        "ovh",
    )
    .unwrap();
    // At paper scale this is 1.1–7.7%; at test scale (n = 4000, seconds
    // of training) we only assert setup stays below training time. The
    // full-scale percentage is reported by `experiments -- fig4`.
    assert!(
        r.setup_overhead() < 1.0,
        "setup {}s vs train {}s",
        r.setup_secs,
        r.train_secs
    );
}
