//! End-to-end integration tests: every solver trains on planted synthetic
//! data and behaves per its contract.

use is_asgd::prelude::*;

fn planted(n: usize, d: usize, seed: u64) -> GeneratedData {
    let mut p = DatasetProfile::tiny();
    p.n_samples = n;
    p.dim = d;
    p.label_noise = 0.0;
    generate(&p, seed)
}

fn obj() -> Objective<LogisticLoss> {
    Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-6 })
}

#[test]
fn every_solver_learns_planted_data() {
    let data = planted(1200, 400, 1);
    let cfg = TrainConfig::default().with_epochs(6).with_step_size(0.5);
    let combos: Vec<(Algorithm, Execution, &str)> = vec![
        (Algorithm::Sgd, Execution::Sequential, "SGD"),
        (Algorithm::IsSgd, Execution::Sequential, "IS-SGD"),
        (Algorithm::Asgd, Execution::Threads(2), "ASGD"),
        (Algorithm::IsAsgd, Execution::Threads(2), "IS-ASGD"),
        (
            Algorithm::Asgd,
            Execution::Simulated {
                tau: 16,
                workers: 4,
            },
            "ASGD-sim",
        ),
        (
            Algorithm::IsAsgd,
            Execution::Simulated {
                tau: 16,
                workers: 4,
            },
            "IS-ASGD-sim",
        ),
        (
            Algorithm::SvrgSgd(SvrgVariant::Literature),
            Execution::Sequential,
            "SVRG-SGD",
        ),
        (
            Algorithm::SvrgAsgd(SvrgVariant::Literature),
            Execution::Threads(2),
            "SVRG-ASGD",
        ),
    ];
    let zero_model_error = {
        let o = obj();
        o.eval(&data.dataset, &vec![0.0; data.dataset.dim()])
            .error_rate
    };
    for (algo, exec, label) in combos {
        let r = train(&data.dataset, &obj(), algo, exec, &cfg, "planted").unwrap();
        assert!(
            r.final_metrics.error_rate < zero_model_error * 0.6,
            "{label}: error {} should clearly beat the zero model's {zero_model_error}",
            r.final_metrics.error_rate
        );
        assert!(
            r.model.iter().all(|x| x.is_finite()),
            "{label}: finite model"
        );
        assert!(r.final_metrics.objective.is_finite());
        // Trace invariants.
        assert_eq!(r.trace.points.len(), cfg.epochs + 1, "{label}");
        assert_eq!(r.trace.points[0].epoch, 0.0);
        for w in r.trace.points.windows(2) {
            assert!(w[1].epoch > w[0].epoch, "{label}: epochs increase");
            assert!(w[1].wall_secs >= w[0].wall_secs, "{label}: time increases");
        }
    }
}

#[test]
fn simulated_runs_are_bit_deterministic() {
    let data = planted(600, 300, 2);
    let cfg = TrainConfig::default().with_epochs(4).with_seed(1234);
    for (algo, label) in [
        (Algorithm::Sgd, "sgd"),
        (Algorithm::IsAsgd, "is-asgd"),
        (Algorithm::SvrgAsgd(SvrgVariant::Literature), "svrg"),
    ] {
        let exec = Execution::Simulated { tau: 8, workers: 4 };
        let a = train(&data.dataset, &obj(), algo, exec, &cfg, "det").unwrap();
        let b = train(&data.dataset, &obj(), algo, exec, &cfg, "det").unwrap();
        assert_eq!(a.model, b.model, "{label}: identical models");
        let ta: Vec<f64> = a.trace.points.iter().map(|p| p.objective).collect();
        let tb: Vec<f64> = b.trace.points.iter().map(|p| p.objective).collect();
        assert_eq!(ta, tb, "{label}: identical traces");
    }
}

#[test]
fn seeds_change_trajectories() {
    let data = planted(600, 300, 3);
    let exec = Execution::Simulated { tau: 8, workers: 4 };
    let a = train(
        &data.dataset,
        &obj(),
        Algorithm::IsAsgd,
        exec,
        &TrainConfig::default().with_epochs(3).with_seed(1),
        "s",
    )
    .unwrap();
    let b = train(
        &data.dataset,
        &obj(),
        Algorithm::IsAsgd,
        exec,
        &TrainConfig::default().with_epochs(3).with_seed(2),
        "s",
    )
    .unwrap();
    assert_ne!(a.model, b.model);
}

#[test]
fn threaded_runs_converge_at_any_thread_count() {
    let data = planted(900, 300, 4);
    let cfg = TrainConfig::default().with_epochs(5);
    for k in [1usize, 2, 3, 4, 8] {
        let r = train(
            &data.dataset,
            &obj(),
            Algorithm::IsAsgd,
            Execution::Threads(k),
            &cfg,
            "k",
        )
        .unwrap();
        assert!(
            r.final_metrics.error_rate < 0.25,
            "k={k}: error {}",
            r.final_metrics.error_rate
        );
    }
}

#[test]
fn error_paths_are_typed() {
    let data = planted(50, 40, 5);
    let cfg = TrainConfig::default();
    // Empty dataset.
    let empty = DatasetBuilder::new(4).finish();
    assert!(train(
        &empty,
        &obj(),
        Algorithm::Sgd,
        Execution::Sequential,
        &cfg,
        "e"
    )
    .is_err());
    // Zero epochs / bad step size.
    let bad = TrainConfig::default().with_epochs(0);
    assert!(train(
        &data.dataset,
        &obj(),
        Algorithm::Sgd,
        Execution::Sequential,
        &bad,
        "e"
    )
    .is_err());
    let bad = TrainConfig::default().with_step_size(f64::NAN);
    assert!(train(
        &data.dataset,
        &obj(),
        Algorithm::Sgd,
        Execution::Sequential,
        &bad,
        "e"
    )
    .is_err());
    // More workers than samples.
    assert!(train(
        &data.dataset,
        &obj(),
        Algorithm::IsAsgd,
        Execution::Threads(51),
        &cfg,
        "e"
    )
    .is_err());
}

#[test]
fn step_decay_schedule_runs() {
    let data = planted(400, 200, 6);
    let mut cfg = TrainConfig::default().with_epochs(4);
    cfg.schedule = StepSchedule::EpochDecay { gamma: 0.7 };
    let r = train(
        &data.dataset,
        &obj(),
        Algorithm::Sgd,
        Execution::Sequential,
        &cfg,
        "d",
    )
    .unwrap();
    assert!(r.final_metrics.objective.is_finite());
}

#[test]
fn update_mode_racy_vs_cas_both_work() {
    let data = planted(800, 300, 7);
    for mode in [UpdateMode::AtomicCas, UpdateMode::RacyHogwild] {
        let mut cfg = TrainConfig::default().with_epochs(4);
        cfg.update_mode = mode;
        let r = train(
            &data.dataset,
            &obj(),
            Algorithm::Asgd,
            Execution::Threads(4),
            &cfg,
            "m",
        )
        .unwrap();
        assert!(r.final_metrics.error_rate < 0.3, "{mode:?}");
    }
}
