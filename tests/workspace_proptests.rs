//! Cross-crate property tests on the full training stack.

use is_asgd::prelude::*;
use proptest::prelude::*;

fn small_data(seed: u64, n: usize) -> GeneratedData {
    let mut p = DatasetProfile::tiny();
    p.n_samples = n.max(16);
    p.dim = 100;
    p.mean_nnz = 6;
    generate(&p, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (τ, workers, seed) combination yields a finite model and a
    /// monotone wall-clock trace.
    #[test]
    fn simulated_training_is_total(seed in 0u64..500, tau in 0usize..64, workers in 1usize..6) {
        let data = small_data(seed, 200);
        let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-5 });
        let cfg = TrainConfig::default().with_epochs(2).with_seed(seed);
        let r = train(
            &data.dataset,
            &obj,
            Algorithm::IsAsgd,
            Execution::Simulated { tau, workers },
            &cfg,
            "prop",
        )
        .unwrap();
        prop_assert!(r.model.iter().all(|x| x.is_finite()));
        prop_assert!(r.final_metrics.objective.is_finite());
        prop_assert!(r.final_metrics.error_rate >= 0.0 && r.final_metrics.error_rate <= 1.0);
        for w in r.trace.points.windows(2) {
            prop_assert!(w[1].wall_secs >= w[0].wall_secs);
        }
    }

    /// The objective after training is never worse than the zero model's
    /// (the step sizes in play are stable for this data).
    #[test]
    fn training_never_hurts(seed in 0u64..200) {
        let data = small_data(seed, 300);
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let zero = obj.eval(&data.dataset, &vec![0.0; data.dataset.dim()]);
        let cfg = TrainConfig::default().with_epochs(3).with_step_size(0.2).with_seed(seed);
        let r = train(&data.dataset, &obj, Algorithm::Sgd, Execution::Sequential, &cfg, "p")
            .unwrap();
        prop_assert!(
            r.final_metrics.objective <= zero.objective,
            "trained {} vs zero {}",
            r.final_metrics.objective,
            zero.objective
        );
    }

    /// Importance weights are strictly positive and the step corrections
    /// have unit expectation under the induced distribution.
    #[test]
    fn importance_invariants(seed in 0u64..300) {
        let data = small_data(seed, 150);
        let w = importance_weights(
            &data.dataset,
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::LipschitzSmoothness,
        );
        prop_assert!(w.iter().all(|&x| x > 0.0));
        let total: f64 = w.iter().sum();
        let corr = is_asgd::losses::step_corrections(&w);
        let e: f64 = corr.iter().zip(&w).map(|(&c, &l)| c * l / total).sum();
        prop_assert!((e - 1.0).abs() < 1e-9, "E[1/(np)] = {e}");
    }

    /// LibSVM round-trip through the real generator output.
    #[test]
    fn generated_data_survives_libsvm(seed in 0u64..100) {
        let data = small_data(seed, 60);
        let mut buf = Vec::new();
        libsvm::write_writer(&data.dataset, &mut buf).unwrap();
        let back = libsvm::parse_reader(buf.as_slice(), Some(data.dataset.dim())).unwrap();
        prop_assert_eq!(back.n_samples(), data.dataset.n_samples());
        prop_assert_eq!(back.nnz(), data.dataset.nnz());
        // Values survive the decimal round-trip to within print precision.
        for i in 0..back.n_samples() {
            let (a, b) = (data.dataset.row(i), back.row(i));
            prop_assert_eq!(a.indices, b.indices);
            prop_assert_eq!(a.label, b.label);
            for (x, y) in a.values.iter().zip(b.values) {
                prop_assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0));
            }
        }
    }

    /// Evaluation is invariant under row permutation.
    #[test]
    fn eval_is_permutation_invariant(seed in 0u64..200) {
        let data = small_data(seed, 80);
        let obj = Objective::new(LogisticLoss, Regularizer::L2 { eta: 0.01 });
        let w: Vec<f64> = (0..data.dataset.dim()).map(|i| ((i * seed as usize) % 7) as f64 * 0.05 - 0.15).collect();
        let base = obj.eval(&data.dataset, &w);
        let mut order: Vec<usize> = (0..data.dataset.n_samples()).collect();
        order.reverse();
        let permuted = data.dataset.reordered(&order).unwrap();
        let p = obj.eval(&permuted, &w);
        prop_assert!((base.objective - p.objective).abs() < 1e-10);
        prop_assert!((base.rmse - p.rmse).abs() < 1e-10);
        prop_assert_eq!(base.error_rate, p.error_rate);
    }
}
