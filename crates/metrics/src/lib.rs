//! Convergence traces and the derived statistics behind the paper's
//! Figures 3–5 and the §4.2 speedup summary.
//!
//! * [`Trace`] — one algorithm run: a series of per-epoch
//!   (epoch, wall-clock, objective, RMSE, error-rate) points.
//! * [`trace::best_error_curve`] — the monotone "error rate is updated
//!   once a better result is obtained" transformation the paper applies.
//! * [`interpolate::time_to_error`] — linearly interpolated wall-clock (or
//!   epoch) cost of reaching a target error, the primitive behind the
//!   Fig. 5 speedup slices and the Fig. 4 optimum markers.
//! * [`speedup`] — speedup curves/summaries of one trace over another.
//! * [`table`] — fixed-width text tables for the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interpolate;
pub mod speedup;
pub mod table;
pub mod trace;

pub use interpolate::{time_to_error, time_to_objective};
pub use speedup::{speedup_curve, SpeedupSummary};
pub use table::TextTable;
pub use trace::{Trace, TracePoint};
