//! Speedup curves and summaries (paper Fig. 5 and §4.2).

use crate::interpolate::time_to_error;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Speedup of `fast` over `base` at a grid of error-rate targets:
/// `speedup(e) = time_base(e) / time_fast(e)`. `None` where either trace
/// never reaches the target.
pub fn speedup_curve(base: &Trace, fast: &Trace, targets: &[f64]) -> Vec<(f64, Option<f64>)> {
    targets
        .iter()
        .map(|&e| {
            let s = match (time_to_error(base, e), time_to_error(fast, e)) {
                (Some(tb), Some(tf)) if tf > 0.0 => Some(tb / tf),
                _ => None,
            };
            (e, s)
        })
        .collect()
}

/// Aggregate speedup statistics, the numbers quoted in the paper's §4.2
/// ("the average speedups ... range from 1.26 to 1.97 while the optimum
/// speedups range from 1.13 to 1.54").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupSummary {
    /// Mean speedup over all reachable targets.
    pub average: f64,
    /// Speedup at the base algorithm's best (optimum) error rate.
    pub at_optimum: Option<f64>,
    /// Max speedup over the grid.
    pub max: f64,
    /// Min speedup over the grid.
    pub min: f64,
    /// Number of targets both algorithms reached.
    pub reachable_targets: usize,
}

impl SpeedupSummary {
    /// Computes the summary of `fast` over `base` using `n_targets`
    /// error-rate levels spaced between the base optimum and the first
    /// observed error.
    pub fn compute(base: &Trace, fast: &Trace, n_targets: usize) -> Option<SpeedupSummary> {
        let best = base.best_error()?;
        let first = base.points.first()?.error_rate;
        if !(best.is_finite() && first.is_finite()) || n_targets == 0 {
            return None;
        }
        let hi = first.max(best);
        let targets: Vec<f64> = (0..n_targets)
            .map(|i| {
                // Dense near the optimum, like the paper's slice plots.
                let frac = (i + 1) as f64 / n_targets as f64;
                best + (hi - best) * frac * frac
            })
            .collect();
        let curve = speedup_curve(base, fast, &targets);
        let vals: Vec<f64> = curve.iter().filter_map(|&(_, s)| s).collect();
        if vals.is_empty() {
            return None;
        }
        let at_optimum = match (time_to_error(base, best), time_to_error(fast, best)) {
            (Some(tb), Some(tf)) if tf > 0.0 => Some(tb / tf),
            _ => None,
        };
        Some(SpeedupSummary {
            average: vals.iter().sum::<f64>() / vals.len() as f64,
            at_optimum,
            max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            min: vals.iter().copied().fold(f64::INFINITY, f64::min),
            reachable_targets: vals.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracePoint;

    fn mk(algorithm: &str, pts: &[(f64, f64)]) -> Trace {
        let mut t = Trace::new(algorithm, "d", 1, 0.1);
        for (i, &(w, e)) in pts.iter().enumerate() {
            t.push(TracePoint {
                epoch: (i + 1) as f64,
                wall_secs: w,
                objective: e,
                rmse: e,
                error_rate: e,
            });
        }
        t
    }

    #[test]
    fn twice_as_fast_gives_speedup_two() {
        let base = mk("slow", &[(2.0, 0.4), (4.0, 0.2), (6.0, 0.1)]);
        let fast = mk("fast", &[(1.0, 0.4), (2.0, 0.2), (3.0, 0.1)]);
        let curve = speedup_curve(&base, &fast, &[0.4, 0.2, 0.1]);
        for &(_, s) in &curve {
            assert!((s.unwrap() - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unreachable_targets_are_none() {
        let base = mk("slow", &[(1.0, 0.4), (2.0, 0.3)]);
        let fast = mk("fast", &[(1.0, 0.4), (2.0, 0.1)]);
        let curve = speedup_curve(&base, &fast, &[0.2]);
        assert_eq!(curve[0].1, None, "base never reaches 0.2");
    }

    #[test]
    fn summary_statistics() {
        let base = mk("slow", &[(2.0, 0.4), (4.0, 0.2), (8.0, 0.1)]);
        let fast = mk("fast", &[(1.0, 0.4), (2.0, 0.2), (4.0, 0.1)]);
        let s = SpeedupSummary::compute(&base, &fast, 10).unwrap();
        assert!(s.average > 1.5 && s.average < 2.5, "avg {}", s.average);
        assert!((s.at_optimum.unwrap() - 2.0).abs() < 1e-9);
        assert!(s.reachable_targets > 0);
        assert!(s.min <= s.average && s.average <= s.max);
    }

    #[test]
    fn summary_none_for_empty_traces() {
        let empty = Trace::new("a", "d", 1, 0.1);
        let fast = mk("fast", &[(1.0, 0.4)]);
        assert!(SpeedupSummary::compute(&empty, &fast, 5).is_none());
    }
}
