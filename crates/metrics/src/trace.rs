//! Run traces.

use serde::{Deserialize, Serialize};

/// One evaluation point of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Epochs completed (fractional points allowed for mid-epoch evals).
    pub epoch: f64,
    /// Training wall-clock seconds, **excluding** evaluation time.
    pub wall_secs: f64,
    /// Objective F(w).
    pub objective: f64,
    /// RMSE as defined in the paper's §4 (see `isasgd-losses`).
    pub rmse: f64,
    /// Misclassification fraction.
    pub error_rate: f64,
}

/// A full training trace with identifying metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Algorithm name (e.g. "IS-ASGD").
    pub algorithm: String,
    /// Dataset name (e.g. "news20_like").
    pub dataset: String,
    /// Concurrency: thread count or simulated τ.
    pub concurrency: usize,
    /// Step size λ.
    pub step_size: f64,
    /// The evaluation points in epoch order.
    pub points: Vec<TracePoint>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(algorithm: &str, dataset: &str, concurrency: usize, step_size: f64) -> Self {
        Trace {
            algorithm: algorithm.to_string(),
            dataset: dataset.to_string(),
            concurrency,
            step_size,
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, p: TracePoint) {
        self.points.push(p);
    }

    /// The last point, if any.
    pub fn last(&self) -> Option<&TracePoint> {
        self.points.last()
    }

    /// Lowest error rate ever reached (the paper's "optimum").
    pub fn best_error(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.error_rate)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Lowest RMSE ever reached.
    pub fn best_rmse(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.rmse)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Total training wall-clock of the run.
    pub fn total_wall_secs(&self) -> f64 {
        self.last().map_or(0.0, |p| p.wall_secs)
    }
}

/// The monotone best-so-far error curve `(wall_secs, best_error)` — the
/// paper updates the reported error "once a better result is obtained".
pub fn best_error_curve(trace: &Trace) -> Vec<(f64, f64)> {
    let mut best = f64::INFINITY;
    trace
        .points
        .iter()
        .map(|p| {
            best = best.min(p.error_rate);
            (p.wall_secs, best)
        })
        .collect()
}

/// Monotone best-so-far curve keyed by epoch instead of wall-clock.
pub fn best_error_curve_by_epoch(trace: &Trace) -> Vec<(f64, f64)> {
    let mut best = f64::INFINITY;
    trace
        .points
        .iter()
        .map(|p| {
            best = best.min(p.error_rate);
            (p.epoch, best)
        })
        .collect()
}

/// Pointwise mean of several traces of the same run configuration.
///
/// All metrics — wall-clock, objective, RMSE, error rate — are averaged
/// per evaluation point; metadata is taken from the first trace. This is
/// the laptop-scale stand-in for the self-averaging of very large
/// datasets: the paper's epochs cover 10⁶–10⁷ samples, so its curves are
/// intrinsically smooth, while a scaled-down epoch covers 10⁴–10⁵ and a
/// single run's per-epoch metrics carry visible sampling noise.
///
/// # Panics
/// Panics if `traces` is empty or the traces have different lengths.
pub fn average_traces(traces: &[Trace]) -> Trace {
    assert!(
        !traces.is_empty(),
        "average_traces needs at least one trace"
    );
    let n = traces[0].points.len();
    for t in traces {
        assert_eq!(
            t.points.len(),
            n,
            "all traces must have the same number of points"
        );
    }
    let k = traces.len() as f64;
    let mut out = traces[0].clone();
    for (i, p) in out.points.iter_mut().enumerate() {
        let mut wall = 0.0;
        let mut obj = 0.0;
        let mut rmse = 0.0;
        let mut err = 0.0;
        for t in traces {
            let q = &t.points[i];
            wall += q.wall_secs;
            obj += q.objective;
            rmse += q.rmse;
            err += q.error_rate;
        }
        p.wall_secs = wall / k;
        p.objective = obj / k;
        p.rmse = rmse / k;
        p.error_rate = err / k;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(epoch: f64, wall: f64, err: f64) -> TracePoint {
        TracePoint {
            epoch,
            wall_secs: wall,
            objective: err * 2.0,
            rmse: err + 0.5,
            error_rate: err,
        }
    }

    fn trace() -> Trace {
        let mut t = Trace::new("ASGD", "tiny", 4, 0.5);
        t.push(pt(1.0, 0.1, 0.30));
        t.push(pt(2.0, 0.2, 0.10));
        t.push(pt(3.0, 0.3, 0.15)); // regression — noisy eval
        t.push(pt(4.0, 0.4, 0.05));
        t
    }

    #[test]
    fn best_metrics() {
        let t = trace();
        assert_eq!(t.best_error(), Some(0.05));
        assert!((t.best_rmse().unwrap() - 0.55).abs() < 1e-12);
        assert_eq!(t.total_wall_secs(), 0.4);
        assert_eq!(t.last().unwrap().epoch, 4.0);
    }

    #[test]
    fn best_curve_is_monotone() {
        let c = best_error_curve(&trace());
        assert_eq!(c.len(), 4);
        assert_eq!(c[1].1, 0.10);
        assert_eq!(c[2].1, 0.10, "regressions must not raise the best curve");
        assert_eq!(c[3].1, 0.05);
        for w in c.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn epoch_curve_uses_epochs() {
        let c = best_error_curve_by_epoch(&trace());
        assert_eq!(c[0].0, 1.0);
        assert_eq!(c[3].0, 4.0);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("SGD", "x", 1, 0.1);
        assert_eq!(t.best_error(), None);
        assert_eq!(t.total_wall_secs(), 0.0);
        assert!(best_error_curve(&t).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let t = trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn average_of_identical_traces_is_identity() {
        let t = trace();
        let avg = average_traces(&[t.clone(), t.clone(), t.clone()]);
        assert_eq!(avg.points.len(), t.points.len());
        for (a, b) in avg.points.iter().zip(&t.points) {
            // Up to summation rounding: (x+x+x)/3 ≠ x exactly in floats.
            assert!((a.wall_secs - b.wall_secs).abs() < 1e-12);
            assert!((a.objective - b.objective).abs() < 1e-12);
            assert!((a.rmse - b.rmse).abs() < 1e-12);
            assert!((a.error_rate - b.error_rate).abs() < 1e-12);
            assert_eq!(a.epoch, b.epoch);
        }
        assert_eq!(avg.algorithm, t.algorithm);
    }

    #[test]
    fn average_is_pointwise_mean() {
        let a = trace();
        let mut b = trace();
        for p in b.points.iter_mut() {
            p.error_rate += 0.02;
            p.rmse += 0.1;
            p.wall_secs *= 3.0;
        }
        let avg = average_traces(&[a.clone(), b]);
        for (i, p) in avg.points.iter().enumerate() {
            let q = &a.points[i];
            assert!((p.error_rate - (q.error_rate + 0.01)).abs() < 1e-12);
            assert!((p.rmse - (q.rmse + 0.05)).abs() < 1e-12);
            assert!((p.wall_secs - 2.0 * q.wall_secs).abs() < 1e-12);
            assert_eq!(p.epoch, q.epoch, "epoch axis must be preserved");
        }
        assert_eq!(avg.algorithm, "ASGD");
    }

    #[test]
    #[should_panic(expected = "same number of points")]
    fn average_rejects_mismatched_lengths() {
        let a = trace();
        let mut b = trace();
        b.points.pop();
        let _ = average_traces(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn average_rejects_empty_input() {
        let _ = average_traces(&[]);
    }
}
