//! Linear interpolation of time-to-target on monotone best curves.
//!
//! The paper's Fig. 5 plots, for each error-rate level, the ratio of the
//! wall-clock needed by two algorithms to first reach it, "values are
//! linearly interpolated when needed". The primitive here does exactly
//! that on the best-so-far curve.

use crate::trace::{best_error_curve, Trace};

/// First time (in the curve's x unit) at which `curve` reaches `target`,
/// linearly interpolating between the bracketing points. `None` when the
/// curve never reaches the target.
///
/// `curve` must be a monotone non-increasing best-so-far sequence, as
/// produced by [`best_error_curve`](crate::trace::best_error_curve).
pub fn time_to_target(curve: &[(f64, f64)], target: f64) -> Option<f64> {
    if curve.is_empty() {
        return None;
    }
    // Already below target at the first observation: credit the first x.
    if curve[0].1 <= target {
        return Some(curve[0].0);
    }
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if y1 <= target {
            // Interpolate within (x0, x1]; y decreases from y0 to y1.
            if (y0 - y1).abs() < f64::EPSILON {
                return Some(x1);
            }
            let frac = (y0 - target) / (y0 - y1);
            return Some(x0 + frac.clamp(0.0, 1.0) * (x1 - x0));
        }
    }
    None
}

/// Wall-clock seconds for `trace` to first reach `target` error rate.
pub fn time_to_error(trace: &Trace, target: f64) -> Option<f64> {
    time_to_target(&best_error_curve(trace), target)
}

/// Wall-clock seconds for `trace` to first reach `target` objective,
/// using the monotone best-so-far objective curve.
pub fn time_to_objective(trace: &Trace, target: f64) -> Option<f64> {
    let mut best = f64::INFINITY;
    let curve: Vec<(f64, f64)> = trace
        .points
        .iter()
        .map(|p| {
            best = best.min(p.objective);
            (p.wall_secs, best)
        })
        .collect();
    time_to_target(&curve, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracePoint;

    fn trace() -> Trace {
        let mut t = Trace::new("A", "d", 1, 0.1);
        for (e, w, err) in [(1.0, 1.0, 0.4), (2.0, 2.0, 0.2), (3.0, 3.0, 0.1)] {
            t.push(TracePoint {
                epoch: e,
                wall_secs: w,
                objective: err * 10.0,
                rmse: err,
                error_rate: err,
            });
        }
        t
    }

    #[test]
    fn exact_hits() {
        let t = trace();
        assert_eq!(time_to_error(&t, 0.4), Some(1.0));
        assert_eq!(time_to_error(&t, 0.2), Some(2.0));
        assert_eq!(time_to_error(&t, 0.1), Some(3.0));
    }

    #[test]
    fn interpolates_between_points() {
        let t = trace();
        // 0.3 is halfway between 0.4 and 0.2 ⇒ time 1.5.
        assert!((time_to_error(&t, 0.3).unwrap() - 1.5).abs() < 1e-12);
        // 0.15 is halfway between 0.2 and 0.1 ⇒ time 2.5.
        assert!((time_to_error(&t, 0.15).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target() {
        assert_eq!(time_to_error(&trace(), 0.05), None);
    }

    #[test]
    fn target_above_first_point() {
        assert_eq!(time_to_error(&trace(), 0.9), Some(1.0));
    }

    #[test]
    fn flat_segments_resolve_to_right_edge() {
        let curve = vec![(0.0, 0.5), (1.0, 0.3), (2.0, 0.3), (3.0, 0.1)];
        // Reaching 0.3 happens at x=1 (first crossing).
        assert!((time_to_target(&curve, 0.3).unwrap() - 1.0).abs() < 1e-12);
        // 0.2 needs the segment (2,0.3)→(3,0.1): halfway = 2.5.
        assert!((time_to_target(&curve, 0.2).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn objective_interpolation() {
        let t = trace();
        assert!((time_to_objective(&t, 3.0).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_curve() {
        assert_eq!(time_to_target(&[], 0.1), None);
    }
}
