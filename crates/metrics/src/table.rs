//! Fixed-width text tables for experiment output.

use std::fmt::Write as _;

/// A simple right-aligned fixed-width text table with a header row.
///
/// Used by the experiment binaries to print Table-1-style summaries next
/// to the paper's reference values; also serializes to CSV.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept
    /// (they widen the table).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Renders to an aligned multi-line string.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize], out: &mut String| {
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}");
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &w, &mut out);
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &w, &mut out);
        }
        out
    }

    /// Renders to CSV (no quoting — cells are numeric/identifier-like).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for table cells (4 significant digits,
/// scientific below 1e-3).
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() < 1e-3 || x.abs() >= 1e6 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All rows have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1", "2", "3"]);
        t.row(Vec::<String>::new());
        let s = t.render();
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn num_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(0.5), "0.5000");
        assert!(fmt_num(5e-4).contains('e'));
        assert!(fmt_num(2.5e7).contains('e'));
    }
}
