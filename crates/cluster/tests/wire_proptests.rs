//! Property tests on the wire codec: every message round-trips
//! bit-exactly, and the decoder is total — truncated, garbage, and
//! mutated frames return a typed `WireError`, never a panic and never
//! an unbounded allocation.

use isasgd_cluster::{
    apply_delta, delta_coords, CheckpointSampler, CheckpointState, Message, SessionConfig,
    WireEncoding, WireError, WorkerTiming, PROTOCOL_VERSION,
};
use isasgd_core::{
    CommitPolicy, ImportanceScheme, ObservationModel, Regularizer, SamplingStrategy,
};
use isasgd_sparse::DatasetBuilder;
use proptest::prelude::*;

/// NaN-free f64 values including the nasty edges: ±0.0, ±inf,
/// subnormals, and the extremes of the normal range. (NaN is excluded
/// only because `PartialEq` would make the round-trip assertion
/// vacuous; the codec itself moves raw bits.)
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e300f64..1e300,
        Just(0.0),
        Just(-0.0),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MAX),
        Just(f64::MIN),
        Just(f64::MIN_POSITIVE),
        Just(5e-324), // smallest subnormal
    ]
}

fn arb_model_update() -> impl Strategy<Value = Message> {
    (
        0u32..=u32::MAX,
        0u64..=u64::MAX,
        prop::collection::vec(arb_f64(), 0..64),
    )
        .prop_map(|(node, round, model)| Message::ModelUpdate { node, round, model })
}

/// Feedback batches including empty ones and max-shard-index rows.
fn arb_feedback_batch() -> impl Strategy<Value = Message> {
    (
        0u32..=u32::MAX,
        0u64..=u64::MAX,
        prop::collection::vec(
            prop_oneof![0u32..1 << 20, Just(u32::MAX)]
                .prop_flat_map(|row| arb_f64().prop_map(move |obs| (row, obs))),
            0..48,
        ),
    )
        .prop_map(|(node, round, observations)| Message::FeedbackBatch {
            node,
            round,
            observations,
        })
}

fn arb_round_barrier() -> impl Strategy<Value = Message> {
    (0u32..=u32::MAX, 0u64..=u64::MAX)
        .prop_map(|(node, round)| Message::RoundBarrier { node, round })
}

fn arb_shard_rebalance() -> impl Strategy<Value = Message> {
    (
        0u64..=u64::MAX,
        prop_oneof![0u32..1024, Just(u32::MAX)],
        prop::collection::vec(prop_oneof![0u32..1 << 16, Just(u32::MAX)], 0..64),
        prop::collection::vec(
            (0u32..1 << 16).prop_flat_map(|s| (s..1 << 17).prop_map(move |e| (s, e))),
            0..16,
        ),
    )
        .prop_map(|(round, assigned, order, ranges)| Message::ShardRebalance {
            round,
            assigned,
            order,
            ranges,
        })
}

fn arb_hello() -> impl Strategy<Value = Message> {
    prop_oneof![Just(PROTOCOL_VERSION), 0u32..=u32::MAX]
        .prop_map(|version| Message::Hello { version })
}

fn arb_importance() -> impl Strategy<Value = ImportanceScheme> {
    prop_oneof![
        Just(ImportanceScheme::LipschitzSmoothness),
        arb_f64().prop_map(|radius| ImportanceScheme::GradNormBound { radius }),
        Just(ImportanceScheme::Uniform),
        arb_f64().prop_map(|bias| ImportanceScheme::PartiallyBiased { bias }),
    ]
}

/// Loss-name strings: the two real names plus arbitrary ASCII junk (the
/// codec ships any string; semantic validation is the session layer's).
fn arb_loss_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("logistic".to_string()),
        Just("squared hinge".to_string()),
        prop::collection::vec(0u8..26, 0..12)
            .prop_map(|v| v.into_iter().map(|c| (b'a' + c) as char).collect()),
    ]
}

fn arb_session_config() -> impl Strategy<Value = SessionConfig> {
    // The vendored proptest stand-in caps tuple strategies at arity 4;
    // nest the fields in groups instead.
    (
        (0u32..=u32::MAX, 0u64..=u64::MAX, 0u32..=u32::MAX, arb_f64()),
        (
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            arb_importance(),
        ),
        (
            prop_oneof![
                Just(SamplingStrategy::Uniform),
                Just(SamplingStrategy::Static),
                Just(SamplingStrategy::Adaptive),
            ],
            prop_oneof![
                Just(ObservationModel::GradNorm),
                Just(ObservationModel::LossBound),
                arb_f64().prop_map(|half_life| ObservationModel::StalenessDiscounted { half_life }),
            ],
            prop_oneof![
                Just(CommitPolicy::EpochBoundary),
                (0usize..1 << 20).prop_map(CommitPolicy::EveryK),
            ],
            prop_oneof![
                Just(WireEncoding::Dense),
                Just(WireEncoding::Delta),
                Just(WireEncoding::Auto),
            ],
        ),
        (
            arb_loss_name(),
            prop_oneof![
                Just(Regularizer::None),
                arb_f64().prop_map(|eta| Regularizer::L1 { eta }),
                arb_f64().prop_map(|eta| Regularizer::L2 { eta }),
            ],
            prop_oneof![Just(false), Just(true)],
        ),
    )
        .prop_map(
            |(
                (nodes, rounds, local_epochs, step_size),
                (seed, round_timeout_ms, checkpoint_every, importance),
                (sampling, obs_model, commit, encoding),
                (loss, reg, telemetry),
            )| SessionConfig {
                nodes,
                rounds,
                local_epochs,
                step_size,
                seed,
                round_timeout_ms,
                importance,
                sampling,
                obs_model,
                commit,
                loss,
                reg,
                encoding,
                checkpoint_every,
                telemetry,
            },
        )
}

fn arb_assign() -> impl Strategy<Value = Message> {
    (0u32..=u32::MAX, arb_session_config())
        .prop_map(|(worker, config)| Message::Assign { worker, config })
}

/// Small random CSR datasets (including empty rows) shipped whole.
fn arb_dataset_transfer() -> impl Strategy<Value = Message> {
    prop::collection::vec(
        (
            prop::collection::btree_map(0u32..32, -10.0f64..10.0, 0..6),
            0u8..2,
        ),
        0..12,
    )
    .prop_map(|rows| {
        let mut b = DatasetBuilder::new(32);
        for (pairs, pos) in rows {
            let pairs: Vec<(u32, f64)> = pairs.into_iter().collect();
            b.push_row(&pairs, if pos == 1 { 1.0 } else { -1.0 })
                .unwrap();
        }
        Message::DatasetTransfer {
            dataset: Box::new(b.finish()),
        }
    })
}

/// Sparse model deltas: a strictly increasing coordinate set bounded by
/// `dim` (so every generated frame is decodable), with nasty-edge f64
/// payloads. `dim` includes `u32::MAX` so the gap-coded varints exercise
/// their widest encodings.
fn arb_model_delta() -> impl Strategy<Value = Message> {
    (
        0u32..=u32::MAX,
        0u64..=u64::MAX,
        prop_oneof![1u32..4096, Just(u32::MAX)],
    )
        .prop_flat_map(|(node, round, dim)| {
            (
                Just(node),
                Just(round),
                Just(dim),
                prop::collection::vec(0..dim, 0..32),
            )
        })
        .prop_flat_map(|(node, round, dim, mut raw)| {
            raw.sort_unstable();
            raw.dedup();
            let indices = raw;
            let n = indices.len();
            (
                Just(node),
                Just(round),
                Just(dim),
                (Just(indices), prop::collection::vec(arb_f64(), n..n + 1)),
            )
        })
        .prop_map(
            |(node, round, dim, (indices, values))| Message::ModelDelta {
                node,
                round,
                dim,
                indices,
                values,
            },
        )
}

/// Shard-stream chunks with a consistent header: `start` sits inside
/// `[shard_start, shard_start + shard_rows)` and the chunk's rows fit
/// the declared shard. Weights are strictly positive finite (the
/// decoder's invariant), labels ±1.
fn arb_dataset_shard() -> impl Strategy<Value = Message> {
    (
        (0u32..=u32::MAX, 0u32..1024, 0u32..8, 0u32..8),
        prop::collection::vec(
            (
                prop::collection::btree_map(0u32..32, -10.0f64..10.0, 0..6),
                0u8..2,
                1e-3f64..10.0,
            ),
            1..12,
        ),
    )
        .prop_map(|((shard, shard_start, before, after), rows)| {
            let n = rows.len() as u32;
            let mut b = DatasetBuilder::new(32);
            let mut weights = Vec::with_capacity(rows.len());
            for (pairs, pos, w) in rows {
                let pairs: Vec<(u32, f64)> = pairs.into_iter().collect();
                b.push_row(&pairs, if pos == 1 { 1.0 } else { -1.0 })
                    .unwrap();
                weights.push(w);
            }
            Message::DatasetShard {
                shard,
                shard_start,
                shard_rows: before + n + after,
                start: shard_start + before,
                weights,
                chunk: Box::new(b.finish()),
            }
        })
}

fn arb_rng_state() -> impl Strategy<Value = [u64; 4]> {
    prop::collection::vec(0u64..=u64::MAX, 4).prop_map(|v| [v[0], v[1], v[2], v[3]])
}

/// Checkpoint sampler states satisfying the decoder's invariants:
/// sequence indices in-shard, adaptive overrides strictly increasing
/// with parallel finite non-negative weights (0.0 and subnormals
/// included — exact zeroes are legitimate committed weights).
fn arb_weight() -> impl Strategy<Value = f64> {
    prop_oneof![0.0f64..1e300, Just(0.0), Just(5e-324), Just(f64::MAX)]
}

fn arb_checkpoint_sampler() -> impl Strategy<Value = CheckpointSampler> {
    prop_oneof![
        (1u32..4096, arb_rng_state()).prop_flat_map(|(rows, rng)| {
            prop::collection::vec(0..rows, 0..32)
                .prop_map(move |indices| CheckpointSampler::Sequence { rows, rng, indices })
        }),
        (1u32..4096, 0u64..=u64::MAX).prop_flat_map(|(rows, commits)| {
            prop::collection::vec(0..rows, 0..32).prop_flat_map(move |mut raw| {
                raw.sort_unstable();
                raw.dedup();
                let n = raw.len();
                (Just(raw), prop::collection::vec(arb_weight(), n..n + 1)).prop_map(
                    move |(indices, weights)| CheckpointSampler::Adaptive {
                        rows,
                        commits,
                        indices,
                        weights,
                    },
                )
            })
        }),
    ]
}

fn arb_checkpoint() -> impl Strategy<Value = Message> {
    (
        (0u32..=u32::MAX, 0u64..=u64::MAX, arb_rng_state()),
        prop::collection::vec(arb_f64(), 0..32),
        arb_checkpoint_sampler(),
    )
        .prop_map(
            |((node, round, draw_rng), model, sampler)| Message::Checkpoint {
                node,
                round,
                state: Box::new(CheckpointState {
                    draw_rng,
                    model,
                    sampler,
                }),
            },
        )
}

fn arb_checkpoint_ack() -> impl Strategy<Value = Message> {
    (0u32..=u32::MAX, 0u64..=u64::MAX)
        .prop_map(|(node, round)| Message::CheckpointAck { node, round })
}

/// Telemetry frames across the full field ranges (durations and counts
/// are unconstrained u64s on the wire; semantics live with the
/// consumer).
fn arb_telemetry() -> impl Strategy<Value = Message> {
    (
        (0u32..=u32::MAX, 0u64..=u64::MAX),
        (0u64..=u64::MAX, 0u64..=u64::MAX),
        (0u64..=u64::MAX, 0u64..=u64::MAX),
    )
        .prop_map(
            |((node, round), (compute_us, barrier_wait_us), (rows, commits))| Message::Telemetry {
                node,
                round,
                timing: WorkerTiming {
                    compute_us,
                    barrier_wait_us,
                    rows,
                    commits,
                },
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_model_update(),
        arb_feedback_batch(),
        arb_round_barrier(),
        arb_shard_rebalance(),
        arb_hello(),
        arb_assign(),
        arb_dataset_transfer(),
        arb_model_delta(),
        arb_dataset_shard(),
        arb_checkpoint(),
        arb_checkpoint_ack(),
        arb_telemetry(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode ∘ encode is the identity, bit-exactly (f64 payloads are
    /// compared through their bit patterns so -0.0 and subnormals count).
    #[test]
    fn every_message_roundtrips(msg in arb_message()) {
        let bytes = msg.to_bytes();
        let back = Message::decode(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&msg));
        // Bit-exact f64s, not just PartialEq-equal:
        if let (Ok(Message::ModelUpdate { model: a, .. }), Message::ModelUpdate { model: b, .. }) =
            (&back, &msg)
        {
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Canonical: re-encoding the decoded message reproduces the bytes.
        prop_assert_eq!(back.unwrap().to_bytes(), bytes);
    }

    /// Every strict prefix of a valid encoding fails to decode — the
    /// decoder never accepts a truncated frame.
    #[test]
    fn strict_prefixes_never_decode(msg in arb_message()) {
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "prefix of {} / {} bytes decoded",
                cut,
                bytes.len()
            );
        }
    }

    /// Fuzz: feeding arbitrary bytes to the decoder is total — it
    /// returns `Ok` or a typed error, and anything it accepts is a
    /// canonical encoding (re-encodes to the same bytes).
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        match Message::decode(&bytes) {
            Ok(msg) => prop_assert_eq!(msg.to_bytes(), bytes, "accepted a non-canonical frame"),
            Err(
                WireError::Truncated { .. }
                | WireError::BadTag(_)
                | WireError::TrailingBytes { .. }
                | WireError::FrameTooLarge { .. }
                | WireError::Empty
                | WireError::BadEnum { .. }
                | WireError::Invalid { .. }
                | WireError::Version { .. },
            ) => {}
        }
    }

    /// Fuzz with a valid prefix: random byte prefixes glued in front of
    /// (or spliced into) a valid message must not panic the decoder.
    #[test]
    fn prefixed_garbage_never_panics(
        msg in arb_message(),
        junk in prop::collection::vec(0u8..=255, 1..32),
    ) {
        let valid = msg.to_bytes();
        let mut spliced = junk.clone();
        spliced.extend_from_slice(&valid);
        let _ = Message::decode(&spliced);
        let mut appended = valid;
        appended.extend_from_slice(&junk);
        // Appending junk must be rejected (trailing bytes) — a framed
        // stream cannot silently swallow extra payload.
        prop_assert!(Message::decode(&appended).is_err());
    }

    /// Single-byte corruption anywhere in a frame is total: either a
    /// typed error or a decoded message (flips in value bytes are
    /// legitimate different values) — never a panic or runaway alloc.
    #[test]
    fn bit_flips_never_panic(msg in arb_message(), pos_seed in 0usize..4096, flip in 1u8..=255) {
        let mut bytes = msg.to_bytes();
        if bytes.is_empty() {
            return Ok(());
        }
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        let _ = Message::decode(&bytes);
    }

    /// `apply_delta(base, delta_coords(base, next)) == next` bit-exactly
    /// for arbitrary models — including ±0.0, ±inf, and subnormal
    /// coordinates — and the delta itself survives the wire unchanged.
    #[test]
    fn delta_encode_apply_is_the_identity(
        pairs in prop::collection::vec((arb_f64(), arb_f64()), 0..64),
    ) {
        let base: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let next: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let (indices, values) = delta_coords(&base, &next);
        let rebuilt = apply_delta(&base, &indices, &values).expect("delta from delta_coords is in bounds");
        prop_assert_eq!(rebuilt.len(), next.len());
        for (a, b) in rebuilt.iter().zip(&next) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let msg = Message::ModelDelta {
            node: 0,
            round: 0,
            dim: base.len() as u32,
            indices,
            values,
        };
        let back = Message::decode(&msg.to_bytes());
        prop_assert_eq!(back.as_ref(), Ok(&msg));
        if let Ok(Message::ModelDelta { values: v, .. }) = &back {
            if let Message::ModelDelta { values: w, .. } = &msg {
                for (x, y) in v.iter().zip(w) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    /// Varint boundary indices (0, 2^7, 2^14, and the widest encodable
    /// coordinate) gap-code through a ModelDelta frame and come back
    /// exactly, at any payload.
    #[test]
    fn varint_boundary_indices_roundtrip(values in prop::collection::vec(arb_f64(), 6..7)) {
        let indices = vec![0u32, 127, 128, 16_384, 1 << 20, u32::MAX - 1];
        let msg = Message::ModelDelta {
            node: 1,
            round: 2,
            dim: u32::MAX,
            indices,
            values,
        };
        let back = Message::decode(&msg.to_bytes());
        prop_assert_eq!(back.as_ref(), Ok(&msg));
    }
}
