//! The core↔cluster equivalence pin the ROADMAP asks for: both runtimes
//! drive the same `FeedbackProtocol`, `build_sampler` construction, and
//! `draw_rngs` streams, so a single-node cluster run and a sequential
//! engine run over the same master seed MUST walk identical sampler
//! weight trajectories — and therefore produce bit-identical models.
//!
//! This is deliberately an end-to-end bitwise assertion: any drift in
//! the observation convention (scaling, accumulation, commit timing),
//! seed derivation, shard layout, balancing, or the SGD update itself
//! shows up as a model mismatch. Before the protocol existed the two
//! runtimes hand-rolled feedback separately and could not be compared.

use isasgd_cluster::{run, ClusterConfig, SyncStrategy};
use isasgd_core::{
    train, Algorithm, BalancePolicy, CommitPolicy, Execution, ImportanceScheme, LogisticLoss,
    Objective, Regularizer, SamplingStrategy, TrainConfig,
};
use isasgd_sparse::{Dataset, DatasetBuilder};

/// Heavy-tailed norms so adaptivity has something to chew on.
fn skewed(n: usize) -> Dataset {
    let mut b = DatasetBuilder::new(8);
    for i in 0..n {
        let norm = if i % 10 == 0 { 6.0 } else { 0.3 };
        let j = (i % 4) as u32;
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
            .unwrap();
    }
    b.finish()
}

fn obj() -> Objective<LogisticLoss> {
    Objective::new(LogisticLoss, Regularizer::None)
}

fn run_both(strategy: SamplingStrategy, seed: u64, epochs: usize) -> (Vec<f64>, Vec<f64>) {
    run_both_with_commit(strategy, CommitPolicy::EpochBoundary, seed, epochs)
}

fn run_both_with_commit(
    strategy: SamplingStrategy,
    commit: CommitPolicy,
    seed: u64,
    epochs: usize,
) -> (Vec<f64>, Vec<f64>) {
    let ds = skewed(240);
    let scheme = ImportanceScheme::LipschitzSmoothness;
    let step = 0.3;

    let mut cfg = TrainConfig::default()
        .with_epochs(epochs)
        .with_step_size(step)
        .with_seed(seed);
    cfg.importance = scheme;
    cfg.sampling = Some(strategy);
    cfg.commit = commit;
    let algo = if strategy == SamplingStrategy::Uniform {
        Algorithm::Sgd
    } else {
        Algorithm::IsSgd
    };
    let engine = train(&ds, &obj(), algo, Execution::Sequential, &cfg, "equiv").unwrap();

    let ccfg = ClusterConfig {
        nodes: 1,
        rounds: epochs,
        local_epochs: 1,
        step_size: step,
        importance: if strategy == SamplingStrategy::Uniform {
            ImportanceScheme::Uniform
        } else {
            scheme
        },
        balance: BalancePolicy::default(),
        sync: SyncStrategy::Average,
        sampling: strategy,
        commit,
        seed,
        ..ClusterConfig::default()
    };
    let cluster = run(&ds, &obj(), &ccfg).unwrap();
    (engine.model, cluster.model)
}

#[test]
fn adaptive_single_node_cluster_is_bit_equal_to_sequential_engine() {
    // The headline pin: identical adaptive weight trajectories through
    // the shared FeedbackProtocol ⇒ identical draws ⇒ identical models.
    for seed in [7u64, 0x15A5_6D00, 42] {
        let (engine, cluster) = run_both(SamplingStrategy::Adaptive, seed, 5);
        assert_eq!(
            engine, cluster,
            "seed {seed}: adaptive engine and cluster runtimes diverged"
        );
        assert!(engine.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn streamed_every_k_single_node_cluster_is_bit_equal_to_sequential_engine() {
    // The streamed-path extension of the pin: under intra-epoch commits
    // both runtimes draw one sample at a time from the live distribution
    // and observe immediately, so the mid-epoch re-weights — and with
    // them every subsequent draw — must coincide exactly.
    for seed in [3u64, 0x15A5_6D00] {
        let (engine, cluster) = run_both_with_commit(
            SamplingStrategy::Adaptive,
            CommitPolicy::EveryK(16),
            seed,
            5,
        );
        assert_eq!(
            engine, cluster,
            "seed {seed}: streamed engine and cluster runtimes diverged"
        );
        assert!(engine.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn static_single_node_cluster_is_bit_equal_to_sequential_engine() {
    // The frozen-distribution path shares sequence construction and
    // seeds; it must agree too (no feedback involved).
    let (engine, cluster) = run_both(SamplingStrategy::Static, 11, 4);
    assert_eq!(engine, cluster, "static engine and cluster runs diverged");
}

#[test]
fn equivalence_is_seed_sensitive() {
    // Sanity guard that the test has teeth: different master seeds give
    // different trajectories, so the equality above is not vacuous.
    let (a, _) = run_both(SamplingStrategy::Adaptive, 1, 4);
    let (b, _) = run_both(SamplingStrategy::Adaptive, 2, 4);
    assert_ne!(a, b);
}
