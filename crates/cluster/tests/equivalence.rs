//! The equivalence pins of the distributed runtime.
//!
//! Two layers of guarantee, both asserted bitwise:
//!
//! 1. **Core↔cluster** (the ROADMAP's original pin): both runtimes
//!    drive the same `FeedbackProtocol`, `build_sampler` construction,
//!    and `draw_rngs` streams, so a single-node cluster run and a
//!    sequential engine run over the same master seed MUST walk
//!    identical sampler weight trajectories — and therefore produce
//!    bit-identical models.
//! 2. **Transport equivalence** (the PR-4 pin): the round protocol is
//!    pure message passing, so `InProcess` channels and real `Tcp`
//!    loopback sockets MUST produce bit-identical models and
//!    `RoundPoint` traces. The 3-way matrix below sweeps
//!    {Average, WeightedByShard} × {Static, Adaptive} ×
//!    {EpochBoundary, EveryK} over both single-node (where the
//!    sequential engine is the third leg) and multi-node topologies.
//!
//! Any drift in the observation convention (scaling, accumulation,
//! commit timing), seed derivation, shard layout, balancing, the wire
//! codec's f64 handling, or the SGD update itself shows up as a model
//! mismatch here.

use isasgd_cluster::{run, ClusterConfig, ClusterRun, SyncStrategy, TransportConfig, WireEncoding};
use isasgd_core::{
    train, Algorithm, BalancePolicy, CommitPolicy, Execution, ImportanceScheme, LogisticLoss,
    Objective, Regularizer, SamplingStrategy, TrainConfig,
};
use isasgd_sparse::{Dataset, DatasetBuilder};

/// Heavy-tailed norms so adaptivity has something to chew on.
fn skewed(n: usize) -> Dataset {
    let mut b = DatasetBuilder::new(8);
    for i in 0..n {
        let norm = if i % 10 == 0 { 6.0 } else { 0.3 };
        let j = (i % 4) as u32;
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
            .unwrap();
    }
    b.finish()
}

fn obj() -> Objective<LogisticLoss> {
    Objective::new(LogisticLoss, Regularizer::None)
}

fn cluster_cfg(
    nodes: usize,
    strategy: SamplingStrategy,
    sync: SyncStrategy,
    commit: CommitPolicy,
    transport: TransportConfig,
    seed: u64,
    rounds: usize,
) -> ClusterConfig {
    ClusterConfig {
        nodes,
        rounds,
        local_epochs: 1,
        step_size: 0.3,
        importance: if strategy == SamplingStrategy::Uniform {
            ImportanceScheme::Uniform
        } else {
            ImportanceScheme::LipschitzSmoothness
        },
        balance: BalancePolicy::default(),
        sync,
        sampling: strategy,
        commit,
        transport,
        seed,
        ..ClusterConfig::default()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cluster(
    ds: &Dataset,
    nodes: usize,
    strategy: SamplingStrategy,
    sync: SyncStrategy,
    commit: CommitPolicy,
    transport: TransportConfig,
    seed: u64,
    rounds: usize,
) -> ClusterRun {
    let cfg = cluster_cfg(nodes, strategy, sync, commit, transport, seed, rounds);
    run(ds, &obj(), &cfg).unwrap()
}

fn run_engine(
    ds: &Dataset,
    strategy: SamplingStrategy,
    commit: CommitPolicy,
    seed: u64,
    epochs: usize,
) -> Vec<f64> {
    let mut cfg = TrainConfig::default()
        .with_epochs(epochs)
        .with_step_size(0.3)
        .with_seed(seed);
    cfg.importance = ImportanceScheme::LipschitzSmoothness;
    cfg.sampling = Some(strategy);
    cfg.commit = commit;
    let algo = if strategy == SamplingStrategy::Uniform {
        Algorithm::Sgd
    } else {
        Algorithm::IsSgd
    };
    train(ds, &obj(), algo, Execution::Sequential, &cfg, "equiv")
        .unwrap()
        .model
}

/// The valid cells of {Static, Adaptive} × {EpochBoundary, EveryK}
/// (intra-epoch commits require an adaptive sampler).
fn sampling_commit_cells() -> Vec<(SamplingStrategy, CommitPolicy)> {
    vec![
        (SamplingStrategy::Static, CommitPolicy::EpochBoundary),
        (SamplingStrategy::Adaptive, CommitPolicy::EpochBoundary),
        (SamplingStrategy::Adaptive, CommitPolicy::EveryK(16)),
    ]
}

/// The headline 3-way matrix:
/// `Tcp` loopback ≡ `InProcess` ≡ (single-node) the sequential engine,
/// across {Average, WeightedByShard} × {Static, Adaptive} ×
/// {EpochBoundary, EveryK}, bit-equal models and RoundPoint traces.
#[test]
fn three_way_matrix_tcp_inproc_engine() {
    let ds = skewed(240);
    let seed = 0x15A5_6D00;
    let rounds = 4;
    for sync in [SyncStrategy::Average, SyncStrategy::WeightedByShard] {
        for (strategy, commit) in sampling_commit_cells() {
            let tag = format!("{sync:?}/{strategy:?}/{commit:?}");

            // Single node: engine is the third leg of the equivalence.
            let inproc1 = run_cluster(
                &ds,
                1,
                strategy,
                sync,
                commit,
                TransportConfig::InProcess,
                seed,
                rounds,
            );
            let tcp1 = run_cluster(
                &ds,
                1,
                strategy,
                sync,
                commit,
                TransportConfig::tcp(),
                seed,
                rounds,
            );
            let engine = run_engine(&ds, strategy, commit, seed, rounds);
            assert_eq!(inproc1.model, tcp1.model, "{tag}: 1-node tcp ≠ inproc");
            assert_eq!(inproc1.rounds, tcp1.rounds, "{tag}: 1-node traces differ");
            assert_eq!(
                inproc1.model, engine,
                "{tag}: 1-node cluster ≠ sequential engine"
            );

            // Multi node: transports must agree on everything observable.
            let inproc3 = run_cluster(
                &ds,
                3,
                strategy,
                sync,
                commit,
                TransportConfig::InProcess,
                seed,
                rounds,
            );
            let tcp3 = run_cluster(
                &ds,
                3,
                strategy,
                sync,
                commit,
                TransportConfig::tcp(),
                seed,
                rounds,
            );
            assert_eq!(inproc3.model, tcp3.model, "{tag}: 3-node tcp ≠ inproc");
            assert_eq!(inproc3.rounds, tcp3.rounds, "{tag}: 3-node traces differ");
            assert_eq!(
                inproc3.feedback_rows, tcp3.feedback_rows,
                "{tag}: mirror traffic differs"
            );
            assert_eq!(
                inproc3.observed_phi_imbalance, tcp3.observed_phi_imbalance,
                "{tag}: mirror state differs"
            );
            assert!(inproc3.model.iter().all(|x| x.is_finite()), "{tag}");

            // And the two sync strategies must genuinely differ from a
            // degenerate run: models move off the origin.
            assert!(
                inproc3.model.iter().any(|&x| x != 0.0),
                "{tag}: no training"
            );
        }
    }
}

/// The wire-encoding leg of the matrix: sparse delta frames and the
/// auto-selected mix are a pure re-encoding of the same model bits, so
/// a TCP run under every [`WireEncoding`] MUST be bit-identical to the
/// in-process run — models, traces, and feedback-mirror state alike.
/// Any arithmetic (rather than bitwise) step in delta encode/apply, or
/// any tx/rx base desynchronization, breaks this immediately.
#[test]
fn tcp_matrix_is_encoding_invariant() {
    let ds = skewed(240);
    let seed = 0x15A5_6D00;
    let rounds = 4;
    for (strategy, commit) in sampling_commit_cells() {
        let baseline = run_cluster(
            &ds,
            3,
            strategy,
            SyncStrategy::WeightedByShard,
            commit,
            TransportConfig::InProcess,
            seed,
            rounds,
        );
        for encoding in [WireEncoding::Dense, WireEncoding::Delta, WireEncoding::Auto] {
            let tag = format!("{strategy:?}/{commit:?}/{encoding:?}");
            let tcp = run_cluster(
                &ds,
                3,
                strategy,
                SyncStrategy::WeightedByShard,
                commit,
                TransportConfig::Tcp {
                    bind: "127.0.0.1:0".into(),
                    encoding,
                },
                seed,
                rounds,
            );
            assert_eq!(baseline.model, tcp.model, "{tag}: model ≠ inproc");
            assert_eq!(baseline.rounds, tcp.rounds, "{tag}: traces differ");
            assert_eq!(
                baseline.feedback_rows, tcp.feedback_rows,
                "{tag}: mirror traffic differs"
            );
            assert_eq!(
                baseline.observed_phi_imbalance, tcp.observed_phi_imbalance,
                "{tag}: mirror state differs"
            );
            // The counters must attest the encoding actually engaged:
            // round-model traffic flows as ModelUpdate frames under
            // Dense and (after the first exchange) as ModelDelta under
            // Delta.
            let stats = &tcp.net;
            assert_eq!(stats.len(), 3, "{tag}: one LinkStats per link");
            let tx_delta: u64 = stats
                .iter()
                .map(|s| s.tx_bytes_for(isasgd_cluster::FrameKind::ModelDelta))
                .sum();
            match encoding {
                WireEncoding::Dense => {
                    assert_eq!(tx_delta, 0, "{tag}: dense run sent delta frames");
                }
                WireEncoding::Delta => {
                    assert!(tx_delta > 0, "{tag}: delta run never sent a delta frame");
                }
                WireEncoding::Auto => {} // workload-dependent either way
            }
        }
    }
}

/// The headline bandwidth claim, pinned on real traffic rather than on
/// synthetic frames: a sparse workload (the model only ever moves on
/// nnz ≪ dim/10 coordinates) under `--wire-encoding auto` must move at
/// least 4× fewer round-model bytes than the dense encoding — while
/// producing the bit-identical model.
#[test]
fn auto_encoding_cuts_round_model_bytes_at_least_4x_on_sparse_workloads() {
    // Feature space of 4096, but every row touches only coordinates
    // 0..8 — so each round's model delta has nnz ≤ 8 ≪ dim/10.
    let dim = 4096;
    let mut b = DatasetBuilder::new(dim);
    for i in 0..240 {
        let norm = if i % 10 == 0 { 6.0 } else { 0.3 };
        let j = (i % 4) as u32;
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
            .unwrap();
    }
    let ds = b.finish();
    let round_model_bytes = |run: &ClusterRun| -> u64 {
        run.net
            .iter()
            .map(|s| {
                s.tx_bytes_for(isasgd_cluster::FrameKind::ModelUpdate)
                    + s.tx_bytes_for(isasgd_cluster::FrameKind::ModelDelta)
                    + s.rx_bytes_for(isasgd_cluster::FrameKind::ModelUpdate)
                    + s.rx_bytes_for(isasgd_cluster::FrameKind::ModelDelta)
            })
            .sum()
    };
    let mut runs = [WireEncoding::Dense, WireEncoding::Auto].map(|encoding| {
        run_cluster(
            &ds,
            2,
            SamplingStrategy::Static,
            SyncStrategy::Average,
            CommitPolicy::EpochBoundary,
            TransportConfig::Tcp {
                bind: "127.0.0.1:0".into(),
                encoding,
            },
            0x15A5_6D00,
            8,
        )
    });
    let [dense, auto] = &mut runs;
    assert_eq!(dense.model, auto.model, "encodings changed the model");
    assert_eq!(dense.rounds, auto.rounds, "encodings changed the trace");
    let (dense_bytes, auto_bytes) = (round_model_bytes(dense), round_model_bytes(auto));
    assert!(
        dense_bytes >= 4 * auto_bytes,
        "sparse workload: auto encoding moved {auto_bytes} round-model bytes \
         vs {dense_bytes} dense — less than the pinned 4× reduction"
    );
}

/// A bigger TCP soak (more nodes, more rounds, adaptive every-k) —
/// `#[ignore]`d by default; CI opts in with `--include-ignored` on the
/// release-mode cluster job so socket timing gets exercised both ways.
#[test]
#[ignore = "slow socket soak; run with --include-ignored (CI release job does)"]
fn tcp_soak_many_nodes_matches_inproc() {
    let ds = skewed(960);
    for seed in [1u64, 0xDEAD_BEEF] {
        let inproc = run_cluster(
            &ds,
            8,
            SamplingStrategy::Adaptive,
            SyncStrategy::WeightedByShard,
            CommitPolicy::EveryK(32),
            TransportConfig::InProcess,
            seed,
            8,
        );
        let tcp = run_cluster(
            &ds,
            8,
            SamplingStrategy::Adaptive,
            SyncStrategy::WeightedByShard,
            CommitPolicy::EveryK(32),
            TransportConfig::tcp(),
            seed,
            8,
        );
        assert_eq!(inproc.model, tcp.model, "seed {seed}");
        assert_eq!(inproc.rounds, tcp.rounds, "seed {seed}");
    }
}

#[test]
fn adaptive_single_node_cluster_is_bit_equal_to_sequential_engine() {
    // The original headline pin: identical adaptive weight trajectories
    // through the shared FeedbackProtocol ⇒ identical draws ⇒ identical
    // models.
    let ds = skewed(240);
    for seed in [7u64, 0x15A5_6D00, 42] {
        let engine = run_engine(
            &ds,
            SamplingStrategy::Adaptive,
            CommitPolicy::EpochBoundary,
            seed,
            5,
        );
        let cluster = run_cluster(
            &ds,
            1,
            SamplingStrategy::Adaptive,
            SyncStrategy::Average,
            CommitPolicy::EpochBoundary,
            TransportConfig::InProcess,
            seed,
            5,
        );
        assert_eq!(
            engine, cluster.model,
            "seed {seed}: adaptive engine and cluster runtimes diverged"
        );
        assert!(engine.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn streamed_every_k_single_node_cluster_is_bit_equal_to_sequential_engine() {
    // The streamed-path extension of the pin: under intra-epoch commits
    // both runtimes draw one sample at a time from the live distribution
    // and observe immediately, so the mid-epoch re-weights — and with
    // them every subsequent draw — must coincide exactly.
    let ds = skewed(240);
    for seed in [3u64, 0x15A5_6D00] {
        let engine = run_engine(
            &ds,
            SamplingStrategy::Adaptive,
            CommitPolicy::EveryK(16),
            seed,
            5,
        );
        let cluster = run_cluster(
            &ds,
            1,
            SamplingStrategy::Adaptive,
            SyncStrategy::Average,
            CommitPolicy::EveryK(16),
            TransportConfig::InProcess,
            seed,
            5,
        );
        assert_eq!(
            engine, cluster.model,
            "seed {seed}: streamed engine and cluster runtimes diverged"
        );
        assert!(engine.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn static_single_node_cluster_is_bit_equal_to_sequential_engine() {
    // The frozen-distribution path shares sequence construction and
    // seeds; it must agree too (no feedback involved).
    let ds = skewed(240);
    let engine = run_engine(
        &ds,
        SamplingStrategy::Static,
        CommitPolicy::EpochBoundary,
        11,
        4,
    );
    let cluster = run_cluster(
        &ds,
        1,
        SamplingStrategy::Static,
        SyncStrategy::Average,
        CommitPolicy::EpochBoundary,
        TransportConfig::InProcess,
        11,
        4,
    );
    assert_eq!(
        engine, cluster.model,
        "static engine and cluster runs diverged"
    );
}

#[test]
fn shared_view_fast_path_is_bit_equal_to_copying_path() {
    // `run()` with InProcess transport shares one reconstructed
    // dataset + weight vector behind an Arc (the ROADMAP perf item);
    // `run_with_links()` keeps the remote-faithful semantics where
    // every NodeRuntime rebuilds its own copy from ShardRebalance.
    // The reconstruction is deterministic, so the two paths MUST be
    // bit-equal in everything observable.
    use isasgd_cluster::{in_process_links, run_with_links};
    let ds = skewed(300);
    for (strategy, commit) in sampling_commit_cells() {
        for nodes in [1usize, 3] {
            let cfg = cluster_cfg(
                nodes,
                strategy,
                SyncStrategy::Average,
                commit,
                TransportConfig::InProcess,
                0xA5C_F00D,
                4,
            );
            let shared = run(&ds, &obj(), &cfg).unwrap();
            let copying = run_with_links(&ds, &obj(), &cfg, in_process_links(nodes)).unwrap();
            let tag = format!("{strategy:?}/{commit:?}/{nodes}-node");
            assert_eq!(shared.model, copying.model, "{tag}: models diverged");
            assert_eq!(shared.rounds, copying.rounds, "{tag}: traces diverged");
            assert_eq!(shared.feedback_rows, copying.feedback_rows, "{tag}");
            assert_eq!(
                shared.observed_phi_imbalance, copying.observed_phi_imbalance,
                "{tag}"
            );
            assert_eq!(shared.phi_imbalance, copying.phi_imbalance, "{tag}");
        }
    }
}

#[test]
fn equivalence_is_seed_sensitive() {
    // Sanity guard that the matrix has teeth: different master seeds
    // give different trajectories, so the equalities above are not
    // vacuous.
    let ds = skewed(240);
    let a = run_engine(
        &ds,
        SamplingStrategy::Adaptive,
        CommitPolicy::EpochBoundary,
        1,
        4,
    );
    let b = run_engine(
        &ds,
        SamplingStrategy::Adaptive,
        CommitPolicy::EpochBoundary,
        2,
        4,
    );
    assert_ne!(a, b);
}

/// The PR-10 inertness pin: arming per-round worker telemetry must
/// not perturb a single bit of the training results, under any wire
/// encoding. Telemetry frames ride the same links as model traffic,
/// so this leg is what lets `--trace-out` be switched on in
/// production without invalidating reproducibility claims. Plain
/// transports drop `Telemetry` frames exactly as they drop
/// `Checkpoint` — only the process-fleet supervisor collects them —
/// so `ClusterRun::telemetry` must stay empty here.
#[test]
fn telemetry_is_bit_inert_across_encodings() {
    let ds = skewed(240);
    let seed = 0x0B5E_55ED;
    let rounds = 4;
    for encoding in [WireEncoding::Dense, WireEncoding::Delta, WireEncoding::Auto] {
        let run_with = |telemetry: bool| {
            let mut cfg = cluster_cfg(
                3,
                SamplingStrategy::Adaptive,
                SyncStrategy::WeightedByShard,
                CommitPolicy::EveryK(16),
                TransportConfig::Tcp {
                    bind: "127.0.0.1:0".into(),
                    encoding,
                },
                seed,
                rounds,
            );
            cfg.telemetry = telemetry;
            run(&ds, &obj(), &cfg).unwrap()
        };
        let off = run_with(false);
        let on = run_with(true);
        let tag = format!("{encoding:?}");
        assert_eq!(off.model, on.model, "{tag}: telemetry perturbed the model");
        assert_eq!(
            off.rounds, on.rounds,
            "{tag}: telemetry perturbed the trace"
        );
        assert_eq!(
            off.feedback_rows, on.feedback_rows,
            "{tag}: telemetry perturbed mirror traffic"
        );
        assert_eq!(
            off.observed_phi_imbalance, on.observed_phi_imbalance,
            "{tag}: telemetry perturbed mirror state"
        );
        assert!(
            off.telemetry.is_empty() && on.telemetry.is_empty(),
            "{tag}: plain transports must drop Telemetry frames, not surface them"
        );
    }
}
