//! Fault injection on the cluster protocol: the round loop must
//! converge — and produce the *same* result — when the transport
//! deterministically delays (reorders) and duplicates messages.
//!
//! Why this is supposed to hold:
//! * Round barriers and consensus models are awaited by round tag, in
//!   either order, with stale tags dropped — so duplication and
//!   burst-level reordering cannot desynchronize a round.
//! * `FeedbackBatch` deliveries are idempotent: the batch carries
//!   per-row *max* observations and the coordinator's mirror
//!   accumulates per-row max within a round window (the PR-2 semantics)
//!   — applying a batch twice is a no-op. That is pinned here by
//!   bitwise equality of the mirror's final state (and every other
//!   observable) between a clean run and a flaky run that demonstrably
//!   duplicated feedback traffic.
//!
//! Runs are driven through `run_with_links` with every endpoint wrapped
//! in a seeded `FlakyTransport`, and guarded by a watchdog so a
//! protocol regression fails the test instead of hanging the suite.

use isasgd_cluster::{
    in_process_links, run_with_links, ClusterConfig, ClusterError, ClusterRun, FlakyTransport,
    InProcess, SyncStrategy, Transport, TransportConfig,
};
use isasgd_core::{
    CommitPolicy, ImportanceScheme, LogisticLoss, Objective, Regularizer, SamplingStrategy,
};
use isasgd_sparse::{Dataset, DatasetBuilder};
use std::sync::mpsc::channel;
use std::time::Duration;

fn skewed(n: usize) -> Dataset {
    let mut b = DatasetBuilder::new(8);
    for i in 0..n {
        let norm = if i % 7 == 0 { 5.0 } else { 0.4 };
        let j = (i % 4) as u32;
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
            .unwrap();
    }
    b.finish()
}

fn obj() -> Objective<LogisticLoss> {
    Objective::new(LogisticLoss, Regularizer::None)
}

fn adaptive_cfg(nodes: usize, commit: CommitPolicy) -> ClusterConfig {
    ClusterConfig {
        nodes,
        rounds: 4,
        local_epochs: 1,
        step_size: 0.3,
        importance: ImportanceScheme::LipschitzSmoothness,
        sampling: SamplingStrategy::Adaptive,
        commit,
        transport: TransportConfig::InProcess,
        seed: 0x15A5_6D00,
        ..ClusterConfig::default()
    }
}

/// Wraps every link endpoint (coordinator AND worker side) in a seeded
/// `FlakyTransport`, each with its own fault schedule.
fn flaky_links(
    nodes: usize,
    fault_seed: u64,
    dup: u64,
    delay: u64,
) -> Vec<(FlakyTransport<InProcess>, FlakyTransport<InProcess>)> {
    in_process_links(nodes)
        .into_iter()
        .enumerate()
        .map(|(k, (c, w))| {
            (
                FlakyTransport::with_periods(c, fault_seed ^ (2 * k as u64 + 1), dup, delay),
                FlakyTransport::with_periods(w, fault_seed ^ (2 * k as u64 + 2), dup, delay),
            )
        })
        .collect()
}

/// Runs under a watchdog: a deadlocked protocol fails in 120 s instead
/// of hanging the whole suite forever.
fn run_guarded<T: Transport + 'static>(
    ds: Dataset,
    cfg: ClusterConfig,
    links: Vec<(T, T)>,
) -> Result<ClusterRun, ClusterError> {
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let r = run_with_links(&ds, &obj(), &cfg, links);
        let _ = tx.send(r);
    });
    rx.recv_timeout(Duration::from_secs(120))
        .expect("cluster run deadlocked under fault injection")
}

fn assert_same_run(clean: &ClusterRun, flaky: &ClusterRun, tag: &str) {
    assert_eq!(clean.model, flaky.model, "{tag}: models diverged");
    assert_eq!(
        clean.rounds, flaky.rounds,
        "{tag}: RoundPoint traces diverged"
    );
    assert_eq!(clean.syncs, flaky.syncs, "{tag}: round barriers lost");
    assert_eq!(
        clean.observed_phi_imbalance, flaky.observed_phi_imbalance,
        "{tag}: duplicated FeedbackBatches were not idempotent on the mirror"
    );
    assert_eq!(clean.phi_imbalance, flaky.phi_imbalance, "{tag}");
    assert_eq!(clean.balanced, flaky.balanced, "{tag}");
}

#[test]
fn delayed_and_duplicated_messages_converge_identically() {
    let ds = skewed(280);
    let cfg = adaptive_cfg(3, CommitPolicy::EpochBoundary);
    let clean = run_with_links(&ds, &obj(), &cfg, in_process_links(cfg.nodes)).unwrap();
    assert!(clean.feedback_rows > 0, "adaptive run must ship feedback");
    for fault_seed in [1u64, 9, 0xFA_117] {
        let flaky = run_guarded(
            ds.clone(),
            cfg.clone(),
            flaky_links(cfg.nodes, fault_seed, 3, 4),
        )
        .unwrap();
        assert_same_run(&clean, &flaky, &format!("fault seed {fault_seed}"));
        // The mirror counts applied entries including duplicates: at
        // least one duplicated FeedbackBatch means strictly more
        // entries than the clean run — proving both that the injection
        // actually fired and that the duplicates changed nothing above.
        assert!(
            flaky.feedback_rows >= clean.feedback_rows,
            "fault seed {fault_seed}: lost feedback entries ({} < {})",
            flaky.feedback_rows,
            clean.feedback_rows
        );
    }
}

#[test]
fn duplicated_feedback_batches_are_idempotent() {
    // Duplication-only faults (no delays), aggressive period: every
    // 2nd send doubled. With 3 nodes × 4 rounds each sending one
    // FeedbackBatch, duplicates are guaranteed across the seeds below;
    // the assertion proves at least one run duplicated feedback and the
    // mirror absorbed it (per-row max idempotence).
    let ds = skewed(280);
    let cfg = adaptive_cfg(3, CommitPolicy::EpochBoundary);
    let clean = run_with_links(&ds, &obj(), &cfg, in_process_links(cfg.nodes)).unwrap();
    let mut saw_duplicate = false;
    for fault_seed in [2u64, 5, 11] {
        let flaky = run_guarded(
            ds.clone(),
            cfg.clone(),
            flaky_links(cfg.nodes, fault_seed, 2, 0),
        )
        .unwrap();
        assert_same_run(&clean, &flaky, &format!("dup seed {fault_seed}"));
        saw_duplicate |= flaky.feedback_rows > clean.feedback_rows;
    }
    assert!(
        saw_duplicate,
        "no FeedbackBatch was ever duplicated — the fault injection is vacuous"
    );
}

#[test]
fn every_k_streams_survive_faults() {
    // Intra-epoch adaptivity is the most commit-timing-sensitive path;
    // transport faults must still not be able to touch it (feedback
    // steering is node-local, only the reporting rides the wire).
    let ds = skewed(280);
    let cfg = adaptive_cfg(3, CommitPolicy::EveryK(16));
    let clean = run_with_links(&ds, &obj(), &cfg, in_process_links(cfg.nodes)).unwrap();
    let flaky = run_guarded(ds, cfg.clone(), flaky_links(cfg.nodes, 77, 3, 4)).unwrap();
    assert_same_run(&clean, &flaky, "every-k");
}

#[test]
fn faults_on_weighted_sync_and_many_nodes() {
    let ds = skewed(420);
    let cfg = ClusterConfig {
        sync: SyncStrategy::WeightedByShard,
        rounds: 3,
        ..adaptive_cfg(5, CommitPolicy::EpochBoundary)
    };
    let clean = run_with_links(&ds, &obj(), &cfg, in_process_links(cfg.nodes)).unwrap();
    let flaky = run_guarded(ds, cfg.clone(), flaky_links(cfg.nodes, 31, 2, 3)).unwrap();
    assert_same_run(&clean, &flaky, "weighted/5-node");
}

#[test]
fn fault_injection_is_reproducible() {
    // Same fault seed ⇒ identical flaky run end to end (the injector is
    // part of the deterministic system, not a source of flake).
    let ds = skewed(280);
    let cfg = adaptive_cfg(3, CommitPolicy::EpochBoundary);
    let a = run_guarded(ds.clone(), cfg.clone(), flaky_links(cfg.nodes, 13, 3, 4)).unwrap();
    let b = run_guarded(ds, cfg.clone(), flaky_links(cfg.nodes, 13, 3, 4)).unwrap();
    assert_eq!(a.model, b.model);
    assert_eq!(a.feedback_rows, b.feedback_rows);
}

/// Faulty *sockets*: the same tolerance over real TCP loopback links.
/// `#[ignore]`d as a slow socket test; CI's release cluster job opts in.
#[test]
#[ignore = "slow socket test; run with --include-ignored (CI release job does)"]
fn tcp_links_survive_faults_too() {
    let ds = skewed(280);
    let cfg = ClusterConfig {
        transport: TransportConfig::tcp(),
        ..adaptive_cfg(3, CommitPolicy::EpochBoundary)
    };
    let clean = isasgd_cluster::run(&ds, &obj(), &cfg).unwrap();
    let links = isasgd_cluster::tcp_loopback_links(cfg.nodes, "127.0.0.1:0")
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(k, (c, w))| {
            (
                FlakyTransport::with_periods(c, 0x7C9 ^ (2 * k as u64 + 1), 3, 4),
                FlakyTransport::with_periods(w, 0x7C9 ^ (2 * k as u64 + 2), 3, 4),
            )
        })
        .collect();
    let flaky = run_guarded(ds, cfg.clone(), links).unwrap();
    assert_same_run(&clean, &flaky, "flaky tcp");
}
