//! Supervision tests for the cross-process fleet, run at the library
//! level through the [`WorkerSpawner`] seam: workers are **threads
//! running the real worker code over real TCP sockets** — the full
//! `Hello`/`Assign`/`DatasetTransfer` session layer, the wire codec,
//! and the round protocol are all exercised byte-for-byte; only the
//! `fork`/`exec` pair is skipped (the CLI e2e suite covers genuine
//! subprocesses with `CARGO_BIN_EXE_isasgd`).
//!
//! Pinned here:
//! * a fleet run is **bit-equal** to the in-process transport;
//! * killing a worker mid-round under `--on-worker-loss respawn`
//!   completes bit-identically to an undisturbed run (deterministic
//!   session replay);
//! * under `fail` the same kill produces a typed
//!   [`ClusterError::WorkerLost`] promptly — never a hang;
//! * handshake abuse (garbage bytes, wrong-version hello, silent and
//!   instantly-closed connections) is rejected with typed errors while
//!   the accept loop keeps admitting real workers — and a *continuous*
//!   junk flood cannot starve the handshake deadline;
//! * with `--checkpoint-every`, respawn recovery replays only the
//!   post-checkpoint suffix: still bit-identical to an undisturbed run
//!   at every kill round and under every wire encoding, with the
//!   replay log and recovered bytes bounded by one checkpoint interval
//!   (measured from the supervisor's own counters, independent of
//!   session length).

use isasgd_cluster::{
    run, run_fleet_with, run_worker, ClusterConfig, ClusterError, ClusterRun, FrameKind, Message,
    ProcessConfig, SyncStrategy, TransportConfig, WireEncoding, WorkerHandle, WorkerLossPolicy,
    WorkerOptions, WorkerSpawner, PROTOCOL_VERSION,
};
use isasgd_core::{
    train, Algorithm, CommitPolicy, Execution, ImportanceScheme, LogisticLoss, Objective,
    Regularizer, SamplingStrategy, TrainConfig,
};
use isasgd_sparse::{Dataset, DatasetBuilder};
use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc::channel;
use std::time::Duration;

fn skewed(n: usize) -> Dataset {
    let mut b = DatasetBuilder::new(8);
    for i in 0..n {
        let norm = if i % 10 == 0 { 6.0 } else { 0.3 };
        let j = (i % 4) as u32;
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
            .unwrap();
    }
    b.finish()
}

fn obj() -> Objective<LogisticLoss> {
    Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-5 })
}

fn adaptive_cfg(nodes: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        rounds: 4,
        local_epochs: 1,
        step_size: 0.3,
        importance: ImportanceScheme::LipschitzSmoothness,
        sampling: SamplingStrategy::Adaptive,
        commit: CommitPolicy::EveryK(16),
        seed: 0x15A5_6D00,
        ..ClusterConfig::default()
    }
}

/// A "process" that is a thread running the genuine worker session
/// code ([`run_worker`]) against the fleet's listener.
struct ThreadWorker(Option<std::thread::JoinHandle<()>>);

impl WorkerHandle for ThreadWorker {}

impl Drop for ThreadWorker {
    fn drop(&mut self) {
        // The socket is closed before handles drop, so a blocked
        // worker errors out and the join is prompt.
        if let Some(h) = self.0.take() {
            let _ = h.join();
        }
    }
}

/// Spawns protocol-faithful thread workers; `die_at` arms the chaos
/// hook on the *initial* spawn of the matching node, exactly like the
/// production spawner forwards `--die-at-round`.
struct ThreadSpawner {
    die_at: Option<(u32, u64)>,
}

impl WorkerSpawner for ThreadSpawner {
    fn spawn(
        &mut self,
        node: u32,
        addr: &str,
        respawn: bool,
    ) -> Result<Box<dyn WorkerHandle>, ClusterError> {
        let die_at_round = match self.die_at {
            Some((victim, round)) if victim == node && !respawn => Some(round),
            _ => None,
        };
        let addr = addr.to_string();
        let handle = std::thread::spawn(move || {
            let opts = WorkerOptions {
                die_at_round,
                ..WorkerOptions::default()
            };
            // A chaos-killed worker returns an error by design; any
            // other failure is surfaced by the coordinator side.
            let _ = run_worker(&addr, &opts);
        });
        Ok(Box::new(ThreadWorker(Some(handle))))
    }
}

fn fleet_pc() -> ProcessConfig {
    ProcessConfig {
        handshake_timeout_ms: 30_000,
        round_timeout_ms: 60_000,
        ..ProcessConfig::default()
    }
}

/// Watchdog wrapper: a supervision regression fails in 120 s instead of
/// hanging the suite.
fn run_fleet_guarded(
    ds: Dataset,
    cfg: ClusterConfig,
    pc: ProcessConfig,
    spawner: ThreadSpawner,
) -> Result<ClusterRun, ClusterError> {
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let r = run_fleet_with(&ds, &obj(), &cfg, &pc, spawner);
        let _ = tx.send(r);
    });
    rx.recv_timeout(Duration::from_secs(120))
        .expect("fleet run hung")
}

/// The 4-way acceptance matrix at the library level: a fleet run
/// (process session layer over real sockets) must be bit-equal to the
/// `tcp` and `inproc` transports across
/// {Average, WeightedByShard} × {Static, Adaptive}. The fourth leg —
/// the sequential engine — is pinned by the single-node test below.
#[test]
fn fleet_matrix_is_bit_equal_to_tcp_and_inproc() {
    let ds = skewed(240);
    for sync in [SyncStrategy::Average, SyncStrategy::WeightedByShard] {
        for sampling in [SamplingStrategy::Static, SamplingStrategy::Adaptive] {
            let commit = if sampling == SamplingStrategy::Adaptive {
                CommitPolicy::EveryK(16)
            } else {
                CommitPolicy::EpochBoundary
            };
            let cfg = ClusterConfig {
                sync,
                sampling,
                commit,
                ..adaptive_cfg(3)
            };
            let tag = format!("{sync:?}/{sampling:?}");
            let inproc = run(&ds, &obj(), &cfg).unwrap();
            let tcp = run(
                &ds,
                &obj(),
                &ClusterConfig {
                    transport: TransportConfig::tcp(),
                    ..cfg.clone()
                },
            )
            .unwrap();
            let fleet =
                run_fleet_guarded(ds.clone(), cfg, fleet_pc(), ThreadSpawner { die_at: None })
                    .unwrap();
            assert_eq!(fleet.model, inproc.model, "{tag}: fleet ≠ inproc model");
            assert_eq!(fleet.model, tcp.model, "{tag}: fleet ≠ tcp model");
            assert_eq!(fleet.rounds, inproc.rounds, "{tag}: fleet ≠ inproc trace");
            assert_eq!(fleet.rounds, tcp.rounds, "{tag}: fleet ≠ tcp trace");
            assert_eq!(fleet.feedback_rows, inproc.feedback_rows, "{tag}");
            assert_eq!(
                fleet.observed_phi_imbalance, inproc.observed_phi_imbalance,
                "{tag}"
            );
        }
    }
}

#[test]
fn single_node_fleet_is_bit_equal_to_sequential_engine() {
    // The engine leg of the 4-way pin: one process worker over the full
    // session layer walks the exact trajectory of the in-process
    // sequential engine.
    let ds = skewed(240);
    for (sampling, commit) in [
        (SamplingStrategy::Static, CommitPolicy::EpochBoundary),
        (SamplingStrategy::Adaptive, CommitPolicy::EpochBoundary),
        (SamplingStrategy::Adaptive, CommitPolicy::EveryK(16)),
    ] {
        let cfg = ClusterConfig {
            sampling,
            commit,
            ..adaptive_cfg(1)
        };
        let mut tc = TrainConfig::default()
            .with_epochs(cfg.rounds)
            .with_step_size(cfg.step_size)
            .with_seed(cfg.seed);
        tc.importance = cfg.importance;
        tc.sampling = Some(sampling);
        tc.commit = commit;
        let engine = train(
            &ds,
            &obj(),
            Algorithm::IsSgd,
            Execution::Sequential,
            &tc,
            "fleet-equiv",
        )
        .unwrap();
        let fleet =
            run_fleet_guarded(ds.clone(), cfg, fleet_pc(), ThreadSpawner { die_at: None }).unwrap();
        assert_eq!(
            fleet.model, engine.model,
            "{sampling:?}/{commit:?}: process worker ≠ sequential engine"
        );
    }
}

#[test]
fn killed_worker_with_respawn_completes_bit_identically() {
    let ds = skewed(240);
    let cfg = adaptive_cfg(3);
    let clean = run(&ds, &obj(), &cfg).unwrap();
    for (victim, round) in [(1u32, 2u64), (0, 1), (2, 4)] {
        let pc = ProcessConfig {
            on_loss: WorkerLossPolicy::Respawn,
            ..fleet_pc()
        };
        let chaotic = run_fleet_guarded(
            ds.clone(),
            cfg.clone(),
            pc,
            ThreadSpawner {
                die_at: Some((victim, round)),
            },
        )
        .unwrap_or_else(|e| panic!("kill {victim}@{round}: respawn run failed: {e}"));
        assert_eq!(
            chaotic.model, clean.model,
            "kill {victim}@{round}: replayed run diverged from the undisturbed model"
        );
        assert_eq!(
            chaotic.rounds, clean.rounds,
            "kill {victim}@{round}: round traces diverged"
        );
    }
}

/// The bandwidth half of the shard-streaming pin: every admitted worker
/// of a 3-node fleet receives strictly fewer dataset bytes than one
/// monolithic [`Message::DatasetTransfer`] of the whole training set
/// would have cost — measured by the supervisor's own per-link,
/// per-frame-kind counters, not by construction.
#[test]
fn fleet_workers_receive_strictly_fewer_dataset_bytes_than_a_full_transfer() {
    let ds = skewed(240);
    let cfg = adaptive_cfg(3);
    let fleet =
        run_fleet_guarded(ds.clone(), cfg, fleet_pc(), ThreadSpawner { die_at: None }).unwrap();
    // What the v1 handshake would have shipped to EVERY worker: one
    // whole-dataset frame (payload + 4-byte length prefix).
    let full = Message::DatasetTransfer {
        dataset: Box::new(ds.clone()),
    }
    .to_bytes()
    .len() as u64
        + 4;
    assert_eq!(fleet.net.len(), 3, "one LinkStats per supervised link");
    let mut total = 0u64;
    for (k, stats) in fleet.net.iter().enumerate() {
        let shard_tx = stats.tx_bytes_for(FrameKind::DatasetShard);
        assert!(shard_tx > 0, "worker {k} was never streamed its shard");
        assert!(
            shard_tx < full,
            "worker {k} received {shard_tx} shard bytes — not fewer than the \
             {full}-byte monolithic transfer it replaces"
        );
        assert_eq!(
            stats.tx_bytes_for(FrameKind::DatasetTransfer),
            0,
            "worker {k} also received a monolithic transfer"
        );
        total += shard_tx;
    }
    // Aggregate honesty: 3 disjoint shard streams must also undercut
    // the old cost of 3 full copies by roughly the sharding factor.
    assert!(
        total * 2 < full * 3,
        "shard streaming saved less than half of 3 full transfers \
         ({total} vs {})",
        full * 3
    );
}

/// Respawn replay over sparse frames: a worker killed mid-run under the
/// delta (and auto) wire encodings must recover bit-identically. The
/// fresh link's empty delta bases have to line up with the readmitted
/// worker's — the cached handshake frames are always dense, and both
/// ends only install a base after a successful round exchange.
#[test]
fn killed_worker_with_respawn_is_bit_identical_under_delta_encodings() {
    let ds = skewed(240);
    let cfg = adaptive_cfg(3);
    let clean = run(&ds, &obj(), &cfg).unwrap();
    for encoding in [WireEncoding::Delta, WireEncoding::Auto] {
        let pc = ProcessConfig {
            on_loss: WorkerLossPolicy::Respawn,
            encoding,
            ..fleet_pc()
        };
        let chaotic = run_fleet_guarded(
            ds.clone(),
            cfg.clone(),
            pc,
            ThreadSpawner {
                die_at: Some((1, 2)),
            },
        )
        .unwrap_or_else(|e| panic!("{encoding:?}: respawn run failed: {e}"));
        assert_eq!(
            chaotic.model, clean.model,
            "{encoding:?}: delta-encoded replay diverged from the undisturbed model"
        );
        assert_eq!(
            chaotic.rounds, clean.rounds,
            "{encoding:?}: round traces diverged"
        );
    }
}

/// The tentpole acceptance matrix: a 12-round session checkpointing
/// every 4 rounds, chaos-killed at **every** round, under every wire
/// encoding — each recovery installs the stored checkpoint and replays
/// only the suffix, and the final model and round trace are
/// bit-identical to a never-killed, never-checkpointed in-process run
/// (checkpointing itself must also be invisible to the computation).
#[test]
fn checkpointed_kill_at_every_round_is_bit_identical_across_encodings() {
    let ds = skewed(120);
    let cfg = ClusterConfig {
        rounds: 12,
        ..adaptive_cfg(2)
    };
    let clean = run(&ds, &obj(), &cfg).unwrap();
    for encoding in [WireEncoding::Dense, WireEncoding::Delta, WireEncoding::Auto] {
        for round in 1..=12u64 {
            let victim = (round % 2) as u32;
            let pc = ProcessConfig {
                on_loss: WorkerLossPolicy::Respawn,
                encoding,
                checkpoint_every: 4,
                ..fleet_pc()
            };
            let chaotic = run_fleet_guarded(
                ds.clone(),
                cfg.clone(),
                pc,
                ThreadSpawner {
                    die_at: Some((victim, round)),
                },
            )
            .unwrap_or_else(|e| panic!("{encoding:?} kill {victim}@{round}: {e}"));
            assert_eq!(
                chaotic.model, clean.model,
                "{encoding:?} kill {victim}@{round}: checkpointed recovery diverged"
            );
            assert_eq!(
                chaotic.rounds, clean.rounds,
                "{encoding:?} kill {victim}@{round}: round traces diverged"
            );
            let fp = &chaotic.recovery[victim as usize];
            assert_eq!(
                fp.respawns, 1,
                "{encoding:?} kill {victim}@{round}: exactly one respawn expected"
            );
        }
    }
}

/// The recovery-footprint bound, measured — not asserted by
/// construction. With a checkpoint cadence the supervisor's replay log
/// and the bytes a respawn actually re-ships are a function of the
/// checkpoint *interval*, not the session length; without one, the log
/// grows with every round (the pre-fix behaviour, pinned here as the
/// regression guard).
#[test]
fn replay_footprint_is_bounded_by_one_checkpoint_interval() {
    let ds = skewed(120);
    let fleet = |rounds: usize, checkpoint_every: u64, die_at: Option<(u32, u64)>| {
        let cfg = ClusterConfig {
            rounds,
            ..adaptive_cfg(2)
        };
        let pc = ProcessConfig {
            on_loss: WorkerLossPolicy::Respawn,
            encoding: WireEncoding::Dense,
            checkpoint_every,
            ..fleet_pc()
        };
        run_fleet_guarded(ds.clone(), cfg, pc, ThreadSpawner { die_at }).unwrap()
    };

    // Clean runs: the end-of-session log holds only the post-checkpoint
    // suffix — identical for a 12- and a 24-round session.
    let short = fleet(12, 4, None);
    let long = fleet(24, 4, None);
    for k in 0..2 {
        let (s, l) = (&short.recovery[k], &long.recovery[k]);
        assert_eq!(s.checkpoint_round, 8, "worker {k}: 12-round session");
        assert_eq!(l.checkpoint_round, 20, "worker {k}: 24-round session");
        assert!(s.checkpoint_bytes > 0, "worker {k}: no stored checkpoint");
        assert_eq!(
            (s.log_frames, s.log_bytes),
            (l.log_frames, l.log_bytes),
            "worker {k}: the replay log must not grow with session length"
        );
        // The worker really checkpointed over the wire: Checkpoint
        // frames crossed the socket toward the coordinator.
        assert!(
            short.net[k].rx_bytes_for(FrameKind::Checkpoint) > 0,
            "worker {k}: no Checkpoint frames were received"
        );
    }

    // The regression guard: without checkpoints the log IS the session.
    let short0 = fleet(12, 0, None);
    let long0 = fleet(24, 0, None);
    for k in 0..2 {
        assert!(
            long0.recovery[k].log_frames > short0.recovery[k].log_frames,
            "worker {k}: an uncheckpointed log must grow with the session"
        );
        assert!(
            short.recovery[k].log_frames < short0.recovery[k].log_frames,
            "worker {k}: checkpoint truncation must shrink the log"
        );
        assert_eq!(short0.recovery[k].checkpoint_round, 0);
        assert_eq!(short0.recovery[k].checkpoint_bytes, 0);
    }

    // The kill leg, pinned from real LinkStats counters: recovery
    // traffic for a kill near the end of the session is the same for a
    // 12- and a 24-round run — replayed bytes depend on the distance
    // to the last checkpoint, never on how long the session ran.
    // (Dense encoding keeps round frames fixed-size, so the replayed
    // barrier/update byte counts compare exactly.)
    let killed_short = fleet(12, 4, Some((1, 11)));
    let killed_long = fleet(24, 4, Some((1, 23)));
    for kind in [FrameKind::RoundBarrier, FrameKind::ModelUpdate] {
        let overhead_short =
            killed_short.net[1].tx_bytes_for(kind) - short.net[1].tx_bytes_for(kind);
        let overhead_long = killed_long.net[1].tx_bytes_for(kind) - long.net[1].tx_bytes_for(kind);
        assert!(overhead_short > 0, "{kind:?}: nothing was replayed");
        assert_eq!(
            overhead_short, overhead_long,
            "{kind:?}: replayed bytes must be bounded by the checkpoint \
             interval, independent of session length"
        );
    }
    // And the respawn re-shipped a stored checkpoint blob.
    assert!(
        killed_short.net[1].tx_bytes_for(FrameKind::Checkpoint) > 0,
        "recovery never sent the stored checkpoint"
    );
    assert_eq!(short.net[1].tx_bytes_for(FrameKind::Checkpoint), 0);
}

/// The slot's bandwidth totals survive a respawn: traffic that crossed
/// the dead link is folded into the slot's running totals at the start
/// of recovery, so the final report shows the whole session — the
/// readmitted worker's shard re-stream doubles the slot's shard bytes
/// rather than replacing them.
#[test]
fn respawned_slot_totals_include_the_dead_links_traffic() {
    let ds = skewed(240);
    let cfg = adaptive_cfg(3);
    let pc = || ProcessConfig {
        on_loss: WorkerLossPolicy::Respawn,
        ..fleet_pc()
    };
    let clean = run_fleet_guarded(
        ds.clone(),
        cfg.clone(),
        pc(),
        ThreadSpawner { die_at: None },
    )
    .unwrap();
    let chaotic = run_fleet_guarded(
        ds.clone(),
        cfg,
        pc(),
        ThreadSpawner {
            die_at: Some((1, 2)),
        },
    )
    .unwrap();
    let shard = FrameKind::DatasetShard;
    assert_eq!(
        chaotic.net[1].tx_bytes_for(shard),
        2 * clean.net[1].tx_bytes_for(shard),
        "the victim's totals must count both the original shard stream \
         and the respawn's re-stream"
    );
    assert!(
        chaotic.net[1].tx_bytes_for(FrameKind::RoundBarrier)
            > clean.net[1].tx_bytes_for(FrameKind::RoundBarrier),
        "replayed round traffic is real traffic"
    );
    // Untouched slots are unaffected.
    assert_eq!(
        chaotic.net[0].tx_bytes_for(shard),
        clean.net[0].tx_bytes_for(shard)
    );
}

/// A continuous flood of framed junk connections must not starve the
/// handshake deadline: the accept loop checks its deadline on *every*
/// admission attempt, not only when the listener goes quiet, so a
/// hostile peer that always has another connection ready cannot hold
/// the slot open forever.
#[test]
fn junk_flood_cannot_starve_the_handshake_deadline() {
    // A handle that does NOT join on drop: the flooder spins until the
    // fleet's listener disappears, so joining it from teardown would
    // deadlock against the very starvation this test measures. The
    // thread exits on its own once its connects start failing.
    struct DetachedWorker;
    impl WorkerHandle for DetachedWorker {}
    struct FloodingSpawner;
    impl WorkerSpawner for FloodingSpawner {
        fn spawn(
            &mut self,
            _node: u32,
            addr: &str,
            _respawn: bool,
        ) -> Result<Box<dyn WorkerHandle>, ClusterError> {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                // Back-to-back framed garbage: each connection decodes
                // far enough to be rejected, and the next is already
                // waiting — the accept loop never sees WouldBlock.
                while let Ok(mut s) = TcpStream::connect(&addr) {
                    let _ = s.write_all(&[5, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 0x01]);
                }
            });
            Ok(Box::new(DetachedWorker))
        }
    }
    let ds = skewed(60);
    let cfg = ClusterConfig {
        rounds: 1,
        ..adaptive_cfg(1)
    };
    let pc = ProcessConfig {
        handshake_timeout_ms: 700,
        ..fleet_pc()
    };
    let started = std::time::Instant::now();
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let _ = tx.send(run_fleet_with(&ds, &obj(), &cfg, &pc, FloodingSpawner));
    });
    let err = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("the junk flood starved the handshake deadline")
        .expect_err("a flooded worker slot must fail admission");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline fired far too late: {:?}",
        started.elapsed()
    );
    match err {
        ClusterError::WorkerLost { node, detail } => {
            assert_eq!(node, 0);
            assert!(
                detail.contains("handshake"),
                "error must name the handshake: {detail}"
            );
        }
        other => panic!("expected WorkerLost, got {other}"),
    }
}

#[test]
fn killed_worker_with_fail_policy_is_a_typed_error_not_a_hang() {
    let ds = skewed(240);
    let cfg = adaptive_cfg(3);
    let pc = ProcessConfig {
        on_loss: WorkerLossPolicy::Fail,
        ..fleet_pc()
    };
    let err = run_fleet_guarded(
        ds,
        cfg,
        pc,
        ThreadSpawner {
            die_at: Some((1, 2)),
        },
    )
    .expect_err("a killed worker under fail policy must abort the run");
    match err {
        ClusterError::WorkerLost { node, .. } => assert_eq!(node, 1, "wrong victim attributed"),
        other => panic!("expected WorkerLost, got {other}"),
    }
}

#[test]
fn respawn_budget_exhaustion_is_a_typed_error() {
    // A spawner whose replacements also die immediately: the fleet
    // burns its respawn budget and must surface WorkerLost instead of
    // spinning forever.
    struct AlwaysDying;
    impl WorkerSpawner for AlwaysDying {
        fn spawn(
            &mut self,
            _node: u32,
            addr: &str,
            _respawn: bool,
        ) -> Result<Box<dyn WorkerHandle>, ClusterError> {
            let addr = addr.to_string();
            let handle = std::thread::spawn(move || {
                let opts = WorkerOptions {
                    die_at_round: Some(1),
                    ..WorkerOptions::default()
                };
                let _ = run_worker(&addr, &opts);
            });
            Ok(Box::new(ThreadWorker(Some(handle))))
        }
    }
    let ds = skewed(120);
    let cfg = ClusterConfig {
        rounds: 2,
        ..adaptive_cfg(2)
    };
    let pc = ProcessConfig {
        on_loss: WorkerLossPolicy::Respawn,
        max_respawns: 2,
        ..fleet_pc()
    };
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let _ = tx.send(run_fleet_with(&ds, &obj(), &cfg, &pc, AlwaysDying));
    });
    let err = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("fleet run hung")
        .expect_err("crash-looping workers must exhaust the budget");
    assert!(
        matches!(err, ClusterError::WorkerLost { .. }),
        "expected WorkerLost, got {err}"
    );
}

#[test]
fn junk_connections_do_not_disturb_admission() {
    // Each real worker spawn also fires a volley of hostile
    // connections at the same listener: raw garbage bytes, a
    // wrong-version Hello, and an instant disconnect. The accept loop
    // must shed all of them and still admit every real worker — and
    // the run must stay bit-equal to the undisturbed transports.
    struct HostileEnvironmentSpawner;
    impl WorkerSpawner for HostileEnvironmentSpawner {
        fn spawn(
            &mut self,
            _node: u32,
            addr: &str,
            _respawn: bool,
        ) -> Result<Box<dyn WorkerHandle>, ClusterError> {
            // Junk volley first, so the handshake loop has something to
            // reject before the real worker shows up.
            for junk in 0..3u8 {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    match junk {
                        0 => {
                            // Framed garbage: valid length prefix,
                            // undecodable payload.
                            let _ = s.write_all(&[5, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 0x01]);
                        }
                        1 => {
                            // Wrong-version Hello (tag 5, version far
                            // in the future), correctly framed.
                            let version = (PROTOCOL_VERSION + 40).to_le_bytes();
                            let mut frame = vec![5u8, 0, 0, 0, 5];
                            frame.extend_from_slice(&version);
                            let _ = s.write_all(&frame);
                        }
                        _ => {
                            // Instant disconnect (truncated handshake).
                        }
                    }
                }
            }
            let addr = addr.to_string();
            let handle = std::thread::spawn(move || {
                let _ = run_worker(&addr, &WorkerOptions::default());
            });
            Ok(Box::new(ThreadWorker(Some(handle))))
        }
    }
    let ds = skewed(240);
    let cfg = adaptive_cfg(2);
    let clean = run(&ds, &obj(), &cfg).unwrap();
    let (tx, rx) = channel();
    {
        let (ds, cfg) = (ds.clone(), cfg.clone());
        std::thread::spawn(move || {
            let _ = tx.send(run_fleet_with(
                &ds,
                &obj(),
                &cfg,
                &fleet_pc(),
                HostileEnvironmentSpawner,
            ));
        });
    }
    let hostile = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("fleet run hung under junk connections")
        .expect("junk connections must not fail the run");
    assert_eq!(hostile.model, clean.model, "junk perturbed the run");
    assert_eq!(hostile.rounds, clean.rounds);
}

#[test]
fn junk_only_workers_time_out_with_a_typed_error() {
    // A spawner that never produces a valid worker — only a socket
    // speaking garbage. The handshake deadline must fire with a typed
    // error naming the last rejection, not hang the accept loop.
    struct JunkOnlySpawner;
    impl WorkerSpawner for JunkOnlySpawner {
        fn spawn(
            &mut self,
            _node: u32,
            addr: &str,
            _respawn: bool,
        ) -> Result<Box<dyn WorkerHandle>, ClusterError> {
            let addr = addr.to_string();
            let handle = std::thread::spawn(move || {
                if let Ok(mut s) = TcpStream::connect(&addr) {
                    let version = (PROTOCOL_VERSION + 1).to_le_bytes();
                    let mut frame = vec![5u8, 0, 0, 0, 5];
                    frame.extend_from_slice(&version);
                    let _ = s.write_all(&frame);
                    // Keep the socket open a moment so the rejection is
                    // a decoded wrong-version Hello, not a hangup race.
                    std::thread::sleep(Duration::from_millis(300));
                }
            });
            Ok(Box::new(ThreadWorker(Some(handle))))
        }
    }
    let ds = skewed(60);
    let cfg = ClusterConfig {
        rounds: 1,
        ..adaptive_cfg(1)
    };
    let pc = ProcessConfig {
        handshake_timeout_ms: 700,
        ..fleet_pc()
    };
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let _ = tx.send(run_fleet_with(&ds, &obj(), &cfg, &pc, JunkOnlySpawner));
    });
    let err = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("handshake deadline never fired")
        .expect_err("a junk-only worker slot must fail admission");
    match err {
        ClusterError::WorkerLost { node, detail } => {
            assert_eq!(node, 0);
            assert!(
                detail.contains("handshake"),
                "error must name the handshake: {detail}"
            );
            assert!(
                detail.contains("version"),
                "error must surface the typed wire rejection: {detail}"
            );
        }
        other => panic!("expected WorkerLost, got {other}"),
    }
}

#[test]
fn out_of_range_chaos_kill_is_rejected_up_front() {
    // A chaos target that can never fire (node ≥ k, round 0, or round
    // past the schedule) would silently turn a supervision-validation
    // run into a false pass — reject it before spawning anything.
    let ds = skewed(120);
    let cfg = adaptive_cfg(3); // 3 nodes, 4 rounds
    for (victim, round) in [(3u32, 2u64), (7, 1), (1, 0), (1, 5)] {
        let pc = ProcessConfig {
            chaos_kill: Some((victim, round)),
            ..fleet_pc()
        };
        match run_fleet_with(&ds, &obj(), &cfg, &pc, ThreadSpawner { die_at: None }) {
            Err(ClusterError::InvalidConfig(msg)) => {
                assert!(msg.contains("chaos-kill"), "{victim}:{round}: {msg}");
            }
            other => panic!("{victim}:{round}: expected InvalidConfig, got {other:?}"),
        }
    }
}

#[test]
fn process_transport_config_round_trips_through_run() {
    // `run()` with TransportConfig::Process drives the fleet (here via
    // the default CommandSpawner pointed at a worker binary that does
    // not exist → a typed spawn error, proving the wiring without
    // depending on the CLI binary from this crate's tests).
    let ds = skewed(60);
    let cfg = ClusterConfig {
        transport: TransportConfig::Process(ProcessConfig {
            worker: Some("/nonexistent/isasgd-worker-binary".into()),
            handshake_timeout_ms: 500,
            ..ProcessConfig::default()
        }),
        ..adaptive_cfg(1)
    };
    match run(&ds, &obj(), &cfg) {
        Err(ClusterError::Worker(msg)) => {
            assert!(msg.contains("spawning worker"), "{msg}");
        }
        other => panic!("expected a spawn error, got {other:?}"),
    }
}

/// The PR-10 telemetry pins, all on one chaos-kill fleet run:
///
/// 1. **Inertness** — arming telemetry on a respawn-recovered run
///    leaves the model and round trace bit-identical to an
///    undisturbed telemetry-off run.
/// 2. **Coverage** — every (node, round) cell ships at least one
///    [`Message::Telemetry`] frame to the supervisor; the victim's
///    replayed rounds show up as visible duplicates, never as holes.
/// 3. **Slot order** — `ClusterRun::telemetry` concatenates per-link
///    sample vectors in slot order (the contract `[net]` reporting
///    relies on), so the node ids must arrive as ascending groups,
///    and slot `k`'s link counters must attest the frames slot `k`
///    sent.
#[test]
fn chaos_kill_telemetry_covers_every_round_and_stays_bit_inert() {
    let ds = skewed(240);
    let cfg = adaptive_cfg(3);
    let pc = || ProcessConfig {
        on_loss: WorkerLossPolicy::Respawn,
        ..fleet_pc()
    };
    let clean = run_fleet_guarded(
        ds.clone(),
        cfg.clone(),
        pc(),
        ThreadSpawner { die_at: None },
    )
    .unwrap();
    assert!(
        clean.telemetry.is_empty(),
        "telemetry off must mean zero samples collected"
    );
    let traced = run_fleet_guarded(
        ds.clone(),
        ClusterConfig {
            telemetry: true,
            ..cfg.clone()
        },
        pc(),
        ThreadSpawner {
            die_at: Some((1, 2)),
        },
    )
    .unwrap();

    // 1. Inertness across chaos: kill + replay + telemetry ≡ clean.
    assert_eq!(traced.model, clean.model, "telemetry perturbed the model");
    assert_eq!(traced.rounds, clean.rounds, "telemetry perturbed the trace");

    // 2. Coverage: every (node, round) cell, duplicates allowed.
    for node in 0..cfg.nodes as u32 {
        for round in 1..=cfg.rounds as u64 {
            let n = traced
                .telemetry
                .iter()
                .filter(|s| s.node == node && s.round == round)
                .count();
            assert!(n >= 1, "no timing sample for node {node} round {round}");
        }
    }
    for s in &traced.telemetry {
        assert!(s.timing.rows > 0, "worker {} reported zero rows", s.node);
    }

    // 3. Slot order: samples arrive as ascending per-slot groups…
    let nodes: Vec<u32> = traced.telemetry.iter().map(|s| s.node).collect();
    let mut grouped = nodes.clone();
    grouped.sort_unstable();
    assert_eq!(
        nodes, grouped,
        "ClusterRun::telemetry must concatenate links in slot order"
    );
    // …and the per-slot wire counters attest the frames were real.
    for k in 0..cfg.nodes {
        assert!(
            traced.net[k].rx_bytes_for(FrameKind::Telemetry) > 0,
            "slot {k}: no Telemetry bytes on its own link"
        );
        assert_eq!(
            clean.net[k].rx_bytes_for(FrameKind::Telemetry),
            0,
            "slot {k}: telemetry-off run still carried Telemetry frames"
        );
    }
}
