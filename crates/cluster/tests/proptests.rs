//! Property tests on cluster synchronization and the run loop.

use isasgd_cluster::{average_models, node::run, ClusterConfig, SyncStrategy};
use isasgd_losses::{ImportanceScheme, LogisticLoss, Objective, Regularizer};
use isasgd_sparse::DatasetBuilder;
use proptest::prelude::*;

fn arb_models() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..6, 1usize..30).prop_flat_map(|(k, d)| {
        prop::collection::vec(prop::collection::vec(-100.0f64..100.0, d..=d), k..=k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every averaged coordinate lies within the per-coordinate min/max
    /// envelope of the node models (convex combination), under both
    /// strategies.
    #[test]
    fn average_is_a_convex_combination(models in arb_models()) {
        let k = models.len();
        let d = models[0].len();
        let shards: Vec<usize> = (1..=k).collect(); // unequal shard sizes
        for strategy in [SyncStrategy::Average, SyncStrategy::WeightedByShard] {
            let mut out = Vec::new();
            average_models(&models, &shards, strategy, &mut out);
            prop_assert_eq!(out.len(), d);
            for j in 0..d {
                let lo = models.iter().map(|m| m[j]).fold(f64::INFINITY, f64::min);
                let hi = models.iter().map(|m| m[j]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(
                    out[j] >= lo - 1e-9 && out[j] <= hi + 1e-9,
                    "coordinate {} = {} outside [{}, {}]",
                    j, out[j], lo, hi
                );
            }
        }
    }

    /// Averaging is permutation-invariant for the equal-weight strategy.
    #[test]
    fn average_is_permutation_invariant(models in arb_models()) {
        let shards = vec![1usize; models.len()];
        let mut fwd = Vec::new();
        average_models(&models, &shards, SyncStrategy::Average, &mut fwd);
        let rev: Vec<Vec<f64>> = models.iter().rev().cloned().collect();
        let mut bwd = Vec::new();
        average_models(&rev, &shards, SyncStrategy::Average, &mut bwd);
        for (a, b) in fwd.iter().zip(&bwd) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The full cluster loop is total over its parameter space: finite
    /// consensus model, monotone wall-clock, exactly `rounds` syncs.
    #[test]
    fn cluster_run_is_total(
        seed in 0u64..300,
        nodes in 1usize..8,
        rounds in 1usize..5,
        local_epochs in 1usize..3,
    ) {
        let mut b = DatasetBuilder::new(16);
        let mut state = seed | 1;
        for i in 0..120usize {
            state ^= state << 13;
            state ^= state >> 7;
            let j = (state % 16) as u32;
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            b.push_row(&[(j, y * (1.0 + (i % 7) as f64))], y).unwrap();
        }
        let ds = b.finish();
        let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-5 });
        let cfg = ClusterConfig {
            nodes,
            rounds,
            local_epochs,
            step_size: 0.2,
            importance: ImportanceScheme::GradNormBound { radius: 1.0 },
            ..ClusterConfig::default()
        };
        let r = run(&ds, &obj, &cfg).unwrap();
        prop_assert_eq!(r.syncs, rounds);
        prop_assert_eq!(r.rounds.len(), rounds + 1);
        prop_assert!(r.model.iter().all(|x| x.is_finite()));
        prop_assert!(r.phi_imbalance >= 1.0 - 1e-9);
        for w in r.trace.points.windows(2) {
            prop_assert!(w[1].wall_secs >= w[0].wall_secs);
        }
    }
}
