//! Event-layer integration pin: the coordinator narrates a cluster
//! run through `isasgd_obs` — round lifecycle events plus one
//! `net_summary` per link, **in slot order** (the contract
//! `isasgd report`'s `[net]` section renders verbatim).
//!
//! This lives in its own test binary on purpose: the obs recorder is
//! a process-global, so sharing a binary with the fleet suites would
//! interleave their coordinators' events into our trace.

use isasgd_cluster::{run, ClusterConfig, SyncStrategy, TransportConfig, WireEncoding};
use isasgd_core::{
    BalancePolicy, CommitPolicy, ImportanceScheme, LogisticLoss, Objective, Regularizer,
    SamplingStrategy,
};
use isasgd_obs::{parse_jsonl_line, JsonValue, LogLevel, ObsClock, Recorder};
use isasgd_sparse::{Dataset, DatasetBuilder};
use std::sync::Arc;

fn skewed(n: usize) -> Dataset {
    let mut b = DatasetBuilder::new(8);
    for i in 0..n {
        let norm = if i % 10 == 0 { 6.0 } else { 0.3 };
        let j = (i % 4) as u32;
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
            .unwrap();
    }
    b.finish()
}

fn field_u64(obj: &[(String, JsonValue)], key: &str) -> u64 {
    obj.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
        .unwrap_or_else(|| panic!("missing u64 field {key:?}"))
}

#[test]
fn coordinator_emits_round_events_and_net_summaries_in_slot_order() {
    let nodes = 3;
    let rounds = 4;
    let cfg = ClusterConfig {
        nodes,
        rounds,
        local_epochs: 1,
        step_size: 0.3,
        importance: ImportanceScheme::LipschitzSmoothness,
        balance: BalancePolicy::default(),
        sync: SyncStrategy::WeightedByShard,
        sampling: SamplingStrategy::Adaptive,
        commit: CommitPolicy::EveryK(16),
        transport: TransportConfig::Tcp {
            bind: "127.0.0.1:0".into(),
            encoding: WireEncoding::Auto,
        },
        seed: 0x0B5E_55ED,
        telemetry: true,
        ..ClusterConfig::default()
    };
    let rec = Arc::new(Recorder::new(LogLevel::Off, ObsClock::logical()).trace_to_memory());
    isasgd_obs::install(rec.clone());
    let res = run(
        &skewed(240),
        &Objective::new(LogisticLoss, Regularizer::None),
        &cfg,
    );
    isasgd_obs::uninstall();
    let out = res.unwrap();

    let events: Vec<(String, Vec<(String, JsonValue)>)> = rec
        .take_trace_lines()
        .iter()
        .map(|l| {
            let obj = parse_jsonl_line(l).unwrap_or_else(|e| panic!("bad trace line {l:?}: {e}"));
            let name = obj
                .iter()
                .find(|(k, _)| k == "event")
                .and_then(|(_, v)| match v {
                    JsonValue::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .expect("event field");
            (name, obj)
        })
        .collect();

    // Round lifecycle: one start and one end per round, in order.
    for kind in ["round_start", "round_end"] {
        let seen: Vec<u64> = events
            .iter()
            .filter(|(n, _)| n == kind)
            .map(|(_, o)| field_u64(o, "round"))
            .collect();
        let want: Vec<u64> = (1..=rounds as u64).collect();
        assert_eq!(seen, want, "{kind} events out of order or missing");
    }

    // net_summary: exactly one per link, node ids 0..n in emission
    // order (the slot-order contract), counters matching the run's
    // own LinkStats vector index-for-index.
    let net: Vec<&Vec<(String, JsonValue)>> = events
        .iter()
        .filter(|(n, _)| n == "net_summary")
        .map(|(_, o)| o)
        .collect();
    assert_eq!(net.len(), nodes, "one net_summary per link");
    assert_eq!(out.net.len(), nodes);
    for (k, obj) in net.iter().enumerate() {
        assert_eq!(field_u64(obj, "node"), k as u64, "net_summary slot order");
        assert_eq!(field_u64(obj, "tx_bytes"), out.net[k].tx_total_bytes());
        assert_eq!(field_u64(obj, "rx_bytes"), out.net[k].rx_total_bytes());
    }
}
