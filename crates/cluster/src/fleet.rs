//! The [`ProcessFleet`]-style supervisor behind
//! `--cluster-transport process`: spawn, admit, drive, and (optionally)
//! resurrect a fleet of `isasgd worker` OS processes.
//!
//! # Shape
//!
//! [`run_fleet`] binds a real [`TcpListener`], then for each node slot:
//! spawns a worker via the [`WorkerSpawner`] (subprocesses in
//! production, test harnesses install thread-backed spawners), and
//! admits exactly one connection through the session handshake — a
//! [`Message::Hello`] whose [`PROTOCOL_VERSION`] matches, answered with
//! [`Message::Assign`] followed by the node's [`Message::DatasetShard`]
//! chunk stream: each worker receives only the rows of the shard it
//! owns (already reordered, with per-row importance weights riding
//! along), so admission bandwidth is proportional to the shard, not
//! the dataset. Connections that
//! speak garbage, truncate, or announce the wrong version are dropped
//! with a typed [`WireError`] recorded and the accept loop keeps
//! going until its deadline — junk can never hang or kill admission.
//!
//! The admitted links are wrapped in [`SupervisedLink`]s and handed to
//! the ordinary [`coordinate`](crate::coordinator) round driver — the
//! protocol above the session layer is byte-identical to the `tcp`
//! transport, which is what keeps process runs bit-equal to every
//! other execution mode.
//!
//! # Supervision
//!
//! A [`SupervisedLink`] records every outbound message. When a worker
//! is lost (socket death, or silence past the per-round deadline):
//!
//! * [`WorkerLossPolicy::Fail`] — the run aborts with a typed
//!   [`ClusterError::WorkerLost`]; closed sockets make detection
//!   immediate, the round deadline bounds the hung-worker case, so a
//!   loss can never hang the run.
//! * [`WorkerLossPolicy::Respawn`] — a replacement is spawned, taken
//!   through the same handshake, and the recorded session is replayed
//!   (`ShardRebalance`, then every round's barrier + consensus model).
//!   Workers are deterministic functions of that message stream, so
//!   the replacement recomputes the lost worker's state exactly; its
//!   stale re-sends are dropped by round tag and its duplicated
//!   feedback is absorbed by the mirror's per-row max — the run
//!   completes **bit-identically** to an undisturbed one (pinned by
//!   `tests/process_fleet.rs` and the CLI kill-a-worker e2e).
//!
//! With a checkpoint cadence ([`ProcessConfig::checkpoint_every`]),
//! replay is bounded instead of whole-session: workers periodically
//! ship a versioned, checksummed [`Message::Checkpoint`] of their
//! cross-round state; the link stores the newest blob per slot,
//! acknowledges it, and truncates its log to the post-checkpoint
//! suffix (the initial `ShardRebalance` is always retained). Recovery
//! then replays checkpoint + suffix, so both log memory and respawn
//! cost are bounded by one checkpoint interval regardless of session
//! length — observable per slot via [`RecoveryFootprint`].

use crate::coordinator::{coordinate, plan_run};
use crate::node::{validate, ClusterConfig, ClusterError, ClusterRun};
use crate::procnode::wire_known_loss;
use crate::transport::{
    LinkStats, ProcessConfig, RecoveryFootprint, Tcp, TelemetrySample, Transport, TransportError,
    WorkerLossPolicy,
};
use crate::wire::{
    encode_dataset_shard_chunks, Message, SessionConfig, WireError, MAX_FRAME, PROTOCOL_VERSION,
};
use isasgd_losses::{Loss, Objective};
use isasgd_obs::{monotonic_us, Event};
use isasgd_sparse::Dataset;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A handle to one spawned worker. Cleanup is Drop-driven: dropping
/// the handle must release the worker (reap the child process, join
/// the thread, …), never block indefinitely, and tolerate a worker
/// that already exited.
pub trait WorkerHandle: Send {}

/// Launches workers for the fleet. `respawn` distinguishes the initial
/// population from replacements (chaos hooks only arm on first spawn).
pub trait WorkerSpawner: Send {
    /// Starts one worker that will connect to `addr` and perform the
    /// session handshake.
    fn spawn(
        &mut self,
        node: u32,
        addr: &str,
        respawn: bool,
    ) -> Result<Box<dyn WorkerHandle>, ClusterError>;
}

/// The production spawner: `<program> worker --connect <addr>`
/// subprocesses (the `isasgd` CLI passes its own executable).
pub struct CommandSpawner {
    program: PathBuf,
    /// `(node, round)` chaos hook forwarded as `--die-at-round` to the
    /// matching node's *initial* spawn.
    chaos_kill: Option<(u32, u64)>,
}

impl CommandSpawner {
    /// Spawner running `program` as the worker binary.
    pub fn new(program: PathBuf, chaos_kill: Option<(u32, u64)>) -> Self {
        CommandSpawner {
            program,
            chaos_kill,
        }
    }
}

/// Reaps the child on drop: a short grace for voluntary exit, then
/// kill — so neither a finished nor a wedged worker can leak.
struct ChildHandle(Child);

impl WorkerHandle for ChildHandle {}

impl Drop for ChildHandle {
    fn drop(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match self.0.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => {
                    let _ = self.0.kill();
                    let _ = self.0.wait();
                    return;
                }
            }
        }
    }
}

impl WorkerSpawner for CommandSpawner {
    fn spawn(
        &mut self,
        node: u32,
        addr: &str,
        respawn: bool,
    ) -> Result<Box<dyn WorkerHandle>, ClusterError> {
        let mut cmd = Command::new(&self.program);
        cmd.arg("worker")
            .arg("--connect")
            .arg(addr)
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        if let Some((victim, round)) = self.chaos_kill {
            if victim == node && !respawn {
                cmd.arg("--die-at-round").arg(round.to_string());
            }
        }
        let child = cmd.spawn().map_err(|e| {
            ClusterError::Worker(format!(
                "spawning worker {node} ({}): {e}",
                self.program.display()
            ))
        })?;
        Ok(Box::new(ChildHandle(child)))
    }
}

/// State shared by every supervised link: the listener, the spawner,
/// and the session frames a (re)admitted worker must receive.
struct FleetShared<S: WorkerSpawner> {
    listener: TcpListener,
    addr: String,
    spawner: S,
    session: SessionConfig,
    /// Per-node [`Message::DatasetShard`] chunk payloads, encoded once
    /// at fleet start from the run plan's reordered view (and
    /// size-validated there): admissions — initial and respawn alike —
    /// write the cached bytes instead of re-encoding, so recovery is
    /// byte-identical to first admission.
    shard_frames: Vec<Vec<Vec<u8>>>,
    pc: ProcessConfig,
}

impl<S: WorkerSpawner> FleetShared<S> {
    /// Admits one worker for node slot `node`: accepts connections
    /// until one completes a valid handshake, dropping (and recording)
    /// invalid ones. Returns the admitted link with the round deadline
    /// armed, or a typed error when the handshake deadline passes.
    fn accept_worker(&mut self, node: u32) -> Result<Tcp, ClusterError> {
        let deadline = Instant::now() + Duration::from_millis(self.pc.handshake_timeout_ms);
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ClusterError::Worker(format!("listener: {e}")))?;
        let mut last_reject: Option<WireError> = None;
        loop {
            // Checked every iteration, not just when the listener runs
            // dry: a continuous stream of junk connections used to keep
            // the loop in the accept arm forever, so a flood of invalid
            // peers could starve admission past any deadline.
            if Instant::now() >= deadline {
                let why = last_reject
                    .map(|w| format!(" (last rejected handshake: {w})"))
                    .unwrap_or_default();
                return Err(ClusterError::WorkerLost {
                    node,
                    detail: format!(
                        "no valid worker handshake within {}ms{why}",
                        self.pc.handshake_timeout_ms
                    ),
                });
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    // Handshake under what's left of the deadline, so a
                    // connection that goes silent cannot stall the loop.
                    let left = deadline
                        .saturating_duration_since(Instant::now())
                        .max(Duration::from_millis(10));
                    let admitted = (|| -> Result<Tcp, TransportError> {
                        stream.set_nonblocking(false).map_err(TransportError::Io)?;
                        // The deadline bounds writes too: a peer that
                        // sends a valid Hello but never reads would
                        // otherwise stall the Assign/DatasetTransfer
                        // write_all once the socket buffers fill.
                        stream
                            .set_write_timeout(Some(left))
                            .map_err(TransportError::Io)?;
                        let mut link =
                            Tcp::with_read_timeout(stream, left).map_err(TransportError::Io)?;
                        match link.recv()? {
                            Message::Hello { version } if version == PROTOCOL_VERSION => {}
                            Message::Hello { version } => {
                                return Err(TransportError::Wire(WireError::Version {
                                    got: version,
                                    want: PROTOCOL_VERSION,
                                }))
                            }
                            _ => {
                                return Err(TransportError::Wire(WireError::Invalid {
                                    what: "expected Hello as the first frame",
                                }))
                            }
                        }
                        link.send(&Message::Assign {
                            worker: node,
                            config: self.session.clone(),
                        })?;
                        for frame in &self.shard_frames[node as usize] {
                            link.send_payload(frame)?;
                        }
                        // Arm the session's wire encoding only now: the
                        // handshake frames above are always dense, and
                        // the fresh link's empty delta bases match the
                        // (re)admitted worker's — replay and live
                        // traffic alike start from a dense send.
                        link.set_encoding(self.pc.encoding);
                        // Admitted: relax both deadlines to the round
                        // liveness deadline.
                        let round = Duration::from_millis(self.pc.round_timeout_ms.max(1));
                        link.set_read_timeout(round).map_err(TransportError::Io)?;
                        link.set_write_timeout(round).map_err(TransportError::Io)?;
                        Ok(link)
                    })();
                    match admitted {
                        Ok(link) => return Ok(link),
                        // An invalid connection is dropped; the accept
                        // loop continues — junk peers (port scanners,
                        // stale workers, wrong builds) cannot take the
                        // fleet down or hang admission.
                        Err(e) => {
                            last_reject = Some(match e {
                                TransportError::Wire(w) => w,
                                other => WireError::Invalid {
                                    what: match other {
                                        TransportError::Closed => "connection closed mid-handshake",
                                        _ => "handshake i/o failure",
                                    },
                                },
                            });
                            let _ = peer; // connection drops here
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(ClusterError::Worker(format!("accept: {e}"))),
            }
        }
    }
}

/// One supervised coordinator↔worker link: a [`Tcp`] endpoint plus the
/// outbound message log that makes deterministic respawn possible.
pub struct SupervisedLink<S: WorkerSpawner> {
    shared: Arc<Mutex<FleetShared<S>>>,
    node: u32,
    // Declared before `handle` so the socket closes before the worker
    // is reaped — a blocked worker unblocks instead of being killed
    // mid-wait.
    tcp: Tcp,
    handle: Box<dyn WorkerHandle>,
    log: Vec<Message>,
    respawns_left: u32,
    policy: WorkerLossPolicy,
    /// Traffic counters of connections this slot has already replaced:
    /// a respawn folds the dead link's counters here, so the slot's
    /// reported totals cover the whole session including replays.
    stats: LinkStats,
    /// The newest worker checkpoint absorbed on this slot, as the round
    /// it covers plus the re-encoded [`Message::Checkpoint`] payload —
    /// stored as wire bytes so respawn replay ships it verbatim without
    /// holding a decoded model/sampler copy per slot.
    ckpt: Option<(u64, Vec<u8>)>,
    /// Successful respawns on this slot (reported in the run's
    /// recovery footprint).
    respawns: u32,
    /// Absorbed [`Message::Telemetry`] samples in arrival order
    /// (replays re-ship recomputed rounds, so duplicates stay visible).
    samples: Vec<TelemetrySample>,
}

impl<S: WorkerSpawner> SupervisedLink<S> {
    fn lost(&self, cause: &dyn std::fmt::Display) -> TransportError {
        TransportError::WorkerLost {
            node: self.node,
            detail: cause.to_string(),
        }
    }

    /// Worker-loss recovery: under `Respawn` (with budget left), spawn
    /// a replacement, re-admit it through the handshake, and replay the
    /// recorded session so it deterministically recomputes the lost
    /// state. Under `Fail` (or an exhausted budget) the loss surfaces
    /// as a typed [`TransportError::WorkerLost`].
    ///
    /// The replay writes the stored checkpoint (if any) and the logged
    /// suffix before reading anything; the replacement's own re-sends
    /// are drained later by the round driver (stale tags dropped).
    /// With checkpointing on, the replayed suffix — and so both the
    /// socket traffic and the log held in memory — is bounded by one
    /// checkpoint interval regardless of session length. If an
    /// unbounded (no-checkpoint) session fills both sockets' buffers
    /// mid-replay, the armed write deadline turns that into a typed
    /// `WorkerLost` instead of a deadlock.
    fn recover(&mut self, cause: TransportError) -> Result<(), TransportError> {
        // Fold the dead connection's counters into the slot totals
        // first, before any path can bail: traffic that crossed the
        // wire happened whether or not the respawn succeeds, and the
        // bandwidth report must not lose it.
        self.stats.merge(&self.tcp.take_stats());
        if matches!(cause, TransportError::WorkerLost { .. }) {
            return Err(cause);
        }
        if self.policy == WorkerLossPolicy::Fail {
            return Err(self.lost(&cause));
        }
        if self.respawns_left == 0 {
            return Err(self.lost(&format_args!("respawn budget exhausted after: {cause}")));
        }
        self.respawns_left -= 1;
        let t0 = monotonic_us();
        let mut shared = self.shared.lock().expect("fleet state poisoned");
        let addr = shared.addr.clone();
        let handle = shared
            .spawner
            .spawn(self.node, &addr, true)
            .map_err(|e| self.lost(&format_args!("respawn failed: {e}")))?;
        let handshake_t0 = monotonic_us();
        let mut tcp = shared
            .accept_worker(self.node)
            .map_err(|e| self.lost(&format_args!("respawn handshake failed: {e}")))?;
        drop(shared);
        isasgd_obs::emit(&Event::Handshake {
            node: u64::from(self.node),
            respawn: true,
            dur_us: monotonic_us() - handshake_t0,
        });
        // Deterministic replay: the stored checkpoint (shipped verbatim
        // as the bytes the worker sent, ahead of everything else so the
        // replacement stashes it pre-assignment) followed by the logged
        // suffix. The replacement installs the state and recomputes
        // only the rounds after it — bit-identical to a worker that
        // lived the whole session; its re-sent traffic for already-
        // finished rounds is dropped by round tag upstream.
        let replayed = (|| -> Result<(), TransportError> {
            if let Some((_, blob)) = &self.ckpt {
                tcp.send_payload(blob)?;
            }
            for m in &self.log {
                tcp.send(m)?;
            }
            Ok(())
        })();
        if let Err(e) = replayed {
            // The partial replay's traffic is real too.
            self.stats.merge(tcp.link_stats());
            return Err(self.lost(&format_args!("replay failed: {e}")));
        }
        // Replace the dead endpoint; the old handle is dropped (and the
        // dead process reaped) with the assignment below. The live
        // link's counters were zeroed by take_stats above, so the
        // replacement's start from zero double-counts nothing.
        self.tcp = tcp;
        self.handle = handle;
        self.respawns += 1;
        isasgd_obs::emit(&Event::Respawn {
            node: u64::from(self.node),
            replay_frames: self.log.len() as u64 + u64::from(self.ckpt.is_some()),
            replay_bytes: self.ckpt.as_ref().map_or(0, |(_, b)| b.len() as u64)
                + self
                    .log
                    .iter()
                    .map(|m| m.resident_bytes() as u64)
                    .sum::<u64>(),
            replay_us: monotonic_us() - t0,
        });
        Ok(())
    }
}

impl<S: WorkerSpawner> Transport for SupervisedLink<S> {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        if let Err(e) = self.tcp.send(msg) {
            self.recover(e)?;
            // A fresh, just-replayed link failing again is terminal.
            self.tcp.send(msg).map_err(|e| self.lost(&e))?;
        }
        self.log.push(msg.clone());
        Ok(())
    }

    fn recv(&mut self) -> Result<Message, TransportError> {
        loop {
            match self.tcp.recv() {
                // Checkpoints are absorbed here, never surfaced to the
                // round driver: keep the newest blob, truncate the
                // replay log to the post-checkpoint suffix, and ack.
                // Duplicates and reordered (older) checkpoints are
                // ignored-but-acked, so absorption is idempotent.
                Ok(Message::Checkpoint { node, round, state }) => {
                    if node == self.node && self.ckpt.as_ref().is_none_or(|(r, _)| round > *r) {
                        // Re-encoding is deterministic, so the stored
                        // bytes are exactly what the worker sent.
                        let blob = Message::Checkpoint { node, round, state }.to_bytes();
                        isasgd_obs::emit(&Event::CheckpointStored {
                            node: u64::from(node),
                            round,
                            bytes: blob.len() as u64,
                        });
                        self.ckpt = Some((round, blob));
                        // A respawned worker still needs its shard
                        // assignment, so ShardRebalance survives every
                        // truncation; everything at or before the
                        // checkpointed round is recomputation the
                        // installed state already covers.
                        self.log.retain(|m| {
                            matches!(m, Message::ShardRebalance { .. }) || m.round() > round
                        });
                    }
                    // The ack is control traffic: sent directly (not
                    // logged — a replayed worker re-emits checkpoints
                    // and gets fresh acks), and a dead link here rolls
                    // into the same recovery as any other send.
                    let ack = Message::CheckpointAck {
                        node: self.node,
                        round,
                    };
                    if let Err(e) = self.tcp.send(&ack) {
                        self.recover(e)?;
                    }
                }
                // Telemetry is observability traffic: absorbed into the
                // slot's sample list, never surfaced to the round
                // driver, never acked, never logged for replay.
                Ok(Message::Telemetry {
                    node,
                    round,
                    timing,
                }) => {
                    isasgd_obs::emit(&Event::WorkerTiming {
                        node: u64::from(node),
                        round,
                        compute_us: timing.compute_us,
                        barrier_wait_us: timing.barrier_wait_us,
                        rows: timing.rows,
                        commits: timing.commits,
                    });
                    self.samples.push(TelemetrySample {
                        node,
                        round,
                        timing,
                    });
                }
                Ok(m) => return Ok(m),
                // After recovery the replacement re-emits everything the
                // lost worker owed; loop back into recv for it.
                Err(e) => self.recover(e)?,
            }
        }
    }

    fn stats(&self) -> Option<LinkStats> {
        // The slot's whole-session totals: every replaced connection's
        // counters plus the live one's.
        let mut stats = self.stats.clone();
        stats.merge(self.tcp.link_stats());
        Some(stats)
    }

    fn recovery(&self) -> Option<RecoveryFootprint> {
        Some(RecoveryFootprint {
            node: self.node,
            log_frames: self.log.len() as u64,
            log_bytes: self.log.iter().map(|m| m.resident_bytes() as u64).sum(),
            checkpoint_round: self.ckpt.as_ref().map_or(0, |(r, _)| *r),
            checkpoint_bytes: self.ckpt.as_ref().map_or(0, |(_, b)| b.len() as u64),
            respawns: self.respawns,
        })
    }

    fn telemetry(&self) -> Option<Vec<TelemetrySample>> {
        Some(self.samples.clone())
    }
}

/// Runs a cluster schedule over real worker OS processes spawned from
/// `pc.worker` (default: the current executable — correct for the
/// `isasgd` CLI). See the module docs for the supervision contract.
pub fn run_fleet<L: Loss>(
    ds: &Dataset,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
    pc: &ProcessConfig,
) -> Result<ClusterRun, ClusterError> {
    let program = match &pc.worker {
        Some(p) => PathBuf::from(p),
        None => std::env::current_exe().map_err(|e| {
            ClusterError::InvalidConfig(format!("cannot locate worker binary: {e}"))
        })?,
    };
    run_fleet_with(
        ds,
        obj,
        cfg,
        pc,
        CommandSpawner::new(program, pc.chaos_kill),
    )
}

/// [`run_fleet`] with a caller-supplied [`WorkerSpawner`] — the test
/// seam that lets harnesses run protocol-faithful workers on threads
/// (or inject handshake abuse) without a separate binary.
pub fn run_fleet_with<L: Loss, S: WorkerSpawner>(
    ds: &Dataset,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
    pc: &ProcessConfig,
    spawner: S,
) -> Result<ClusterRun, ClusterError> {
    validate(cfg, ds)?;
    if !wire_known_loss(obj.loss.name()) {
        return Err(ClusterError::InvalidConfig(format!(
            "loss '{}' cannot cross the process boundary (wire-known: logistic, \
             squared_hinge, squared)",
            obj.loss.name()
        )));
    }
    if let Some((victim, round)) = pc.chaos_kill {
        // An out-of-range chaos target would silently never fire —
        // turning a supervision-validation run into a false pass.
        if victim as usize >= cfg.nodes || round == 0 || round > cfg.rounds as u64 {
            return Err(ClusterError::InvalidConfig(format!(
                "--chaos-kill {victim}:{round} is out of range for {} nodes / {} rounds \
                 (nodes are 0-based, rounds are 1-based)",
                cfg.nodes, cfg.rounds
            )));
        }
    }
    // The run plan (weigh → decide → rearrange → shard) is computed
    // once, up front: the fleet streams each worker its shard of the
    // *same* reordered view the round driver evaluates against, so the
    // two can never disagree. Per-node shard chunks are encoded here,
    // before binding or spawning anything — an unencodable shard is a
    // deterministic coordinator-side configuration error, not a
    // per-worker handshake failure to retry against a deadline.
    let plan = plan_run(ds, obj, cfg)?;
    let shard_frames: Vec<Vec<Vec<u8>>> = (0..cfg.nodes)
        .map(|k| {
            let t0 = monotonic_us();
            let frames = encode_dataset_shard_chunks(
                k as u32,
                plan.ranges[k].clone(),
                &plan.view.data,
                &plan.reordered_weights,
            );
            isasgd_obs::emit(&Event::ShardStream {
                node: k as u64,
                rows: plan.ranges[k].len() as u64,
                bytes: frames.iter().map(|f| f.len() as u64).sum(),
                chunks: frames.len() as u64,
                encode_us: monotonic_us() - t0,
            });
            frames
        })
        .collect();
    // Chunks target ~256 KiB; only a single row wider than MAX_FRAME
    // can push one over the cap (chunks always carry ≥ 1 row).
    for chunk in shard_frames.iter().flatten() {
        if chunk.len() > MAX_FRAME {
            return Err(ClusterError::InvalidConfig(format!(
                "a dataset shard chunk is {} bytes, above the {MAX_FRAME}-byte \
                 frame cap — a single row is too wide to ship to worker processes",
                chunk.len()
            )));
        }
    }
    let listener = TcpListener::bind(&pc.bind)
        .map_err(|e| ClusterError::Worker(format!("bind {}: {e}", pc.bind)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ClusterError::Worker(format!("local_addr: {e}")))?
        .to_string();
    let session = SessionConfig {
        nodes: cfg.nodes as u32,
        rounds: cfg.rounds as u64,
        local_epochs: cfg.local_epochs as u32,
        step_size: cfg.step_size,
        seed: cfg.seed,
        round_timeout_ms: pc.round_timeout_ms,
        importance: cfg.importance,
        sampling: cfg.sampling,
        obs_model: cfg.obs_model,
        commit: cfg.commit,
        loss: obj.loss.name().to_string(),
        reg: obj.reg,
        encoding: pc.encoding,
        checkpoint_every: pc.checkpoint_every,
        telemetry: cfg.telemetry,
    };
    let shared = Arc::new(Mutex::new(FleetShared {
        listener,
        addr,
        spawner,
        session,
        shard_frames,
        pc: pc.clone(),
    }));

    // Populate sequentially: spawn worker k, admit worker k. Serializing
    // spawn and admission pins the node-id ↔ process pairing (the chaos
    // hook and error attribution depend on it).
    let mut links: Vec<SupervisedLink<S>> = Vec::with_capacity(cfg.nodes);
    for node in 0..cfg.nodes as u32 {
        let mut sh = shared.lock().expect("fleet state poisoned");
        let addr = sh.addr.clone();
        let handle = sh.spawner.spawn(node, &addr, false)?;
        let t0 = monotonic_us();
        let tcp = sh.accept_worker(node)?;
        drop(sh);
        isasgd_obs::emit(&Event::Handshake {
            node: u64::from(node),
            respawn: false,
            dur_us: monotonic_us() - t0,
        });
        links.push(SupervisedLink {
            shared: shared.clone(),
            node,
            tcp,
            handle,
            log: Vec::new(),
            respawns_left: pc.max_respawns,
            policy: pc.on_loss,
            stats: LinkStats::default(),
            ckpt: None,
            respawns: 0,
            samples: Vec::new(),
        });
    }

    let result = coordinate(&mut links, &plan, obj, cfg, None);
    // Dropping the links closes every socket first, then reaps every
    // worker (grace, then kill) — success and failure paths alike end
    // with no leaked processes.
    drop(links);
    match result {
        Err(ClusterError::Transport(TransportError::WorkerLost { node, detail })) => {
            Err(ClusterError::WorkerLost { node, detail })
        }
        r => r,
    }
}
