//! Cluster configuration, per-node state, and the top-level [`run`]
//! entry point.
//!
//! The round loop itself lives in [`crate::coordinator`]; this module
//! owns what surrounds it: [`ClusterConfig`] (topology, schedule, and
//! the [`TransportConfig`] choosing how coordinator and workers talk),
//! validation, and the [`ClusterRun`] result type.

use crate::coordinator::run_with_links;
use crate::sync::SyncStrategy;
use crate::transport::{
    in_process_links, tcp_loopback_links, LinkStats, RecoveryFootprint, TelemetrySample,
    TransportConfig, TransportError,
};
use isasgd_balance::BalancePolicy;
use isasgd_losses::{ImportanceScheme, Loss, Objective};
use isasgd_metrics::Trace;
use isasgd_sampling::{CommitPolicy, ObservationModel, SamplingStrategy, ScheduleStream};
use isasgd_sparse::{Dataset, SparseError};
use std::ops::Range;

/// Cluster topology and schedule.
///
/// `Clone` (deliberately not `Copy`): [`TransportConfig`] carries a bind
/// address, so configs are heap-owning values now — callers thread them
/// by reference or clone explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes `numT` (paper Algorithm 4's process count).
    pub nodes: usize,
    /// Synchronization rounds.
    pub rounds: usize,
    /// Local epochs each node runs between synchronizations.
    pub local_epochs: usize,
    /// Step size λ.
    pub step_size: f64,
    /// Importance scheme; [`ImportanceScheme::Uniform`] gives plain
    /// local SGD (the distributed-ASGD baseline).
    pub importance: ImportanceScheme,
    /// Shard rearrangement policy (Algorithm 4 lines 2–6).
    pub balance: BalancePolicy,
    /// Model reducer at each round.
    pub sync: SyncStrategy,
    /// Sampling strategy each node draws from. [`SamplingStrategy::Static`]
    /// reproduces the paper's offline sequences; `Adaptive` re-weights
    /// every node's local distribution from observed gradient magnitudes
    /// (Alain et al.'s per-node adaptive distributions). Ignored (forced
    /// uniform) when `importance` is [`ImportanceScheme::Uniform`].
    pub sampling: SamplingStrategy,
    /// How observed gradient scales become importance observations for
    /// adaptive nodes (see [`ObservationModel`]); the shared
    /// `FeedbackProtocol` applies it identically to the `isasgd-core`
    /// engine's convention.
    pub obs_model: ObservationModel,
    /// When adaptive nodes fold accumulated observations into their live
    /// distribution: at local-epoch boundaries, or every `k` observations
    /// (intra-epoch adaptivity — node loops stream draws, so mid-epoch
    /// commits steer the remaining draws of the same pass).
    pub commit: CommitPolicy,
    /// How coordinator↔worker messages travel: typed channels between
    /// threads ([`TransportConfig::InProcess`], default) or real
    /// loopback sockets ([`TransportConfig::Tcp`]). Bit-identical
    /// results either way (pinned by `tests/equivalence.rs`).
    pub transport: TransportConfig,
    /// Master seed.
    pub seed: u64,
    /// Worker checkpoint period in rounds (0 = off). Every
    /// `checkpoint_every` rounds each worker ships a snapshot of its
    /// deterministic state to the coordinator, which uses it to bound
    /// respawn recovery (and replay-log memory) by one interval
    /// instead of the whole session. Checkpointing never changes the
    /// computation — runs stay bit-identical with it on or off.
    pub checkpoint_every: u64,
    /// When set, workers ship a per-round [`Message::Telemetry`] timing
    /// sample (compute time, barrier wait, draws, commits) that the
    /// process-fleet supervisor collects into [`ClusterRun::telemetry`].
    /// Plain transports drop the frames. Observability-only and inert:
    /// the equivalence tests pin bit-identical models with this on and
    /// off.
    ///
    /// [`Message::Telemetry`]: crate::wire::Message::Telemetry
    pub telemetry: bool,
    /// Test-only reintroduction of fixed protocol bugs (all off by
    /// default); exists so the `isasgd-check` model checker can prove
    /// it rediscovers each historical race. Never crosses the wire.
    pub bugs: ProtocolBugs,
}

/// Switches that resurrect historical protocol bugs (each fixed in
/// PR 4) behind test-only flags, so the model checker's counterexample
/// corpus can demonstrate that disabling a fix is caught again.
///
/// Production paths never set these; they default to all-off, are
/// excluded from [`SessionConfig`](crate::wire::SessionConfig), and
/// exist purely so a regression test can assert "the checker finds
/// this bug".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolBugs {
    /// Bug 1 (reorder-deadlock): while awaiting its `ShardRebalance`
    /// assignment, a worker *drops* round ≥ 1 barrier/model traffic
    /// that arrives early instead of stashing it for replay.
    pub drop_preassignment_traffic: bool,
    /// Bug 2a (teardown race): the coordinator tears its link
    /// endpoints down as soon as the round driver finishes, instead of
    /// keeping them alive until every worker thread has joined.
    pub eager_link_teardown: bool,
    /// Bug 2b (strict extras): injected extra copies (duplicates,
    /// held-message flushes) propagate `Closed` errors instead of
    /// being delivered best-effort. Honoured by the model transport in
    /// `isasgd-check`; the real
    /// [`FaultingTransport`](crate::transport::FaultingTransport)
    /// keeps the fixed best-effort behaviour unconditionally.
    pub strict_extra_sends: bool,
}

impl ProtocolBugs {
    /// True when any bug flag is set (used to guard release paths).
    pub fn any(&self) -> bool {
        self.drop_preassignment_traffic || self.eager_link_teardown || self.strict_extra_sends
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            rounds: 10,
            local_epochs: 1,
            step_size: 0.5,
            importance: ImportanceScheme::GradNormBound { radius: 1.0 },
            balance: BalancePolicy::default(),
            sync: SyncStrategy::Average,
            sampling: SamplingStrategy::Static,
            obs_model: ObservationModel::GradNorm,
            commit: CommitPolicy::EpochBoundary,
            transport: TransportConfig::InProcess,
            seed: 0x15A5_6D00,
            checkpoint_every: 0,
            telemetry: false,
            bugs: ProtocolBugs::default(),
        }
    }
}

/// One synchronization round's evaluation of the consensus model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundPoint {
    /// Round number (1-based; 0 is the initial model).
    pub round: usize,
    /// Global objective `F(w)` of the consensus model.
    pub objective: f64,
    /// RMSE (paper §4 definition).
    pub rmse: f64,
    /// Misclassification fraction.
    pub error_rate: f64,
}

/// One node: a shard plus its private draw stream and model replica —
/// the state a [`NodeRuntime`](crate::NodeRuntime) owns between rounds.
///
/// The node consumes draws from the same [`ScheduleStream`] mechanism
/// the `isasgd-core` engine workers use — one stream per shard, owning
/// the node's sampler and private draw RNG — so a single-node cluster
/// run stays bit-equal to the sequential engine (pinned by
/// `tests/equivalence.rs`, on the streamed intra-epoch path too).
/// Observation scaling and norm precompute live in the worker's
/// `FeedbackProtocol`; the node holds no feedback state of its own
/// beyond the sampler's pending window.
pub struct Node {
    /// Row range into the (rearranged) dataset.
    pub range: Range<usize>,
    /// The node's draw stream (wraps its uniform, static-IS, or
    /// adaptive-IS sampler and its private RNG).
    pub(crate) stream: ScheduleStream,
    /// The node's local model replica.
    pub model: Vec<f64>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node").field("range", &self.range).finish()
    }
}

/// Result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Consensus-model trace; one point per round. `wall_secs` is
    /// cumulative round time as the coordinator saw it: parallel local
    /// training (max over nodes) plus transport round-trips.
    pub trace: Trace,
    /// Final consensus model.
    pub model: Vec<f64>,
    /// Per-round metrics (redundant with `trace`, typed for convenience
    /// — and deliberately wall-clock-free, so traces are bit-comparable
    /// across transports).
    pub rounds: Vec<RoundPoint>,
    /// Max/mean ratio of the shard importance sums Φ_a — 1.0 is the
    /// perfectly balanced Eq. 19 condition.
    pub phi_imbalance: f64,
    /// Whether balancing was applied by the policy.
    pub balanced: bool,
    /// Measured ρ of the importance weights.
    pub rho: f64,
    /// Number of synchronizations performed.
    pub syncs: usize,
    /// Observation entries the coordinator applied to its feedback
    /// mirror (0 for non-adaptive runs; counts duplicate deliveries —
    /// whether transport-injected or re-sent by a respawned worker's
    /// session replay — which the mirror's per-row max semantics
    /// absorb, so the mirror state stays bit-equal even when this
    /// counter exceeds the undisturbed run's).
    pub feedback_rows: usize,
    /// Max/mean shard mass of the coordinator's mirrored (observed)
    /// distributions after the final round — the feedback-side analogue
    /// of `phi_imbalance`. `None` for non-adaptive runs.
    pub observed_phi_imbalance: Option<f64>,
    /// Per-link wire traffic counters (tx/rx bytes and frames by frame
    /// kind), one entry per worker link for transports that count
    /// (`tcp`, `process`); empty for in-process channel runs.
    /// Deliberately excluded from bit-equality comparisons: counters
    /// measure the wire, not the computation.
    pub net: Vec<LinkStats>,
    /// Per-slot respawn-recovery footprints at run end (replay-log
    /// size, stored checkpoint round/bytes, respawn count), one entry
    /// per worker link for transports that supervise (`process`);
    /// empty otherwise. Like `net`, excluded from bit-equality: it
    /// measures supervision, not the computation.
    pub recovery: Vec<RecoveryFootprint>,
    /// Per-round worker timing samples absorbed from
    /// [`Message::Telemetry`] frames, in arrival order — populated only
    /// when [`ClusterConfig::telemetry`] is set and the transport
    /// supervises links (`process`); empty otherwise. Respawn recovery
    /// replays recomputed rounds, so a round may appear more than once
    /// per node (kept visible deliberately). Like `net`/`recovery`,
    /// excluded from bit-equality: it measures timing, not the
    /// computation.
    ///
    /// [`Message::Telemetry`]: crate::wire::Message::Telemetry
    pub telemetry: Vec<TelemetrySample>,
}

/// Configuration/validation/runtime errors.
#[derive(Debug)]
pub enum ClusterError {
    /// Bad parameter combination.
    InvalidConfig(String),
    /// Propagated dataset error.
    Sparse(SparseError),
    /// Transport-level failure (socket i/o, peer hangup, wire decode).
    Transport(TransportError),
    /// A worker runtime failed.
    Worker(String),
    /// A supervised worker *process* was lost (connection death or a
    /// missed per-round deadline) and the fleet could not — or, under
    /// [`WorkerLossPolicy::Fail`](crate::WorkerLossPolicy::Fail), was
    /// told not to — recover it.
    WorkerLost {
        /// The lost worker's node id.
        node: u32,
        /// Root cause.
        detail: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::InvalidConfig(s) => write!(f, "invalid cluster config: {s}"),
            ClusterError::Sparse(e) => write!(f, "dataset error: {e}"),
            ClusterError::Transport(e) => write!(f, "transport error: {e}"),
            ClusterError::Worker(s) => write!(f, "worker error: {s}"),
            ClusterError::WorkerLost { node, detail } => {
                write!(f, "worker {node} lost: {detail}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<SparseError> for ClusterError {
    fn from(e: SparseError) -> Self {
        ClusterError::Sparse(e)
    }
}

impl From<TransportError> for ClusterError {
    fn from(e: TransportError) -> Self {
        ClusterError::Transport(e)
    }
}

/// The sampling strategy nodes actually run: uniform importance forces
/// uniform sampling (there is nothing to weight by).
pub(crate) fn effective_strategy(cfg: &ClusterConfig) -> SamplingStrategy {
    if matches!(cfg.importance, ImportanceScheme::Uniform) {
        SamplingStrategy::Uniform
    } else {
        cfg.sampling
    }
}

/// Validates a config against a dataset (shared by every entry point).
pub(crate) fn validate(cfg: &ClusterConfig, ds: &Dataset) -> Result<(), ClusterError> {
    if cfg.nodes == 0 || cfg.nodes > ds.n_samples() {
        return Err(ClusterError::InvalidConfig(format!(
            "nodes = {} must be in 1..={}",
            cfg.nodes,
            ds.n_samples()
        )));
    }
    if cfg.rounds == 0 || cfg.local_epochs == 0 {
        return Err(ClusterError::InvalidConfig(
            "rounds and local_epochs must be ≥ 1".into(),
        ));
    }
    if !(cfg.step_size.is_finite() && cfg.step_size > 0.0) {
        return Err(ClusterError::InvalidConfig(format!(
            "step size {} must be positive",
            cfg.step_size
        )));
    }
    // Same guard as the core plan: intra-epoch commits only exist for
    // adaptive samplers; anything else would silently run boundary
    // semantics.
    if matches!(cfg.commit, CommitPolicy::EveryK(_))
        && (cfg.sampling != SamplingStrategy::Adaptive
            || matches!(cfg.importance, ImportanceScheme::Uniform))
    {
        return Err(ClusterError::InvalidConfig(format!(
            "commit policy '{}' needs adaptive sampling (only adaptive samplers \
             re-weight from observations); use sampling: Adaptive with a \
             non-uniform importance scheme, or commit: EpochBoundary",
            cfg.commit.name()
        )));
    }
    Ok(())
}

/// Runs the distributed schedule: rearrange → shard → (local epochs ∥
/// sync)*, over the transport [`ClusterConfig::transport`] selects.
///
/// `InProcess` wires worker threads with typed channels (sharing one
/// reconstructed dataset view behind an `Arc` — the in-process fast
/// path), `Tcp` wires worker threads with real loopback sockets
/// speaking the [`wire`](crate::wire) codec, and `Process` spawns
/// genuine `isasgd worker` OS processes under the
/// [`fleet`](crate::fleet) supervisor. Results are bit-identical
/// across all three for the same seed and config (pinned by
/// `tests/equivalence.rs` / `tests/process_fleet.rs` and the CLI e2e
/// suite).
pub fn run<L: Loss>(
    ds: &Dataset,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
) -> Result<ClusterRun, ClusterError> {
    validate(cfg, ds)?;
    match &cfg.transport {
        TransportConfig::InProcess => crate::coordinator::run_with_links_inner(
            ds,
            obj,
            cfg,
            in_process_links(cfg.nodes),
            true,
            || {},
        ),
        TransportConfig::Tcp { bind, encoding } => {
            let mut links = tcp_loopback_links(cfg.nodes, bind).map_err(TransportError::Io)?;
            for (coord_end, worker_end) in links.iter_mut() {
                coord_end.set_encoding(*encoding);
                worker_end.set_encoding(*encoding);
            }
            run_with_links(ds, obj, cfg, links)
        }
        TransportConfig::Process(pc) => crate::fleet::run_fleet(ds, obj, cfg, pc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isasgd_losses::{LogisticLoss, Regularizer};
    use isasgd_sparse::DatasetBuilder;

    fn separable(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(6);
        for i in 0..n {
            let j = (i % 3) as u32;
            if i % 2 == 0 {
                b.push_row(&[(j, 1.0), (3 + j, 0.5)], 1.0).unwrap();
            } else {
                b.push_row(&[(j, -1.0), (3 + j, -0.5)], -1.0).unwrap();
            }
        }
        b.finish()
    }

    /// Heavy-tailed norms, importance-sorted — the adversarial layout of
    /// the Fig. 2 discussion.
    fn sorted_skewed(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(8);
        for i in 0..n {
            let norm = 0.2 + 4.0 * (i as f64 / n as f64).powi(3);
            let j = (i % 4) as u32;
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
                .unwrap();
        }
        b.finish()
    }

    fn obj() -> Objective<LogisticLoss> {
        Objective::new(LogisticLoss, Regularizer::None)
    }

    #[test]
    fn converges_on_separable_data() {
        let ds = separable(400);
        let cfg = ClusterConfig {
            rounds: 8,
            ..ClusterConfig::default()
        };
        let r = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(r.syncs, 8);
        assert_eq!(r.rounds.len(), 9);
        let last = r.rounds.last().unwrap();
        assert_eq!(last.error_rate, 0.0, "separable data must fit");
        assert!(last.objective < r.rounds[0].objective);
        // Trace epochs advance by local_epochs per round.
        assert_eq!(r.trace.points.last().unwrap().epoch, 8.0);
    }

    #[test]
    fn single_node_is_sequential_sgd() {
        let ds = separable(200);
        let cfg = ClusterConfig {
            nodes: 1,
            rounds: 3,
            importance: ImportanceScheme::Uniform,
            ..ClusterConfig::default()
        };
        let r = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(r.phi_imbalance, 1.0, "one shard is trivially balanced");
        assert_eq!(r.rounds.last().unwrap().error_rate, 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = separable(300);
        let cfg = ClusterConfig {
            seed: 42,
            ..ClusterConfig::default()
        };
        let a = run(&ds, &obj(), &cfg).unwrap();
        let b = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(a.model, b.model);
        let c = run(&ds, &obj(), &ClusterConfig { seed: 43, ..cfg }).unwrap();
        assert_ne!(a.model, c.model);
    }

    #[test]
    fn tcp_transport_matches_in_process() {
        // The quick transport-parity check (the exhaustive matrix lives
        // in tests/equivalence.rs): same seed/config over real loopback
        // sockets must reproduce the channel-backed run bit-for-bit.
        let ds = sorted_skewed(240);
        let cfg = ClusterConfig {
            nodes: 3,
            rounds: 3,
            importance: ImportanceScheme::LipschitzSmoothness,
            sampling: SamplingStrategy::Adaptive,
            ..ClusterConfig::default()
        };
        let inproc = run(&ds, &obj(), &cfg).unwrap();
        let tcp_cfg = ClusterConfig {
            transport: TransportConfig::tcp(),
            ..cfg
        };
        let tcp = run(&ds, &obj(), &tcp_cfg).unwrap();
        assert_eq!(inproc.model, tcp.model, "transports diverged");
        assert_eq!(inproc.rounds, tcp.rounds, "RoundPoint traces diverged");
        assert_eq!(inproc.feedback_rows, tcp.feedback_rows);
        assert_eq!(inproc.observed_phi_imbalance, tcp.observed_phi_imbalance);
    }

    #[test]
    fn adaptive_runs_report_mirror_stats() {
        let ds = sorted_skewed(300);
        let cfg = ClusterConfig {
            nodes: 3,
            rounds: 2,
            importance: ImportanceScheme::LipschitzSmoothness,
            sampling: SamplingStrategy::Adaptive,
            ..ClusterConfig::default()
        };
        let r = run(&ds, &obj(), &cfg).unwrap();
        assert!(
            r.feedback_rows > 0,
            "adaptive rounds must ship feedback batches"
        );
        let observed = r.observed_phi_imbalance.expect("adaptive runs mirror");
        assert!(observed >= 1.0 - 1e-9, "max/mean is ≥ 1, got {observed}");
        // Non-adaptive runs carry no mirror.
        let stat = run(
            &ds,
            &obj(),
            &ClusterConfig {
                sampling: SamplingStrategy::Static,
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(stat.feedback_rows, 0);
        assert_eq!(stat.observed_phi_imbalance, None);
    }

    #[test]
    fn balancing_equalizes_phi_on_sorted_data() {
        let ds = sorted_skewed(1000);
        let base = ClusterConfig {
            nodes: 8,
            rounds: 2,
            importance: ImportanceScheme::LipschitzSmoothness,
            ..ClusterConfig::default()
        };
        let identity = run(
            &ds,
            &obj(),
            &ClusterConfig {
                balance: BalancePolicy::Identity,
                ..base.clone()
            },
        )
        .unwrap();
        let balanced = run(
            &ds,
            &obj(),
            &ClusterConfig {
                balance: BalancePolicy::ForceBalance,
                ..base.clone()
            },
        )
        .unwrap();
        let greedy = run(
            &ds,
            &obj(),
            &ClusterConfig {
                balance: BalancePolicy::ForceGreedy,
                ..base
            },
        )
        .unwrap();
        assert!(
            identity.phi_imbalance > 1.5,
            "sorted layout must be badly imbalanced, got {}",
            identity.phi_imbalance
        );
        assert!(
            balanced.phi_imbalance < identity.phi_imbalance,
            "head-tail {} must improve on identity {}",
            balanced.phi_imbalance,
            identity.phi_imbalance
        );
        assert!(
            greedy.phi_imbalance < 1.05,
            "greedy-LPT should be near-perfect, got {}",
            greedy.phi_imbalance
        );
        assert!(balanced.balanced);
        assert!(!identity.balanced);
    }

    #[test]
    fn more_local_epochs_cover_more_ground_per_round() {
        let ds = separable(400);
        let short = run(
            &ds,
            &obj(),
            &ClusterConfig {
                rounds: 2,
                local_epochs: 1,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let long = run(
            &ds,
            &obj(),
            &ClusterConfig {
                rounds: 2,
                local_epochs: 4,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        assert!(
            long.rounds.last().unwrap().objective <= short.rounds.last().unwrap().objective,
            "4 local epochs/round should reach a lower objective after 2 rounds"
        );
        assert_eq!(long.trace.points.last().unwrap().epoch, 8.0);
    }

    #[test]
    fn validation_errors() {
        let ds = separable(10);
        let o = obj();
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                nodes: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                nodes: 11,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                rounds: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                local_epochs: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                step_size: -0.5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                step_size: f64::NAN,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn every_k_without_adaptive_sampling_is_rejected() {
        // Same contract as the core plan: intra-epoch commits with a
        // sampler that ignores feedback would silently run boundary
        // semantics — reject loudly instead.
        let ds = separable(100);
        for (sampling, importance) in [
            (
                SamplingStrategy::Static,
                ImportanceScheme::LipschitzSmoothness,
            ),
            (SamplingStrategy::Adaptive, ImportanceScheme::Uniform),
        ] {
            let cfg = ClusterConfig {
                sampling,
                importance,
                commit: CommitPolicy::EveryK(16),
                ..ClusterConfig::default()
            };
            match run(&ds, &obj(), &cfg) {
                Err(ClusterError::InvalidConfig(msg)) => {
                    assert!(msg.contains("adaptive"), "must point at the fix: {msg}");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_k_adaptive_nodes_run_deterministically() {
        let ds = sorted_skewed(300);
        let cfg = ClusterConfig {
            nodes: 3,
            rounds: 3,
            importance: ImportanceScheme::LipschitzSmoothness,
            sampling: SamplingStrategy::Adaptive,
            commit: CommitPolicy::EveryK(16),
            ..ClusterConfig::default()
        };
        let a = run(&ds, &obj(), &cfg).unwrap();
        let b = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(a.model, b.model, "streamed node runs must reproduce");
        let boundary = run(
            &ds,
            &obj(),
            &ClusterConfig {
                commit: CommitPolicy::EpochBoundary,
                ..cfg
            },
        )
        .unwrap();
        assert_ne!(
            a.model, boundary.model,
            "mid-epoch commits must steer the nodes' remaining draws"
        );
    }

    #[test]
    fn adaptive_sampling_runs_and_differs_from_static() {
        let ds = sorted_skewed(400);
        let base = ClusterConfig {
            nodes: 4,
            rounds: 4,
            importance: ImportanceScheme::LipschitzSmoothness,
            ..ClusterConfig::default()
        };
        let stat = run(&ds, &obj(), &base).unwrap();
        let adaptive_cfg = ClusterConfig {
            sampling: SamplingStrategy::Adaptive,
            ..base
        };
        let a = run(&ds, &obj(), &adaptive_cfg).unwrap();
        let b = run(&ds, &obj(), &adaptive_cfg).unwrap();
        assert_eq!(
            a.model, b.model,
            "adaptive cluster runs must be reproducible"
        );
        assert_ne!(a.model, stat.model, "adaptive must actually change the run");
        assert!(a.model.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn uniform_importance_gives_unit_corrections() {
        let ds = separable(100);
        let cfg = ClusterConfig {
            importance: ImportanceScheme::Uniform,
            rounds: 1,
            ..ClusterConfig::default()
        };
        let r = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(r.trace.algorithm, "Cluster-SGD");
        assert!(
            (r.phi_imbalance - 1.0).abs() < 0.01,
            "uniform weights ⇒ equal Φ"
        );
    }
}
