//! The cluster simulation: nodes, local training, synchronization rounds.

use crate::sync::{average_models, SyncStrategy};
use isasgd_balance::{decide, BalancePolicy};
use isasgd_losses::{importance_weights, ImportanceScheme, Loss, Objective};
use isasgd_metrics::{Trace, TracePoint};
use isasgd_sampling::rng::derive_seeds;
use isasgd_sampling::{
    build_sampler, draw_rngs, CommitPolicy, FeedbackProtocol, ObservationModel, SamplingStrategy,
    ScheduleStream, SequenceMode,
};
use isasgd_sparse::dataset::shard_ranges;
use isasgd_sparse::{Dataset, SparseError};
use std::ops::Range;
use std::time::Instant;

/// Cluster topology and schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes `numT` (paper Algorithm 4's process count).
    pub nodes: usize,
    /// Synchronization rounds.
    pub rounds: usize,
    /// Local epochs each node runs between synchronizations.
    pub local_epochs: usize,
    /// Step size λ.
    pub step_size: f64,
    /// Importance scheme; [`ImportanceScheme::Uniform`] gives plain
    /// local SGD (the distributed-ASGD baseline).
    pub importance: ImportanceScheme,
    /// Shard rearrangement policy (Algorithm 4 lines 2–6).
    pub balance: BalancePolicy,
    /// Model reducer at each round.
    pub sync: SyncStrategy,
    /// Sampling strategy each node draws from. [`SamplingStrategy::Static`]
    /// reproduces the paper's offline sequences; `Adaptive` re-weights
    /// every node's local distribution from observed gradient magnitudes
    /// (Alain et al.'s per-node adaptive distributions). Ignored (forced
    /// uniform) when `importance` is [`ImportanceScheme::Uniform`].
    pub sampling: SamplingStrategy,
    /// How observed gradient scales become importance observations for
    /// adaptive nodes (see [`ObservationModel`]); the shared
    /// [`FeedbackProtocol`] applies it identically to the `isasgd-core`
    /// engine's convention.
    pub obs_model: ObservationModel,
    /// When adaptive nodes fold accumulated observations into their live
    /// distribution: at local-epoch boundaries, or every `k` observations
    /// (intra-epoch adaptivity — node loops stream draws, so mid-epoch
    /// commits steer the remaining draws of the same pass).
    pub commit: CommitPolicy,
    /// Master seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            rounds: 10,
            local_epochs: 1,
            step_size: 0.5,
            importance: ImportanceScheme::GradNormBound { radius: 1.0 },
            balance: BalancePolicy::default(),
            sync: SyncStrategy::Average,
            sampling: SamplingStrategy::Static,
            obs_model: ObservationModel::GradNorm,
            commit: CommitPolicy::EpochBoundary,
            seed: 0x15A5_6D00,
        }
    }
}

/// One synchronization round's evaluation of the consensus model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundPoint {
    /// Round number (1-based; 0 is the initial model).
    pub round: usize,
    /// Global objective `F(w)` of the consensus model.
    pub objective: f64,
    /// RMSE (paper §4 definition).
    pub rmse: f64,
    /// Misclassification fraction.
    pub error_rate: f64,
}

/// One simulated node: a shard plus its private draw stream.
///
/// The node consumes draws from the same [`ScheduleStream`] mechanism
/// the `isasgd-core` engine workers use — one stream per shard, owning
/// the node's sampler and private draw RNG — so a single-node cluster
/// run stays bit-equal to the sequential engine (pinned by
/// `tests/equivalence.rs`, on the streamed intra-epoch path too).
/// Observation scaling and norm precompute live in the run-level
/// [`FeedbackProtocol`] shared by all nodes; the node holds no feedback
/// state of its own beyond the sampler's pending window.
pub struct Node {
    /// Row range into the (rearranged) dataset.
    pub range: Range<usize>,
    /// The node's draw stream (wraps its uniform, static-IS, or
    /// adaptive-IS sampler and its private RNG).
    stream: ScheduleStream,
    /// The node's local model replica.
    pub model: Vec<f64>,
    /// Shard importance sum Φ_a (paper Eq. 18).
    pub phi: f64,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("range", &self.range)
            .field("phi", &self.phi)
            .finish()
    }
}

/// Result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Consensus-model trace; one point per round, `wall_secs` is
    /// cumulative local-training time (communication modelled as free —
    /// it is identical between the compared configurations).
    pub trace: Trace,
    /// Final consensus model.
    pub model: Vec<f64>,
    /// Per-round metrics (redundant with `trace`, typed for convenience).
    pub rounds: Vec<RoundPoint>,
    /// Max/mean ratio of the shard importance sums Φ_a — 1.0 is the
    /// perfectly balanced Eq. 19 condition.
    pub phi_imbalance: f64,
    /// Whether balancing was applied by the policy.
    pub balanced: bool,
    /// Measured ρ of the importance weights.
    pub rho: f64,
    /// Number of synchronizations performed.
    pub syncs: usize,
}

/// Configuration/validation errors.
#[derive(Debug)]
pub enum ClusterError {
    /// Bad parameter combination.
    InvalidConfig(String),
    /// Propagated dataset error.
    Sparse(SparseError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::InvalidConfig(s) => write!(f, "invalid cluster config: {s}"),
            ClusterError::Sparse(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<SparseError> for ClusterError {
    fn from(e: SparseError) -> Self {
        ClusterError::Sparse(e)
    }
}

/// Runs the simulation: rearrange → shard → (local epochs ∥ sync)*.
pub fn run<L: Loss>(
    ds: &Dataset,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
) -> Result<ClusterRun, ClusterError> {
    if cfg.nodes == 0 || cfg.nodes > ds.n_samples() {
        return Err(ClusterError::InvalidConfig(format!(
            "nodes = {} must be in 1..={}",
            cfg.nodes,
            ds.n_samples()
        )));
    }
    if cfg.rounds == 0 || cfg.local_epochs == 0 {
        return Err(ClusterError::InvalidConfig(
            "rounds and local_epochs must be ≥ 1".into(),
        ));
    }
    if !(cfg.step_size.is_finite() && cfg.step_size > 0.0) {
        return Err(ClusterError::InvalidConfig(format!(
            "step size {} must be positive",
            cfg.step_size
        )));
    }
    // Same guard as the core plan: intra-epoch commits only exist for
    // adaptive samplers; anything else would silently run boundary
    // semantics.
    if matches!(cfg.commit, CommitPolicy::EveryK(_))
        && (cfg.sampling != SamplingStrategy::Adaptive
            || matches!(cfg.importance, ImportanceScheme::Uniform))
    {
        return Err(ClusterError::InvalidConfig(format!(
            "commit policy '{}' needs adaptive sampling (only adaptive samplers \
             re-weight from observations); use sampling: Adaptive with a \
             non-uniform importance scheme, or commit: EpochBoundary",
            cfg.commit.name()
        )));
    }

    let n = ds.n_samples();
    let d = ds.dim();
    let seeds = derive_seeds(cfg.seed, cfg.nodes + 1);

    // Algorithm 4 lines 2–6: weigh, decide, rearrange.
    let weights = importance_weights(ds, &obj.loss, obj.reg, cfg.importance);
    let decision = decide(&weights, cfg.balance, seeds[cfg.nodes], cfg.nodes);
    let data = ds.reordered(&decision.order)?;
    let reordered_weights: Vec<f64> = decision.order.iter().map(|&i| weights[i]).collect();

    let ranges = shard_ranges(n, cfg.nodes)?;
    let uniform = matches!(cfg.importance, ImportanceScheme::Uniform);
    // Draw streams come from the same derivation the engine plan uses,
    // so a node and an engine worker over the same shard and master seed
    // draw identically (pinned by the core↔cluster equivalence test).
    let mut draw_streams = draw_rngs(cfg.seed, cfg.nodes).into_iter();
    let strategy = if uniform {
        SamplingStrategy::Uniform
    } else {
        cfg.sampling
    };
    // The shared feedback protocol owns the observation convention (norm
    // precompute included); built only when nodes actually adapt.
    let protocol = (strategy == SamplingStrategy::Adaptive)
        .then(|| FeedbackProtocol::for_dataset(&data, ranges.to_vec(), cfg.obs_model));
    let mut nodes = Vec::with_capacity(cfg.nodes);
    for (k, r) in ranges.iter().enumerate() {
        let local = &reordered_weights[r.clone()];
        let phi: f64 = local.iter().sum();
        let sampler = build_sampler(
            strategy,
            Some(local),
            r.len(),
            SequenceMode::RegeneratePerEpoch,
            seeds[k],
            cfg.commit,
        )
        .map_err(|e| ClusterError::InvalidConfig(e.to_string()))?;
        nodes.push(Node {
            range: r.clone(),
            stream: ScheduleStream::new(
                sampler,
                draw_streams.next().expect("one stream per node"),
                k,
                r.start,
                r.len(),
            ),
            model: vec![0.0; d],
            phi,
        });
    }
    let mean_phi: f64 = nodes.iter().map(|x| x.phi).sum::<f64>() / cfg.nodes as f64;
    let max_phi = nodes.iter().map(|x| x.phi).fold(0.0, f64::max);
    let phi_imbalance = if mean_phi > 0.0 {
        max_phi / mean_phi
    } else {
        1.0
    };

    let mut trace = Trace::new(
        match strategy {
            SamplingStrategy::Uniform => "Cluster-SGD",
            SamplingStrategy::Static => "Cluster-IS-SGD",
            SamplingStrategy::Adaptive => "Cluster-AIS-SGD",
        },
        "cluster",
        cfg.nodes,
        cfg.step_size,
    );
    let mut rounds = Vec::with_capacity(cfg.rounds + 1);
    let mut consensus = vec![0.0f64; d];
    let m0 = obj.eval(&data, &consensus);
    trace.push(TracePoint {
        epoch: 0.0,
        wall_secs: 0.0,
        objective: m0.objective,
        rmse: m0.rmse,
        error_rate: m0.error_rate,
    });
    rounds.push(RoundPoint {
        round: 0,
        objective: m0.objective,
        rmse: m0.rmse,
        error_rate: m0.error_rate,
    });

    let mut train_secs = 0.0;
    let shard_sizes: Vec<usize> = nodes.iter().map(|x| x.range.len()).collect();
    for round in 1..=cfg.rounds {
        let t0 = Instant::now();
        for node in nodes.iter_mut() {
            // Local training starts from the consensus.
            node.model.copy_from_slice(&consensus);
            for _ in 0..cfg.local_epochs {
                local_epoch(&data, obj, node, protocol.as_ref(), cfg.step_size);
                node.stream.epoch_reset();
            }
        }
        train_secs += t0.elapsed().as_secs_f64();
        let models: Vec<Vec<f64>> = nodes.iter().map(|x| x.model.clone()).collect();
        average_models(&models, &shard_sizes, cfg.sync, &mut consensus);

        let m = obj.eval(&data, &consensus);
        trace.push(TracePoint {
            epoch: (round * cfg.local_epochs) as f64,
            wall_secs: train_secs,
            objective: m.objective,
            rmse: m.rmse,
            error_rate: m.error_rate,
        });
        rounds.push(RoundPoint {
            round,
            objective: m.objective,
            rmse: m.rmse,
            error_rate: m.error_rate,
        });
    }

    Ok(ClusterRun {
        trace,
        model: consensus,
        rounds,
        phi_imbalance,
        balanced: decision.balanced,
        rho: decision.rho,
        syncs: cfg.rounds,
    })
}

/// One local epoch of sequential (IS-)SGD on the node's shard, drawn
/// through the node's [`ScheduleStream`]. Observed gradient scales
/// stream through the shared [`FeedbackProtocol`] — the single scaling
/// convention this runtime shares with the `isasgd-core` engine — into
/// the stream's own sampler (`protocol` is `None` for uniform/static
/// sampling, where feedback is a no-op). Under `CommitPolicy::EveryK`
/// the sampler re-weights mid-epoch and the very next draw sees it,
/// matching the engine's sequential streaming path draw-for-draw.
fn local_epoch<L: Loss>(
    data: &Dataset,
    obj: &Objective<L>,
    node: &mut Node,
    protocol: Option<&FeedbackProtocol>,
    lambda: f64,
) {
    while let Some(d) = node.stream.next_draw() {
        let row = data.row(d.row as usize);
        let margin = obj.margin(&row, &node.model);
        let g = obj.grad_scale(&row, margin);
        let scale = lambda * d.corr;
        obj.apply_sgd_update(&row, -scale * g, scale, &mut node.model);
        if let Some(p) = protocol {
            // Age = steps remaining before the epoch-boundary commit
            // (consumed only by the staleness-discounted model).
            let age = node.stream.remaining();
            node.stream.observe(p, d.row as usize, g.abs(), age);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isasgd_losses::{LogisticLoss, Regularizer};
    use isasgd_sparse::DatasetBuilder;

    fn separable(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(6);
        for i in 0..n {
            let j = (i % 3) as u32;
            if i % 2 == 0 {
                b.push_row(&[(j, 1.0), (3 + j, 0.5)], 1.0).unwrap();
            } else {
                b.push_row(&[(j, -1.0), (3 + j, -0.5)], -1.0).unwrap();
            }
        }
        b.finish()
    }

    /// Heavy-tailed norms, importance-sorted — the adversarial layout of
    /// the Fig. 2 discussion.
    fn sorted_skewed(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(8);
        for i in 0..n {
            let norm = 0.2 + 4.0 * (i as f64 / n as f64).powi(3);
            let j = (i % 4) as u32;
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
                .unwrap();
        }
        b.finish()
    }

    fn obj() -> Objective<LogisticLoss> {
        Objective::new(LogisticLoss, Regularizer::None)
    }

    #[test]
    fn converges_on_separable_data() {
        let ds = separable(400);
        let cfg = ClusterConfig {
            rounds: 8,
            ..ClusterConfig::default()
        };
        let r = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(r.syncs, 8);
        assert_eq!(r.rounds.len(), 9);
        let last = r.rounds.last().unwrap();
        assert_eq!(last.error_rate, 0.0, "separable data must fit");
        assert!(last.objective < r.rounds[0].objective);
        // Trace epochs advance by local_epochs per round.
        assert_eq!(r.trace.points.last().unwrap().epoch, 8.0);
    }

    #[test]
    fn single_node_is_sequential_sgd() {
        let ds = separable(200);
        let cfg = ClusterConfig {
            nodes: 1,
            rounds: 3,
            importance: ImportanceScheme::Uniform,
            ..ClusterConfig::default()
        };
        let r = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(r.phi_imbalance, 1.0, "one shard is trivially balanced");
        assert_eq!(r.rounds.last().unwrap().error_rate, 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = separable(300);
        let cfg = ClusterConfig {
            seed: 42,
            ..ClusterConfig::default()
        };
        let a = run(&ds, &obj(), &cfg).unwrap();
        let b = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(a.model, b.model);
        let c = run(&ds, &obj(), &ClusterConfig { seed: 43, ..cfg }).unwrap();
        assert_ne!(a.model, c.model);
    }

    #[test]
    fn balancing_equalizes_phi_on_sorted_data() {
        let ds = sorted_skewed(1000);
        let base = ClusterConfig {
            nodes: 8,
            rounds: 2,
            importance: ImportanceScheme::LipschitzSmoothness,
            ..ClusterConfig::default()
        };
        let identity = run(
            &ds,
            &obj(),
            &ClusterConfig {
                balance: BalancePolicy::Identity,
                ..base
            },
        )
        .unwrap();
        let balanced = run(
            &ds,
            &obj(),
            &ClusterConfig {
                balance: BalancePolicy::ForceBalance,
                ..base
            },
        )
        .unwrap();
        let greedy = run(
            &ds,
            &obj(),
            &ClusterConfig {
                balance: BalancePolicy::ForceGreedy,
                ..base
            },
        )
        .unwrap();
        assert!(
            identity.phi_imbalance > 1.5,
            "sorted layout must be badly imbalanced, got {}",
            identity.phi_imbalance
        );
        assert!(
            balanced.phi_imbalance < identity.phi_imbalance,
            "head-tail {} must improve on identity {}",
            balanced.phi_imbalance,
            identity.phi_imbalance
        );
        assert!(
            greedy.phi_imbalance < 1.05,
            "greedy-LPT should be near-perfect, got {}",
            greedy.phi_imbalance
        );
        assert!(balanced.balanced);
        assert!(!identity.balanced);
    }

    #[test]
    fn more_local_epochs_cover_more_ground_per_round() {
        let ds = separable(400);
        let short = run(
            &ds,
            &obj(),
            &ClusterConfig {
                rounds: 2,
                local_epochs: 1,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let long = run(
            &ds,
            &obj(),
            &ClusterConfig {
                rounds: 2,
                local_epochs: 4,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        assert!(
            long.rounds.last().unwrap().objective <= short.rounds.last().unwrap().objective,
            "4 local epochs/round should reach a lower objective after 2 rounds"
        );
        assert_eq!(long.trace.points.last().unwrap().epoch, 8.0);
    }

    #[test]
    fn validation_errors() {
        let ds = separable(10);
        let o = obj();
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                nodes: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                nodes: 11,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                rounds: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                local_epochs: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                step_size: -0.5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &ds,
            &o,
            &ClusterConfig {
                step_size: f64::NAN,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn every_k_without_adaptive_sampling_is_rejected() {
        // Same contract as the core plan: intra-epoch commits with a
        // sampler that ignores feedback would silently run boundary
        // semantics — reject loudly instead.
        let ds = separable(100);
        for (sampling, importance) in [
            (
                SamplingStrategy::Static,
                ImportanceScheme::LipschitzSmoothness,
            ),
            (SamplingStrategy::Adaptive, ImportanceScheme::Uniform),
        ] {
            let cfg = ClusterConfig {
                sampling,
                importance,
                commit: CommitPolicy::EveryK(16),
                ..ClusterConfig::default()
            };
            match run(&ds, &obj(), &cfg) {
                Err(ClusterError::InvalidConfig(msg)) => {
                    assert!(msg.contains("adaptive"), "must point at the fix: {msg}")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_k_adaptive_nodes_run_deterministically() {
        let ds = sorted_skewed(300);
        let cfg = ClusterConfig {
            nodes: 3,
            rounds: 3,
            importance: ImportanceScheme::LipschitzSmoothness,
            sampling: SamplingStrategy::Adaptive,
            commit: CommitPolicy::EveryK(16),
            ..ClusterConfig::default()
        };
        let a = run(&ds, &obj(), &cfg).unwrap();
        let b = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(a.model, b.model, "streamed node runs must reproduce");
        let boundary = run(
            &ds,
            &obj(),
            &ClusterConfig {
                commit: CommitPolicy::EpochBoundary,
                ..cfg
            },
        )
        .unwrap();
        assert_ne!(
            a.model, boundary.model,
            "mid-epoch commits must steer the nodes' remaining draws"
        );
    }

    #[test]
    fn adaptive_sampling_runs_and_differs_from_static() {
        let ds = sorted_skewed(400);
        let base = ClusterConfig {
            nodes: 4,
            rounds: 4,
            importance: ImportanceScheme::LipschitzSmoothness,
            ..ClusterConfig::default()
        };
        let stat = run(&ds, &obj(), &base).unwrap();
        let adaptive_cfg = ClusterConfig {
            sampling: SamplingStrategy::Adaptive,
            ..base
        };
        let a = run(&ds, &obj(), &adaptive_cfg).unwrap();
        let b = run(&ds, &obj(), &adaptive_cfg).unwrap();
        assert_eq!(
            a.model, b.model,
            "adaptive cluster runs must be reproducible"
        );
        assert_ne!(a.model, stat.model, "adaptive must actually change the run");
        assert!(a.model.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn uniform_importance_gives_unit_corrections() {
        let ds = separable(100);
        let cfg = ClusterConfig {
            importance: ImportanceScheme::Uniform,
            rounds: 1,
            ..ClusterConfig::default()
        };
        let r = run(&ds, &obj(), &cfg).unwrap();
        assert_eq!(r.trace.algorithm, "Cluster-SGD");
        assert!(
            (r.phi_imbalance - 1.0).abs() < 0.01,
            "uniform weights ⇒ equal Φ"
        );
    }
}
