//! The distributed runtime: multi-node data-parallel IS-SGD behind a
//! pluggable [`Transport`].
//!
//! §2.3 of the paper frames importance imbalance in terms of processes
//! that "run on [their] corresponding core/node and typically work on
//! [their] local dataset". Within one machine the Hogwild solvers of
//! `isasgd-core` cover the *core* half of that sentence; this crate
//! covers the *node* half: `K` nodes each hold a contiguous shard, run
//! local sequential (IS-)SGD, and periodically synchronize by model
//! averaging (the classical local-SGD / parameter-averaging scheme ASGD
//! deployments use across machines, where a shared atomic model is
//! impossible). Because every node samples **only from its local
//! shard**, the sampling-distribution distortion of Fig. 2 applies
//! verbatim — this is the setting where Algorithm 3's importance
//! balancing is load-bearing.
//!
//! # Architecture
//!
//! The runtime is split along the real deployment boundary:
//!
//! * [`wire`] — a hand-rolled length-prefixed codec for the typed
//!   protocol messages ([`Message::ModelUpdate`],
//!   [`Message::FeedbackBatch`], [`Message::RoundBarrier`],
//!   [`Message::ShardRebalance`], plus the bandwidth-proportional
//!   frames: sparse [`Message::ModelDelta`] updates against a per-link
//!   base and the [`Message::DatasetShard`] admission stream, both on
//!   a canonical varint/gap-coded index codec). Decoding is total:
//!   garbage returns a typed [`WireError`], never a panic.
//! * [`transport`] — the [`Transport`] trait plus the two bundled
//!   wirings: [`InProcess`] (typed channels between threads, default)
//!   and [`Tcp`] (real loopback sockets — delta-aware under a
//!   [`WireEncoding`], with per-link [`LinkStats`] traffic counters),
//!   and the deterministic [`FlakyTransport`] fault injector used by
//!   the test suite.
//! * [`coordinator`] — the round driver, generic over [`Transport`]:
//!   the coordinator owns balancing, barriers, [`SyncStrategy`]
//!   averaging, and a feedback mirror fed by per-node importance
//!   observations (Alain et al.'s message shape); each [`NodeRuntime`]
//!   owns a shard, a `ScheduleStream`, and its local epochs.
//! * [`node`] — [`ClusterConfig`] / [`ClusterRun`] and the [`run`]
//!   entry point that wires links from
//!   [`ClusterConfig::transport`].
//!
//! Runs are bit-identical across transports and thread schedules for
//! the same seed and config; a single-node run is bit-equal to the
//! sequential `isasgd-core` engine. Both properties are pinned by
//! `tests/equivalence.rs`, and the protocol's tolerance of duplicated
//! and reordered messages by `tests/fault_injection.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod fleet;
pub mod node;
pub mod procnode;
pub mod sync;
pub mod transport;
pub mod wire;

pub use coordinator::{run_with_links, run_with_links_observed, NodeRuntime};
pub use fleet::{run_fleet, run_fleet_with, CommandSpawner, WorkerHandle, WorkerSpawner};
pub use node::{run, ClusterConfig, ClusterError, ClusterRun, Node, ProtocolBugs, RoundPoint};
pub use procnode::{run_worker, WorkerOptions, WorkerReport};
pub use sync::{average_models, SyncStrategy};
pub use transport::{
    in_process_links, tcp_loopback_links, FaultPolicy, FaultingTransport, FlakyTransport,
    InProcess, LinkStats, ProcessConfig, RandomWalk, RecoveryFootprint, SendFault, Tcp,
    TelemetrySample, Transport, TransportConfig, TransportError, WorkerLossPolicy,
};
pub use wire::{
    apply_delta, delta_coords, encode_dataset_shard_chunks, put_varint, CheckpointSampler,
    CheckpointState, FrameKind, Message, SessionConfig, WireEncoding, WireError, WorkerTiming,
    CHECKPOINT_VERSION, FRAME_KINDS, MAX_FRAME, PROTOCOL_VERSION, SHARD_CHUNK_BYTES,
};
