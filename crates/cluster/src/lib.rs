//! Multi-node data-parallel IS-SGD: the paper's "cores/**nodes**" setting.
//!
//! §2.3 of the paper frames importance imbalance in terms of processes
//! that "run on [their] corresponding core/node and typically work on
//! [their] local dataset". Within one machine the Hogwild solvers of
//! `isasgd-core` cover the *core* half of that sentence; this crate covers
//! the *node* half: `K` nodes each hold a contiguous shard, run local
//! sequential (IS-)SGD, and periodically synchronize by model averaging
//! (the classical local-SGD / parameter-averaging scheme ASGD deployments
//! use across machines, where a shared atomic model is impossible).
//!
//! Because every node samples **only from its local shard**, the sampling
//! distribution distortion of Fig. 2 applies verbatim — this is the
//! setting where the paper's Algorithm 3 importance balancing is load-
//! bearing, and the `cluster` experiment measures exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod sync;

pub use node::{run, ClusterConfig, ClusterRun, Node, RoundPoint};
pub use sync::{average_models, SyncStrategy};
