//! The distributed runtime: a [`Coordinator`]-less round driver and the
//! per-node [`NodeRuntime`], both generic over [`Transport`].
//!
//! This module replaced the old single-threaded round loop that called
//! node training as a plain function. The protocol, per link (one duplex
//! link per worker):
//!
//! ```text
//! worker                         coordinator
//!   ── RoundBarrier(0) ──────────▶   hello: announce readiness
//!   ◀───────────── ShardRebalance   Algorithm-4 balancing decision:
//!                                    permutation + every shard range
//!  per round r = 1..=rounds:
//!   ◀── RoundBarrier(r) ──────────   start-of-round barrier
//!   ◀── ModelUpdate(r, consensus)    round's starting model
//!      … local_epochs of (IS-)SGD on the worker's shard …
//!   ── FeedbackBatch(r) ─────────▶   per-row max importance observations
//!                                    (adaptive runs only)
//!   ── ModelUpdate(r, replica) ──▶   trained local model
//!                                    coordinator: average via
//!                                    SyncStrategy, eval consensus
//! ```
//!
//! Receivers are written against a weaker channel than either bundled
//! transport provides: they tolerate duplicated messages and reordering
//! within one send burst, draining until the messages they need for the
//! current round arrive and ignoring stale round tags. That tolerance is
//! what `tests/fault_injection.rs` pins with
//! [`FlakyTransport`](crate::transport::FlakyTransport).
//!
//! Determinism: each worker's draws come from its own seed-derived
//! [`ScheduleStream`], observations only ever touch the worker's own
//! sampler, and the coordinator averages models into per-node slots — so
//! the result is bit-identical across transports and thread schedules,
//! and a single-node run stays bit-equal to the sequential engine
//! (`tests/equivalence.rs`).

use crate::node::{
    effective_strategy, validate, ClusterConfig, ClusterError, ClusterRun, Node, RoundPoint,
};
use crate::sync::average_models;
use crate::transport::Transport;
use crate::wire::{CheckpointSampler, CheckpointState, Message, WorkerTiming};
use isasgd_balance::decide;
use isasgd_losses::{importance_weights, Loss, Objective};
use isasgd_metrics::{Trace, TracePoint};
use isasgd_obs::{monotonic_us, Event};
use isasgd_sampling::rng::derive_seeds;
use isasgd_sampling::{
    build_sampler, draw_rngs, AdaptiveIsSampler, FeedbackProtocol, Sampler, SamplerSnapshot,
    SamplingStrategy, ScheduleStream, SequenceMode,
};
use isasgd_sparse::dataset::shard_ranges;
use isasgd_sparse::Dataset;
use std::ops::Range;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The run state every node derives from the coordinator's balancing
/// decision: the rearranged dataset view and the importance weights in
/// *original* row order. Remote workers reconstruct it from
/// [`Message::ShardRebalance`]; in-process workers share the
/// coordinator's copy behind an [`Arc`] — the reconstruction is
/// deterministic, so the shared values are bit-identical to what each
/// node would have rebuilt (pinned by `tests/equivalence.rs`), and the
/// `K+1`-copies-per-run cost the ROADMAP called out is gone.
pub(crate) struct RunView {
    /// The dataset after the balancing permutation.
    pub data: Dataset,
    /// Importance weights indexed by original row.
    pub weights: Vec<f64>,
}

/// Publication slot for the shared [`RunView`]: the coordinator fills
/// it before shipping `ShardRebalance`, so any in-process worker that
/// has received its assignment observes the view as set.
pub(crate) type SharedViewSlot = Arc<OnceLock<Arc<RunView>>>;

/// Everything the coordinator derives from the balancing decision
/// before any traffic moves: the shared [`RunView`], the permutation,
/// the shard ranges, and the weights in reordered row order. Computed
/// once per run by [`plan_run`] so the fleet can stream per-shard
/// dataset frames from the *same* reordered view the round driver
/// evaluates against — bit-identical by construction, not by replay.
pub(crate) struct RunPlan {
    /// The rearranged dataset plus original-order weights.
    pub view: Arc<RunView>,
    /// The balancing permutation (original row for each reordered slot).
    pub order: Vec<usize>,
    /// Contiguous shard ranges into the reordered view.
    pub ranges: Vec<Range<usize>>,
    /// Importance weights in reordered row order.
    pub reordered_weights: Vec<f64>,
    /// Whether the balance policy rearranged anything.
    pub balanced: bool,
    /// Measured ρ of the importance weights.
    pub rho: f64,
}

/// Algorithm 4 lines 2–6 (weigh, decide, rearrange) plus the shard
/// split — the deterministic pre-round state every entry point shares.
pub(crate) fn plan_run<L: Loss>(
    ds: &Dataset,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
) -> Result<RunPlan, ClusterError> {
    let seeds = derive_seeds(cfg.seed, cfg.nodes + 1);
    let weights = importance_weights(ds, &obj.loss, obj.reg, cfg.importance);
    let decision = decide(&weights, cfg.balance, seeds[cfg.nodes], cfg.nodes);
    let view = Arc::new(RunView {
        data: ds.reordered(&decision.order)?,
        weights,
    });
    let reordered_weights: Vec<f64> = decision.order.iter().map(|&i| view.weights[i]).collect();
    let ranges = shard_ranges(ds.n_samples(), cfg.nodes)?;
    Ok(RunPlan {
        view,
        order: decision.order,
        ranges,
        reordered_weights,
        balanced: decision.balanced,
        rho: decision.rho,
    })
}

/// Runs a full cluster round schedule over caller-supplied links — the
/// extension point fault-injection tests wrap with
/// [`FlakyTransport`](crate::transport::FlakyTransport).
///
/// `links[k]` is the `(coordinator_end, worker_end)` pair for node `k`.
/// Worker runtimes run on scoped threads; the coordinator drives rounds
/// on the calling thread. See [`crate::run`] for the convenience entry
/// point that wires the links from
/// [`ClusterConfig::transport`](crate::ClusterConfig).
pub fn run_with_links<L: Loss, T: Transport>(
    ds: &Dataset,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
    links: Vec<(T, T)>,
) -> Result<ClusterRun, ClusterError> {
    run_with_links_inner(ds, obj, cfg, links, false, || {})
}

/// [`run_with_links`] with an observer called on the coordinating
/// thread the moment the round driver finishes (success or failure),
/// before link teardown and worker joins.
///
/// This is the seam the `isasgd-check` model scheduler needs: once the
/// driver is done the coordinator performs no further transport
/// operations it must be scheduled for, and the observer lets the
/// checker mark it quiescent so pending worker actions (e.g. a
/// fault-injected trailing duplicate) can be sequenced against the
/// teardown deterministically.
pub fn run_with_links_observed<L: Loss, T: Transport>(
    ds: &Dataset,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
    links: Vec<(T, T)>,
    on_driver_done: impl FnOnce() + Send,
) -> Result<ClusterRun, ClusterError> {
    run_with_links_inner(ds, obj, cfg, links, false, on_driver_done)
}

/// [`run_with_links`] with the in-process fast path switched on: all
/// workers share the coordinator's reconstructed [`RunView`] behind an
/// `Arc` instead of each rebuilding it. Entered through
/// [`crate::run`] for `TransportConfig::InProcess`; the public
/// `run_with_links` keeps the copying (remote-faithful) semantics so
/// fault-injection wrappers and transport tests exercise what real
/// distributed workers do.
pub(crate) fn run_with_links_inner<L: Loss, T: Transport>(
    ds: &Dataset,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
    links: Vec<(T, T)>,
    share_view: bool,
    on_driver_done: impl FnOnce() + Send,
) -> Result<ClusterRun, ClusterError> {
    validate(cfg, ds)?;
    if links.len() != cfg.nodes {
        return Err(ClusterError::InvalidConfig(format!(
            "{} transport links for {} nodes",
            links.len(),
            cfg.nodes
        )));
    }
    let slot: Option<SharedViewSlot> = share_view.then(|| Arc::new(OnceLock::new()));
    let plan = plan_run(ds, obj, cfg)?;
    let (mut coord_ends, worker_ends): (Vec<T>, Vec<T>) = links.into_iter().unzip();
    std::thread::scope(|scope| {
        let handles: Vec<_> = worker_ends
            .into_iter()
            .enumerate()
            .map(|(k, link)| {
                let mut runtime = NodeRuntime::new(link, k);
                if let Some(s) = &slot {
                    runtime = runtime.with_shared_view(s.clone());
                }
                scope.spawn(move || runtime.run(ds, obj, cfg))
            })
            .collect();
        let coord = coordinate(&mut coord_ends, &plan, obj, cfg, slot.as_ref());
        on_driver_done();
        // On coordinator failure, drop the links now so every blocked
        // worker `recv` unblocks with `Closed` instead of deadlocking
        // the join. On success keep them alive until the workers have
        // joined: a worker may still be emitting trailing traffic the
        // coordinator no longer needs (e.g. a fault-injected duplicate
        // of its final model), and tearing the links down under it
        // would turn that benign tail into a spurious `Closed` error.
        // (`eager_link_teardown` resurrects the historical pre-fix
        // behaviour for the model checker's regression corpus.)
        if coord.is_err() || cfg.bugs.eager_link_teardown {
            coord_ends.clear();
        }
        let mut worker_err: Option<ClusterError> = None;
        for h in handles {
            let err = match h.join() {
                Ok(Ok(())) => continue,
                Ok(Err(e)) => e,
                Err(_) => ClusterError::Worker("worker thread panicked".into()),
            };
            // Keep the most informative worker error: a failing worker
            // tears down its link, so its *peers* (and itself, once the
            // coordinator drops the links) often report derivative
            // `Transport(Closed)` errors — don't let those overwrite a
            // root cause.
            let keep_new = match (&worker_err, &err) {
                (None, _) => true,
                (Some(ClusterError::Transport(_)), e) => !matches!(e, ClusterError::Transport(_)),
                _ => false,
            };
            if keep_new {
                worker_err = Some(err);
            }
        }
        match (coord, worker_err) {
            (Ok(run), None) => Ok(run),
            (Ok(_), Some(e)) => Err(e),
            // A dead worker surfaces at the coordinator as a transport
            // failure (closed link / read timeout); the worker's own
            // error is the root cause — prefer it.
            (Err(ClusterError::Transport(_)), Some(e)) => Err(e),
            (Err(e), _) => Err(e),
        }
    })
}

/// The coordinator: owns the balancing decision, the round barriers,
/// model averaging, consensus evaluation, and the feedback mirror.
/// When `share` is given (in-process runs), the reconstructed
/// [`RunView`] is published there before any assignment ships, so
/// workers can borrow it instead of rebuilding their own copies.
pub(crate) fn coordinate<L: Loss, T: Transport>(
    links: &mut [T],
    plan: &RunPlan,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
    share: Option<&SharedViewSlot>,
) -> Result<ClusterRun, ClusterError> {
    let data = &plan.view.data;
    let d = data.dim();
    let ranges = &plan.ranges;
    let reordered_weights = &plan.reordered_weights;
    let strategy = effective_strategy(cfg);
    if let Some(slot) = share {
        // Publish before the first send: a worker that has its
        // ShardRebalance is guaranteed to see the view as set.
        let _ = slot.set(plan.view.clone());
    }

    let phis: Vec<f64> = ranges
        .iter()
        .map(|r| reordered_weights[r.clone()].iter().sum())
        .collect();
    let mean_phi: f64 = phis.iter().sum::<f64>() / cfg.nodes as f64;
    let max_phi = phis.iter().copied().fold(0.0, f64::max);
    let phi_imbalance = if mean_phi > 0.0 {
        max_phi / mean_phi
    } else {
        1.0
    };

    // The coordinator's consensus view of every node's adaptive
    // distribution (Alain et al.: per-node importance observations flow
    // back to a coordinator). Mirrors fold at round boundaries only —
    // within a round, per-row max accumulation makes duplicated
    // FeedbackBatch deliveries idempotent (pinned by the fault tests).
    let protocol = (strategy == SamplingStrategy::Adaptive)
        .then(|| FeedbackProtocol::for_dataset(data, plan.ranges.clone(), cfg.obs_model));
    let mut mirrors: Vec<AdaptiveIsSampler> = if protocol.is_some() {
        ranges
            .iter()
            .map(|r| AdaptiveIsSampler::new(&reordered_weights[r.clone()]))
            .collect::<Result<_, _>>()
            .map_err(|e| ClusterError::InvalidConfig(e.to_string()))?
    } else {
        Vec::new()
    };

    // Hellos: every worker announces readiness before any assignment
    // goes out (drain tolerates a duplicated hello).
    for link in links.iter_mut() {
        loop {
            // lint: allow(unbounded-recv) — fleet links arm Tcp read deadlines; the in-process transport's hello drain is deadlock-checked by isasgd-check
            if let Message::RoundBarrier { round: 0, .. } = link.recv()? {
                break;
            }
        }
    }

    // Ship the balancing decision: each worker reconstructs the
    // rearranged dataset view from the permutation and trains only its
    // assigned shard.
    let order_u32: Vec<u32> = plan.order.iter().map(|&i| i as u32).collect();
    let ranges_u32: Vec<(u32, u32)> = ranges
        .iter()
        .map(|r| (r.start as u32, r.end as u32))
        .collect();
    for (k, link) in links.iter_mut().enumerate() {
        link.send(&Message::ShardRebalance {
            round: 0,
            assigned: k as u32,
            order: order_u32.clone(),
            ranges: ranges_u32.clone(),
        })?;
    }

    let mut trace = Trace::new(
        match strategy {
            SamplingStrategy::Uniform => "Cluster-SGD",
            SamplingStrategy::Static => "Cluster-IS-SGD",
            SamplingStrategy::Adaptive => "Cluster-AIS-SGD",
        },
        "cluster",
        cfg.nodes,
        cfg.step_size,
    );
    let mut rounds = Vec::with_capacity(cfg.rounds + 1);
    let mut consensus = vec![0.0f64; d];
    let m0 = obj.eval(data, &consensus);
    trace.push(TracePoint {
        epoch: 0.0,
        wall_secs: 0.0,
        objective: m0.objective,
        rmse: m0.rmse,
        error_rate: m0.error_rate,
    });
    rounds.push(RoundPoint {
        round: 0,
        objective: m0.objective,
        rmse: m0.rmse,
        error_rate: m0.error_rate,
    });

    let mut train_secs = 0.0;
    let shard_sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
    let mut models: Vec<Vec<f64>> = vec![Vec::new(); cfg.nodes];
    let mut feedback_rows = 0usize;
    for round in 1..=cfg.rounds {
        isasgd_obs::emit(&Event::RoundStart {
            round: round as u64,
            nodes: cfg.nodes as u64,
        });
        // lint: allow(wall-clock) — measures reported train_secs only; no control-flow or results depend on it
        let t0 = Instant::now();
        for (k, link) in links.iter_mut().enumerate() {
            link.send(&Message::RoundBarrier {
                node: k as u32,
                round: round as u64,
            })?;
            link.send(&Message::ModelUpdate {
                node: k as u32,
                round: round as u64,
                model: consensus.clone(),
            })?;
        }
        // Collect: drain each link until this round's replica (and, for
        // adaptive runs, its feedback batch) arrives; stale tags are
        // duplicates from earlier rounds and are dropped.
        for (k, link) in links.iter_mut().enumerate() {
            let mut have_model = false;
            let mut have_feedback = protocol.is_none();
            while !(have_model && have_feedback) {
                // lint: allow(unbounded-recv) — fleet links arm Tcp round deadlines; the in-process collect loop is deadlock-checked by isasgd-check
                match link.recv()? {
                    Message::ModelUpdate {
                        round: r, model, ..
                    } if r == round as u64 => {
                        models[k] = model;
                        have_model = true;
                    }
                    Message::FeedbackBatch {
                        round: r,
                        observations,
                        ..
                    } if r == round as u64 => {
                        if let Some(p) = &protocol {
                            for (row, obs) in observations {
                                if let Some((shard, local)) = p.locate(row as usize) {
                                    mirrors[shard].update_weight(local, obs);
                                    feedback_rows += 1;
                                }
                            }
                        }
                        have_feedback = true;
                    }
                    _ => {}
                }
            }
        }
        for m in mirrors.iter_mut() {
            m.epoch_reset();
        }
        average_models(&models, &shard_sizes, cfg.sync, &mut consensus);
        let round_secs = t0.elapsed().as_secs_f64();
        train_secs += round_secs;

        let m = obj.eval(data, &consensus);
        trace.push(TracePoint {
            epoch: (round * cfg.local_epochs) as f64,
            wall_secs: train_secs,
            objective: m.objective,
            rmse: m.rmse,
            error_rate: m.error_rate,
        });
        rounds.push(RoundPoint {
            round,
            objective: m.objective,
            rmse: m.rmse,
            error_rate: m.error_rate,
        });
        isasgd_obs::emit(&Event::RoundEnd {
            round: round as u64,
            objective: m.objective,
            rmse: m.rmse,
            error_rate: m.error_rate,
            wall_us: (round_secs * 1e6) as u64,
        });
    }

    // The mirror's view of shard importance after all feedback landed —
    // max/mean of the mirrored per-shard mass, 1.0 meaning the observed
    // distributions stayed balanced.
    let observed_phi_imbalance = protocol.as_ref().map(|_| {
        let sums: Vec<f64> = mirrors
            .iter()
            .zip(ranges)
            .map(|(m, r)| (0..r.len()).map(|i| m.weight(i)).sum())
            .collect();
        let mean: f64 = sums.iter().sum::<f64>() / sums.len().max(1) as f64;
        let max = sums.iter().copied().fold(0.0, f64::max);
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    });
    if let Some(phi) = observed_phi_imbalance {
        isasgd_obs::emit(&Event::SamplerCommit {
            feedback_rows: feedback_rows as u64,
            observed_phi_imbalance: phi,
        });
    }

    // Per-link wire counters, where the transport keeps them (real
    // sockets do; typed channels report nothing). Links live in slot
    // order (the fleet admits slot 0, then 1, …), so this collection —
    // and everything downstream that renders it — is ordered by node id
    // (pinned by `tests/process_fleet.rs`).
    let net: Vec<_> = links.iter().filter_map(|l| l.stats()).collect();
    for (k, stats) in net.iter().enumerate() {
        isasgd_obs::emit(&Event::NetSummary {
            node: k as u64,
            tx_bytes: stats.tx_total_bytes(),
            rx_bytes: stats.rx_total_bytes(),
            summary: stats.summary(),
        });
    }

    Ok(ClusterRun {
        trace,
        model: consensus,
        rounds,
        phi_imbalance,
        balanced: plan.balanced,
        rho: plan.rho,
        syncs: cfg.rounds,
        feedback_rows,
        observed_phi_imbalance,
        net,
        // Per-slot recovery footprints, where the transport supervises
        // (the fleet's links do; plain links report nothing).
        recovery: links.iter().filter_map(|l| l.recovery()).collect(),
        // Worker-shipped per-round timing, where the transport collects
        // it (supervised process links do; plain links report nothing).
        telemetry: links
            .iter()
            .filter_map(|l| l.telemetry())
            .flatten()
            .collect(),
    })
}

/// The raw wire form of a shard assignment as carried by
/// [`Message::ShardRebalance`]: `(order, ranges, assigned)`.
type WireAssignment = (Vec<u32>, Vec<(u32, u32)>, usize);

/// One worker's runtime: receives its shard assignment, runs local
/// (IS-)SGD epochs on its own [`ScheduleStream`], and reports its
/// replica and importance observations every round.
pub struct NodeRuntime<T: Transport> {
    link: T,
    node_id: usize,
    /// Messages that arrived ahead of the phase that consumes them
    /// (e.g. a round-1 barrier delivered before a delayed
    /// `ShardRebalance`): stashed instead of dropped so transport
    /// reordering can never starve a later await.
    stash: std::collections::VecDeque<Message>,
    /// In-process fast path: when set (and filled by the coordinator),
    /// borrow the shared rearranged dataset + weights instead of
    /// reconstructing them — bit-identical values either way.
    shared_view: Option<SharedViewSlot>,
    /// Chaos hook: abort abruptly right after this round starts,
    /// simulating a worker crash mid-round (drives the fleet's
    /// supervision tests and `--chaos-kill`).
    die_at_round: Option<u64>,
    /// Test-only resurrection of fixed protocol bugs (copied from
    /// [`ClusterConfig::bugs`] at run entry; all-off in production).
    bugs: crate::node::ProtocolBugs,
}

impl<T: Transport> NodeRuntime<T> {
    /// Wraps one worker endpoint for node `node_id`.
    pub fn new(link: T, node_id: usize) -> Self {
        NodeRuntime {
            link,
            node_id,
            stash: std::collections::VecDeque::new(),
            shared_view: None,
            die_at_round: None,
            bugs: crate::node::ProtocolBugs::default(),
        }
    }

    /// Attaches the in-process shared-view slot (see [`RunView`]).
    pub(crate) fn with_shared_view(mut self, slot: SharedViewSlot) -> Self {
        self.shared_view = Some(slot);
        self
    }

    /// Arms the chaos hook: the runtime errors out (dropping its link,
    /// which a remote coordinator observes as a dead worker) right
    /// after round `round` starts.
    pub(crate) fn with_chaos_kill(mut self, round: Option<u64>) -> Self {
        self.die_at_round = round;
        self
    }

    /// Runs the full worker side of the protocol (see module docs).
    ///
    /// `ds` is the *original* (pre-rearrangement) dataset: workers
    /// reconstruct the rearranged view from the coordinator's
    /// [`Message::ShardRebalance`], and recompute importance weights on
    /// the original row order — the exact float-op order the
    /// coordinator used — so the run stays bit-equal across transports
    /// even for schemes with order-sensitive reductions.
    pub fn run<L: Loss>(
        mut self,
        ds: &Dataset,
        obj: &Objective<L>,
        cfg: &ClusterConfig,
    ) -> Result<(), ClusterError> {
        self.bugs = cfg.bugs;
        let (order, wire_ranges, assigned) = self.await_assignment()?;
        let order: Vec<usize> = order.into_iter().map(|i| i as usize).collect();
        let ranges: Vec<Range<usize>> = wire_ranges
            .into_iter()
            .map(|(s, e)| s as usize..e as usize)
            .collect();
        let range = ranges.get(assigned).cloned().ok_or_else(|| {
            ClusterError::Worker(format!("assigned shard {assigned} out of range"))
        })?;

        // The shared view (if wired) was published before the
        // ShardRebalance we just consumed, so `get()` observing `None`
        // here means this is a copying (remote-faithful) run.
        let shared = self.shared_view.as_ref().and_then(|s| s.get()).cloned();
        let owned: Option<(Dataset, Vec<f64>)> = if shared.is_none() {
            Some((
                ds.reordered(&order)?,
                importance_weights(ds, &obj.loss, obj.reg, cfg.importance),
            ))
        } else {
            None
        };
        let (data, weights): (&Dataset, &[f64]) = match (&shared, &owned) {
            (Some(v), _) => (&v.data, &v.weights),
            (None, Some((d, w))) => (d, w),
            (None, None) => unreachable!("either the shared or the owned view exists"),
        };
        let local: Vec<f64> = order[range.clone()].iter().map(|&i| weights[i]).collect();
        let strategy = effective_strategy(cfg);
        let protocol = (strategy == SamplingStrategy::Adaptive)
            .then(|| FeedbackProtocol::for_dataset(data, ranges.clone(), cfg.obs_model));
        self.run_rounds(data, 0, &local, protocol, assigned, range, obj, cfg)
    }

    /// The worker side of a shard-streamed session: `shard` holds only
    /// this node's (already reordered) rows and `weights` the matching
    /// per-row importance weights, both received over the wire as
    /// [`Message::DatasetShard`] chunks — nothing global is recomputed,
    /// which is what makes admission bandwidth proportional to the
    /// shard. Bit-equal to [`NodeRuntime::run`] over the full dataset:
    /// the streamed rows and weights are the exact bits the
    /// coordinator's plan holds, and per-row feature norms are
    /// row-local, so recomputing them from the shard reproduces the
    /// full-dataset precompute at every row this worker can observe.
    pub fn run_sharded<L: Loss>(
        mut self,
        shard: &Dataset,
        weights: &[f64],
        shard_start: usize,
        obj: &Objective<L>,
        cfg: &ClusterConfig,
    ) -> Result<(), ClusterError> {
        self.bugs = cfg.bugs;
        let (_order, wire_ranges, assigned) = self.await_assignment()?;
        let ranges: Vec<Range<usize>> = wire_ranges
            .into_iter()
            .map(|(s, e)| s as usize..e as usize)
            .collect();
        let range = ranges.get(assigned).cloned().ok_or_else(|| {
            ClusterError::Worker(format!("assigned shard {assigned} out of range"))
        })?;
        // The streamed shard and the assignment travelled as separate
        // frames; a disagreement means the coordinator and this worker
        // would silently train different rows — refuse instead.
        if range.start != shard_start || range.len() != shard.n_samples() {
            return Err(ClusterError::Worker(format!(
                "streamed shard rows {}..{} disagree with assigned range {}..{}",
                shard_start,
                shard_start + shard.n_samples(),
                range.start,
                range.end
            )));
        }
        if weights.len() != shard.n_samples() {
            return Err(ClusterError::Worker(format!(
                "{} streamed weights for {} shard rows",
                weights.len(),
                shard.n_samples()
            )));
        }
        let strategy = effective_strategy(cfg);
        let protocol = (strategy == SamplingStrategy::Adaptive).then(|| {
            // Global-length norms, zeroed outside this shard: a worker
            // only ever scales observations for rows it owns, and
            // per-row norms computed from the shard's rows are
            // bit-identical to the full-dataset precompute there.
            let n = ranges.last().map(|r| r.end).unwrap_or(0);
            let mut norms_sq = vec![0.0f64; n];
            norms_sq[range.clone()].copy_from_slice(&isasgd_sparse::stats::row_norms_sq(shard));
            FeedbackProtocol::new(ranges.clone(), &norms_sq, cfg.obs_model)
        });
        self.run_rounds(
            shard,
            range.start,
            weights,
            protocol,
            assigned,
            range.clone(),
            obj,
            cfg,
        )
    }

    /// Announces readiness (the round-0 hello barrier) and awaits the
    /// coordinator's [`Message::ShardRebalance`], stashing any round
    /// traffic a reordering transport delivered early. Returns the raw
    /// wire assignment `(order, ranges, assigned)`.
    fn await_assignment(&mut self) -> Result<WireAssignment, ClusterError> {
        self.link.send(&Message::RoundBarrier {
            node: self.node_id as u32,
            round: 0,
        })?;
        loop {
            // lint: allow(unbounded-recv) — the node's link is deadline-armed by its owner (Tcp) or in-process, where isasgd-check covers this wait
            match self.link.recv()? {
                Message::ShardRebalance {
                    assigned,
                    order,
                    ranges,
                    ..
                } => return Ok((order, ranges, assigned as usize)),
                // A reordered transport can deliver round-1 traffic
                // before the assignment; keep it for await_round_start.
                // A respawn replay also ships the slot's stored
                // Checkpoint ahead of the replayed assignment — stash
                // it for run_rounds to install.
                // (`drop_preassignment_traffic` resurrects the
                // historical drop-instead-of-stash bug for the model
                // checker's regression corpus.)
                m @ (Message::RoundBarrier { .. }
                | Message::ModelUpdate { .. }
                | Message::Checkpoint { .. })
                    if m.round() >= 1 && !self.bugs.drop_preassignment_traffic =>
                {
                    self.stash.push_back(m);
                }
                _ => {}
            }
        }
    }

    /// The round loop shared by the full-dataset and shard-streamed
    /// worker paths. `data` holds the rows of `range` starting at row
    /// offset `row_base` (0 when `data` is the full reordered view),
    /// and `local` the shard's per-row importance weights. Draw ids
    /// stay global either way — only the storage indexing differs.
    #[allow(clippy::too_many_arguments)]
    fn run_rounds<L: Loss>(
        mut self,
        data: &Dataset,
        row_base: usize,
        local: &[f64],
        protocol: Option<FeedbackProtocol>,
        assigned: usize,
        range: Range<usize>,
        obj: &Objective<L>,
        cfg: &ClusterConfig,
    ) -> Result<(), ClusterError> {
        let id = self.node_id as u32;
        let strategy = effective_strategy(cfg);
        let seeds = derive_seeds(cfg.seed, cfg.nodes + 1);
        let sampler = build_sampler(
            strategy,
            Some(local),
            range.len(),
            SequenceMode::RegeneratePerEpoch,
            seeds[assigned],
            cfg.commit,
        )
        .map_err(|e| ClusterError::InvalidConfig(e.to_string()))?;
        let rng = draw_rngs(cfg.seed, cfg.nodes)
            .into_iter()
            .nth(assigned)
            .expect("one draw stream per node");
        let mut node = Node {
            range: range.clone(),
            stream: ScheduleStream::new(sampler, rng, assigned, range.start, range.len()),
            model: vec![0.0; data.dim()],
        };

        // Per-round observation gather for the coordinator's mirror:
        // per-row max of the scaled observations, the same reduction the
        // sampler applies, so a batch replay is idempotent.
        let mut obs_max = vec![f64::NEG_INFINITY; range.len()];
        let mut visited = vec![false; range.len()];

        // Respawn replay ships the slot's stored Checkpoint ahead of
        // the truncated log; await_assignment stashed it. Install the
        // newest one (dups/reorders are harmless) and resume from the
        // round after it — the whole point of checkpointing is that
        // the replayed suffix, not the session, bounds recovery.
        let mut ckpt: Option<(u64, Box<CheckpointState>)> = None;
        let stashed: Vec<Message> = self.stash.drain(..).collect();
        for m in stashed {
            if let Message::Checkpoint { round, state, .. } = m {
                if ckpt.as_ref().is_none_or(|(r, _)| round > *r) {
                    ckpt = Some((round, state));
                }
            } else {
                self.stash.push_back(m);
            }
        }
        let mut first_round = 1u64;
        if let Some((cround, state)) = ckpt {
            if state.model.len() != node.model.len() {
                return Err(ClusterError::Worker(format!(
                    "checkpoint round {cround}: model dim {} != {}",
                    state.model.len(),
                    node.model.len()
                )));
            }
            let snap = match state.sampler {
                CheckpointSampler::Sequence { rows, rng, indices } => {
                    if rows as usize != range.len() {
                        return Err(ClusterError::Worker(format!(
                            "checkpoint round {cround}: {rows} rows != shard {}",
                            range.len()
                        )));
                    }
                    SamplerSnapshot::Sequence { rng, indices }
                }
                CheckpointSampler::Adaptive {
                    rows,
                    commits,
                    indices,
                    weights,
                } => {
                    if rows as usize != range.len() {
                        return Err(ClusterError::Worker(format!(
                            "checkpoint round {cround}: {rows} rows != shard {}",
                            range.len()
                        )));
                    }
                    // Sparse diff against the configured base weights;
                    // wire decode guarantees in-bounds strictly
                    // increasing indices and finite weights.
                    let mut dense = local.to_vec();
                    for (&i, &w) in indices.iter().zip(&weights) {
                        dense[i as usize] = w;
                    }
                    SamplerSnapshot::Adaptive {
                        weights: dense,
                        commits,
                    }
                }
            };
            node.stream
                .sampler_mut()
                .restore(snap)
                .map_err(|e| ClusterError::Worker(format!("checkpoint restore: {e}")))?;
            node.stream.set_rng_state(state.draw_rng);
            node.model.copy_from_slice(&state.model);
            first_round = cround + 1;
        }
        for round in first_round..=cfg.rounds as u64 {
            // Timing capture is telemetry-gated so the bit-identity
            // contract stays trivially true: with telemetry off not a
            // single clock read happens on the round path.
            let barrier_t0 = if cfg.telemetry { monotonic_us() } else { 0 };
            let consensus = self.await_round_start(round)?;
            let barrier_wait_us = if cfg.telemetry {
                monotonic_us().saturating_sub(barrier_t0)
            } else {
                0
            };
            if self.die_at_round == Some(round) {
                // Chaos hook: abort mid-round. Returning drops the
                // link; over a socket the peer observes exactly what a
                // killed process would produce.
                return Err(ClusterError::Worker(format!(
                    "chaos kill: worker {} aborted at round {round}",
                    self.node_id
                )));
            }
            if consensus.len() != node.model.len() {
                return Err(ClusterError::Worker(format!(
                    "round {round}: consensus dim {} != model dim {}",
                    consensus.len(),
                    node.model.len()
                )));
            }
            node.model.copy_from_slice(&consensus);
            if protocol.is_some() {
                obs_max.fill(f64::NEG_INFINITY);
                visited.fill(false);
            }
            let compute_t0 = if cfg.telemetry { monotonic_us() } else { 0 };
            for _ in 0..cfg.local_epochs {
                local_epoch(
                    data,
                    row_base,
                    obj,
                    &mut node,
                    protocol.as_ref(),
                    cfg.step_size,
                    &mut obs_max,
                    &mut visited,
                );
                node.stream.epoch_reset();
            }
            let compute_us = if cfg.telemetry {
                monotonic_us().saturating_sub(compute_t0)
            } else {
                0
            };
            let mut commits = 0u64;
            if protocol.is_some() {
                let observations: Vec<(u32, f64)> = visited
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v)
                    .map(|(i, _)| ((range.start + i) as u32, obs_max[i]))
                    .collect();
                commits = observations.len() as u64;
                self.link.send(&Message::FeedbackBatch {
                    node: id,
                    round,
                    observations,
                })?;
            }
            // Ship the round's timing *before* the replica: the
            // coordinator's collect loop for this round is still
            // draining (it has not seen the ModelUpdate yet), so the
            // frame is absorbed by supervised links and dropped by
            // plain transports — for every round, including the last.
            if cfg.telemetry {
                isasgd_obs::emit(&Event::BarrierWait {
                    node: u64::from(id),
                    round,
                    wait_us: barrier_wait_us,
                });
                self.link.send(&Message::Telemetry {
                    node: id,
                    round,
                    timing: WorkerTiming {
                        compute_us,
                        barrier_wait_us,
                        rows: (cfg.local_epochs * range.len()) as u64,
                        commits,
                    },
                })?;
            }
            self.link.send(&Message::ModelUpdate {
                node: id,
                round,
                model: node.model.clone(),
            })?;
            // Periodic state checkpoint, after the round's update so
            // the coordinator absorbs it while collecting the *next*
            // round (hence none at the final round — there would be no
            // collect left to absorb it). Snapshotting never mutates
            // the stream, so emission cannot perturb the computation:
            // runs are bit-identical with checkpointing on or off.
            if cfg.checkpoint_every > 0
                && round % cfg.checkpoint_every == 0
                && round < cfg.rounds as u64
            {
                let rows = range.len() as u32;
                let sampler = match node.stream.sampler().snapshot() {
                    SamplerSnapshot::Sequence { rng, indices } => {
                        CheckpointSampler::Sequence { rows, rng, indices }
                    }
                    SamplerSnapshot::Adaptive { weights, commits } => {
                        // Ship only rows whose weight moved off the
                        // configured base — bitwise, so the restored
                        // dense vector reproduces `weights` exactly.
                        let (indices, weights) = weights
                            .iter()
                            .enumerate()
                            .filter(|&(i, &w)| w.to_bits() != local[i].to_bits())
                            .map(|(i, &w)| (i as u32, w))
                            .unzip();
                        CheckpointSampler::Adaptive {
                            rows,
                            commits,
                            indices,
                            weights,
                        }
                    }
                };
                self.link.send(&Message::Checkpoint {
                    node: id,
                    round,
                    state: Box::new(CheckpointState {
                        draw_rng: node.stream.rng_state(),
                        model: node.model.clone(),
                        sampler,
                    }),
                })?;
            }
        }
        Ok(())
    }

    /// Drains the stash and then the link until both the round-`round`
    /// barrier and the round's consensus model arrived, in either
    /// order; duplicates and stale round tags are dropped, and traffic
    /// for a later round is re-stashed (never silently discarded).
    fn await_round_start(&mut self, round: u64) -> Result<Vec<f64>, ClusterError> {
        fn sort(
            m: Message,
            round: u64,
            barrier: &mut bool,
            consensus: &mut Option<Vec<f64>>,
            stash: &mut std::collections::VecDeque<Message>,
        ) {
            match m {
                Message::RoundBarrier { round: r, .. } if r == round => *barrier = true,
                Message::ModelUpdate {
                    round: r, model, ..
                } if r == round => *consensus = Some(model),
                m @ (Message::RoundBarrier { .. } | Message::ModelUpdate { .. })
                    if m.round() > round =>
                {
                    stash.push_back(m);
                }
                _ => {}
            }
        }
        let mut barrier = false;
        let mut consensus = None;
        // One pass over previously stashed messages (re-stashing any
        // that are still ahead of this round), then block on the link.
        let stashed: Vec<Message> = self.stash.drain(..).collect();
        for m in stashed {
            sort(m, round, &mut barrier, &mut consensus, &mut self.stash);
        }
        while !(barrier && consensus.is_some()) {
            // lint: allow(unbounded-recv) — same link as await_assignment; the barrier wait is the checker's flagship no-deadlock invariant
            let m = self.link.recv()?;
            sort(m, round, &mut barrier, &mut consensus, &mut self.stash);
        }
        Ok(consensus.expect("loop exits with a consensus"))
    }
}

/// One local epoch of sequential (IS-)SGD on the node's shard, drawn
/// through the node's [`ScheduleStream`]. Observed gradient scales
/// stream through the shared [`FeedbackProtocol`] — the single scaling
/// convention this runtime shares with the `isasgd-core` engine — into
/// the stream's own sampler (`protocol` is `None` for uniform/static
/// sampling, where feedback is a no-op). Under intra-epoch commits the
/// sampler re-weights mid-epoch and the very next draw sees it, matching
/// the engine's sequential streaming path draw-for-draw. The scaled
/// observations are additionally max-reduced into `obs_max`/`visited`
/// for the round's [`Message::FeedbackBatch`].
#[allow(clippy::too_many_arguments)]
fn local_epoch<L: Loss>(
    data: &Dataset,
    row_base: usize,
    obj: &Objective<L>,
    node: &mut Node,
    protocol: Option<&FeedbackProtocol>,
    lambda: f64,
    obs_max: &mut [f64],
    visited: &mut [bool],
) {
    let start = node.range.start;
    while let Some(d) = node.stream.next_draw() {
        let row = data.row(d.row as usize - row_base);
        let margin = obj.margin(&row, &node.model);
        let g = obj.grad_scale(&row, margin);
        let scale = lambda * d.corr;
        obj.apply_sgd_update(&row, -scale * g, scale, &mut node.model);
        if let Some(p) = protocol {
            // Age = steps remaining before the epoch-boundary commit
            // (consumed only by the staleness-discounted model).
            let age = node.stream.remaining();
            node.stream.observe(p, d.row as usize, g.abs(), age);
            let local = d.row as usize - start;
            obs_max[local] = obs_max[local].max(p.observation(d.row as usize, g.abs(), age));
            visited[local] = true;
        }
    }
}
