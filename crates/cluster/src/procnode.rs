//! Worker side of the cross-process runtime: `isasgd worker --connect`.
//!
//! A worker process owns nothing at launch except the coordinator's
//! address. Everything else arrives over the session handshake:
//!
//! ```text
//! worker                          coordinator (fleet accept loop)
//!   ── Hello(version) ───────────▶  validate protocol version
//!   ◀──────── Assign(id, config)    node id + SessionConfig
//!   ◀──────── DatasetShard ×N       this node's shard, streamed in
//!                                   ~256 KiB chunks (reordered rows +
//!                                   per-row importance weights); a v1
//!                                   monolithic DatasetTransfer is
//!                                   still accepted
//!   …NodeRuntime round protocol (see crate::coordinator docs)…
//! ```
//!
//! After the handshake the worker constructs its [`ClusterConfig`] and
//! objective from the [`SessionConfig`] and runs the exact same
//! [`NodeRuntime`] the thread-backed transports run — which is why a
//! `--cluster-transport process` run is bit-equal to `tcp`, `inproc`,
//! and (single-node) the sequential engine: same draws, same float-op
//! order, only the process boundary differs. Shard-streamed sessions
//! enter through [`NodeRuntime::run_sharded`], whose inputs are the
//! exact bits the coordinator's own plan holds — so the equivalence
//! extends to workers that never saw the full dataset.
//!
//! The loss crosses the wire as its stable [`Loss::name`] string; only
//! wire-known losses (`logistic`, `squared_hinge`, `squared`) can run
//! cross-process, and an unknown name is a typed error, not a panic.

use crate::coordinator::NodeRuntime;
use crate::node::{ClusterConfig, ClusterError, ProtocolBugs};
use crate::sync::SyncStrategy;
use crate::transport::{Tcp, Transport, TransportConfig, TransportError};
use crate::wire::{Message, SessionConfig, PROTOCOL_VERSION};
use isasgd_balance::BalancePolicy;
use isasgd_losses::{LogisticLoss, Loss, Objective, SquaredHingeLoss, SquaredLoss};
use isasgd_sparse::{Dataset, DatasetBuilder};
use std::net::TcpStream;
use std::time::Duration;

/// Options of one worker session (the `isasgd worker` CLI flags).
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Chaos hook: abort abruptly at this round (test/chaos flag
    /// `--die-at-round`; the coordinator observes a dead worker).
    pub die_at_round: Option<u64>,
    /// Socket read deadline while awaiting coordinator traffic.
    pub read_timeout: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            die_at_round: None,
            read_timeout: Duration::from_secs(120),
        }
    }
}

/// What a completed worker session reports (logging/tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerReport {
    /// The node id the coordinator assigned.
    pub node: u32,
    /// Rounds the session was configured to run.
    pub rounds: u64,
}

/// Connects to a coordinator, performs the `Hello`/`Assign` handshake,
/// and serves the full worker side of the round protocol. Blocks until
/// the run completes (or fails) and reports the assigned node id.
pub fn run_worker(connect: &str, opts: &WorkerOptions) -> Result<WorkerReport, ClusterError> {
    let stream = TcpStream::connect(connect)
        .map_err(|e| ClusterError::Worker(format!("connect {connect}: {e}")))?;
    let mut link = Tcp::with_read_timeout(stream, opts.read_timeout).map_err(TransportError::Io)?;
    link.send(&Message::Hello {
        version: PROTOCOL_VERSION,
    })?;
    // lint: allow(unbounded-recv) — the link was armed with opts.read_timeout at connect, three lines up
    let (worker, config) = match link.recv()? {
        Message::Assign { worker, config } => (worker, config),
        other => {
            return Err(ClusterError::Worker(format!(
                "handshake: expected Assign, got {}",
                other.kind()
            )))
        }
    };
    // Arm the session's wire encoding before any round traffic: the
    // remaining handshake frames are always dense, and both ends start
    // with empty delta bases, so encoder and decoder stay in lockstep.
    link.set_encoding(config.encoding);
    let data = receive_data(&mut link, worker)?;
    // Re-arm the read deadline from the coordinator's configured round
    // deadline, scaled by the node count: between its own rounds a
    // worker legitimately waits through every peer's local epochs plus
    // the coordinator's sequential collection and consensus eval, so a
    // fixed constant would spuriously kill healthy workers on slow
    // rounds the coordinator itself still considers live.
    let per_round = if config.round_timeout_ms == 0 {
        opts.read_timeout.as_millis() as u64
    } else {
        config.round_timeout_ms
    };
    let deadline = per_round.saturating_mul(u64::from(config.nodes).saturating_add(1));
    link.set_read_timeout(Duration::from_millis(deadline.max(1)))
        .map_err(TransportError::Io)?;
    serve(link, worker, config, &data, opts.die_at_round)
}

/// The training data a worker session received over the wire.
enum WorkerData {
    /// v1-style monolithic transfer: the full, original-order dataset
    /// (the worker reconstructs the reordered view itself).
    Full(Dataset),
    /// Shard-streamed admission: only this node's reordered rows, with
    /// their importance weights and the shard's first global row.
    Shard {
        data: Dataset,
        weights: Vec<f64>,
        start: usize,
    },
}

/// Receives the dataset phase of the handshake: either one
/// [`Message::DatasetTransfer`] or a contiguous stream of
/// [`Message::DatasetShard`] chunks for this worker's shard, assembled
/// incrementally (each chunk's builder invariants were re-validated by
/// the wire decoder; this layer checks the chunks agree with each
/// other and tile the declared shard exactly).
fn receive_data(link: &mut Tcp, worker: u32) -> Result<WorkerData, ClusterError> {
    let bad = |what: &str, got: String| ClusterError::Worker(format!("handshake: {what}{got}"));
    // lint: allow(unbounded-recv) — the Tcp link still carries the handshake read deadline armed at connect
    let (shard_start, shard_rows, dim, mut builder, mut weights) = match link.recv()? {
        Message::DatasetTransfer { dataset } => return Ok(WorkerData::Full(*dataset)),
        Message::DatasetShard {
            shard,
            shard_start,
            shard_rows,
            start,
            weights,
            chunk,
        } => {
            if shard != worker {
                return Err(bad(
                    "first shard chunk is for node ",
                    format!("{shard}, this worker is {worker}"),
                ));
            }
            if start != shard_start {
                return Err(bad(
                    "shard stream must begin at its first row, got row ",
                    format!("{start} of a shard starting at {shard_start}"),
                ));
            }
            let dim = chunk.dim();
            let mut builder = DatasetBuilder::new(dim);
            append_chunk(&mut builder, &chunk);
            (shard_start, shard_rows, dim, builder, weights)
        }
        other => {
            return Err(bad(
                "expected DatasetShard or DatasetTransfer, got ",
                other.kind().to_string(),
            ))
        }
    };
    while weights.len() < shard_rows as usize {
        // lint: allow(unbounded-recv) — same deadline-armed Tcp link as the first shard frame
        match link.recv()? {
            Message::DatasetShard {
                shard,
                shard_start: s0,
                shard_rows: n0,
                start,
                weights: w,
                chunk,
            } => {
                if shard != worker || s0 != shard_start || n0 != shard_rows {
                    return Err(bad(
                        "shard chunk disagrees with the stream's header: ",
                        format!("shard {shard} rows {s0}..{}", u64::from(s0) + u64::from(n0)),
                    ));
                }
                if chunk.dim() != dim {
                    return Err(bad("shard chunk dim changed mid-stream", String::new()));
                }
                if u64::from(start) != u64::from(shard_start) + weights.len() as u64 {
                    return Err(bad(
                        "shard chunks must arrive contiguously, got row ",
                        format!(
                            "{start} after {} assembled rows from {shard_start}",
                            weights.len()
                        ),
                    ));
                }
                append_chunk(&mut builder, &chunk);
                weights.extend_from_slice(&w);
            }
            other => {
                return Err(bad(
                    "expected the next DatasetShard chunk, got ",
                    other.kind().to_string(),
                ))
            }
        }
    }
    Ok(WorkerData::Shard {
        data: builder.finish(),
        weights,
        start: shard_start as usize,
    })
}

/// Re-appends a decoded chunk's rows to the shard builder. The wire
/// decoder already re-validated every row invariant, so the unchecked
/// push cannot smuggle a malformed row past the builder.
fn append_chunk(builder: &mut DatasetBuilder, chunk: &Dataset) {
    for row in chunk.rows() {
        builder.push_row_unchecked(row.indices, row.values, row.label);
    }
}

/// Runs the [`NodeRuntime`] for an already-handshaken link,
/// reconstructing the cluster config and dispatching over the wire
/// loss name.
fn serve(
    link: Tcp,
    worker: u32,
    sc: SessionConfig,
    data: &WorkerData,
    die_at_round: Option<u64>,
) -> Result<WorkerReport, ClusterError> {
    let cfg = ClusterConfig {
        nodes: sc.nodes as usize,
        rounds: sc.rounds as usize,
        local_epochs: sc.local_epochs as usize,
        step_size: sc.step_size,
        importance: sc.importance,
        // Coordinator-only decisions: the worker receives their outcome
        // through ShardRebalance / consensus models and never reads
        // these fields.
        balance: BalancePolicy::default(),
        sync: SyncStrategy::Average,
        sampling: sc.sampling,
        obs_model: sc.obs_model,
        commit: sc.commit,
        transport: TransportConfig::InProcess,
        seed: sc.seed,
        checkpoint_every: sc.checkpoint_every,
        telemetry: sc.telemetry,
        bugs: ProtocolBugs::default(),
    };
    let runtime = NodeRuntime::new(link, worker as usize).with_chaos_kill(die_at_round);
    match sc.loss.as_str() {
        n if n == LogisticLoss.name() => {
            drive(runtime, data, &Objective::new(LogisticLoss, sc.reg), &cfg)?;
        }
        n if n == SquaredHingeLoss.name() => drive(
            runtime,
            data,
            &Objective::new(SquaredHingeLoss, sc.reg),
            &cfg,
        )?,
        n if n == SquaredLoss.name() => {
            drive(runtime, data, &Objective::new(SquaredLoss, sc.reg), &cfg)?;
        }
        other => {
            return Err(ClusterError::InvalidConfig(format!(
                "loss '{other}' is not wire-known (expected logistic, squared_hinge, or squared)"
            )))
        }
    }
    Ok(WorkerReport {
        node: worker,
        rounds: sc.rounds,
    })
}

/// Enters the runtime through the path matching how the data arrived:
/// full datasets reconstruct the reordered view locally, streamed
/// shards train in place.
fn drive<L: Loss>(
    runtime: NodeRuntime<Tcp>,
    data: &WorkerData,
    obj: &Objective<L>,
    cfg: &ClusterConfig,
) -> Result<(), ClusterError> {
    match data {
        WorkerData::Full(ds) => runtime.run(ds, obj, cfg),
        WorkerData::Shard {
            data,
            weights,
            start,
        } => runtime.run_sharded(data, weights, *start, obj, cfg),
    }
}

/// The wire-known loss names [`run_worker`] can reconstruct — the
/// fleet validates a run's loss against this list *before* spawning
/// anything, so an unservable configuration fails fast on the
/// coordinator.
pub fn wire_known_loss(name: &str) -> bool {
    name == LogisticLoss.name() || name == SquaredHingeLoss.name() || name == SquaredLoss.name()
}
