//! Worker side of the cross-process runtime: `isasgd worker --connect`.
//!
//! A worker process owns nothing at launch except the coordinator's
//! address. Everything else arrives over the session handshake:
//!
//! ```text
//! worker                          coordinator (fleet accept loop)
//!   ── Hello(version) ───────────▶  validate protocol version
//!   ◀──────── Assign(id, config)    node id + SessionConfig
//!   ◀──────── DatasetTransfer       full training dataset, bit-exact
//!   …NodeRuntime round protocol (see crate::coordinator docs)…
//! ```
//!
//! After the handshake the worker constructs its [`ClusterConfig`] and
//! objective from the [`SessionConfig`] and runs the exact same
//! [`NodeRuntime`] the thread-backed transports run — which is why a
//! `--cluster-transport process` run is bit-equal to `tcp`, `inproc`,
//! and (single-node) the sequential engine: same draws, same float-op
//! order, only the process boundary differs.
//!
//! The loss crosses the wire as its stable [`Loss::name`] string; only
//! wire-known losses (`logistic`, `squared_hinge`, `squared`) can run
//! cross-process, and an unknown name is a typed error, not a panic.

use crate::coordinator::NodeRuntime;
use crate::node::{ClusterConfig, ClusterError};
use crate::sync::SyncStrategy;
use crate::transport::{Tcp, Transport, TransportConfig, TransportError};
use crate::wire::{Message, SessionConfig, PROTOCOL_VERSION};
use isasgd_balance::BalancePolicy;
use isasgd_losses::{LogisticLoss, Loss, Objective, SquaredHingeLoss, SquaredLoss};
use isasgd_sparse::Dataset;
use std::net::TcpStream;
use std::time::Duration;

/// Options of one worker session (the `isasgd worker` CLI flags).
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Chaos hook: abort abruptly at this round (test/chaos flag
    /// `--die-at-round`; the coordinator observes a dead worker).
    pub die_at_round: Option<u64>,
    /// Socket read deadline while awaiting coordinator traffic.
    pub read_timeout: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            die_at_round: None,
            read_timeout: Duration::from_secs(120),
        }
    }
}

/// What a completed worker session reports (logging/tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerReport {
    /// The node id the coordinator assigned.
    pub node: u32,
    /// Rounds the session was configured to run.
    pub rounds: u64,
}

/// Connects to a coordinator, performs the `Hello`/`Assign` handshake,
/// and serves the full worker side of the round protocol. Blocks until
/// the run completes (or fails) and reports the assigned node id.
pub fn run_worker(connect: &str, opts: &WorkerOptions) -> Result<WorkerReport, ClusterError> {
    let stream = TcpStream::connect(connect)
        .map_err(|e| ClusterError::Worker(format!("connect {connect}: {e}")))?;
    let mut link = Tcp::with_read_timeout(stream, opts.read_timeout).map_err(TransportError::Io)?;
    link.send(&Message::Hello {
        version: PROTOCOL_VERSION,
    })?;
    let (worker, config) = match link.recv()? {
        Message::Assign { worker, config } => (worker, config),
        other => {
            return Err(ClusterError::Worker(format!(
                "handshake: expected Assign, got {}",
                other.kind()
            )))
        }
    };
    let dataset = match link.recv()? {
        Message::DatasetTransfer { dataset } => *dataset,
        other => {
            return Err(ClusterError::Worker(format!(
                "handshake: expected DatasetTransfer, got {}",
                other.kind()
            )))
        }
    };
    // Re-arm the read deadline from the coordinator's configured round
    // deadline, scaled by the node count: between its own rounds a
    // worker legitimately waits through every peer's local epochs plus
    // the coordinator's sequential collection and consensus eval, so a
    // fixed constant would spuriously kill healthy workers on slow
    // rounds the coordinator itself still considers live.
    let per_round = if config.round_timeout_ms == 0 {
        opts.read_timeout.as_millis() as u64
    } else {
        config.round_timeout_ms
    };
    let deadline = per_round.saturating_mul(u64::from(config.nodes).saturating_add(1));
    link.set_read_timeout(Duration::from_millis(deadline.max(1)))
        .map_err(TransportError::Io)?;
    serve(link, worker, config, &dataset, opts.die_at_round)
}

/// Runs the [`NodeRuntime`] for an already-handshaken link,
/// reconstructing the cluster config and dispatching over the wire
/// loss name.
fn serve(
    link: Tcp,
    worker: u32,
    sc: SessionConfig,
    ds: &Dataset,
    die_at_round: Option<u64>,
) -> Result<WorkerReport, ClusterError> {
    let cfg = ClusterConfig {
        nodes: sc.nodes as usize,
        rounds: sc.rounds as usize,
        local_epochs: sc.local_epochs as usize,
        step_size: sc.step_size,
        importance: sc.importance,
        // Coordinator-only decisions: the worker receives their outcome
        // through ShardRebalance / consensus models and never reads
        // these fields.
        balance: BalancePolicy::default(),
        sync: SyncStrategy::Average,
        sampling: sc.sampling,
        obs_model: sc.obs_model,
        commit: sc.commit,
        transport: TransportConfig::InProcess,
        seed: sc.seed,
    };
    let runtime = NodeRuntime::new(link, worker as usize).with_chaos_kill(die_at_round);
    match sc.loss.as_str() {
        n if n == LogisticLoss.name() => {
            runtime.run(ds, &Objective::new(LogisticLoss, sc.reg), &cfg)?
        }
        n if n == SquaredHingeLoss.name() => {
            runtime.run(ds, &Objective::new(SquaredHingeLoss, sc.reg), &cfg)?
        }
        n if n == SquaredLoss.name() => {
            runtime.run(ds, &Objective::new(SquaredLoss, sc.reg), &cfg)?
        }
        other => {
            return Err(ClusterError::InvalidConfig(format!(
                "loss '{other}' is not wire-known (expected logistic, squared_hinge, or squared)"
            )))
        }
    }
    Ok(WorkerReport {
        node: worker,
        rounds: sc.rounds,
    })
}

/// The wire-known loss names [`run_worker`] can reconstruct — the
/// fleet validates a run's loss against this list *before* spawning
/// anything, so an unservable configuration fails fast on the
/// coordinator.
pub fn wire_known_loss(name: &str) -> bool {
    name == LogisticLoss.name() || name == SquaredHingeLoss.name() || name == SquaredLoss.name()
}
