//! Model synchronization between nodes.

/// How node models are combined at a synchronization barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncStrategy {
    /// Plain parameter averaging (AllReduce mean) — every node weighted
    /// equally, the classical local-SGD reducer.
    Average,
    /// Example-weighted averaging: node `a` contributes proportionally to
    /// its shard size `N_a`. Equal to [`SyncStrategy::Average`] when
    /// shards are equal (the Algorithm-4 line-9 sharding makes them equal
    /// up to one row).
    WeightedByShard,
}

/// Reduces `models` (one per node) into the consensus model, in place in
/// `out`.
///
/// # Panics
/// Panics if `models` is empty, lengths differ, or `weights` (for
/// [`SyncStrategy::WeightedByShard`]) mismatch the node count.
pub fn average_models(
    models: &[Vec<f64>],
    shard_sizes: &[usize],
    strategy: SyncStrategy,
    out: &mut Vec<f64>,
) {
    assert!(!models.is_empty(), "no models to average");
    let d = models[0].len();
    for m in models {
        assert_eq!(m.len(), d, "model dimension mismatch");
    }
    out.clear();
    out.resize(d, 0.0);
    match strategy {
        SyncStrategy::Average => {
            let k = models.len() as f64;
            for m in models {
                for (o, &v) in out.iter_mut().zip(m) {
                    *o += v / k;
                }
            }
        }
        SyncStrategy::WeightedByShard => {
            assert_eq!(shard_sizes.len(), models.len(), "one shard size per node");
            let total: usize = shard_sizes.iter().sum();
            assert!(total > 0, "empty cluster");
            for (m, &n_a) in models.iter().zip(shard_sizes) {
                let w = n_a as f64 / total as f64;
                for (o, &v) in out.iter_mut().zip(m) {
                    *o += w * v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_average() {
        let models = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let mut out = Vec::new();
        average_models(&models, &[1, 1], SyncStrategy::Average, &mut out);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn weighted_average_respects_shard_sizes() {
        let models = vec![vec![1.0], vec![4.0]];
        let mut out = Vec::new();
        average_models(&models, &[3, 1], SyncStrategy::WeightedByShard, &mut out);
        assert!((out[0] - (0.75 * 1.0 + 0.25 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn weighted_equals_plain_for_equal_shards() {
        let models = vec![vec![1.0, -2.0], vec![5.0, 0.0], vec![0.0, 8.0]];
        let mut a = Vec::new();
        let mut b = Vec::new();
        average_models(&models, &[7, 7, 7], SyncStrategy::Average, &mut a);
        average_models(&models, &[7, 7, 7], SyncStrategy::WeightedByShard, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn average_of_identical_models_is_identity() {
        let m = vec![0.5, -1.5, 3.0];
        let models = vec![m.clone(), m.clone(), m.clone(), m.clone()];
        let mut out = Vec::new();
        average_models(&models, &[2, 2, 2, 2], SyncStrategy::Average, &mut out);
        for (x, y) in out.iter().zip(&m) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "no models")]
    fn empty_input_panics() {
        let mut out = Vec::new();
        average_models(&[], &[], SyncStrategy::Average, &mut out);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let mut out = Vec::new();
        average_models(
            &[vec![1.0], vec![1.0, 2.0]],
            &[1, 1],
            SyncStrategy::Average,
            &mut out,
        );
    }
}
