//! Hand-rolled wire codec for the cluster protocol.
//!
//! The build environment is offline, so the wire path cannot lean on a
//! serde derive; instead every [`Message`] encodes to a fixed,
//! versionless little-endian layout:
//!
//! ```text
//! frame    := u32 payload_len ‖ payload          (framing lives in Tcp)
//! payload  := u8 tag ‖ fields…
//! u32/u64  := little-endian fixed width
//! f64      := IEEE-754 bits, little-endian (bit-exact round trips,
//!             including ±0.0, ±inf, and subnormals)
//! vec<T>   := u32 count ‖ count × T
//! ```
//!
//! Decoding is total: truncated frames, unknown tags, over-declared
//! vector counts, and trailing garbage all return a typed [`WireError`]
//! — never a panic, never an unbounded allocation (counts are validated
//! against the remaining frame bytes *before* any buffer is reserved).
//! `tests/wire_proptests.rs` pins both directions: every message
//! round-trips bit-exactly, and every strict prefix of a valid encoding
//! (plus arbitrary garbage) decodes to an error.

use isasgd_losses::{ImportanceScheme, Regularizer};
use isasgd_sampling::{CommitPolicy, ObservationModel, SamplingStrategy};
use isasgd_sparse::{Dataset, DatasetBuilder};

/// Hard ceiling on one frame's payload size (256 MiB). A length prefix
/// beyond this is rejected before allocation — a garbage or hostile
/// stream cannot make the receiver reserve arbitrary memory.
pub const MAX_FRAME: usize = 1 << 28;

/// Version of the coordinator↔worker session protocol. Carried by
/// [`Message::Hello`]; the accept loop rejects mismatches with a typed
/// [`WireError::Version`] instead of attempting to drive an
/// incompatible peer through the round protocol.
pub const PROTOCOL_VERSION: u32 = 1;

/// The training assignment a [`Message::Assign`] ships to a
/// freshly-connected worker process: everything a `NodeRuntime` needs
/// to reconstruct its `ClusterConfig` and objective in another OS
/// process. Coordinator-only decisions (balance policy, sync strategy)
/// deliberately stay off the wire — the worker receives their *outcome*
/// through [`Message::ShardRebalance`] and the per-round consensus
/// models.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Total node count `numT` (seed-derivation space, not this
    /// worker's id — that is the `worker` field of the Assign frame).
    pub nodes: u32,
    /// Synchronization rounds the run will drive.
    pub rounds: u64,
    /// Local epochs per round.
    pub local_epochs: u32,
    /// Step size λ.
    pub step_size: f64,
    /// Master seed (per-shard draw streams derive from it).
    pub seed: u64,
    /// The coordinator's per-round liveness deadline, in milliseconds
    /// (0 = coordinator default). Workers derive their own read
    /// deadline from it — scaled up by the node count, since a worker
    /// legitimately waits through every peer's round — so a run whose
    /// rounds outlast any fixed constant still keeps liveness checking
    /// proportional instead of spuriously killing healthy workers.
    pub round_timeout_ms: u64,
    /// Importance scheme for static weights / step corrections.
    pub importance: ImportanceScheme,
    /// Sampling strategy the node draws with.
    pub sampling: SamplingStrategy,
    /// Observation model for adaptive feedback.
    pub obs_model: ObservationModel,
    /// Commit policy for adaptive feedback.
    pub commit: CommitPolicy,
    /// Loss name (`Loss::name`): the worker rebuilds the concrete loss
    /// from this tag, so only wire-known losses can run cross-process.
    pub loss: String,
    /// Regularizer bundled into the objective.
    pub reg: Regularizer,
}

/// A typed message of the coordinator↔worker protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A dense model: a worker's trained replica flowing up to the
    /// coordinator, or the coordinator's consensus flowing down.
    ModelUpdate {
        /// Sending node (or addressed worker, coordinator→worker).
        node: u32,
        /// Synchronization round this model belongs to.
        round: u64,
        /// Dense model coordinates.
        model: Vec<f64>,
    },
    /// Per-node importance observations: the [`FeedbackProtocol`]
    /// (Alain et al.'s message shape) scaled observation for every row
    /// the node visited this round, pre-reduced to the per-row max.
    ///
    /// [`FeedbackProtocol`]: isasgd_sampling::FeedbackProtocol
    FeedbackBatch {
        /// Sending node.
        node: u32,
        /// Round the observations were gathered in.
        round: u64,
        /// `(global_row, scaled_observation)` pairs.
        observations: Vec<(u32, f64)>,
    },
    /// Round synchronization marker: a worker's readiness announcement
    /// (round 0 is the connection hello) or the coordinator's
    /// start-of-round barrier.
    RoundBarrier {
        /// Announcing node (or addressed worker).
        node: u32,
        /// Round being announced.
        round: u64,
    },
    /// Shard assignment (Algorithm 4 lines 2–6): the coordinator's
    /// balancing decision, shipped to every worker so each can
    /// reconstruct the rearranged dataset view and its own shard.
    ShardRebalance {
        /// Round of the decision (0 = initial assignment).
        round: u64,
        /// The receiving worker's shard index into `ranges`.
        assigned: u32,
        /// Row permutation to apply before sharding.
        order: Vec<u32>,
        /// Every shard's `[start, end)` row range after reordering.
        ranges: Vec<(u32, u32)>,
    },
    /// Session greeting: the first frame a worker process sends after
    /// connecting. The accept loop validates the protocol version
    /// before admitting the connection to the fleet; anything else on a
    /// fresh connection (garbage, a truncated frame, a different
    /// message kind) is a handshake failure and the connection is
    /// dropped without disturbing the accept loop.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Session assignment, the coordinator's reply to a valid
    /// [`Message::Hello`]: the worker's node id plus the
    /// [`SessionConfig`] it needs to run the round protocol.
    Assign {
        /// Node id assigned to this connection (0-based).
        worker: u32,
        /// The run's training configuration subset.
        config: SessionConfig,
    },
    /// The full training dataset, shipped after [`Message::Assign`] so
    /// a worker process needs no shared filesystem: CSR rows move as
    /// raw IEEE-754 bits, so the worker's view is bit-identical to the
    /// coordinator's. (Delta/shard-local encoding is a ROADMAP item;
    /// correctness first.)
    DatasetTransfer {
        /// The dataset (boxed: this variant dwarfs the others).
        dataset: Box<Dataset>,
    },
}

/// Typed decode failures. Garbage never panics the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before a declared field or element count.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Unknown message tag byte.
    BadTag(u8),
    /// A frame (or its length prefix) exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
    },
    /// The payload decoded cleanly but bytes were left over — the frame
    /// is not a canonical encoding.
    TrailingBytes {
        /// Number of undecoded trailing bytes.
        extra: usize,
    },
    /// An empty payload (no tag byte).
    Empty,
    /// A sub-enum field (importance scheme, commit policy, …) carried a
    /// tag outside its variant range.
    BadEnum {
        /// Which field was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A structurally well-formed frame whose contents violate an
    /// invariant (non-UTF-8 string, unsorted dataset row, ±1 label
    /// violation, non-finite feature value, …).
    Invalid {
        /// Which invariant failed.
        what: &'static str,
    },
    /// A [`Message::Hello`] declared a protocol version this build does
    /// not speak.
    Version {
        /// Version the peer announced.
        got: u32,
        /// Version this build speaks ([`PROTOCOL_VERSION`]).
        want: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            WireError::Empty => write!(f, "empty frame"),
            WireError::BadEnum { what, tag } => {
                write!(f, "unknown {what} tag {tag:#04x}")
            }
            WireError::Invalid { what } => write!(f, "invalid frame contents: {what}"),
            WireError::Version { got, want } => {
                write!(f, "protocol version {got} (this build speaks {want})")
            }
        }
    }
}

impl std::error::Error for WireError {}

const TAG_MODEL_UPDATE: u8 = 1;
const TAG_FEEDBACK_BATCH: u8 = 2;
const TAG_ROUND_BARRIER: u8 = 3;
const TAG_SHARD_REBALANCE: u8 = 4;
const TAG_HELLO: u8 = 5;
const TAG_ASSIGN: u8 = 6;
const TAG_DATASET_TRANSFER: u8 = 7;

/// Bounded cursor over a payload; every read is length-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8"),
        )))
    }

    /// Validates a declared element count against the bytes actually
    /// left, so a hostile count cannot drive an allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let needed = n.saturating_mul(elem_bytes);
        if self.remaining() < needed {
            return Err(WireError::Truncated {
                needed,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    /// A length-prefixed UTF-8 string (count-validated like any vector).
    fn string(&mut self) -> Result<String, WireError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid {
            what: "non-UTF-8 string",
        })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// --- sub-enum codecs for the Assign frame -------------------------------
//
// Each enum encodes as a tag byte followed only by the fields its
// variant actually carries — parameterless variants ship the bare tag,
// so every valid value has exactly one encoding and the canonicality
// property (`decode ∘ encode` is the unique fixed point) extends to the
// session frames.

fn put_importance(out: &mut Vec<u8>, v: ImportanceScheme) {
    match v {
        ImportanceScheme::LipschitzSmoothness => out.push(0),
        ImportanceScheme::GradNormBound { radius } => {
            out.push(1);
            put_f64(out, radius);
        }
        ImportanceScheme::Uniform => out.push(2),
        ImportanceScheme::PartiallyBiased { bias } => {
            out.push(3);
            put_f64(out, bias);
        }
    }
}

fn get_importance(r: &mut Reader<'_>) -> Result<ImportanceScheme, WireError> {
    Ok(match r.u8()? {
        0 => ImportanceScheme::LipschitzSmoothness,
        1 => ImportanceScheme::GradNormBound { radius: r.f64()? },
        2 => ImportanceScheme::Uniform,
        3 => ImportanceScheme::PartiallyBiased { bias: r.f64()? },
        tag => {
            return Err(WireError::BadEnum {
                what: "importance scheme",
                tag,
            })
        }
    })
}

fn put_sampling(out: &mut Vec<u8>, v: SamplingStrategy) {
    out.push(match v {
        SamplingStrategy::Uniform => 0,
        SamplingStrategy::Static => 1,
        SamplingStrategy::Adaptive => 2,
    });
}

fn get_sampling(r: &mut Reader<'_>) -> Result<SamplingStrategy, WireError> {
    Ok(match r.u8()? {
        0 => SamplingStrategy::Uniform,
        1 => SamplingStrategy::Static,
        2 => SamplingStrategy::Adaptive,
        tag => {
            return Err(WireError::BadEnum {
                what: "sampling strategy",
                tag,
            })
        }
    })
}

fn put_obs_model(out: &mut Vec<u8>, v: ObservationModel) {
    match v {
        ObservationModel::GradNorm => out.push(0),
        ObservationModel::LossBound => out.push(1),
        ObservationModel::StalenessDiscounted { half_life } => {
            out.push(2);
            put_f64(out, half_life);
        }
    }
}

fn get_obs_model(r: &mut Reader<'_>) -> Result<ObservationModel, WireError> {
    Ok(match r.u8()? {
        0 => ObservationModel::GradNorm,
        1 => ObservationModel::LossBound,
        2 => ObservationModel::StalenessDiscounted {
            half_life: r.f64()?,
        },
        tag => {
            return Err(WireError::BadEnum {
                what: "observation model",
                tag,
            })
        }
    })
}

fn put_commit(out: &mut Vec<u8>, v: CommitPolicy) {
    match v {
        CommitPolicy::EpochBoundary => out.push(0),
        CommitPolicy::EveryK(k) => {
            out.push(1);
            put_u64(out, k as u64);
        }
    }
}

fn get_commit(r: &mut Reader<'_>) -> Result<CommitPolicy, WireError> {
    Ok(match r.u8()? {
        0 => CommitPolicy::EpochBoundary,
        1 => {
            let k = r.u64()?;
            if k > usize::MAX as u64 {
                return Err(WireError::Invalid {
                    what: "commit period exceeds usize",
                });
            }
            CommitPolicy::EveryK(k as usize)
        }
        tag => {
            return Err(WireError::BadEnum {
                what: "commit policy",
                tag,
            })
        }
    })
}

fn put_reg(out: &mut Vec<u8>, v: Regularizer) {
    match v {
        Regularizer::None => out.push(0),
        Regularizer::L1 { eta } => {
            out.push(1);
            put_f64(out, eta);
        }
        Regularizer::L2 { eta } => {
            out.push(2);
            put_f64(out, eta);
        }
    }
}

fn get_reg(r: &mut Reader<'_>) -> Result<Regularizer, WireError> {
    Ok(match r.u8()? {
        0 => Regularizer::None,
        1 => Regularizer::L1 { eta: r.f64()? },
        2 => Regularizer::L2 { eta: r.f64()? },
        tag => {
            return Err(WireError::BadEnum {
                what: "regularizer",
                tag,
            })
        }
    })
}

fn put_session_config(out: &mut Vec<u8>, c: &SessionConfig) {
    put_u32(out, c.nodes);
    put_u64(out, c.rounds);
    put_u32(out, c.local_epochs);
    put_f64(out, c.step_size);
    put_u64(out, c.seed);
    put_u64(out, c.round_timeout_ms);
    put_importance(out, c.importance);
    put_sampling(out, c.sampling);
    put_obs_model(out, c.obs_model);
    put_commit(out, c.commit);
    put_string(out, &c.loss);
    put_reg(out, c.reg);
}

fn get_session_config(r: &mut Reader<'_>) -> Result<SessionConfig, WireError> {
    Ok(SessionConfig {
        nodes: r.u32()?,
        rounds: r.u64()?,
        local_epochs: r.u32()?,
        step_size: r.f64()?,
        seed: r.u64()?,
        round_timeout_ms: r.u64()?,
        importance: get_importance(r)?,
        sampling: get_sampling(r)?,
        obs_model: get_obs_model(r)?,
        commit: get_commit(r)?,
        loss: r.string()?,
        reg: get_reg(r)?,
    })
}

/// Encodes a [`Message::DatasetTransfer`] payload for `ds` directly
/// from a borrowed dataset — what the fleet uses to build its cached
/// admission frame without cloning the dataset into a `Message` first.
pub fn encode_dataset_transfer(ds: &Dataset, out: &mut Vec<u8>) {
    out.push(TAG_DATASET_TRANSFER);
    put_dataset(out, ds);
}

fn put_dataset(out: &mut Vec<u8>, ds: &Dataset) {
    put_u32(out, ds.dim() as u32);
    put_u32(out, ds.n_samples() as u32);
    for row in ds.rows() {
        put_f64(out, row.label);
        put_u32(out, row.indices.len() as u32);
        for (&i, &x) in row.indices.iter().zip(row.values) {
            put_u32(out, i);
            put_f64(out, x);
        }
    }
}

/// Decodes a dataset, re-validating every invariant the builder
/// enforces (±1 labels, strictly increasing in-bounds indices, finite
/// values) so a hostile frame can never construct a `Dataset` that
/// violates them — and so accepted frames stay canonical.
fn get_dataset(r: &mut Reader<'_>) -> Result<Dataset, WireError> {
    let dim = r.u32()? as usize;
    // Minimum 12 bytes per row (label + nnz count) bounds the row count
    // before any allocation.
    let n = r.count(12)?;
    let mut b = DatasetBuilder::with_capacity(dim, n, 0);
    for _ in 0..n {
        let label = r.f64()?;
        if label != 1.0 && label != -1.0 {
            return Err(WireError::Invalid {
                what: "dataset label not ±1",
            });
        }
        let nnz = r.count(12)?;
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let i = r.u32()?;
            let x = r.f64()?;
            if indices.last().is_some_and(|&last| i <= last) {
                return Err(WireError::Invalid {
                    what: "dataset row indices not strictly increasing",
                });
            }
            if i as usize >= dim {
                return Err(WireError::Invalid {
                    what: "dataset feature index out of bounds",
                });
            }
            if !x.is_finite() {
                return Err(WireError::Invalid {
                    what: "non-finite dataset value",
                });
            }
            indices.push(i);
            values.push(x);
        }
        b.push_row_unchecked(&indices, &values, label);
    }
    Ok(b.finish())
}

impl Message {
    /// Appends this message's payload encoding (tag + fields, no length
    /// prefix) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::ModelUpdate { node, round, model } => {
                out.push(TAG_MODEL_UPDATE);
                put_u32(out, *node);
                put_u64(out, *round);
                put_u32(out, model.len() as u32);
                for &v in model {
                    put_f64(out, v);
                }
            }
            Message::FeedbackBatch {
                node,
                round,
                observations,
            } => {
                out.push(TAG_FEEDBACK_BATCH);
                put_u32(out, *node);
                put_u64(out, *round);
                put_u32(out, observations.len() as u32);
                for &(row, obs) in observations {
                    put_u32(out, row);
                    put_f64(out, obs);
                }
            }
            Message::RoundBarrier { node, round } => {
                out.push(TAG_ROUND_BARRIER);
                put_u32(out, *node);
                put_u64(out, *round);
            }
            Message::ShardRebalance {
                round,
                assigned,
                order,
                ranges,
            } => {
                out.push(TAG_SHARD_REBALANCE);
                put_u64(out, *round);
                put_u32(out, *assigned);
                put_u32(out, order.len() as u32);
                for &i in order {
                    put_u32(out, i);
                }
                put_u32(out, ranges.len() as u32);
                for &(s, e) in ranges {
                    put_u32(out, s);
                    put_u32(out, e);
                }
            }
            Message::Hello { version } => {
                out.push(TAG_HELLO);
                put_u32(out, *version);
            }
            Message::Assign { worker, config } => {
                out.push(TAG_ASSIGN);
                put_u32(out, *worker);
                put_session_config(out, config);
            }
            Message::DatasetTransfer { dataset } => {
                out.push(TAG_DATASET_TRANSFER);
                put_dataset(out, dataset);
            }
        }
    }

    /// The payload encoding as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one complete payload. The payload must contain exactly
    /// one message — trailing bytes are an error, so a canonical
    /// encoding is the unique fixed point of `decode ∘ encode`.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        if payload.len() > MAX_FRAME {
            return Err(WireError::FrameTooLarge { len: payload.len() });
        }
        let mut r = Reader::new(payload);
        let tag = r.u8().map_err(|_| WireError::Empty)?;
        let msg = match tag {
            TAG_MODEL_UPDATE => {
                let node = r.u32()?;
                let round = r.u64()?;
                let n = r.count(8)?;
                let mut model = Vec::with_capacity(n);
                for _ in 0..n {
                    model.push(r.f64()?);
                }
                Message::ModelUpdate { node, round, model }
            }
            TAG_FEEDBACK_BATCH => {
                let node = r.u32()?;
                let round = r.u64()?;
                let n = r.count(12)?;
                let mut observations = Vec::with_capacity(n);
                for _ in 0..n {
                    let row = r.u32()?;
                    let obs = r.f64()?;
                    observations.push((row, obs));
                }
                Message::FeedbackBatch {
                    node,
                    round,
                    observations,
                }
            }
            TAG_ROUND_BARRIER => Message::RoundBarrier {
                node: r.u32()?,
                round: r.u64()?,
            },
            TAG_SHARD_REBALANCE => {
                let round = r.u64()?;
                let assigned = r.u32()?;
                let n = r.count(4)?;
                let mut order = Vec::with_capacity(n);
                for _ in 0..n {
                    order.push(r.u32()?);
                }
                let k = r.count(8)?;
                let mut ranges = Vec::with_capacity(k);
                for _ in 0..k {
                    let s = r.u32()?;
                    let e = r.u32()?;
                    ranges.push((s, e));
                }
                Message::ShardRebalance {
                    round,
                    assigned,
                    order,
                    ranges,
                }
            }
            TAG_HELLO => Message::Hello { version: r.u32()? },
            TAG_ASSIGN => Message::Assign {
                worker: r.u32()?,
                config: get_session_config(&mut r)?,
            },
            TAG_DATASET_TRANSFER => Message::DatasetTransfer {
                dataset: Box::new(get_dataset(&mut r)?),
            },
            other => return Err(WireError::BadTag(other)),
        };
        if r.remaining() > 0 {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(msg)
    }

    /// Short display name of the message kind (logging/tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::ModelUpdate { .. } => "ModelUpdate",
            Message::FeedbackBatch { .. } => "FeedbackBatch",
            Message::RoundBarrier { .. } => "RoundBarrier",
            Message::ShardRebalance { .. } => "ShardRebalance",
            Message::Hello { .. } => "Hello",
            Message::Assign { .. } => "Assign",
            Message::DatasetTransfer { .. } => "DatasetTransfer",
        }
    }

    /// The round number carried by any message kind (session-layer
    /// frames — hello, assign, dataset — all belong to round 0).
    pub fn round(&self) -> u64 {
        match self {
            Message::ModelUpdate { round, .. }
            | Message::FeedbackBatch { round, .. }
            | Message::RoundBarrier { round, .. }
            | Message::ShardRebalance { round, .. } => *round,
            Message::Hello { .. } | Message::Assign { .. } | Message::DatasetTransfer { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &Message) {
        let bytes = m.to_bytes();
        let back = Message::decode(&bytes).expect("valid encoding decodes");
        assert_eq!(&back, m);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(&Message::ModelUpdate {
            node: 3,
            round: 17,
            model: vec![0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -1e-308],
        });
        roundtrip(&Message::ModelUpdate {
            node: 0,
            round: 0,
            model: vec![],
        });
        roundtrip(&Message::FeedbackBatch {
            node: u32::MAX,
            round: u64::MAX,
            observations: vec![(0, 1.0), (u32::MAX, f64::INFINITY)],
        });
        roundtrip(&Message::RoundBarrier { node: 9, round: 2 });
        roundtrip(&Message::ShardRebalance {
            round: 0,
            assigned: 2,
            order: vec![2, 0, 1],
            ranges: vec![(0, 1), (1, 2), (2, 3)],
        });
        roundtrip(&Message::Hello {
            version: PROTOCOL_VERSION,
        });
        for config in session_configs() {
            roundtrip(&Message::Assign { worker: 3, config });
        }
        roundtrip(&Message::DatasetTransfer {
            dataset: Box::new(tiny_dataset()),
        });
    }

    fn tiny_dataset() -> Dataset {
        let mut b = DatasetBuilder::new(6);
        b.push_row(&[(0, 1.5), (2, -0.25), (5, 5e-324)], 1.0)
            .unwrap();
        b.push_row(&[], -1.0).unwrap();
        b.push_row(&[(3, -0.0)], -1.0).unwrap();
        b.finish()
    }

    /// One SessionConfig per sub-enum variant so every codec arm is hit.
    fn session_configs() -> Vec<SessionConfig> {
        let base = SessionConfig {
            nodes: 4,
            rounds: 10,
            local_epochs: 2,
            step_size: 0.5,
            seed: 0x15A5_6D00,
            round_timeout_ms: 120_000,
            importance: ImportanceScheme::LipschitzSmoothness,
            sampling: SamplingStrategy::Static,
            obs_model: ObservationModel::GradNorm,
            commit: CommitPolicy::EpochBoundary,
            loss: "logistic".into(),
            reg: Regularizer::None,
        };
        vec![
            base.clone(),
            SessionConfig {
                importance: ImportanceScheme::GradNormBound { radius: 1.25 },
                sampling: SamplingStrategy::Adaptive,
                obs_model: ObservationModel::StalenessDiscounted { half_life: 64.0 },
                commit: CommitPolicy::EveryK(32),
                loss: "squared hinge".into(),
                reg: Regularizer::L1 { eta: 1e-5 },
                ..base.clone()
            },
            SessionConfig {
                importance: ImportanceScheme::PartiallyBiased { bias: 0.5 },
                sampling: SamplingStrategy::Uniform,
                obs_model: ObservationModel::LossBound,
                reg: Regularizer::L2 { eta: 0.01 },
                ..base.clone()
            },
            SessionConfig {
                importance: ImportanceScheme::Uniform,
                ..base
            },
        ]
    }

    #[test]
    fn dataset_transfer_is_bit_exact() {
        let ds = tiny_dataset();
        let m = Message::DatasetTransfer {
            dataset: Box::new(ds.clone()),
        };
        let Message::DatasetTransfer { dataset: back } = Message::decode(&m.to_bytes()).unwrap()
        else {
            panic!("wrong variant")
        };
        assert_eq!(*back, ds);
        // Subnormal and signed-zero feature values survive bitwise.
        assert_eq!(back.row(0).values[2].to_bits(), 5e-324f64.to_bits());
        assert_eq!(back.row(2).values[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn malformed_dataset_frames_are_typed_errors() {
        // Bad label.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4); // dim
        put_u32(&mut bytes, 1); // rows
        put_f64(&mut bytes, 0.5); // label not ±1
        put_u32(&mut bytes, 0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Unsorted indices.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4);
        put_u32(&mut bytes, 1);
        put_f64(&mut bytes, 1.0);
        put_u32(&mut bytes, 2);
        put_u32(&mut bytes, 2);
        put_f64(&mut bytes, 1.0);
        put_u32(&mut bytes, 1); // 1 after 2
        put_f64(&mut bytes, 1.0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Out-of-bounds index.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4);
        put_u32(&mut bytes, 1);
        put_f64(&mut bytes, 1.0);
        put_u32(&mut bytes, 1);
        put_u32(&mut bytes, 9);
        put_f64(&mut bytes, 1.0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // NaN value.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4);
        put_u32(&mut bytes, 1);
        put_f64(&mut bytes, 1.0);
        put_u32(&mut bytes, 1);
        put_u32(&mut bytes, 0);
        put_f64(&mut bytes, f64::NAN);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Over-declared row count fails before allocation.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4);
        put_u32(&mut bytes, u32::MAX);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_session_enum_tags_are_typed_errors() {
        let m = Message::Assign {
            worker: 0,
            config: session_configs().remove(0),
        };
        let bytes = m.to_bytes();
        // The importance-scheme tag sits right after worker(4) + nodes(4)
        // + rounds(8) + local_epochs(4) + step(8) + seed(8) +
        // round_timeout(8) + the message tag byte.
        let pos = 1 + 4 + 4 + 8 + 4 + 8 + 8 + 8;
        let mut bad = bytes.clone();
        bad[pos] = 0xEE;
        assert!(matches!(
            Message::decode(&bad),
            Err(WireError::BadEnum {
                what: "importance scheme",
                tag: 0xEE
            })
        ));
        // Non-UTF-8 loss name.
        let m2 = Message::Assign {
            worker: 0,
            config: SessionConfig {
                loss: "ab".into(),
                ..session_configs().remove(0)
            },
        };
        let mut bytes = m2.to_bytes();
        let n = bytes.len();
        // The trailing reg tag (1 byte, Regularizer::None) is preceded by
        // the 2-byte loss string; corrupt its bytes to invalid UTF-8.
        bytes[n - 2] = 0xFF;
        bytes[n - 3] = 0xFE;
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid {
                what: "non-UTF-8 string"
            })
        ));
    }

    #[test]
    fn f64_roundtrips_are_bit_exact() {
        let m = Message::ModelUpdate {
            node: 0,
            round: 0,
            model: vec![-0.0, f64::NEG_INFINITY, 5e-324],
        };
        let Message::ModelUpdate { model, .. } = Message::decode(&m.to_bytes()).unwrap() else {
            panic!("wrong variant")
        };
        assert_eq!(model[0].to_bits(), (-0.0f64).to_bits(), "signed zero kept");
        assert_eq!(model[1], f64::NEG_INFINITY);
        assert_eq!(model[2].to_bits(), 5e-324f64.to_bits(), "subnormal kept");
    }

    #[test]
    fn bad_tag_and_empty_are_typed_errors() {
        assert_eq!(Message::decode(&[]), Err(WireError::Empty));
        assert_eq!(Message::decode(&[0xff]), Err(WireError::BadTag(0xff)));
        assert_eq!(Message::decode(&[0]), Err(WireError::BadTag(0)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Message::RoundBarrier { node: 1, round: 1 }.to_bytes();
        bytes.push(0xAB);
        assert_eq!(
            Message::decode(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn over_declared_counts_do_not_allocate() {
        // A FeedbackBatch declaring u32::MAX entries with no bytes
        // behind it must fail the count check before any reserve.
        let mut bytes = vec![TAG_FEEDBACK_BATCH];
        put_u32(&mut bytes, 0); // node
        put_u64(&mut bytes, 0); // round
        put_u32(&mut bytes, u32::MAX); // declared count
        match Message::decode(&bytes) {
            Err(WireError::Truncated { needed, have: 0 }) => {
                assert_eq!(needed, u32::MAX as usize * 12)
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn every_strict_prefix_is_truncated() {
        let bytes = Message::ModelUpdate {
            node: 1,
            round: 2,
            model: vec![1.0, 2.0, 3.0],
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }
}
