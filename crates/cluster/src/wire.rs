//! Hand-rolled wire codec for the cluster protocol.
//!
//! The build environment is offline, so the wire path cannot lean on a
//! serde derive; instead every [`Message`] encodes to a fixed,
//! versionless little-endian layout:
//!
//! ```text
//! frame    := u32 payload_len ‖ payload          (framing lives in Tcp)
//! payload  := u8 tag ‖ fields…
//! u32/u64  := little-endian fixed width
//! f64      := IEEE-754 bits, little-endian (bit-exact round trips,
//!             including ±0.0, ±inf, and subnormals)
//! vec<T>   := u32 count ‖ count × T
//! ```
//!
//! Decoding is total: truncated frames, unknown tags, over-declared
//! vector counts, and trailing garbage all return a typed [`WireError`]
//! — never a panic, never an unbounded allocation (counts are validated
//! against the remaining frame bytes *before* any buffer is reserved).
//! `tests/wire_proptests.rs` pins both directions: every message
//! round-trips bit-exactly, and every strict prefix of a valid encoding
//! (plus arbitrary garbage) decodes to an error.

/// Hard ceiling on one frame's payload size (256 MiB). A length prefix
/// beyond this is rejected before allocation — a garbage or hostile
/// stream cannot make the receiver reserve arbitrary memory.
pub const MAX_FRAME: usize = 1 << 28;

/// A typed message of the coordinator↔worker protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A dense model: a worker's trained replica flowing up to the
    /// coordinator, or the coordinator's consensus flowing down.
    ModelUpdate {
        /// Sending node (or addressed worker, coordinator→worker).
        node: u32,
        /// Synchronization round this model belongs to.
        round: u64,
        /// Dense model coordinates.
        model: Vec<f64>,
    },
    /// Per-node importance observations: the [`FeedbackProtocol`]
    /// (Alain et al.'s message shape) scaled observation for every row
    /// the node visited this round, pre-reduced to the per-row max.
    ///
    /// [`FeedbackProtocol`]: isasgd_sampling::FeedbackProtocol
    FeedbackBatch {
        /// Sending node.
        node: u32,
        /// Round the observations were gathered in.
        round: u64,
        /// `(global_row, scaled_observation)` pairs.
        observations: Vec<(u32, f64)>,
    },
    /// Round synchronization marker: a worker's readiness announcement
    /// (round 0 is the connection hello) or the coordinator's
    /// start-of-round barrier.
    RoundBarrier {
        /// Announcing node (or addressed worker).
        node: u32,
        /// Round being announced.
        round: u64,
    },
    /// Shard assignment (Algorithm 4 lines 2–6): the coordinator's
    /// balancing decision, shipped to every worker so each can
    /// reconstruct the rearranged dataset view and its own shard.
    ShardRebalance {
        /// Round of the decision (0 = initial assignment).
        round: u64,
        /// The receiving worker's shard index into `ranges`.
        assigned: u32,
        /// Row permutation to apply before sharding.
        order: Vec<u32>,
        /// Every shard's `[start, end)` row range after reordering.
        ranges: Vec<(u32, u32)>,
    },
}

/// Typed decode failures. Garbage never panics the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before a declared field or element count.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Unknown message tag byte.
    BadTag(u8),
    /// A frame (or its length prefix) exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
    },
    /// The payload decoded cleanly but bytes were left over — the frame
    /// is not a canonical encoding.
    TrailingBytes {
        /// Number of undecoded trailing bytes.
        extra: usize,
    },
    /// An empty payload (no tag byte).
    Empty,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            WireError::Empty => write!(f, "empty frame"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_MODEL_UPDATE: u8 = 1;
const TAG_FEEDBACK_BATCH: u8 = 2;
const TAG_ROUND_BARRIER: u8 = 3;
const TAG_SHARD_REBALANCE: u8 = 4;

/// Bounded cursor over a payload; every read is length-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8"),
        )))
    }

    /// Validates a declared element count against the bytes actually
    /// left, so a hostile count cannot drive an allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let needed = n.saturating_mul(elem_bytes);
        if self.remaining() < needed {
            return Err(WireError::Truncated {
                needed,
                have: self.remaining(),
            });
        }
        Ok(n)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

impl Message {
    /// Appends this message's payload encoding (tag + fields, no length
    /// prefix) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::ModelUpdate { node, round, model } => {
                out.push(TAG_MODEL_UPDATE);
                put_u32(out, *node);
                put_u64(out, *round);
                put_u32(out, model.len() as u32);
                for &v in model {
                    put_f64(out, v);
                }
            }
            Message::FeedbackBatch {
                node,
                round,
                observations,
            } => {
                out.push(TAG_FEEDBACK_BATCH);
                put_u32(out, *node);
                put_u64(out, *round);
                put_u32(out, observations.len() as u32);
                for &(row, obs) in observations {
                    put_u32(out, row);
                    put_f64(out, obs);
                }
            }
            Message::RoundBarrier { node, round } => {
                out.push(TAG_ROUND_BARRIER);
                put_u32(out, *node);
                put_u64(out, *round);
            }
            Message::ShardRebalance {
                round,
                assigned,
                order,
                ranges,
            } => {
                out.push(TAG_SHARD_REBALANCE);
                put_u64(out, *round);
                put_u32(out, *assigned);
                put_u32(out, order.len() as u32);
                for &i in order {
                    put_u32(out, i);
                }
                put_u32(out, ranges.len() as u32);
                for &(s, e) in ranges {
                    put_u32(out, s);
                    put_u32(out, e);
                }
            }
        }
    }

    /// The payload encoding as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one complete payload. The payload must contain exactly
    /// one message — trailing bytes are an error, so a canonical
    /// encoding is the unique fixed point of `decode ∘ encode`.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        if payload.len() > MAX_FRAME {
            return Err(WireError::FrameTooLarge { len: payload.len() });
        }
        let mut r = Reader::new(payload);
        let tag = r.u8().map_err(|_| WireError::Empty)?;
        let msg = match tag {
            TAG_MODEL_UPDATE => {
                let node = r.u32()?;
                let round = r.u64()?;
                let n = r.count(8)?;
                let mut model = Vec::with_capacity(n);
                for _ in 0..n {
                    model.push(r.f64()?);
                }
                Message::ModelUpdate { node, round, model }
            }
            TAG_FEEDBACK_BATCH => {
                let node = r.u32()?;
                let round = r.u64()?;
                let n = r.count(12)?;
                let mut observations = Vec::with_capacity(n);
                for _ in 0..n {
                    let row = r.u32()?;
                    let obs = r.f64()?;
                    observations.push((row, obs));
                }
                Message::FeedbackBatch {
                    node,
                    round,
                    observations,
                }
            }
            TAG_ROUND_BARRIER => Message::RoundBarrier {
                node: r.u32()?,
                round: r.u64()?,
            },
            TAG_SHARD_REBALANCE => {
                let round = r.u64()?;
                let assigned = r.u32()?;
                let n = r.count(4)?;
                let mut order = Vec::with_capacity(n);
                for _ in 0..n {
                    order.push(r.u32()?);
                }
                let k = r.count(8)?;
                let mut ranges = Vec::with_capacity(k);
                for _ in 0..k {
                    let s = r.u32()?;
                    let e = r.u32()?;
                    ranges.push((s, e));
                }
                Message::ShardRebalance {
                    round,
                    assigned,
                    order,
                    ranges,
                }
            }
            other => return Err(WireError::BadTag(other)),
        };
        if r.remaining() > 0 {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(msg)
    }

    /// Short display name of the message kind (logging/tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::ModelUpdate { .. } => "ModelUpdate",
            Message::FeedbackBatch { .. } => "FeedbackBatch",
            Message::RoundBarrier { .. } => "RoundBarrier",
            Message::ShardRebalance { .. } => "ShardRebalance",
        }
    }

    /// The round number carried by any message kind.
    pub fn round(&self) -> u64 {
        match self {
            Message::ModelUpdate { round, .. }
            | Message::FeedbackBatch { round, .. }
            | Message::RoundBarrier { round, .. }
            | Message::ShardRebalance { round, .. } => *round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &Message) {
        let bytes = m.to_bytes();
        let back = Message::decode(&bytes).expect("valid encoding decodes");
        assert_eq!(&back, m);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(&Message::ModelUpdate {
            node: 3,
            round: 17,
            model: vec![0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -1e-308],
        });
        roundtrip(&Message::ModelUpdate {
            node: 0,
            round: 0,
            model: vec![],
        });
        roundtrip(&Message::FeedbackBatch {
            node: u32::MAX,
            round: u64::MAX,
            observations: vec![(0, 1.0), (u32::MAX, f64::INFINITY)],
        });
        roundtrip(&Message::RoundBarrier { node: 9, round: 2 });
        roundtrip(&Message::ShardRebalance {
            round: 0,
            assigned: 2,
            order: vec![2, 0, 1],
            ranges: vec![(0, 1), (1, 2), (2, 3)],
        });
    }

    #[test]
    fn f64_roundtrips_are_bit_exact() {
        let m = Message::ModelUpdate {
            node: 0,
            round: 0,
            model: vec![-0.0, f64::NEG_INFINITY, 5e-324],
        };
        let Message::ModelUpdate { model, .. } = Message::decode(&m.to_bytes()).unwrap() else {
            panic!("wrong variant")
        };
        assert_eq!(model[0].to_bits(), (-0.0f64).to_bits(), "signed zero kept");
        assert_eq!(model[1], f64::NEG_INFINITY);
        assert_eq!(model[2].to_bits(), 5e-324f64.to_bits(), "subnormal kept");
    }

    #[test]
    fn bad_tag_and_empty_are_typed_errors() {
        assert_eq!(Message::decode(&[]), Err(WireError::Empty));
        assert_eq!(Message::decode(&[0xff]), Err(WireError::BadTag(0xff)));
        assert_eq!(Message::decode(&[0]), Err(WireError::BadTag(0)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Message::RoundBarrier { node: 1, round: 1 }.to_bytes();
        bytes.push(0xAB);
        assert_eq!(
            Message::decode(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn over_declared_counts_do_not_allocate() {
        // A FeedbackBatch declaring u32::MAX entries with no bytes
        // behind it must fail the count check before any reserve.
        let mut bytes = vec![TAG_FEEDBACK_BATCH];
        put_u32(&mut bytes, 0); // node
        put_u64(&mut bytes, 0); // round
        put_u32(&mut bytes, u32::MAX); // declared count
        match Message::decode(&bytes) {
            Err(WireError::Truncated { needed, have: 0 }) => {
                assert_eq!(needed, u32::MAX as usize * 12)
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn every_strict_prefix_is_truncated() {
        let bytes = Message::ModelUpdate {
            node: 1,
            round: 2,
            model: vec![1.0, 2.0, 3.0],
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }
}
