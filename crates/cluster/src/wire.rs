//! Hand-rolled wire codec for the cluster protocol.
//!
//! The build environment is offline, so the wire path cannot lean on a
//! serde derive; instead every [`Message`] encodes to a fixed,
//! versionless little-endian layout:
//!
//! ```text
//! frame    := u32 payload_len ‖ payload          (framing lives in Tcp)
//! payload  := u8 tag ‖ fields…
//! u32/u64  := little-endian fixed width
//! f64      := IEEE-754 bits, little-endian (bit-exact round trips,
//!             including ±0.0, ±inf, and subnormals)
//! vec<T>   := u32 count ‖ count × T
//! varint   := canonical LEB128 (7 bits per byte, low first; the
//!             shortest encoding is the only accepted one)
//! idxlist  := u32 count ‖ varint first ‖ (count−1) × varint gap
//!             (gap = idx − prev − 1; strictly increasing by
//!             construction, so sortedness needs no re-check)
//! ```
//!
//! The bandwidth-bearing frames ([`Message::ModelDelta`],
//! [`Message::DatasetShard`]) use the varint index list for their
//! coordinate payloads; dense frames keep the fixed-width layout.
//!
//! Decoding is total: truncated frames, unknown tags, over-declared
//! vector counts, non-minimal varints, and trailing garbage all return
//! a typed [`WireError`] — never a panic, never an unbounded allocation
//! (counts are validated against the remaining frame bytes *before* any
//! buffer is reserved). `tests/wire_proptests.rs` pins both directions:
//! every message round-trips bit-exactly, and every strict prefix of a
//! valid encoding (plus arbitrary garbage) decodes to an error.

use isasgd_losses::{ImportanceScheme, Regularizer};
use isasgd_sampling::{CommitPolicy, ObservationModel, SamplingStrategy};
use isasgd_sparse::{Dataset, DatasetBuilder};

/// Hard ceiling on one frame's payload size (256 MiB). A length prefix
/// beyond this is rejected before allocation — a garbage or hostile
/// stream cannot make the receiver reserve arbitrary memory.
pub const MAX_FRAME: usize = 1 << 28;

/// Version of the coordinator↔worker session protocol. Carried by
/// [`Message::Hello`]; the accept loop rejects mismatches with a typed
/// [`WireError::Version`] instead of attempting to drive an
/// incompatible peer through the round protocol.
///
/// Version 2 added the bandwidth frames ([`Message::ModelDelta`],
/// [`Message::DatasetShard`]) and the [`SessionConfig::encoding`]
/// field; a v1 peer would mis-parse an Assign frame, so the version
/// gate is load-bearing. Version 3 added the recovery frames
/// ([`Message::Checkpoint`], [`Message::CheckpointAck`]) and the
/// [`SessionConfig::checkpoint_every`] field. Version 4 added the
/// observability frame ([`Message::Telemetry`]) and the
/// [`SessionConfig::telemetry`] field.
pub const PROTOCOL_VERSION: u32 = 4;

/// Version of the [`Message::Checkpoint`] *state layout*, carried
/// inside every checkpoint frame independently of [`PROTOCOL_VERSION`]:
/// a stored blob outlives the connection that produced it, so the
/// receiver re-validates the layout version at decode time instead of
/// trusting the session handshake.
pub const CHECKPOINT_VERSION: u32 = 1;

/// How [`Message::ModelUpdate`] traffic is encoded on a socket link.
///
/// Both sides of a [`Tcp`] link track the last model that crossed it in
/// each direction; a delta frame carries only the coordinates whose
/// IEEE-754 bits differ from that base, so bandwidth tracks *what
/// changed* rather than model size. Reconstruction is bitwise
/// (overwrite the base at the listed coordinates), so every encoding
/// choice yields bit-identical training — pinned by the equivalence
/// matrix running under all three variants.
///
/// [`Tcp`]: crate::transport::Tcp
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireEncoding {
    /// Always ship the full dense model (the v1 wire behavior).
    Dense,
    /// Always ship a sparse delta against the per-link base (the first
    /// model on a fresh link necessarily goes dense — there is no base).
    Delta,
    /// Ship whichever is smaller: delta when the changed-coordinate
    /// count is at most `dim / 3` (the break-even point of the
    /// 12-byte-per-coordinate delta row against 8 bytes per dense
    /// coordinate, with varint headroom), dense otherwise.
    #[default]
    Auto,
}

impl WireEncoding {
    /// Parses a CLI name (`dense` | `delta` | `auto`).
    pub fn parse(s: &str) -> Option<WireEncoding> {
        Some(match s {
            "dense" => WireEncoding::Dense,
            "delta" => WireEncoding::Delta,
            "auto" => WireEncoding::Auto,
            _ => return None,
        })
    }

    /// The CLI/log name of this encoding.
    pub fn name(&self) -> &'static str {
        match self {
            WireEncoding::Dense => "dense",
            WireEncoding::Delta => "delta",
            WireEncoding::Auto => "auto",
        }
    }
}

/// The training assignment a [`Message::Assign`] ships to a
/// freshly-connected worker process: everything a `NodeRuntime` needs
/// to reconstruct its `ClusterConfig` and objective in another OS
/// process. Coordinator-only decisions (balance policy, sync strategy)
/// deliberately stay off the wire — the worker receives their *outcome*
/// through [`Message::ShardRebalance`] and the per-round consensus
/// models.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Total node count `numT` (seed-derivation space, not this
    /// worker's id — that is the `worker` field of the Assign frame).
    pub nodes: u32,
    /// Synchronization rounds the run will drive.
    pub rounds: u64,
    /// Local epochs per round.
    pub local_epochs: u32,
    /// Step size λ.
    pub step_size: f64,
    /// Master seed (per-shard draw streams derive from it).
    pub seed: u64,
    /// The coordinator's per-round liveness deadline, in milliseconds
    /// (0 = coordinator default). Workers derive their own read
    /// deadline from it — scaled up by the node count, since a worker
    /// legitimately waits through every peer's round — so a run whose
    /// rounds outlast any fixed constant still keeps liveness checking
    /// proportional instead of spuriously killing healthy workers.
    pub round_timeout_ms: u64,
    /// Importance scheme for static weights / step corrections.
    pub importance: ImportanceScheme,
    /// Sampling strategy the node draws with.
    pub sampling: SamplingStrategy,
    /// Observation model for adaptive feedback.
    pub obs_model: ObservationModel,
    /// Commit policy for adaptive feedback.
    pub commit: CommitPolicy,
    /// Loss name (`Loss::name`): the worker rebuilds the concrete loss
    /// from this tag, so only wire-known losses can run cross-process.
    pub loss: String,
    /// Regularizer bundled into the objective.
    pub reg: Regularizer,
    /// Model-update encoding both sides of the link must agree on
    /// (delta frames only reconstruct against a synchronized base).
    pub encoding: WireEncoding,
    /// Worker checkpoint cadence in rounds (0 = checkpointing off).
    /// Every `checkpoint_every` rounds the worker ships a
    /// [`Message::Checkpoint`] so respawn recovery replays at most one
    /// interval of round traffic instead of the whole session.
    pub checkpoint_every: u64,
    /// When set, workers ship a [`Message::Telemetry`] timing sample
    /// each round. Off by default: telemetry is observability-only and
    /// provably inert (the equivalence tests pin bit-identical models
    /// with it on and off).
    pub telemetry: bool,
}

/// The per-round timing counters a worker ships inside
/// [`Message::Telemetry`]: wall-time split between useful compute and
/// barrier stalling, plus the round's work volume. Durations come from
/// the worker's own monotonic clock (`isasgd_obs::monotonic_us`), so
/// they are comparable within one worker but not across machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerTiming {
    /// Microseconds spent in the local-epoch compute loop.
    pub compute_us: u64,
    /// Microseconds blocked waiting for the round-start barrier.
    pub barrier_wait_us: u64,
    /// Sample draws performed this round.
    pub rows: u64,
    /// Feedback observations committed this round (0 when the run is
    /// not adaptive).
    pub commits: u64,
}

/// The deterministic worker state a [`Message::Checkpoint`] carries:
/// everything that survives a round boundary beyond the session config.
///
/// At a boundary the rest of a worker's state is *derived*: the round
/// loop overwrites the replica with the consensus model each round, the
/// draw stream sits at zero emitted draws, and adaptive pending windows
/// are freshly committed — so this struct plus the replayed post-
/// checkpoint traffic reproduces the never-killed run bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// The worker's draw RNG stream state at the boundary.
    pub draw_rng: [u64; 4],
    /// The model replica at the boundary (the round's trained model).
    pub model: Vec<f64>,
    /// The shard sampler's surviving state.
    pub sampler: CheckpointSampler,
}

/// Sampler state inside a [`CheckpointState`], split by sampler family.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointSampler {
    /// Pre-generated sequence samplers (uniform/static): the sequence
    /// RNG plus the current epoch index buffer. Corrections are
    /// config-derived and rebuilt at install, not carried.
    Sequence {
        /// Shard row count (bounds every buffer entry).
        rows: u32,
        /// The sequence generator's RNG state.
        rng: [u64; 4],
        /// The current epoch's index buffer (unsorted draws).
        indices: Vec<u32>,
    },
    /// Adaptive sampler: the live Fenwick weights, encoded sparsely as
    /// the coordinates whose IEEE-754 bits differ from the shard's
    /// static base weights (gap-coded on the wire), plus the commit
    /// counter. Early in a run few rows have re-weighted, so the sparse
    /// form tracks *what adapted* rather than shard size.
    Adaptive {
        /// Shard row count (the dense weight dimensionality).
        rows: u32,
        /// Observation windows folded so far ([`Sampler::commit_version`]).
        ///
        /// [`Sampler::commit_version`]: isasgd_sampling::Sampler::commit_version
        commits: u64,
        /// Strictly increasing coordinates that differ from the static
        /// base weights.
        indices: Vec<u32>,
        /// Live weight values at `indices`, in order.
        weights: Vec<f64>,
    },
}

/// A typed message of the coordinator↔worker protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A dense model: a worker's trained replica flowing up to the
    /// coordinator, or the coordinator's consensus flowing down.
    ModelUpdate {
        /// Sending node (or addressed worker, coordinator→worker).
        node: u32,
        /// Synchronization round this model belongs to.
        round: u64,
        /// Dense model coordinates.
        model: Vec<f64>,
    },
    /// Per-node importance observations: the [`FeedbackProtocol`]
    /// (Alain et al.'s message shape) scaled observation for every row
    /// the node visited this round, pre-reduced to the per-row max.
    ///
    /// [`FeedbackProtocol`]: isasgd_sampling::FeedbackProtocol
    FeedbackBatch {
        /// Sending node.
        node: u32,
        /// Round the observations were gathered in.
        round: u64,
        /// `(global_row, scaled_observation)` pairs.
        observations: Vec<(u32, f64)>,
    },
    /// Round synchronization marker: a worker's readiness announcement
    /// (round 0 is the connection hello) or the coordinator's
    /// start-of-round barrier.
    RoundBarrier {
        /// Announcing node (or addressed worker).
        node: u32,
        /// Round being announced.
        round: u64,
    },
    /// Shard assignment (Algorithm 4 lines 2–6): the coordinator's
    /// balancing decision, shipped to every worker so each can
    /// reconstruct the rearranged dataset view and its own shard.
    ShardRebalance {
        /// Round of the decision (0 = initial assignment).
        round: u64,
        /// The receiving worker's shard index into `ranges`.
        assigned: u32,
        /// Row permutation to apply before sharding.
        order: Vec<u32>,
        /// Every shard's `[start, end)` row range after reordering.
        ranges: Vec<(u32, u32)>,
    },
    /// Session greeting: the first frame a worker process sends after
    /// connecting. The accept loop validates the protocol version
    /// before admitting the connection to the fleet; anything else on a
    /// fresh connection (garbage, a truncated frame, a different
    /// message kind) is a handshake failure and the connection is
    /// dropped without disturbing the accept loop.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Session assignment, the coordinator's reply to a valid
    /// [`Message::Hello`]: the worker's node id plus the
    /// [`SessionConfig`] it needs to run the round protocol.
    Assign {
        /// Node id assigned to this connection (0-based).
        worker: u32,
        /// The run's training configuration subset.
        config: SessionConfig,
    },
    /// The full training dataset, shipped after [`Message::Assign`] so
    /// a worker process needs no shared filesystem: CSR rows move as
    /// raw IEEE-754 bits, so the worker's view is bit-identical to the
    /// coordinator's. Kept as the legacy whole-dataset form (benches,
    /// compatibility tests); the fleet admission path streams
    /// [`Message::DatasetShard`] chunks instead.
    DatasetTransfer {
        /// The dataset (boxed: this variant dwarfs the others).
        dataset: Box<Dataset>,
    },
    /// A sparse model delta against the last model that crossed this
    /// link in the same direction: only the coordinates whose IEEE-754
    /// bits differ from that base, with their new bit patterns.
    /// Reconstruction is a bitwise overwrite, so a delta-encoded
    /// session is bit-identical to a dense one. Produced and consumed
    /// inside the `Tcp` transport — the round protocol above it only
    /// ever sees the reconstructed [`Message::ModelUpdate`].
    ModelDelta {
        /// Sending node (or addressed worker, coordinator→worker).
        node: u32,
        /// Synchronization round this model belongs to.
        round: u64,
        /// Dense dimensionality of the model being patched (the
        /// receiver's base must match it exactly).
        dim: u32,
        /// Strictly increasing changed coordinates (varint gap-coded on
        /// the wire).
        indices: Vec<u32>,
        /// New IEEE-754 bit patterns at `indices`, in order.
        values: Vec<f64>,
    },
    /// One chunk of a worker's own shard, streamed during fleet
    /// admission in place of the monolithic [`Message::DatasetTransfer`]:
    /// a worker receives only the rows it owns, each bundled with its
    /// coordinator-computed importance weight (schemes like
    /// `PartiallyBiased` mix in global statistics a shard cannot
    /// recompute locally). Chunks arrive in row order; the receiver
    /// re-validates builder invariants per chunk and bounds every
    /// allocation by the chunk's own declared-and-checked row count.
    DatasetShard {
        /// Shard index this chunk belongs to (the receiving worker's id).
        shard: u32,
        /// First global row of the whole shard (after reordering).
        shard_start: u32,
        /// Total row count of the whole shard across all chunks.
        shard_rows: u32,
        /// First global row of *this chunk* (`shard_start` +
        /// previously-streamed rows).
        start: u32,
        /// Per-row importance weights, parallel to the chunk's rows.
        weights: Vec<f64>,
        /// The chunk's rows as a dataset with the full feature `dim`.
        chunk: Box<Dataset>,
    },
    /// A worker's periodic state checkpoint (versioned and checksummed):
    /// the coordinator stores the latest blob per slot and truncates
    /// that slot's replay log to the post-checkpoint suffix, so respawn
    /// recovery is bounded by one checkpoint interval. Receivers absorb
    /// duplicates and reordered stale checkpoints idempotently (only a
    /// strictly newer round replaces the stored blob).
    Checkpoint {
        /// Worker that took the checkpoint.
        node: u32,
        /// Round whose boundary the state was captured at.
        round: u64,
        /// The serialized worker state (boxed: dwarfs other frames).
        state: Box<CheckpointState>,
    },
    /// The coordinator's acknowledgement that a [`Message::Checkpoint`]
    /// is stored and the replay log truncated. Purely informational to
    /// the worker (it never blocks on it); dropped by workers that are
    /// past the round.
    CheckpointAck {
        /// Worker whose checkpoint is acknowledged.
        node: u32,
        /// Round of the stored checkpoint.
        round: u64,
    },
    /// A worker's per-round timing sample (checksummed), shipped before
    /// the round's [`Message::ModelUpdate`] when
    /// [`SessionConfig::telemetry`] is set. Purely observational: the
    /// fleet supervisor absorbs it into [`ClusterRun::telemetry`], plain
    /// transports drop it exactly as they drop [`Message::Checkpoint`],
    /// and no receiver ever acknowledges or blocks on it.
    ///
    /// [`ClusterRun::telemetry`]: crate::node::ClusterRun::telemetry
    Telemetry {
        /// Worker that measured the sample.
        node: u32,
        /// Round the sample covers.
        round: u64,
        /// The round's timing counters.
        timing: WorkerTiming,
    },
}

/// Typed decode failures. Garbage never panics the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before a declared field or element count.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Unknown message tag byte.
    BadTag(u8),
    /// A frame (or its length prefix) exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
    },
    /// The payload decoded cleanly but bytes were left over — the frame
    /// is not a canonical encoding.
    TrailingBytes {
        /// Number of undecoded trailing bytes.
        extra: usize,
    },
    /// An empty payload (no tag byte).
    Empty,
    /// A sub-enum field (importance scheme, commit policy, …) carried a
    /// tag outside its variant range.
    BadEnum {
        /// Which field was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A structurally well-formed frame whose contents violate an
    /// invariant (non-UTF-8 string, unsorted dataset row, ±1 label
    /// violation, non-finite feature value, …).
    Invalid {
        /// Which invariant failed.
        what: &'static str,
    },
    /// A [`Message::Hello`] declared a protocol version this build does
    /// not speak.
    Version {
        /// Version the peer announced.
        got: u32,
        /// Version this build speaks ([`PROTOCOL_VERSION`]).
        want: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            WireError::Empty => write!(f, "empty frame"),
            WireError::BadEnum { what, tag } => {
                write!(f, "unknown {what} tag {tag:#04x}")
            }
            WireError::Invalid { what } => write!(f, "invalid frame contents: {what}"),
            WireError::Version { got, want } => {
                write!(f, "protocol version {got} (this build speaks {want})")
            }
        }
    }
}

impl std::error::Error for WireError {}

const TAG_MODEL_UPDATE: u8 = 1;
const TAG_FEEDBACK_BATCH: u8 = 2;
const TAG_ROUND_BARRIER: u8 = 3;
const TAG_SHARD_REBALANCE: u8 = 4;
const TAG_HELLO: u8 = 5;
const TAG_ASSIGN: u8 = 6;
const TAG_DATASET_TRANSFER: u8 = 7;
const TAG_MODEL_DELTA: u8 = 8;
const TAG_DATASET_SHARD: u8 = 9;
const TAG_CHECKPOINT: u8 = 10;
const TAG_CHECKPOINT_ACK: u8 = 11;
const TAG_TELEMETRY: u8 = 12;

/// Number of distinct frame kinds — the length of per-kind counter
/// arrays such as [`LinkStats`](crate::transport::LinkStats).
pub const FRAME_KINDS: usize = 12;

/// The kind of a wire frame, independent of its payload — the axis the
/// per-link byte/frame counters are broken down by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// [`Message::ModelUpdate`]
    ModelUpdate,
    /// [`Message::FeedbackBatch`]
    FeedbackBatch,
    /// [`Message::RoundBarrier`]
    RoundBarrier,
    /// [`Message::ShardRebalance`]
    ShardRebalance,
    /// [`Message::Hello`]
    Hello,
    /// [`Message::Assign`]
    Assign,
    /// [`Message::DatasetTransfer`]
    DatasetTransfer,
    /// [`Message::ModelDelta`]
    ModelDelta,
    /// [`Message::DatasetShard`]
    DatasetShard,
    /// [`Message::Checkpoint`]
    Checkpoint,
    /// [`Message::CheckpointAck`]
    CheckpointAck,
    /// [`Message::Telemetry`]
    Telemetry,
}

impl FrameKind {
    /// All kinds, in tag order (index = [`FrameKind::index`]).
    pub const ALL: [FrameKind; FRAME_KINDS] = [
        FrameKind::ModelUpdate,
        FrameKind::FeedbackBatch,
        FrameKind::RoundBarrier,
        FrameKind::ShardRebalance,
        FrameKind::Hello,
        FrameKind::Assign,
        FrameKind::DatasetTransfer,
        FrameKind::ModelDelta,
        FrameKind::DatasetShard,
        FrameKind::Checkpoint,
        FrameKind::CheckpointAck,
        FrameKind::Telemetry,
    ];

    /// Classifies an encoded payload by its leading tag byte.
    pub fn from_tag(tag: u8) -> Option<FrameKind> {
        Some(match tag {
            TAG_MODEL_UPDATE => FrameKind::ModelUpdate,
            TAG_FEEDBACK_BATCH => FrameKind::FeedbackBatch,
            TAG_ROUND_BARRIER => FrameKind::RoundBarrier,
            TAG_SHARD_REBALANCE => FrameKind::ShardRebalance,
            TAG_HELLO => FrameKind::Hello,
            TAG_ASSIGN => FrameKind::Assign,
            TAG_DATASET_TRANSFER => FrameKind::DatasetTransfer,
            TAG_MODEL_DELTA => FrameKind::ModelDelta,
            TAG_DATASET_SHARD => FrameKind::DatasetShard,
            TAG_CHECKPOINT => FrameKind::Checkpoint,
            TAG_CHECKPOINT_ACK => FrameKind::CheckpointAck,
            TAG_TELEMETRY => FrameKind::Telemetry,
            _ => return None,
        })
    }

    /// Dense 0-based index (tag − 1) for counter arrays.
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Display name (matches [`Message::kind`]).
    pub fn name(&self) -> &'static str {
        match self {
            FrameKind::ModelUpdate => "ModelUpdate",
            FrameKind::FeedbackBatch => "FeedbackBatch",
            FrameKind::RoundBarrier => "RoundBarrier",
            FrameKind::ShardRebalance => "ShardRebalance",
            FrameKind::Hello => "Hello",
            FrameKind::Assign => "Assign",
            FrameKind::DatasetTransfer => "DatasetTransfer",
            FrameKind::ModelDelta => "ModelDelta",
            FrameKind::DatasetShard => "DatasetShard",
            FrameKind::Checkpoint => "Checkpoint",
            FrameKind::CheckpointAck => "CheckpointAck",
            FrameKind::Telemetry => "Telemetry",
        }
    }
}

/// Bounded cursor over a payload; every read is length-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let truncated = WireError::Truncated {
            needed: n,
            have: self.remaining(),
        };
        let end = self.pos.checked_add(n).ok_or(truncated.clone())?;
        let s = self.buf.get(self.pos..end).ok_or(truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// A fixed-width field as an owned array, so the integer readers
    /// below need neither slice indexing nor a fallible `try_into`.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N)?);
        Ok(a)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.array()?)))
    }

    /// Validates a declared element count against the bytes actually
    /// left, so a hostile count cannot drive an allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let needed = n.saturating_mul(elem_bytes);
        if self.remaining() < needed {
            return Err(WireError::Truncated {
                needed,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    /// A length-prefixed UTF-8 string (count-validated like any vector).
    fn string(&mut self) -> Result<String, WireError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid {
            what: "non-UTF-8 string",
        })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// --- varint / index-list codec ------------------------------------------
//
// Canonical LEB128: 7 payload bits per byte, least-significant group
// first, high bit = continuation. "Canonical" means the shortest
// encoding is the only accepted one — a redundant trailing 0x00 group
// (e.g. `0x80 0x00` for zero) is rejected, so the decode∘encode
// fixed-point property of the whole codec extends to varint payloads.

/// Appends the canonical LEB128 encoding of `v`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(r: &mut Reader<'_>) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = r.u8()?;
        if shift >= 64 || (shift == 63 && byte & 0x7E != 0) {
            return Err(WireError::Invalid {
                what: "varint overflows u64",
            });
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            if byte == 0 && shift != 0 {
                return Err(WireError::Invalid {
                    what: "non-minimal varint",
                });
            }
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends the gap-coded index list: `u32 count ‖ varint first ‖
/// (count−1) × varint (idx − prev − 1)`. `indices` must be strictly
/// increasing (every caller holds sorted coordinates by construction).
pub fn put_index_list(out: &mut Vec<u8>, indices: &[u32]) {
    put_u32(out, indices.len() as u32);
    let mut prev: Option<u32> = None;
    for &i in indices {
        match prev {
            None => put_varint(out, u64::from(i)),
            Some(p) => {
                debug_assert!(i > p, "index list not strictly increasing");
                put_varint(out, u64::from(i) - u64::from(p) - 1);
            }
        }
        prev = Some(i);
    }
}

/// Decodes a gap-coded index list, bounding every index by `dim`.
/// Strict monotonicity holds by construction (each gap adds ≥ 1), so
/// the returned list is always a valid sorted coordinate set.
fn get_index_list(r: &mut Reader<'_>, dim: u64) -> Result<Vec<u32>, WireError> {
    // Each encoded index is at least one varint byte.
    let n = r.count(1)?;
    let mut indices = Vec::with_capacity(n);
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let raw = get_varint(r)?;
        let idx = match prev {
            None => raw,
            Some(p) => {
                p.checked_add(1)
                    .and_then(|b| b.checked_add(raw))
                    .ok_or(WireError::Invalid {
                        what: "index list overflows u64",
                    })?
            }
        };
        if idx >= dim {
            return Err(WireError::Invalid {
                what: "index list coordinate out of bounds",
            });
        }
        // lint: allow(decode-cast) — idx < dim just checked, and every caller passes dim ≤ u32::MAX + 1
        indices.push(idx as u32);
        prev = Some(idx);
    }
    Ok(indices)
}

// --- sparse model deltas -------------------------------------------------

/// Computes the coordinates (and new bit patterns) where `next` differs
/// from `base` — *bitwise*, never arithmetically, so a delta-encoded
/// model reconstructs bit-identically (−0.0 vs 0.0, NaN payloads and
/// subnormals included). Both slices must be the same length.
pub fn delta_coords(base: &[f64], next: &[f64]) -> (Vec<u32>, Vec<f64>) {
    debug_assert_eq!(base.len(), next.len());
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (i, (b, n)) in base.iter().zip(next).enumerate() {
        if b.to_bits() != n.to_bits() {
            indices.push(i as u32);
            values.push(*n);
        }
    }
    (indices, values)
}

/// Reconstructs a model from its per-link base and a sparse delta:
/// clone the base, overwrite the listed coordinates with the carried
/// bit patterns. The exact inverse of [`delta_coords`].
///
/// The delta arrives off the wire, so the checks hold in release
/// builds: returns `None` when the coordinate and value lists disagree
/// in length or any index falls outside `base` (a delta built against
/// a different model dimension than the receiver holds).
pub fn apply_delta(base: &[f64], indices: &[u32], values: &[f64]) -> Option<Vec<f64>> {
    if indices.len() != values.len() {
        return None;
    }
    let mut model = base.to_vec();
    for (&i, &v) in indices.iter().zip(values) {
        *model.get_mut(i as usize)? = v;
    }
    Some(model)
}

// --- sub-enum codecs for the Assign frame -------------------------------
//
// Each enum encodes as a tag byte followed only by the fields its
// variant actually carries — parameterless variants ship the bare tag,
// so every valid value has exactly one encoding and the canonicality
// property (`decode ∘ encode` is the unique fixed point) extends to the
// session frames.

fn put_importance(out: &mut Vec<u8>, v: ImportanceScheme) {
    match v {
        ImportanceScheme::LipschitzSmoothness => out.push(0),
        ImportanceScheme::GradNormBound { radius } => {
            out.push(1);
            put_f64(out, radius);
        }
        ImportanceScheme::Uniform => out.push(2),
        ImportanceScheme::PartiallyBiased { bias } => {
            out.push(3);
            put_f64(out, bias);
        }
    }
}

fn get_importance(r: &mut Reader<'_>) -> Result<ImportanceScheme, WireError> {
    Ok(match r.u8()? {
        0 => ImportanceScheme::LipschitzSmoothness,
        1 => ImportanceScheme::GradNormBound { radius: r.f64()? },
        2 => ImportanceScheme::Uniform,
        3 => ImportanceScheme::PartiallyBiased { bias: r.f64()? },
        tag => {
            return Err(WireError::BadEnum {
                what: "importance scheme",
                tag,
            })
        }
    })
}

fn put_sampling(out: &mut Vec<u8>, v: SamplingStrategy) {
    out.push(match v {
        SamplingStrategy::Uniform => 0,
        SamplingStrategy::Static => 1,
        SamplingStrategy::Adaptive => 2,
    });
}

fn get_sampling(r: &mut Reader<'_>) -> Result<SamplingStrategy, WireError> {
    Ok(match r.u8()? {
        0 => SamplingStrategy::Uniform,
        1 => SamplingStrategy::Static,
        2 => SamplingStrategy::Adaptive,
        tag => {
            return Err(WireError::BadEnum {
                what: "sampling strategy",
                tag,
            })
        }
    })
}

fn put_obs_model(out: &mut Vec<u8>, v: ObservationModel) {
    match v {
        ObservationModel::GradNorm => out.push(0),
        ObservationModel::LossBound => out.push(1),
        ObservationModel::StalenessDiscounted { half_life } => {
            out.push(2);
            put_f64(out, half_life);
        }
    }
}

fn get_obs_model(r: &mut Reader<'_>) -> Result<ObservationModel, WireError> {
    Ok(match r.u8()? {
        0 => ObservationModel::GradNorm,
        1 => ObservationModel::LossBound,
        2 => ObservationModel::StalenessDiscounted {
            half_life: r.f64()?,
        },
        tag => {
            return Err(WireError::BadEnum {
                what: "observation model",
                tag,
            })
        }
    })
}

fn put_commit(out: &mut Vec<u8>, v: CommitPolicy) {
    match v {
        CommitPolicy::EpochBoundary => out.push(0),
        CommitPolicy::EveryK(k) => {
            out.push(1);
            put_u64(out, k as u64);
        }
    }
}

fn get_commit(r: &mut Reader<'_>) -> Result<CommitPolicy, WireError> {
    Ok(match r.u8()? {
        0 => CommitPolicy::EpochBoundary,
        1 => {
            let k = r.u64()?;
            if k > usize::MAX as u64 {
                return Err(WireError::Invalid {
                    what: "commit period exceeds usize",
                });
            }
            CommitPolicy::EveryK(k as usize)
        }
        tag => {
            return Err(WireError::BadEnum {
                what: "commit policy",
                tag,
            })
        }
    })
}

fn put_reg(out: &mut Vec<u8>, v: Regularizer) {
    match v {
        Regularizer::None => out.push(0),
        Regularizer::L1 { eta } => {
            out.push(1);
            put_f64(out, eta);
        }
        Regularizer::L2 { eta } => {
            out.push(2);
            put_f64(out, eta);
        }
    }
}

fn get_reg(r: &mut Reader<'_>) -> Result<Regularizer, WireError> {
    Ok(match r.u8()? {
        0 => Regularizer::None,
        1 => Regularizer::L1 { eta: r.f64()? },
        2 => Regularizer::L2 { eta: r.f64()? },
        tag => {
            return Err(WireError::BadEnum {
                what: "regularizer",
                tag,
            })
        }
    })
}

fn put_encoding(out: &mut Vec<u8>, v: WireEncoding) {
    out.push(match v {
        WireEncoding::Dense => 0,
        WireEncoding::Delta => 1,
        WireEncoding::Auto => 2,
    });
}

fn get_encoding(r: &mut Reader<'_>) -> Result<WireEncoding, WireError> {
    Ok(match r.u8()? {
        0 => WireEncoding::Dense,
        1 => WireEncoding::Delta,
        2 => WireEncoding::Auto,
        tag => {
            return Err(WireError::BadEnum {
                what: "wire encoding",
                tag,
            })
        }
    })
}

fn put_session_config(out: &mut Vec<u8>, c: &SessionConfig) {
    put_u32(out, c.nodes);
    put_u64(out, c.rounds);
    put_u32(out, c.local_epochs);
    put_f64(out, c.step_size);
    put_u64(out, c.seed);
    put_u64(out, c.round_timeout_ms);
    put_importance(out, c.importance);
    put_sampling(out, c.sampling);
    put_obs_model(out, c.obs_model);
    put_commit(out, c.commit);
    put_string(out, &c.loss);
    put_reg(out, c.reg);
    put_encoding(out, c.encoding);
    put_u64(out, c.checkpoint_every);
    out.push(u8::from(c.telemetry));
}

fn get_session_config(r: &mut Reader<'_>) -> Result<SessionConfig, WireError> {
    Ok(SessionConfig {
        nodes: r.u32()?,
        rounds: r.u64()?,
        local_epochs: r.u32()?,
        step_size: r.f64()?,
        seed: r.u64()?,
        round_timeout_ms: r.u64()?,
        importance: get_importance(r)?,
        sampling: get_sampling(r)?,
        obs_model: get_obs_model(r)?,
        commit: get_commit(r)?,
        loss: r.string()?,
        reg: get_reg(r)?,
        encoding: get_encoding(r)?,
        checkpoint_every: r.u64()?,
        telemetry: match r.u8()? {
            0 => false,
            1 => true,
            tag => {
                return Err(WireError::BadEnum {
                    what: "telemetry flag",
                    tag,
                })
            }
        },
    })
}

// --- worker checkpoints --------------------------------------------------
//
// A checkpoint payload is `u8 tag ‖ u32 layout version ‖ u32 node ‖
// u64 round ‖ 4×u64 draw_rng ‖ vec<f64> model ‖ u8 sampler kind ‖
// kind fields ‖ u64 FNV-1a checksum` — the checksum covers everything
// between the tag and itself, so a blob corrupted at rest (the
// coordinator stores checkpoints across respawns) is refused at decode
// instead of silently steering a replacement worker off the
// deterministic path.

/// FNV-1a 64-bit hash — the checkpoint frame's integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const CKPT_SAMPLER_SEQUENCE: u8 = 0;
const CKPT_SAMPLER_ADAPTIVE: u8 = 1;

fn put_checkpoint_state(out: &mut Vec<u8>, s: &CheckpointState) {
    for &w in &s.draw_rng {
        put_u64(out, w);
    }
    put_u32(out, s.model.len() as u32);
    for &v in &s.model {
        put_f64(out, v);
    }
    match &s.sampler {
        CheckpointSampler::Sequence { rows, rng, indices } => {
            out.push(CKPT_SAMPLER_SEQUENCE);
            put_u32(out, *rows);
            for &w in rng {
                put_u64(out, w);
            }
            put_u32(out, indices.len() as u32);
            for &i in indices {
                put_u32(out, i);
            }
        }
        CheckpointSampler::Adaptive {
            rows,
            commits,
            indices,
            weights,
        } => {
            out.push(CKPT_SAMPLER_ADAPTIVE);
            put_u32(out, *rows);
            put_u64(out, *commits);
            put_index_list(out, indices);
            for &w in weights {
                put_f64(out, w);
            }
        }
    }
}

fn get_checkpoint_state(r: &mut Reader<'_>) -> Result<CheckpointState, WireError> {
    let mut draw_rng = [0u64; 4];
    for w in &mut draw_rng {
        *w = r.u64()?;
    }
    let n = r.count(8)?;
    let mut model = Vec::with_capacity(n);
    for _ in 0..n {
        model.push(r.f64()?);
    }
    let sampler = match r.u8()? {
        CKPT_SAMPLER_SEQUENCE => {
            let rows = r.u32()?;
            let mut rng = [0u64; 4];
            for w in &mut rng {
                *w = r.u64()?;
            }
            let k = r.count(4)?;
            let mut indices = Vec::with_capacity(k);
            for _ in 0..k {
                let i = r.u32()?;
                if i >= rows {
                    return Err(WireError::Invalid {
                        what: "checkpoint sequence index out of bounds",
                    });
                }
                indices.push(i);
            }
            CheckpointSampler::Sequence { rows, rng, indices }
        }
        CKPT_SAMPLER_ADAPTIVE => {
            let rows = r.u32()?;
            let commits = r.u64()?;
            let indices = get_index_list(r, u64::from(rows))?;
            let mut weights = Vec::with_capacity(indices.len());
            for _ in 0..indices.len() {
                let w = r.f64()?;
                if !(w.is_finite() && w >= 0.0) {
                    return Err(WireError::Invalid {
                        what: "checkpoint weight not finite non-negative",
                    });
                }
                weights.push(w);
            }
            CheckpointSampler::Adaptive {
                rows,
                commits,
                indices,
                weights,
            }
        }
        tag => {
            return Err(WireError::BadEnum {
                what: "checkpoint sampler kind",
                tag,
            })
        }
    };
    Ok(CheckpointState {
        draw_rng,
        model,
        sampler,
    })
}

/// Encodes a [`Message::DatasetTransfer`] payload for `ds` directly
/// from a borrowed dataset — what the fleet uses to build its cached
/// admission frame without cloning the dataset into a `Message` first.
pub fn encode_dataset_transfer(ds: &Dataset, out: &mut Vec<u8>) {
    out.push(TAG_DATASET_TRANSFER);
    put_dataset(out, ds);
}

fn put_dataset(out: &mut Vec<u8>, ds: &Dataset) {
    put_u32(out, ds.dim() as u32);
    put_u32(out, ds.n_samples() as u32);
    for row in ds.rows() {
        put_f64(out, row.label);
        put_u32(out, row.indices.len() as u32);
        for (&i, &x) in row.indices.iter().zip(row.values) {
            put_u32(out, i);
            put_f64(out, x);
        }
    }
}

/// Decodes a dataset, re-validating every invariant the builder
/// enforces (±1 labels, strictly increasing in-bounds indices, finite
/// values) so a hostile frame can never construct a `Dataset` that
/// violates them — and so accepted frames stay canonical.
fn get_dataset(r: &mut Reader<'_>) -> Result<Dataset, WireError> {
    let dim = r.u32()? as usize;
    // Minimum 12 bytes per row (label + nnz count) bounds the row count
    // before any allocation.
    let n = r.count(12)?;
    let mut b = DatasetBuilder::with_capacity(dim, n, 0);
    for _ in 0..n {
        let label = r.f64()?;
        // lint: allow(float-cmp) — ±1.0 are exact sentinel bit patterns the encoder wrote, not arithmetic results
        if label != 1.0 && label != -1.0 {
            return Err(WireError::Invalid {
                what: "dataset label not ±1",
            });
        }
        let nnz = r.count(12)?;
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let i = r.u32()?;
            let x = r.f64()?;
            if indices.last().is_some_and(|&last| i <= last) {
                return Err(WireError::Invalid {
                    what: "dataset row indices not strictly increasing",
                });
            }
            if i as usize >= dim {
                return Err(WireError::Invalid {
                    what: "dataset feature index out of bounds",
                });
            }
            if !x.is_finite() {
                return Err(WireError::Invalid {
                    what: "non-finite dataset value",
                });
            }
            indices.push(i);
            values.push(x);
        }
        b.push_row_unchecked(&indices, &values, label);
    }
    Ok(b.finish())
}

// --- shard-streamed dataset transfer ------------------------------------
//
// A shard row is `u8 label (0 → −1.0, 1 → +1.0) ‖ f64 weight ‖
// idxlist(indices) ‖ nnz × f64 value`. The weight rides along because
// importance schemes mix in *global* statistics (mean, positive floor)
// that a worker holding only its shard cannot recompute.

/// Soft payload target for one [`Message::DatasetShard`] chunk. Every
/// chunk carries at least one row, so a single row larger than this
/// still moves — in one oversized chunk — but typical admission traffic
/// streams in ~256 KiB frames instead of one dataset-sized allocation.
pub const SHARD_CHUNK_BYTES: usize = 1 << 18;

fn put_shard_row(out: &mut Vec<u8>, indices: &[u32], values: &[f64], label: f64, weight: f64) {
    // lint: allow(float-cmp) — labels are the exact sentinels ±1.0 by Dataset construction
    out.push(if label == 1.0 { 1 } else { 0 });
    put_f64(out, weight);
    put_index_list(out, indices);
    for &x in values {
        put_f64(out, x);
    }
}

/// Encodes one shard of `data` as a sequence of [`Message::DatasetShard`]
/// payloads, each at most [`SHARD_CHUNK_BYTES`] (plus one row of
/// overshoot). `range` is the shard's row range into the reordered
/// `data`; `weights` are the reordered per-row importance weights,
/// indexed like `data`. The fleet caches these frames per node and
/// replays them verbatim on respawn, so admission and recovery are
/// byte-identical.
pub fn encode_dataset_shard_chunks(
    shard: u32,
    range: std::ops::Range<usize>,
    data: &Dataset,
    weights: &[f64],
) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut row = range.start;
    while row < range.end {
        let mut out = Vec::new();
        out.push(TAG_DATASET_SHARD);
        put_u32(&mut out, shard);
        put_u32(&mut out, range.start as u32);
        put_u32(&mut out, range.len() as u32);
        put_u32(&mut out, row as u32);
        put_u32(&mut out, data.dim() as u32);
        let count_at = out.len();
        put_u32(&mut out, 0); // row count, patched below
        let mut rows_in_chunk = 0u32;
        while row < range.end && (rows_in_chunk == 0 || out.len() < SHARD_CHUNK_BYTES) {
            let r = data.row(row);
            put_shard_row(&mut out, r.indices, r.values, r.label, weights[row]);
            rows_in_chunk += 1;
            row += 1;
        }
        out[count_at..count_at + 4].copy_from_slice(&rows_in_chunk.to_le_bytes());
        chunks.push(out);
    }
    chunks
}

/// Decodes a [`Message::DatasetShard`] payload body (after the tag),
/// re-validating every builder invariant per chunk and bounding each
/// allocation by the chunk's own declared-and-checked row count — the
/// streamed replacement for the monolithic transfer's worst-case
/// allocation on admission.
#[allow(clippy::type_complexity)]
fn get_dataset_shard(
    r: &mut Reader<'_>,
) -> Result<(u32, u32, u32, u32, Vec<f64>, Dataset), WireError> {
    let shard = r.u32()?;
    let shard_start = r.u32()?;
    let shard_rows = r.u32()?;
    let start = r.u32()?;
    let dim = r.u32()? as usize;
    // Minimum 13 bytes per row (label byte + weight + nnz count).
    let n = r.count(13)?;
    if n == 0 {
        return Err(WireError::Invalid {
            what: "empty dataset shard chunk",
        });
    }
    let lo = u64::from(shard_start);
    let hi = lo + u64::from(shard_rows);
    if u64::from(start) < lo || u64::from(start) + n as u64 > hi {
        return Err(WireError::Invalid {
            what: "dataset shard chunk outside its shard range",
        });
    }
    let mut weights = Vec::with_capacity(n);
    let mut b = DatasetBuilder::with_capacity(dim, n, 0);
    for _ in 0..n {
        let label = match r.u8()? {
            0 => -1.0,
            1 => 1.0,
            _ => {
                return Err(WireError::Invalid {
                    what: "dataset shard label byte not 0/1",
                })
            }
        };
        let weight = r.f64()?;
        if !(weight.is_finite() && weight > 0.0) {
            return Err(WireError::Invalid {
                what: "dataset shard importance weight not positive finite",
            });
        }
        let indices = get_index_list(r, dim as u64)?;
        let mut values = Vec::with_capacity(indices.len());
        for _ in 0..indices.len() {
            let x = r.f64()?;
            if !x.is_finite() {
                return Err(WireError::Invalid {
                    what: "non-finite dataset value",
                });
            }
            values.push(x);
        }
        weights.push(weight);
        b.push_row_unchecked(&indices, &values, label);
    }
    Ok((shard, shard_start, shard_rows, start, weights, b.finish()))
}

impl Message {
    /// Appends this message's payload encoding (tag + fields, no length
    /// prefix) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::ModelUpdate { node, round, model } => {
                out.push(TAG_MODEL_UPDATE);
                put_u32(out, *node);
                put_u64(out, *round);
                put_u32(out, model.len() as u32);
                for &v in model {
                    put_f64(out, v);
                }
            }
            Message::FeedbackBatch {
                node,
                round,
                observations,
            } => {
                out.push(TAG_FEEDBACK_BATCH);
                put_u32(out, *node);
                put_u64(out, *round);
                put_u32(out, observations.len() as u32);
                for &(row, obs) in observations {
                    put_u32(out, row);
                    put_f64(out, obs);
                }
            }
            Message::RoundBarrier { node, round } => {
                out.push(TAG_ROUND_BARRIER);
                put_u32(out, *node);
                put_u64(out, *round);
            }
            Message::ShardRebalance {
                round,
                assigned,
                order,
                ranges,
            } => {
                out.push(TAG_SHARD_REBALANCE);
                put_u64(out, *round);
                put_u32(out, *assigned);
                put_u32(out, order.len() as u32);
                for &i in order {
                    put_u32(out, i);
                }
                put_u32(out, ranges.len() as u32);
                for &(s, e) in ranges {
                    put_u32(out, s);
                    put_u32(out, e);
                }
            }
            Message::Hello { version } => {
                out.push(TAG_HELLO);
                put_u32(out, *version);
            }
            Message::Assign { worker, config } => {
                out.push(TAG_ASSIGN);
                put_u32(out, *worker);
                put_session_config(out, config);
            }
            Message::DatasetTransfer { dataset } => {
                out.push(TAG_DATASET_TRANSFER);
                put_dataset(out, dataset);
            }
            Message::ModelDelta {
                node,
                round,
                dim,
                indices,
                values,
            } => {
                out.push(TAG_MODEL_DELTA);
                put_u32(out, *node);
                put_u64(out, *round);
                put_u32(out, *dim);
                put_index_list(out, indices);
                for &v in values {
                    put_f64(out, v);
                }
            }
            Message::DatasetShard {
                shard,
                shard_start,
                shard_rows,
                start,
                weights,
                chunk,
            } => {
                out.push(TAG_DATASET_SHARD);
                put_u32(out, *shard);
                put_u32(out, *shard_start);
                put_u32(out, *shard_rows);
                put_u32(out, *start);
                put_u32(out, chunk.dim() as u32);
                put_u32(out, chunk.n_samples() as u32);
                for (i, row) in chunk.rows().enumerate() {
                    put_shard_row(out, row.indices, row.values, row.label, weights[i]);
                }
            }
            Message::Checkpoint { node, round, state } => {
                out.push(TAG_CHECKPOINT);
                let start = out.len();
                put_u32(out, CHECKPOINT_VERSION);
                put_u32(out, *node);
                put_u64(out, *round);
                put_checkpoint_state(out, state);
                let sum = fnv1a(&out[start..]);
                put_u64(out, sum);
            }
            Message::CheckpointAck { node, round } => {
                out.push(TAG_CHECKPOINT_ACK);
                put_u32(out, *node);
                put_u64(out, *round);
            }
            Message::Telemetry {
                node,
                round,
                timing,
            } => {
                out.push(TAG_TELEMETRY);
                let start = out.len();
                put_u32(out, *node);
                put_u64(out, *round);
                put_u64(out, timing.compute_us);
                put_u64(out, timing.barrier_wait_us);
                put_u64(out, timing.rows);
                put_u64(out, timing.commits);
                let sum = fnv1a(&out[start..]);
                put_u64(out, sum);
            }
        }
    }

    /// The payload encoding as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one complete payload. The payload must contain exactly
    /// one message — trailing bytes are an error, so a canonical
    /// encoding is the unique fixed point of `decode ∘ encode`.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        if payload.len() > MAX_FRAME {
            return Err(WireError::FrameTooLarge { len: payload.len() });
        }
        let mut r = Reader::new(payload);
        let tag = r.u8().map_err(|_| WireError::Empty)?;
        let msg = match tag {
            TAG_MODEL_UPDATE => {
                let node = r.u32()?;
                let round = r.u64()?;
                let n = r.count(8)?;
                let mut model = Vec::with_capacity(n);
                for _ in 0..n {
                    model.push(r.f64()?);
                }
                Message::ModelUpdate { node, round, model }
            }
            TAG_FEEDBACK_BATCH => {
                let node = r.u32()?;
                let round = r.u64()?;
                let n = r.count(12)?;
                let mut observations = Vec::with_capacity(n);
                for _ in 0..n {
                    let row = r.u32()?;
                    let obs = r.f64()?;
                    observations.push((row, obs));
                }
                Message::FeedbackBatch {
                    node,
                    round,
                    observations,
                }
            }
            TAG_ROUND_BARRIER => Message::RoundBarrier {
                node: r.u32()?,
                round: r.u64()?,
            },
            TAG_SHARD_REBALANCE => {
                let round = r.u64()?;
                let assigned = r.u32()?;
                let n = r.count(4)?;
                let mut order = Vec::with_capacity(n);
                for _ in 0..n {
                    order.push(r.u32()?);
                }
                let k = r.count(8)?;
                let mut ranges = Vec::with_capacity(k);
                for _ in 0..k {
                    let s = r.u32()?;
                    let e = r.u32()?;
                    ranges.push((s, e));
                }
                Message::ShardRebalance {
                    round,
                    assigned,
                    order,
                    ranges,
                }
            }
            TAG_HELLO => Message::Hello { version: r.u32()? },
            TAG_ASSIGN => Message::Assign {
                worker: r.u32()?,
                config: get_session_config(&mut r)?,
            },
            TAG_DATASET_TRANSFER => Message::DatasetTransfer {
                dataset: Box::new(get_dataset(&mut r)?),
            },
            TAG_MODEL_DELTA => {
                let node = r.u32()?;
                let round = r.u64()?;
                let dim = r.u32()?;
                let indices = get_index_list(&mut r, u64::from(dim))?;
                let mut values = Vec::with_capacity(indices.len());
                for _ in 0..indices.len() {
                    values.push(r.f64()?);
                }
                Message::ModelDelta {
                    node,
                    round,
                    dim,
                    indices,
                    values,
                }
            }
            TAG_DATASET_SHARD => {
                let (shard, shard_start, shard_rows, start, weights, chunk) =
                    get_dataset_shard(&mut r)?;
                Message::DatasetShard {
                    shard,
                    shard_start,
                    shard_rows,
                    start,
                    weights,
                    chunk: Box::new(chunk),
                }
            }
            TAG_CHECKPOINT => {
                let version = r.u32()?;
                if version != CHECKPOINT_VERSION {
                    return Err(WireError::Invalid {
                        what: "unsupported checkpoint layout version",
                    });
                }
                let node = r.u32()?;
                let round = r.u64()?;
                let state = get_checkpoint_state(&mut r)?;
                let sum = r.u64()?;
                // The checksum covers everything between the tag and
                // itself (layout version included). The range is in
                // bounds by construction — the reader just consumed
                // through `r.pos` — but decode paths never index
                // directly.
                let covered = payload.get(1..r.pos - 8).ok_or(WireError::Invalid {
                    what: "checkpoint frame too short for its checksum",
                })?;
                if fnv1a(covered) != sum {
                    return Err(WireError::Invalid {
                        what: "checkpoint checksum mismatch",
                    });
                }
                Message::Checkpoint {
                    node,
                    round,
                    state: Box::new(state),
                }
            }
            TAG_CHECKPOINT_ACK => Message::CheckpointAck {
                node: r.u32()?,
                round: r.u64()?,
            },
            TAG_TELEMETRY => {
                let node = r.u32()?;
                let round = r.u64()?;
                let timing = WorkerTiming {
                    compute_us: r.u64()?,
                    barrier_wait_us: r.u64()?,
                    rows: r.u64()?,
                    commits: r.u64()?,
                };
                let sum = r.u64()?;
                // Checksummed like Checkpoint: the sample may sit in
                // coordinator memory for a whole run before anyone reads
                // it, so corruption is refused at decode time.
                let covered = payload.get(1..r.pos - 8).ok_or(WireError::Invalid {
                    what: "telemetry frame too short for its checksum",
                })?;
                if fnv1a(covered) != sum {
                    return Err(WireError::Invalid {
                        what: "telemetry checksum mismatch",
                    });
                }
                Message::Telemetry {
                    node,
                    round,
                    timing,
                }
            }
            other => return Err(WireError::BadTag(other)),
        };
        if r.remaining() > 0 {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(msg)
    }

    /// Short display name of the message kind (logging/tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::ModelUpdate { .. } => "ModelUpdate",
            Message::FeedbackBatch { .. } => "FeedbackBatch",
            Message::RoundBarrier { .. } => "RoundBarrier",
            Message::ShardRebalance { .. } => "ShardRebalance",
            Message::Hello { .. } => "Hello",
            Message::Assign { .. } => "Assign",
            Message::DatasetTransfer { .. } => "DatasetTransfer",
            Message::ModelDelta { .. } => "ModelDelta",
            Message::DatasetShard { .. } => "DatasetShard",
            Message::Checkpoint { .. } => "Checkpoint",
            Message::CheckpointAck { .. } => "CheckpointAck",
            Message::Telemetry { .. } => "Telemetry",
        }
    }

    /// The round number carried by any message kind (session-layer
    /// frames — hello, assign, dataset — all belong to round 0).
    pub fn round(&self) -> u64 {
        match self {
            Message::ModelUpdate { round, .. }
            | Message::FeedbackBatch { round, .. }
            | Message::RoundBarrier { round, .. }
            | Message::ShardRebalance { round, .. }
            | Message::ModelDelta { round, .. }
            | Message::Checkpoint { round, .. }
            | Message::CheckpointAck { round, .. }
            | Message::Telemetry { round, .. } => *round,
            Message::Hello { .. }
            | Message::Assign { .. }
            | Message::DatasetTransfer { .. }
            | Message::DatasetShard { .. } => 0,
        }
    }

    /// Approximate resident heap bytes of this message (struct plus
    /// owned buffers) — what the coordinator's replay-log footprint
    /// accounting sums. An estimate, not an allocator measurement: it
    /// counts element payloads, not allocator slack.
    pub fn resident_bytes(&self) -> usize {
        let heap = match self {
            Message::ModelUpdate { model, .. } => model.len() * 8,
            Message::FeedbackBatch { observations, .. } => observations.len() * 16,
            Message::RoundBarrier { .. }
            | Message::Hello { .. }
            | Message::CheckpointAck { .. }
            | Message::Telemetry { .. } => 0,
            Message::ShardRebalance { order, ranges, .. } => order.len() * 4 + ranges.len() * 8,
            Message::Assign { config, .. } => config.loss.len(),
            Message::DatasetTransfer { dataset } => dataset_resident_bytes(dataset),
            Message::ModelDelta {
                indices, values, ..
            } => indices.len() * 4 + values.len() * 8,
            Message::DatasetShard { weights, chunk, .. } => {
                weights.len() * 8 + dataset_resident_bytes(chunk)
            }
            Message::Checkpoint { state, .. } => {
                std::mem::size_of::<CheckpointState>()
                    + state.model.len() * 8
                    + match &state.sampler {
                        CheckpointSampler::Sequence { indices, .. } => indices.len() * 4,
                        CheckpointSampler::Adaptive {
                            indices, weights, ..
                        } => indices.len() * 4 + weights.len() * 8,
                    }
            }
        };
        std::mem::size_of::<Message>() + heap
    }
}

fn dataset_resident_bytes(ds: &Dataset) -> usize {
    ds.rows()
        .map(|r| r.indices.len() * 4 + r.values.len() * 8 + 16)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &Message) {
        let bytes = m.to_bytes();
        let back = Message::decode(&bytes).expect("valid encoding decodes");
        assert_eq!(&back, m);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(&Message::ModelUpdate {
            node: 3,
            round: 17,
            model: vec![0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -1e-308],
        });
        roundtrip(&Message::ModelUpdate {
            node: 0,
            round: 0,
            model: vec![],
        });
        roundtrip(&Message::FeedbackBatch {
            node: u32::MAX,
            round: u64::MAX,
            observations: vec![(0, 1.0), (u32::MAX, f64::INFINITY)],
        });
        roundtrip(&Message::RoundBarrier { node: 9, round: 2 });
        roundtrip(&Message::ShardRebalance {
            round: 0,
            assigned: 2,
            order: vec![2, 0, 1],
            ranges: vec![(0, 1), (1, 2), (2, 3)],
        });
        roundtrip(&Message::Hello {
            version: PROTOCOL_VERSION,
        });
        for config in session_configs() {
            roundtrip(&Message::Assign { worker: 3, config });
        }
        roundtrip(&Message::DatasetTransfer {
            dataset: Box::new(tiny_dataset()),
        });
        roundtrip(&sequence_checkpoint());
        roundtrip(&adaptive_checkpoint());
        roundtrip(&Message::CheckpointAck { node: 2, round: 8 });
        roundtrip(&telemetry_sample());
        roundtrip(&Message::Telemetry {
            node: u32::MAX,
            round: u64::MAX,
            timing: WorkerTiming {
                compute_us: u64::MAX,
                barrier_wait_us: 0,
                rows: u64::MAX,
                commits: 0,
            },
        });
    }

    fn telemetry_sample() -> Message {
        Message::Telemetry {
            node: 2,
            round: 7,
            timing: WorkerTiming {
                compute_us: 1_234,
                barrier_wait_us: 56,
                rows: 640,
                commits: 80,
            },
        }
    }

    fn sequence_checkpoint() -> Message {
        Message::Checkpoint {
            node: 1,
            round: 4,
            state: Box::new(CheckpointState {
                draw_rng: [1, 2, 3, u64::MAX],
                model: vec![0.0, -0.0, 1.5, 5e-324, f64::NEG_INFINITY],
                sampler: CheckpointSampler::Sequence {
                    rows: 6,
                    rng: [9, 8, 7, 6],
                    indices: vec![3, 0, 5, 5, 1, 2],
                },
            }),
        }
    }

    fn adaptive_checkpoint() -> Message {
        Message::Checkpoint {
            node: 0,
            round: 12,
            state: Box::new(CheckpointState {
                draw_rng: [u64::MAX, 0, 1, 2],
                model: vec![],
                sampler: CheckpointSampler::Adaptive {
                    rows: 4_000_001,
                    commits: 17,
                    indices: vec![0, 129, 4_000_000],
                    weights: vec![0.25, 0.0, 1e300],
                },
            }),
        }
    }

    fn tiny_dataset() -> Dataset {
        let mut b = DatasetBuilder::new(6);
        b.push_row(&[(0, 1.5), (2, -0.25), (5, 5e-324)], 1.0)
            .unwrap();
        b.push_row(&[], -1.0).unwrap();
        b.push_row(&[(3, -0.0)], -1.0).unwrap();
        b.finish()
    }

    /// One SessionConfig per sub-enum variant so every codec arm is hit.
    fn session_configs() -> Vec<SessionConfig> {
        let base = SessionConfig {
            nodes: 4,
            rounds: 10,
            local_epochs: 2,
            step_size: 0.5,
            seed: 0x15A5_6D00,
            round_timeout_ms: 120_000,
            importance: ImportanceScheme::LipschitzSmoothness,
            sampling: SamplingStrategy::Static,
            obs_model: ObservationModel::GradNorm,
            commit: CommitPolicy::EpochBoundary,
            loss: "logistic".into(),
            reg: Regularizer::None,
            encoding: WireEncoding::Dense,
            checkpoint_every: 0,
            telemetry: false,
        };
        vec![
            base.clone(),
            SessionConfig {
                importance: ImportanceScheme::GradNormBound { radius: 1.25 },
                sampling: SamplingStrategy::Adaptive,
                obs_model: ObservationModel::StalenessDiscounted { half_life: 64.0 },
                commit: CommitPolicy::EveryK(32),
                loss: "squared hinge".into(),
                reg: Regularizer::L1 { eta: 1e-5 },
                encoding: WireEncoding::Delta,
                checkpoint_every: 4,
                telemetry: true,
                ..base.clone()
            },
            SessionConfig {
                importance: ImportanceScheme::PartiallyBiased { bias: 0.5 },
                sampling: SamplingStrategy::Uniform,
                obs_model: ObservationModel::LossBound,
                reg: Regularizer::L2 { eta: 0.01 },
                encoding: WireEncoding::Auto,
                ..base.clone()
            },
            SessionConfig {
                importance: ImportanceScheme::Uniform,
                ..base
            },
        ]
    }

    #[test]
    fn dataset_transfer_is_bit_exact() {
        let ds = tiny_dataset();
        let m = Message::DatasetTransfer {
            dataset: Box::new(ds.clone()),
        };
        let Message::DatasetTransfer { dataset: back } = Message::decode(&m.to_bytes()).unwrap()
        else {
            panic!("wrong variant")
        };
        assert_eq!(*back, ds);
        // Subnormal and signed-zero feature values survive bitwise.
        assert_eq!(back.row(0).values[2].to_bits(), 5e-324f64.to_bits());
        assert_eq!(back.row(2).values[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn malformed_dataset_frames_are_typed_errors() {
        // Bad label.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4); // dim
        put_u32(&mut bytes, 1); // rows
        put_f64(&mut bytes, 0.5); // label not ±1
        put_u32(&mut bytes, 0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Unsorted indices.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4);
        put_u32(&mut bytes, 1);
        put_f64(&mut bytes, 1.0);
        put_u32(&mut bytes, 2);
        put_u32(&mut bytes, 2);
        put_f64(&mut bytes, 1.0);
        put_u32(&mut bytes, 1); // 1 after 2
        put_f64(&mut bytes, 1.0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Out-of-bounds index.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4);
        put_u32(&mut bytes, 1);
        put_f64(&mut bytes, 1.0);
        put_u32(&mut bytes, 1);
        put_u32(&mut bytes, 9);
        put_f64(&mut bytes, 1.0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // NaN value.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4);
        put_u32(&mut bytes, 1);
        put_f64(&mut bytes, 1.0);
        put_u32(&mut bytes, 1);
        put_u32(&mut bytes, 0);
        put_f64(&mut bytes, f64::NAN);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Over-declared row count fails before allocation.
        let mut bytes = vec![TAG_DATASET_TRANSFER];
        put_u32(&mut bytes, 4);
        put_u32(&mut bytes, u32::MAX);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_session_enum_tags_are_typed_errors() {
        let m = Message::Assign {
            worker: 0,
            config: session_configs().remove(0),
        };
        let bytes = m.to_bytes();
        // The importance-scheme tag sits right after worker(4) + nodes(4)
        // + rounds(8) + local_epochs(4) + step(8) + seed(8) +
        // round_timeout(8) + the message tag byte.
        let pos = 1 + 4 + 4 + 8 + 4 + 8 + 8 + 8;
        let mut bad = bytes.clone();
        bad[pos] = 0xEE;
        assert!(matches!(
            Message::decode(&bad),
            Err(WireError::BadEnum {
                what: "importance scheme",
                tag: 0xEE
            })
        ));
        // Non-UTF-8 loss name.
        let m2 = Message::Assign {
            worker: 0,
            config: SessionConfig {
                loss: "ab".into(),
                ..session_configs().remove(0)
            },
        };
        let mut bytes = m2.to_bytes();
        let n = bytes.len();
        // The frame ends reg tag (1 byte, Regularizer::None) ‖ encoding
        // (1 byte) ‖ checkpoint_every (8 bytes) ‖ telemetry (1 byte),
        // preceded by the 2-byte loss string; corrupt the loss bytes to
        // invalid UTF-8.
        bytes[n - 12] = 0xFF;
        bytes[n - 13] = 0xFE;
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid {
                what: "non-UTF-8 string"
            })
        ));
        // The telemetry flag closes the frame and only 0/1 are canonical.
        let mut bytes = m.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 2;
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::BadEnum {
                what: "telemetry flag",
                tag: 2
            })
        ));
    }

    #[test]
    fn f64_roundtrips_are_bit_exact() {
        let m = Message::ModelUpdate {
            node: 0,
            round: 0,
            model: vec![-0.0, f64::NEG_INFINITY, 5e-324],
        };
        let Message::ModelUpdate { model, .. } = Message::decode(&m.to_bytes()).unwrap() else {
            panic!("wrong variant")
        };
        assert_eq!(model[0].to_bits(), (-0.0f64).to_bits(), "signed zero kept");
        assert_eq!(model[1], f64::NEG_INFINITY);
        assert_eq!(model[2].to_bits(), 5e-324f64.to_bits(), "subnormal kept");
    }

    #[test]
    fn bad_tag_and_empty_are_typed_errors() {
        assert_eq!(Message::decode(&[]), Err(WireError::Empty));
        assert_eq!(Message::decode(&[0xff]), Err(WireError::BadTag(0xff)));
        assert_eq!(Message::decode(&[0]), Err(WireError::BadTag(0)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Message::RoundBarrier { node: 1, round: 1 }.to_bytes();
        bytes.push(0xAB);
        assert_eq!(
            Message::decode(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn over_declared_counts_do_not_allocate() {
        // A FeedbackBatch declaring u32::MAX entries with no bytes
        // behind it must fail the count check before any reserve.
        let mut bytes = vec![TAG_FEEDBACK_BATCH];
        put_u32(&mut bytes, 0); // node
        put_u64(&mut bytes, 0); // round
        put_u32(&mut bytes, u32::MAX); // declared count
        match Message::decode(&bytes) {
            Err(WireError::Truncated { needed, have: 0 }) => {
                assert_eq!(needed, u32::MAX as usize * 12);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn every_strict_prefix_is_truncated() {
        let bytes = Message::ModelUpdate {
            node: 1,
            round: 2,
            model: vec![1.0, 2.0, 3.0],
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    // --- varint / index-list ---------------------------------------------

    fn varint_roundtrip(v: u64) -> usize {
        let mut out = Vec::new();
        put_varint(&mut out, v);
        let mut r = Reader::new(&out);
        assert_eq!(get_varint(&mut r).unwrap(), v, "varint {v}");
        assert_eq!(r.remaining(), 0);
        out.len()
    }

    #[test]
    fn varint_boundary_values_roundtrip_minimally() {
        assert_eq!(varint_roundtrip(0), 1);
        assert_eq!(varint_roundtrip(127), 1); // 2^7 − 1
        assert_eq!(varint_roundtrip(128), 2); // 2^7
        assert_eq!(varint_roundtrip(16_383), 2); // 2^14 − 1
        assert_eq!(varint_roundtrip(16_384), 3); // 2^14
        assert_eq!(varint_roundtrip(u64::from(u32::MAX)), 5);
        assert_eq!(varint_roundtrip(u64::MAX), 10);
    }

    #[test]
    fn non_minimal_varints_are_rejected() {
        // `0x80 0x00` is a redundant encoding of zero.
        for bad in [&[0x80u8, 0x00][..], &[0x81, 0x00], &[0xFF, 0x80, 0x00]] {
            let mut r = Reader::new(bad);
            assert!(
                matches!(get_varint(&mut r), Err(WireError::Invalid { .. })),
                "{bad:?} must be rejected as non-minimal"
            );
        }
    }

    #[test]
    fn varint_overflow_is_a_typed_error() {
        // 10 continuation bytes followed by a 2-bit final group: > 64 bits.
        let mut bytes = vec![0xFFu8; 9];
        bytes.push(0x7F);
        let mut r = Reader::new(&bytes);
        assert!(matches!(get_varint(&mut r), Err(WireError::Invalid { .. })));
        // 11 bytes always overflow.
        let mut bytes = vec![0x80u8; 10];
        bytes.push(0x01);
        let mut r = Reader::new(&bytes);
        assert!(matches!(get_varint(&mut r), Err(WireError::Invalid { .. })));
    }

    #[test]
    fn index_lists_gap_code_and_bound_check() {
        let indices = vec![0u32, 1, 129, 4_000_000, u32::MAX - 1];
        let mut out = Vec::new();
        put_index_list(&mut out, &indices);
        let mut r = Reader::new(&out);
        let back = get_index_list(&mut r, u64::from(u32::MAX)).unwrap();
        assert_eq!(back, indices);
        // The same bytes against a small dim are rejected.
        let mut r = Reader::new(&out);
        assert!(matches!(
            get_index_list(&mut r, 130),
            Err(WireError::Invalid { .. })
        ));
    }

    // --- model deltas ----------------------------------------------------

    #[test]
    fn delta_roundtrip_reconstructs_bit_exactly() {
        let base = vec![0.0, -0.0, 1.5, f64::MAX, 5e-324, -3.25];
        let next = vec![0.0, 0.0, 1.5, f64::MAX, -5e-324, f64::NEG_INFINITY];
        let (indices, values) = delta_coords(&base, &next);
        // −0.0 → 0.0 is a bit change and must be carried.
        assert_eq!(indices, vec![1, 4, 5]);
        let rebuilt =
            apply_delta(&base, &indices, &values).expect("delta from delta_coords is in bounds");
        for (a, b) in rebuilt.iter().zip(&next) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        roundtrip(&Message::ModelDelta {
            node: 2,
            round: 7,
            dim: base.len() as u32,
            indices,
            values,
        });
        roundtrip(&Message::ModelDelta {
            node: 0,
            round: 1,
            dim: 10,
            indices: vec![],
            values: vec![],
        });
    }

    /// The checks in [`apply_delta`] hold in release builds: a delta
    /// whose coordinates outrun the receiver's base, or whose index and
    /// value lists disagree in length, is refused instead of panicking.
    #[test]
    fn apply_delta_refuses_malformed_deltas() {
        let base = vec![1.0, 2.0, 3.0];
        // Index == base.len() is out of bounds.
        assert_eq!(apply_delta(&base, &[3], &[9.0]), None);
        // Far out of bounds.
        assert_eq!(apply_delta(&base, &[u32::MAX], &[9.0]), None);
        // Length mismatch in either direction.
        assert_eq!(apply_delta(&base, &[0, 1], &[9.0]), None);
        assert_eq!(apply_delta(&base, &[0], &[9.0, 8.0]), None);
        // The empty delta is the identity.
        assert_eq!(apply_delta(&base, &[], &[]), Some(base.clone()));
        // A partial failure must not have been applied halfway — the
        // refusal happens before any caller-visible state changes.
        assert_eq!(apply_delta(&base, &[2, 3], &[7.0, 9.0]), None);
    }

    /// `Reader::take` survives a length that would overflow `pos + n`.
    #[test]
    fn reader_take_survives_overflowing_lengths() {
        let buf = [0u8; 4];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.take(usize::MAX),
            Err(WireError::Truncated { .. })
        ));
        // Position is untouched by the failed take.
        assert_eq!(r.u32().unwrap(), 0);
    }

    #[test]
    fn model_delta_rejects_out_of_dim_indices() {
        let m = Message::ModelDelta {
            node: 0,
            round: 1,
            dim: 4,
            indices: vec![1, 5],
            values: vec![1.0, 2.0],
        };
        assert!(matches!(
            Message::decode(&m.to_bytes()),
            Err(WireError::Invalid { .. })
        ));
    }

    // --- shard-streamed dataset ------------------------------------------

    #[test]
    fn dataset_shard_chunks_roundtrip_and_cover_the_shard() {
        let mut b = DatasetBuilder::new(16);
        for i in 0..40u32 {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            b.push_row(&[(i % 16, 0.5 + f64::from(i))], y).unwrap();
        }
        let ds = b.finish();
        let weights: Vec<f64> = (0..40).map(|i| 1.0 + i as f64 * 0.25).collect();
        let chunks = encode_dataset_shard_chunks(1, 10..30, &ds, &weights);
        assert!(!chunks.is_empty());
        let mut rows_seen = 0usize;
        for bytes in &chunks {
            let msg = Message::decode(bytes).expect("chunk decodes");
            // Chunks are canonical: re-encoding is byte-identical.
            assert_eq!(&msg.to_bytes(), bytes);
            let Message::DatasetShard {
                shard,
                shard_start,
                shard_rows,
                start,
                weights: w,
                chunk,
            } = msg
            else {
                panic!("wrong variant")
            };
            assert_eq!(shard, 1);
            assert_eq!(shard_start, 10);
            assert_eq!(shard_rows, 20);
            assert_eq!(start as usize, 10 + rows_seen);
            assert_eq!(chunk.dim(), ds.dim());
            for (i, row) in chunk.rows().enumerate() {
                let global = start as usize + i;
                let orig = ds.row(global);
                assert_eq!(row.indices, orig.indices);
                assert_eq!(
                    row.values[0].to_bits(),
                    orig.values[0].to_bits(),
                    "row {global} values must be bit-exact"
                );
                assert_eq!(row.label, orig.label);
                assert_eq!(w[i].to_bits(), weights[global].to_bits());
            }
            rows_seen += chunk.n_samples();
        }
        assert_eq!(rows_seen, 20, "chunks cover the shard exactly once");
    }

    #[test]
    fn oversized_rows_still_stream_one_per_chunk() {
        // A row bigger than SHARD_CHUNK_BYTES moves alone.
        let dim = (SHARD_CHUNK_BYTES / 8) + 64;
        let pairs: Vec<(u32, f64)> = (0..dim as u32).map(|i| (i, 1.0)).collect();
        let mut b = DatasetBuilder::new(dim);
        b.push_row(&pairs, 1.0).unwrap();
        b.push_row(&[(0, 2.0)], -1.0).unwrap();
        let ds = b.finish();
        let chunks = encode_dataset_shard_chunks(0, 0..2, &ds, &[1.0, 2.0]);
        assert_eq!(chunks.len(), 2, "huge row forces a chunk break");
        for bytes in &chunks {
            assert!(Message::decode(bytes).is_ok());
        }
    }

    #[test]
    fn malformed_shard_frames_are_typed_errors() {
        let mk_header = |rows: u32| {
            let mut bytes = vec![TAG_DATASET_SHARD];
            put_u32(&mut bytes, 0); // shard
            put_u32(&mut bytes, 4); // shard_start
            put_u32(&mut bytes, 8); // shard_rows
            put_u32(&mut bytes, 4); // start
            put_u32(&mut bytes, 4); // dim
            put_u32(&mut bytes, rows);
            bytes
        };
        // Empty chunk.
        let bytes = mk_header(0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Bad label byte.
        let mut bytes = mk_header(1);
        bytes.push(7);
        put_f64(&mut bytes, 1.0);
        put_u32(&mut bytes, 0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Non-positive weight.
        let mut bytes = mk_header(1);
        bytes.push(1);
        put_f64(&mut bytes, 0.0);
        put_u32(&mut bytes, 0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Chunk escapes its shard range: start+rows > shard_start+shard_rows.
        let mut bytes = vec![TAG_DATASET_SHARD];
        put_u32(&mut bytes, 0);
        put_u32(&mut bytes, 4); // shard_start
        put_u32(&mut bytes, 1); // shard_rows
        put_u32(&mut bytes, 4); // start
        put_u32(&mut bytes, 4); // dim
        put_u32(&mut bytes, 2); // rows
        for label in [0u8, 1] {
            bytes.push(label);
            put_f64(&mut bytes, 1.0);
            put_u32(&mut bytes, 0);
        }
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Over-declared row count fails before allocation.
        let bytes = mk_header(u32::MAX);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    // --- worker checkpoints ----------------------------------------------

    #[test]
    fn checkpoint_frames_are_checksummed() {
        for m in [sequence_checkpoint(), adaptive_checkpoint()] {
            let bytes = m.to_bytes();
            // Flipping any single payload byte between the tag and the
            // checksum must be caught (by the checksum if nothing
            // structural rejects it first) — never accepted, never a
            // panic.
            for pos in 1..bytes.len() {
                let mut bad = bytes.clone();
                bad[pos] ^= 0x01;
                assert!(
                    Message::decode(&bad).is_err(),
                    "bit flip at byte {pos} must not decode"
                );
            }
        }
    }

    #[test]
    fn checkpoint_truncations_are_typed_errors() {
        for m in [sequence_checkpoint(), adaptive_checkpoint()] {
            let bytes = m.to_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    Message::decode(&bytes[..cut]).is_err(),
                    "prefix of {cut} bytes must not decode"
                );
            }
            let mut extra = bytes.clone();
            extra.push(0);
            assert!(matches!(
                Message::decode(&extra),
                Err(WireError::TrailingBytes { .. })
            ));
        }
    }

    // --- telemetry samples -----------------------------------------------

    #[test]
    fn telemetry_frames_are_checksummed() {
        let bytes = telemetry_sample().to_bytes();
        // Flipping any single byte between the tag and the checksum must
        // be caught by the checksum — never accepted, never a panic.
        for pos in 1..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert!(
                Message::decode(&bad).is_err(),
                "bit flip at byte {pos} must not decode"
            );
        }
    }

    #[test]
    fn telemetry_truncations_are_typed_errors() {
        let bytes = telemetry_sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(matches!(
            Message::decode(&extra),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn telemetry_checksum_mismatch_is_a_typed_error() {
        let mut bytes = telemetry_sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // corrupt the checksum itself
        assert_eq!(
            Message::decode(&bytes),
            Err(WireError::Invalid {
                what: "telemetry checksum mismatch"
            })
        );
    }

    #[test]
    fn wrong_checkpoint_layout_version_is_refused() {
        let bytes = sequence_checkpoint().to_bytes();
        let mut bad = bytes.clone();
        // The layout version is the u32 right after the tag.
        bad[1..5].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        assert_eq!(
            Message::decode(&bad),
            Err(WireError::Invalid {
                what: "unsupported checkpoint layout version"
            })
        );
    }

    #[test]
    fn malformed_checkpoint_contents_are_typed_errors() {
        let encode_with = |sampler: CheckpointSampler| {
            Message::Checkpoint {
                node: 0,
                round: 1,
                state: Box::new(CheckpointState {
                    draw_rng: [1, 2, 3, 4],
                    model: vec![1.0],
                    sampler,
                }),
            }
            .to_bytes()
        };
        // Sequence index ≥ rows.
        let bytes = encode_with(CheckpointSampler::Sequence {
            rows: 4,
            rng: [1, 2, 3, 4],
            indices: vec![0, 4],
        });
        assert_eq!(
            Message::decode(&bytes),
            Err(WireError::Invalid {
                what: "checkpoint sequence index out of bounds"
            })
        );
        // Non-finite / negative adaptive weights.
        for w in [f64::NAN, f64::INFINITY, -1.0] {
            let bytes = encode_with(CheckpointSampler::Adaptive {
                rows: 4,
                commits: 0,
                indices: vec![2],
                weights: vec![w],
            });
            assert_eq!(
                Message::decode(&bytes),
                Err(WireError::Invalid {
                    what: "checkpoint weight not finite non-negative"
                })
            );
        }
        // Adaptive delta coordinate ≥ rows (gap-coded bound check).
        let bytes = encode_with(CheckpointSampler::Adaptive {
            rows: 4,
            commits: 0,
            indices: vec![9],
            weights: vec![1.0],
        });
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Bad sampler kind tag: corrupt the kind byte of a valid frame.
        // It sits after tag(1) + version(4) + node(4) + round(8) +
        // draw_rng(32) + model count(4) + 1 model coordinate(8).
        let mut bytes = encode_with(CheckpointSampler::Sequence {
            rows: 1,
            rng: [1, 2, 3, 4],
            indices: vec![0],
        });
        bytes[1 + 4 + 4 + 8 + 32 + 4 + 8] = 0xEE;
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::BadEnum {
                what: "checkpoint sampler kind",
                tag: 0xEE
            }) | Err(WireError::Invalid { .. })
        ));
        // Over-declared counts fail before allocation.
        let mut bytes = vec![TAG_CHECKPOINT];
        put_u32(&mut bytes, CHECKPOINT_VERSION);
        put_u32(&mut bytes, 0); // node
        put_u64(&mut bytes, 1); // round
        for w in [1u64, 2, 3, 4] {
            put_u64(&mut bytes, w);
        }
        put_u32(&mut bytes, u32::MAX); // declared model count
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }
}
