//! The [`Transport`] abstraction: how coordinator and workers exchange
//! [`Message`]s.
//!
//! The cluster runtime is written once, generic over this trait
//! (see [`crate::coordinator`]); the concrete wiring is chosen at run
//! time:
//!
//! * [`InProcess`] — a pair of `std::sync::mpsc` channels carrying typed
//!   messages between threads of one process. The successor of the old
//!   direct function-call round loop, and the default.
//! * [`Tcp`] — length-prefixed [`wire`](crate::wire) frames over a real
//!   `std::net::TcpStream`. On localhost this gives every worker thread
//!   an actual socket, so the full protocol (hello, shard rebalance,
//!   round barriers, model + feedback traffic) crosses a genuine byte
//!   boundary; `tests/equivalence.rs` pins it bit-equal to `InProcess`.
//! * [`FlakyTransport`] — a deterministic fault-injection wrapper that
//!   delays (reorders) and duplicates messages, used by
//!   `tests/fault_injection.rs` to pin the protocol's tolerance.
//!
//! A transport link is one endpoint of a duplex coordinator↔worker
//! connection. Links are FIFO per direction; the protocol additionally
//! tolerates duplicated messages and reordering within one send burst
//! (the guarantees [`FlakyTransport`] deliberately erodes).

use crate::wire::{
    apply_delta, delta_coords, FrameKind, Message, WireEncoding, WireError, WorkerTiming,
    FRAME_KINDS, MAX_FRAME,
};
use isasgd_sampling::Xoshiro256pp;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

/// Per-link traffic counters, broken down by [`FrameKind`]: one frame
/// and byte tally per direction, where bytes include the 4-byte length
/// prefix (what actually crossed the socket). This is how the delta
/// and shard-streaming wins are *observed* — surfaced as the CLI's
/// `[net]` trace lines and asserted by the bandwidth tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames sent, indexed by [`FrameKind::index`].
    pub tx_frames: [u64; FRAME_KINDS],
    /// Bytes sent (payload + length prefix), indexed by kind.
    pub tx_bytes: [u64; FRAME_KINDS],
    /// Frames received, indexed by kind.
    pub rx_frames: [u64; FRAME_KINDS],
    /// Bytes received (payload + length prefix), indexed by kind.
    pub rx_bytes: [u64; FRAME_KINDS],
}

impl LinkStats {
    fn record_tx(&mut self, kind: FrameKind, bytes: usize) {
        self.tx_frames[kind.index()] += 1;
        self.tx_bytes[kind.index()] += bytes as u64;
    }

    fn record_rx(&mut self, kind: FrameKind, bytes: usize) {
        self.rx_frames[kind.index()] += 1;
        self.rx_bytes[kind.index()] += bytes as u64;
    }

    /// Accumulates another link's counters into this one (the fleet
    /// folds a replaced connection's traffic into its slot's totals).
    pub fn merge(&mut self, other: &LinkStats) {
        for i in 0..FRAME_KINDS {
            self.tx_frames[i] += other.tx_frames[i];
            self.tx_bytes[i] += other.tx_bytes[i];
            self.rx_frames[i] += other.rx_frames[i];
            self.rx_bytes[i] += other.rx_bytes[i];
        }
    }

    /// Total bytes sent across all frame kinds.
    pub fn tx_total_bytes(&self) -> u64 {
        self.tx_bytes.iter().sum()
    }

    /// Total bytes received across all frame kinds.
    pub fn rx_total_bytes(&self) -> u64 {
        self.rx_bytes.iter().sum()
    }

    /// Bytes sent as frames of `kind`.
    pub fn tx_bytes_for(&self, kind: FrameKind) -> u64 {
        self.tx_bytes[kind.index()]
    }

    /// Bytes received as frames of `kind`.
    pub fn rx_bytes_for(&self, kind: FrameKind) -> u64 {
        self.rx_bytes[kind.index()]
    }

    /// One-line `kind:frames/bytes` summary of the non-zero sent kinds
    /// followed by received kinds — the `[net]` trace format.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for (dir, frames, bytes) in [
            ("tx", &self.tx_frames, &self.tx_bytes),
            ("rx", &self.rx_frames, &self.rx_bytes),
        ] {
            for kind in FrameKind::ALL {
                let i = kind.index();
                if frames[i] > 0 {
                    parts.push(format!("{dir} {}:{}/{}B", kind.name(), frames[i], bytes[i]));
                }
            }
        }
        parts.join(" ")
    }
}

/// One worker slot's respawn-recovery footprint: how much replay the
/// supervisor is holding for (and would ship to) a replacement. With
/// checkpointing enabled this is bounded by one checkpoint interval
/// regardless of session length — the bound `bench_wire`'s
/// recovery-footprint case and the kill-respawn tests pin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryFootprint {
    /// The slot's node id.
    pub node: u32,
    /// Messages currently in the replay log (the suffix a respawn
    /// would replay after installing the stored checkpoint, if any).
    pub log_frames: u64,
    /// Estimated resident bytes of those logged messages.
    pub log_bytes: u64,
    /// Round of the stored checkpoint (0 = none stored yet).
    pub checkpoint_round: u64,
    /// Encoded size of the stored checkpoint frame, in bytes.
    pub checkpoint_bytes: u64,
    /// Respawns this slot has performed so far.
    pub respawns: u32,
}

/// Transport-level failures.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the link (channel hung up / socket EOF).
    Closed,
    /// Socket-level I/O failure.
    Io(std::io::Error),
    /// The peer sent an undecodable frame.
    Wire(WireError),
    /// A supervised worker process was lost (connection died or a
    /// per-round deadline expired) and the loss policy does not permit
    /// — or respawning exhausted its budget for — recovery.
    WorkerLost {
        /// The lost worker's node id.
        node: u32,
        /// Human-readable root cause (original transport failure).
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "peer closed the link"),
            TransportError::Io(e) => write!(f, "transport i/o: {e}"),
            TransportError::Wire(e) => write!(f, "wire decode: {e}"),
            TransportError::WorkerLost { node, detail } => {
                write!(f, "worker {node} lost: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// One endpoint of a duplex coordinator↔worker link.
pub trait Transport: Send {
    /// Sends one message to the peer.
    fn send(&mut self, msg: &Message) -> Result<(), TransportError>;

    /// Blocks until the peer's next message arrives.
    fn recv(&mut self) -> Result<Message, TransportError>;

    /// This link's traffic counters, when the transport measures any —
    /// socket transports do; [`InProcess`] moves typed values, so there
    /// are no wire bytes to count and it reports `None`.
    fn stats(&self) -> Option<LinkStats> {
        None
    }

    /// This link's respawn-recovery footprint, when the transport
    /// supervises one — only the fleet's supervised links do; plain
    /// links have no replay log and report `None`.
    fn recovery(&self) -> Option<RecoveryFootprint> {
        None
    }

    /// The [`Message::Telemetry`] samples this link absorbed, in
    /// arrival order — only the fleet's supervised links collect them;
    /// plain transports drop telemetry frames (exactly as they drop
    /// [`Message::Checkpoint`]) and report `None`. Replay after a
    /// respawn re-ships recomputed rounds, so duplicates per round are
    /// possible and deliberately kept visible.
    fn telemetry(&self) -> Option<Vec<TelemetrySample>> {
        None
    }
}

/// One absorbed [`Message::Telemetry`] frame: which slot sent it plus
/// the round's [`WorkerTiming`] counters. Surfaced through
/// [`ClusterRun::telemetry`](crate::node::ClusterRun::telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Reporting worker's slot id.
    pub node: u32,
    /// Round the sample covers.
    pub round: u64,
    /// The worker's timing counters for that round.
    pub timing: WorkerTiming,
}

/// Which transport a cluster run wires its links with. Carried by
/// [`ClusterConfig`](crate::ClusterConfig) — the field whose arrival
/// moved the config from `Copy` to `Clone`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportConfig {
    /// Channel-backed links between threads of this process (default).
    #[default]
    InProcess,
    /// Length-prefixed frames over localhost TCP sockets (workers stay
    /// threads of this process; only the bytes cross a socket).
    Tcp {
        /// Listener bind address; port 0 lets the OS pick a free port.
        bind: String,
        /// Model-update encoding on every link (`--wire-encoding`).
        encoding: WireEncoding,
    },
    /// Real cross-process workers: the coordinator binds a listener,
    /// spawns `isasgd worker --connect` subprocesses, drives the
    /// [`wire`](crate::wire) session handshake, and supervises the
    /// fleet (see [`crate::fleet`]).
    Process(ProcessConfig),
}

/// What the fleet supervisor does when a worker process is lost
/// mid-run (its connection dies or a per-round deadline expires).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerLossPolicy {
    /// Abort the run with a typed
    /// [`WorkerLost`](crate::ClusterError::WorkerLost) error (default:
    /// fail loudly, never hang).
    #[default]
    Fail,
    /// Spawn a replacement process and replay the lost worker's entire
    /// session (assignment, dataset, every round message) so the
    /// replacement deterministically recomputes the lost state — the
    /// run completes **bit-identically** to an undisturbed run.
    Respawn,
}

impl WorkerLossPolicy {
    /// Parses a CLI name: `fail` or `respawn`.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "fail" => WorkerLossPolicy::Fail,
            "respawn" => WorkerLossPolicy::Respawn,
            _ => return None,
        })
    }

    /// The CLI/display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkerLossPolicy::Fail => "fail",
            WorkerLossPolicy::Respawn => "respawn",
        }
    }
}

/// Settings of the cross-process fleet (see
/// [`TransportConfig::Process`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessConfig {
    /// Listener bind address. The default binds loopback with an
    /// OS-assigned port. A routable address is accepted, but the fleet
    /// still spawns all `nodes` workers locally today — a remote
    /// `isasgd worker --connect` would race those spawns for admission
    /// slots, so remote join (with auth and a spawn-nothing mode) is a
    /// ROADMAP item, not a supported deployment.
    pub bind: String,
    /// Reaction to a lost worker process.
    pub on_loss: WorkerLossPolicy,
    /// Worker program to spawn (`<worker> worker --connect <addr>`);
    /// `None` uses the current executable — correct for the `isasgd`
    /// CLI, wrong inside test harnesses, which install their own
    /// spawner instead.
    pub worker: Option<String>,
    /// Deadline for a spawned worker to connect and complete the
    /// `Hello` handshake, in milliseconds.
    pub handshake_timeout_ms: u64,
    /// Per-round liveness deadline, in milliseconds: the socket read
    /// timeout while awaiting a worker's round traffic. A worker that
    /// stays silent longer is declared lost.
    pub round_timeout_ms: u64,
    /// Respawn budget per worker slot (guards against crash loops).
    pub max_respawns: u32,
    /// Chaos hook: make the *initially spawned* worker `node` abort
    /// abruptly at round `round` (replacements are spawned clean).
    /// Exercises the supervision path end-to-end; surfaced as
    /// `isasgd train --chaos-kill <node>:<round>`.
    pub chaos_kill: Option<(u32, u64)>,
    /// Model-update encoding on every supervised link
    /// (`--wire-encoding`); shipped to workers in the session config so
    /// both ends of each link agree on the delta base discipline.
    pub encoding: WireEncoding,
    /// Worker checkpoint period in rounds (`--checkpoint-every`); 0
    /// disables checkpointing. With a period `k`, every worker ships a
    /// [`Message::Checkpoint`] of its deterministic state each `k`
    /// rounds; the supervisor keeps the latest blob per slot and
    /// truncates that slot's replay log to the post-checkpoint suffix,
    /// bounding respawn recovery cost (and log memory) by one
    /// checkpoint interval instead of the whole session.
    pub checkpoint_every: u64,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        ProcessConfig {
            bind: "127.0.0.1:0".into(),
            on_loss: WorkerLossPolicy::Fail,
            worker: None,
            handshake_timeout_ms: 30_000,
            round_timeout_ms: 120_000,
            max_respawns: 3,
            chaos_kill: None,
            encoding: WireEncoding::default(),
            checkpoint_every: 0,
        }
    }
}

impl TransportConfig {
    /// The TCP transport on the default loopback bind address.
    pub fn tcp() -> Self {
        TransportConfig::Tcp {
            bind: "127.0.0.1:0".into(),
            encoding: WireEncoding::default(),
        }
    }

    /// The cross-process transport with default fleet settings.
    pub fn process() -> Self {
        TransportConfig::Process(ProcessConfig::default())
    }

    /// Parses a CLI name: `inproc`/`in-process`, `tcp`, or `process`.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "inproc" | "in-process" | "channel" => TransportConfig::InProcess,
            "tcp" => TransportConfig::tcp(),
            "process" | "subprocess" => TransportConfig::process(),
            _ => return None,
        })
    }

    /// The CLI/display name.
    pub fn name(&self) -> &'static str {
        match self {
            TransportConfig::InProcess => "inproc",
            TransportConfig::Tcp { .. } => "tcp",
            TransportConfig::Process(_) => "process",
        }
    }
}

/// Channel-backed in-process transport: typed messages over a pair of
/// `mpsc` channels.
pub struct InProcess {
    tx: Sender<Message>,
    rx: Receiver<Message>,
}

impl InProcess {
    /// Builds one duplex link, returning its two endpoints.
    pub fn pair() -> (InProcess, InProcess) {
        let (a_tx, b_rx) = channel();
        let (b_tx, a_rx) = channel();
        (
            InProcess { tx: a_tx, rx: a_rx },
            InProcess { tx: b_tx, rx: b_rx },
        )
    }
}

impl Transport for InProcess {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        self.tx
            .send(msg.clone())
            .map_err(|_| TransportError::Closed)
    }

    fn recv(&mut self) -> Result<Message, TransportError> {
        // lint: allow(unbounded-recv) — a dropped peer closes the channel (recv errors Closed); silent-peer deadlocks are ruled out by isasgd-check
        self.rx.recv().map_err(|_| TransportError::Closed)
    }
}

/// One `(coordinator_end, worker_end)` in-process link per node.
pub fn in_process_links(nodes: usize) -> Vec<(InProcess, InProcess)> {
    (0..nodes).map(|_| InProcess::pair()).collect()
}

/// A real socket endpoint: [`wire`](crate::wire) frames over TCP.
///
/// Under a non-[`Dense`](WireEncoding::Dense) encoding, each endpoint
/// tracks the last model that crossed the link in each direction (the
/// *delta bases*). A [`Message::ModelUpdate`] send may then go out as a
/// sparse [`Message::ModelDelta`] against the send-side base; the
/// receiving endpoint reconstructs the dense model bitwise against its
/// own base before handing it up, so the round protocol above never
/// sees a delta frame. Links are FIFO per direction, which is exactly
/// what keeps the two bases in lockstep; the first model on a fresh
/// link always goes dense (no base exists yet).
pub struct Tcp {
    stream: TcpStream,
    scratch: Vec<u8>,
    encoding: WireEncoding,
    /// Last model sent on this link (delta base for the tx direction).
    tx_base: Option<Vec<f64>>,
    /// Last model received on this link (delta base for rx).
    rx_base: Option<Vec<f64>>,
    stats: LinkStats,
}

impl Tcp {
    /// Generous per-recv deadline so a protocol bug fails a test run
    /// with a timeout error instead of hanging it forever.
    const READ_TIMEOUT: Duration = Duration::from_secs(120);

    /// Wraps a connected stream (disables Nagle — the protocol is
    /// latency-bound request/response, not bulk).
    pub fn new(stream: TcpStream) -> std::io::Result<Tcp> {
        Self::with_read_timeout(stream, Self::READ_TIMEOUT)
    }

    /// [`Tcp::new`] with an explicit per-recv deadline — the fleet
    /// supervisor's per-round liveness timer.
    pub fn with_read_timeout(stream: TcpStream, timeout: Duration) -> std::io::Result<Tcp> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(Tcp {
            stream,
            scratch: Vec::new(),
            encoding: WireEncoding::Dense,
            tx_base: None,
            rx_base: None,
            stats: LinkStats::default(),
        })
    }

    /// Selects the model-update encoding for this endpoint. Both ends
    /// of a link must agree (a delta frame is only decodable against
    /// the matching base discipline); the run entry points set it from
    /// the config on every endpoint they wire. A raw [`Tcp::new`] link
    /// defaults to [`WireEncoding::Dense`] — the v1 wire behavior.
    pub fn set_encoding(&mut self, encoding: WireEncoding) {
        self.encoding = encoding;
    }

    /// This endpoint's traffic counters so far.
    pub fn link_stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Takes this endpoint's traffic counters, zeroing them. The fleet
    /// folds a dying link's counters into its slot's running totals at
    /// the *start* of recovery — so the traffic is accounted even when
    /// the respawn itself fails.
    pub fn take_stats(&mut self) -> LinkStats {
        std::mem::take(&mut self.stats)
    }

    /// Re-arms the per-recv deadline (the fleet uses a short handshake
    /// deadline, then relaxes to the round deadline once admitted).
    pub fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Arms a per-write deadline. The fleet sets one on every
    /// supervised link so a peer that accepts a connection but never
    /// reads (stalling `write_all` once the socket buffers fill)
    /// surfaces as a typed I/O error instead of hanging the
    /// coordinator — the write-side half of the never-hang contract.
    pub fn set_write_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_write_timeout(Some(timeout))
    }

    /// Sends an already-encoded message payload (no length prefix) —
    /// the fleet encodes its admission frames (assignment dataset
    /// chunks) once and reuses the bytes for every admission and replay
    /// instead of re-encoding per worker.
    pub fn send_payload(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        if payload.len() > MAX_FRAME {
            return Err(TransportError::Wire(WireError::FrameTooLarge {
                len: payload.len(),
            }));
        }
        self.stream
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.stream.write_all(payload)?;
        if let Some(kind) = payload.first().copied().and_then(FrameKind::from_tag) {
            self.stats.record_tx(kind, payload.len() + 4);
        }
        Ok(())
    }

    /// The frame this endpoint would put on the wire for `msg`: a
    /// sparse [`Message::ModelDelta`] when the encoding, the per-link
    /// base, and (under [`WireEncoding::Auto`]) the changed-coordinate
    /// count all permit it; otherwise `None` (send dense).
    fn deltify(&self, msg: &Message) -> Option<Message> {
        let Message::ModelUpdate { node, round, model } = msg else {
            return None;
        };
        if self.encoding == WireEncoding::Dense {
            return None;
        }
        let base = self.tx_base.as_ref()?;
        if base.len() != model.len() {
            return None;
        }
        let (indices, values) = delta_coords(base, model);
        let heavy = indices.len() > model.len() / 3;
        if self.encoding == WireEncoding::Auto && heavy {
            return None;
        }
        Some(Message::ModelDelta {
            node: *node,
            round: *round,
            dim: model.len() as u32,
            indices,
            values,
        })
    }
}

impl Transport for Tcp {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let delta = self.deltify(msg);
        let wire_msg = delta.as_ref().unwrap_or(msg);
        self.scratch.clear();
        // Reserve the length prefix, encode, then patch it — one
        // contiguous buffer, one write_all.
        self.scratch.extend_from_slice(&[0u8; 4]);
        wire_msg.encode(&mut self.scratch);
        let len = self.scratch.len() - 4;
        if len > MAX_FRAME {
            return Err(TransportError::Wire(WireError::FrameTooLarge { len }));
        }
        self.scratch[..4].copy_from_slice(&(len as u32).to_le_bytes());
        self.stream.write_all(&self.scratch)?;
        if let Some(kind) = FrameKind::from_tag(self.scratch[4]) {
            self.stats.record_tx(kind, self.scratch.len());
        }
        // Only after a successful write: the peer's rx base advances
        // exactly when bytes actually left, keeping the two in lockstep.
        if let Message::ModelUpdate { model, .. } = msg {
            self.tx_base = Some(model.clone());
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Message, TransportError> {
        let mut len_bytes = [0u8; 4];
        self.stream
            .read_exact(&mut len_bytes)
            .map_err(eof_is_closed)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::Wire(WireError::FrameTooLarge { len }));
        }
        self.scratch.clear();
        self.scratch.resize(len, 0);
        self.stream
            .read_exact(&mut self.scratch)
            .map_err(eof_is_closed)?;
        let msg = Message::decode(&self.scratch)?;
        if let Some(kind) = self.scratch.first().copied().and_then(FrameKind::from_tag) {
            self.stats.record_rx(kind, len + 4);
        }
        match msg {
            Message::ModelUpdate { node, round, model } => {
                self.rx_base = Some(model.clone());
                Ok(Message::ModelUpdate { node, round, model })
            }
            Message::ModelDelta {
                node,
                round,
                dim,
                indices,
                values,
            } => {
                let base = match &self.rx_base {
                    Some(b) if b.len() == dim as usize => b,
                    _ => {
                        return Err(TransportError::Wire(WireError::Invalid {
                            what: "model delta without a matching base model",
                        }))
                    }
                };
                let model = apply_delta(base, &indices, &values).ok_or(TransportError::Wire(
                    WireError::Invalid {
                        what: "model delta out of bounds against its base",
                    },
                ))?;
                self.rx_base = Some(model.clone());
                Ok(Message::ModelUpdate { node, round, model })
            }
            other => Ok(other),
        }
    }

    fn stats(&self) -> Option<LinkStats> {
        Some(self.stats.clone())
    }
}

fn eof_is_closed(e: std::io::Error) -> TransportError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        TransportError::Closed
    } else {
        TransportError::Io(e)
    }
}

/// Builds one `(coordinator_end, worker_end)` TCP loopback link per
/// node: binds `bind`, then alternates connect/accept so the k-th
/// accepted stream deterministically pairs with the k-th worker.
pub fn tcp_loopback_links(nodes: usize, bind: &str) -> std::io::Result<Vec<(Tcp, Tcp)>> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let mut links = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let worker_end = TcpStream::connect(addr)?;
        let (coord_end, _) = listener.accept()?;
        links.push((Tcp::new(coord_end)?, Tcp::new(worker_end)?));
    }
    Ok(links)
}

/// The per-send fault vocabulary shared by every fault injector in the
/// workspace: [`FaultingTransport`] applies one verdict per
/// [`Transport::send`], and the `isasgd-check` model scheduler explores
/// the same four verdicts systematically instead of sampling them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    /// Pass the message through untouched.
    Deliver,
    /// Deliver the message, then inject a best-effort extra copy.
    Duplicate,
    /// Hold the message back; it is released after the next send
    /// (reordering it behind that send) or before the next recv.
    Hold,
    /// Silently discard the message (lossy-network simulation; never
    /// produced by [`RandomWalk`], whose runs must stay lossless).
    Drop,
}

/// A deterministic source of [`SendFault`] verdicts. `holding` reports
/// whether the wrapper already owes the peer a held message, so a
/// policy can keep the "at most one held message" invariant.
///
/// `Send` because the wrapped transport is moved onto worker threads.
pub trait FaultPolicy: Send {
    /// Chooses the fault to apply to the send happening now.
    fn on_send(&mut self, holding: bool) -> SendFault;
}

/// The seeded random-walk policy behind [`FlakyTransport`]: one rng
/// roll per send, holding every `delay_period`-th roll and duplicating
/// every `dup_period`-th (0 disables either fault). Never drops.
pub struct RandomWalk {
    rng: Xoshiro256pp,
    dup_period: u64,
    delay_period: u64,
}

impl RandomWalk {
    /// A seeded walk with the given fault periods.
    pub fn new(seed: u64, dup_period: u64, delay_period: u64) -> Self {
        RandomWalk {
            rng: Xoshiro256pp::new(seed),
            dup_period,
            delay_period,
        }
    }
}

impl FaultPolicy for RandomWalk {
    fn on_send(&mut self, holding: bool) -> SendFault {
        let roll = self.rng.next_raw();
        if self.delay_period > 0 && roll.is_multiple_of(self.delay_period) && !holding {
            SendFault::Hold
        } else if self.dup_period > 0 && roll.is_multiple_of(self.dup_period) {
            SendFault::Duplicate
        } else {
            SendFault::Deliver
        }
    }
}

/// Fault injection around any transport, driven by a pluggable
/// [`FaultPolicy`] that issues one [`SendFault`] verdict per send.
///
/// A held message is flushed before the wrapper ever blocks in
/// [`Transport::recv`] and again on drop, so the wrapper perturbs
/// ordering without being able to deadlock a request/response protocol:
/// every endpoint that stops sending either starts receiving or hangs
/// up, and both paths release the held message.
pub struct FaultingTransport<T: Transport, P: FaultPolicy> {
    inner: T,
    policy: P,
    held: Option<Message>,
}

/// Deterministic seeded fault injection: [`FaultingTransport`] driven
/// by the [`RandomWalk`] policy (duplicates + delays, never losses).
pub type FlakyTransport<T> = FaultingTransport<T, RandomWalk>;

impl<T: Transport> FlakyTransport<T> {
    /// Wraps `inner` with the default fault mix (duplicate ≈ 1/3 of
    /// sends, delay ≈ 1/4), seeded for reproducibility.
    pub fn new(inner: T, seed: u64) -> Self {
        Self::with_periods(inner, seed, 3, 4)
    }

    /// Wraps `inner` duplicating every `dup_period`-th roll and holding
    /// every `delay_period`-th roll (0 disables either fault).
    pub fn with_periods(inner: T, seed: u64, dup_period: u64, delay_period: u64) -> Self {
        FaultingTransport::with_policy(inner, RandomWalk::new(seed, dup_period, delay_period))
    }
}

impl<T: Transport, P: FaultPolicy> FaultingTransport<T, P> {
    /// Wraps `inner`, consulting `policy` on every send.
    pub fn with_policy(inner: T, policy: P) -> Self {
        FaultingTransport {
            inner,
            policy,
            held: None,
        }
    }

    /// True while a held (delayed) message is owed to the peer.
    pub fn holding(&self) -> bool {
        self.held.is_some()
    }

    /// Best-effort delivery for the *extra* copies the injector
    /// creates (duplicates and held-message flushes): a `Closed` peer
    /// has already finished the protocol and cannot need them, so that
    /// specific failure is swallowed — exactly like a real network
    /// dropping a packet to a host that hung up. Primary sends keep
    /// strict error propagation.
    fn send_best_effort(&mut self, msg: &Message) -> Result<(), TransportError> {
        match self.inner.send(msg) {
            Err(TransportError::Closed) => Ok(()),
            r => r,
        }
    }

    fn flush_held(&mut self) -> Result<(), TransportError> {
        if let Some(h) = self.held.take() {
            self.send_best_effort(&h)?;
        }
        Ok(())
    }
}

impl<T: Transport, P: FaultPolicy> Transport for FaultingTransport<T, P> {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        match self.policy.on_send(self.held.is_some()) {
            SendFault::Hold => {
                // Hold this message back; it will be released after the
                // next send (reordering it) or before the next recv.
                self.held = Some(msg.clone());
                return Ok(());
            }
            SendFault::Drop => return Ok(()),
            SendFault::Deliver => self.inner.send(msg)?,
            SendFault::Duplicate => {
                self.inner.send(msg)?;
                self.send_best_effort(msg)?;
            }
        }
        // Release a previously held message *after* this one — the
        // observable reordering.
        self.flush_held()
    }

    fn recv(&mut self) -> Result<Message, TransportError> {
        // Never block while still owing the peer a held message.
        self.flush_held()?;
        // lint: allow(unbounded-recv) — pure delegation: the inner transport owns the deadline
        self.inner.recv()
    }

    fn stats(&self) -> Option<LinkStats> {
        self.inner.stats()
    }

    fn telemetry(&self) -> Option<Vec<TelemetrySample>> {
        self.inner.telemetry()
    }
}

impl<T: Transport, P: FaultPolicy> Drop for FaultingTransport<T, P> {
    fn drop(&mut self) {
        let _ = self.flush_held();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barrier(round: u64) -> Message {
        Message::RoundBarrier { node: 0, round }
    }

    #[test]
    fn in_process_pair_is_duplex() {
        let (mut a, mut b) = InProcess::pair();
        a.send(&barrier(1)).unwrap();
        b.send(&barrier(2)).unwrap();
        assert_eq!(b.recv().unwrap(), barrier(1));
        assert_eq!(a.recv().unwrap(), barrier(2));
    }

    #[test]
    fn in_process_hangup_is_closed() {
        let (mut a, b) = InProcess::pair();
        drop(b);
        assert!(matches!(a.send(&barrier(1)), Err(TransportError::Closed)));
        assert!(matches!(a.recv(), Err(TransportError::Closed)));
    }

    #[test]
    fn tcp_link_roundtrips_messages() {
        let mut links = tcp_loopback_links(1, "127.0.0.1:0").unwrap();
        let (mut coord, mut worker) = links.pop().unwrap();
        let big = Message::ModelUpdate {
            node: 7,
            round: 3,
            model: (0..10_000).map(|i| i as f64 * 0.5 - 3.0).collect(),
        };
        worker.send(&big).unwrap();
        worker.send(&barrier(4)).unwrap();
        assert_eq!(coord.recv().unwrap(), big);
        assert_eq!(coord.recv().unwrap(), barrier(4));
        coord.send(&barrier(5)).unwrap();
        assert_eq!(worker.recv().unwrap(), barrier(5));
    }

    #[test]
    fn tcp_peer_hangup_is_closed() {
        let mut links = tcp_loopback_links(1, "127.0.0.1:0").unwrap();
        let (coord, mut worker) = links.pop().unwrap();
        drop(coord);
        assert!(matches!(worker.recv(), Err(TransportError::Closed)));
    }

    #[test]
    fn flaky_is_deterministic_and_lossless() {
        let deliver = |seed: u64| {
            let (a, mut b) = InProcess::pair();
            let mut flaky = FlakyTransport::new(a, seed);
            for round in 0..32 {
                flaky.send(&barrier(round)).unwrap();
            }
            drop(flaky); // flushes any held message
            let mut got = Vec::new();
            while let Ok(m) = b.recv() {
                got.push(m.round());
            }
            got
        };
        let a = deliver(9);
        let b = deliver(9);
        assert_eq!(a, b, "same seed ⇒ same fault schedule");
        // Nothing lost: every round delivered at least once.
        for round in 0..32 {
            assert!(a.contains(&round), "round {round} lost");
        }
        // Faults actually fired: duplicates exist and order is perturbed.
        assert!(a.len() > 32, "no duplicates injected: {a:?}");
        assert_ne!(
            a.iter().copied().take(32).collect::<Vec<_>>(),
            (0..32).collect::<Vec<_>>(),
            "no reordering injected"
        );
        let c = deliver(10);
        assert_ne!(a, c, "different seed ⇒ different schedule");
    }

    #[test]
    fn flaky_flushes_held_before_blocking_recv() {
        // Find a seed whose first roll delays, then check recv releases
        // the held message instead of deadlocking the echo peer.
        for seed in 0..64u64 {
            let (a, mut b) = InProcess::pair();
            let mut flaky = FlakyTransport::with_periods(a, seed, 0, 1); // delay every send
            flaky.send(&barrier(1)).unwrap();
            assert!(flaky.holding(), "period-1 delay must hold the send");
            // Peer echoes only after it sees the message.
            let echo = std::thread::spawn(move || {
                let m = b.recv().unwrap();
                b.send(&m).unwrap();
            });
            let back = flaky.recv().unwrap();
            assert_eq!(back, barrier(1));
            echo.join().unwrap();
        }
    }

    #[test]
    fn transport_config_parses() {
        assert_eq!(
            TransportConfig::parse("inproc"),
            Some(TransportConfig::InProcess)
        );
        assert_eq!(TransportConfig::parse("tcp"), Some(TransportConfig::tcp()));
        assert_eq!(
            TransportConfig::parse("process"),
            Some(TransportConfig::process())
        );
        assert_eq!(TransportConfig::parse("udp"), None);
        assert_eq!(TransportConfig::default().name(), "inproc");
        assert_eq!(TransportConfig::tcp().name(), "tcp");
        assert_eq!(TransportConfig::process().name(), "process");
    }

    #[test]
    fn worker_loss_policy_parses() {
        assert_eq!(
            WorkerLossPolicy::parse("fail"),
            Some(WorkerLossPolicy::Fail)
        );
        assert_eq!(
            WorkerLossPolicy::parse("respawn"),
            Some(WorkerLossPolicy::Respawn)
        );
        assert_eq!(WorkerLossPolicy::parse("retry"), None);
        assert_eq!(WorkerLossPolicy::default().name(), "fail");
        assert_eq!(WorkerLossPolicy::Respawn.name(), "respawn");
    }
}
