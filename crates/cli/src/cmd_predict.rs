//! `isasgd predict` — score a LibSVM file with a saved model.

use crate::opts::Opts;
use isasgd_model::SavedModel;
use std::io::Write;

/// Runs the command; returns a process exit code.
pub fn run(o: &Opts) -> i32 {
    match run_inner(o) {
        Ok(()) => 0,
        Err(e) => {
            // lint: allow(raw-eprintln) — CLI error path: must print even when no recorder exists
            eprintln!("isasgd predict: {e}");
            2
        }
    }
}

fn run_inner(o: &Opts) -> Result<(), String> {
    let data_path = o
        .positional
        .get(1)
        .cloned()
        .or_else(|| o.get("data"))
        .ok_or("usage: isasgd predict <data.svm> --model m.json [--out preds.txt]")?;
    let model_path = o.require("model").map_err(|e| e.to_string())?;
    let out_path = o.get("out");
    o.finish().map_err(|e| e.to_string())?;

    let model = SavedModel::load(&model_path).map_err(|e| e.to_string())?;
    let ds = isasgd_sparse::libsvm::read_file(&data_path, Some(model.dim))
        .map_err(|e| format!("reading {data_path}: {e}"))?;

    let mut out: Box<dyn Write> = match &out_path {
        Some(p) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(p).map_err(|e| format!("creating {p}: {e}"))?,
        )),
        None => Box::new(std::io::sink()),
    };

    let mut errors = 0usize;
    for row in ds.rows() {
        let margin = model.margin(row.indices, row.values);
        let pred = if margin >= 0.0 { 1.0 } else { -1.0 };
        if (pred > 0.0) != (row.label > 0.0) {
            errors += 1;
        }
        writeln!(out, "{pred} {margin:.6}").map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;

    let n = ds.n_samples().max(1);
    println!(
        "model={} ({} weights)  n={}  error_rate={:.6}",
        model.algorithm,
        model.nnz(),
        ds.n_samples(),
        errors as f64 / n as f64
    );
    Ok(())
}

/// Usage string for `--help`.
pub const HELP: &str = "\
isasgd predict <data.svm> --model <model.json> [--out preds.txt]

  Writes one line per example: `<±1 prediction> <margin>`; prints the
  error rate against the file's labels.
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    #[test]
    fn requires_model_flag() {
        let o = Opts::parse(["predict", "x.svm"].map(String::from));
        assert_eq!(run(&o), 2);
    }

    #[test]
    fn missing_model_file_is_an_error() {
        let o = Opts::parse(["predict", "x.svm", "--model", "/no/model.json"].map(String::from));
        assert_eq!(run(&o), 2);
    }
}
