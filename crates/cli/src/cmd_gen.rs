//! `isasgd gen` — synthesize a Table-1-calibrated dataset as a LibSVM file.

use crate::opts::Opts;
use isasgd_datagen::{generate, PaperProfile};

/// Runs the command; returns a process exit code.
pub fn run(o: &Opts) -> i32 {
    match run_inner(o) {
        Ok(()) => 0,
        Err(e) => {
            // lint: allow(raw-eprintln) — CLI error path: must print even when no recorder exists
            eprintln!("isasgd gen: {e}");
            2
        }
    }
}

fn parse_profile(s: &str) -> Option<PaperProfile> {
    PaperProfile::ALL.into_iter().find(|p| p.id() == s)
}

fn run_inner(o: &Opts) -> Result<(), String> {
    let out = o.require("out").map_err(|e| e.to_string())?;
    let profile_s = o.get_or("profile", "kdd_algebra");
    let profile = parse_profile(&profile_s).ok_or_else(|| {
        format!(
            "unknown profile '{profile_s}' (choose from: {})",
            PaperProfile::ALL.map(|p| p.id()).join(", ")
        )
    })?;
    let scale: f64 = o
        .get_parsed_or("scale", 0.1f64, "float")
        .map_err(|e| e.to_string())?;
    let seed: u64 = o
        .get_parsed_or("seed", 0x5EED_1501u64, "u64")
        .map_err(|e| e.to_string())?;
    let training = o.switch("training");
    o.finish().map_err(|e| e.to_string())?;

    let p = if training {
        profile.training()
    } else {
        profile.scaled()
    }
    .scaled_by(scale);
    // lint: allow(raw-eprintln) — generator progress line; `gen` runs install no recorder
    eprintln!(
        "[gen] {} (d={}, n={}, ~{} nnz/row, {})…",
        p.name,
        p.dim,
        p.n_samples,
        p.mean_nnz,
        if training {
            "training-calibrated"
        } else {
            "Table-1-literal"
        }
    );
    let g = generate(&p, seed);
    isasgd_sparse::libsvm::write_file(&g.dataset, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: n={} d={} nnz={} flipped={:.4}",
        g.dataset.n_samples(),
        g.dataset.dim(),
        g.dataset.nnz(),
        g.flipped_fraction
    );
    Ok(())
}

/// Usage string for `--help`.
pub const HELP: &str = "\
isasgd gen --out <file.svm> [--profile p] [--scale f] [--training] [--seed n]

  Profiles: news20 | url | kdd_algebra | kdd_bridge (Table-1-calibrated).
  --scale shrinks (n, d) proportionally; --training rescales norms to the
  stability-matched regime used by the convergence figures.
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    #[test]
    fn profile_parsing() {
        assert_eq!(parse_profile("news20"), Some(PaperProfile::News20));
        assert_eq!(parse_profile("kdd_bridge"), Some(PaperProfile::KddBridge));
        assert_eq!(parse_profile("mnist"), None);
    }

    #[test]
    fn requires_out() {
        let o = Opts::parse(["gen"].map(String::from));
        assert_eq!(run(&o), 2);
    }

    #[test]
    fn rejects_unknown_profile() {
        let o = Opts::parse(["gen", "--out", "/tmp/x.svm", "--profile", "mnist"].map(String::from));
        assert_eq!(run(&o), 2);
    }
}
