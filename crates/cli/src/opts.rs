//! A small typed flag parser — no external dependency, fully tested.
//!
//! Grammar: `isasgd <command> [--flag value]... [--switch]... [positional]`.
//! Every flag is declared by the command through the typed getters; unknown
//! flags are reported at the end via [`Opts::finish`].

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug)]
pub struct Opts {
    /// Free-standing arguments (e.g. input files).
    pub positional: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Errors surfaced to the user with exit code 2.
#[derive(Debug, PartialEq)]
pub enum OptError {
    /// Value failed to parse as the expected type.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending raw value.
        value: String,
        /// Expected type label.
        expected: &'static str,
    },
    /// A required flag was absent.
    Required(String),
    /// Flags that no getter asked about.
    Unknown(Vec<String>),
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "bad value '{value}' for --{flag} (expected {expected})")
            }
            OptError::Required(k) => write!(f, "missing required flag --{k}"),
            OptError::Unknown(ks) => write!(f, "unknown flags: --{}", ks.join(", --")),
        }
    }
}

impl Opts {
    /// Parses raw arguments. Anything starting with `--` is a flag; if the
    /// next token does not start with `--` it becomes the flag's value,
    /// otherwise the flag is a boolean switch.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Opts {
        let args: Vec<String> = args.into_iter().collect();
        let mut positional = Vec::new();
        let mut flags = BTreeMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    flags.insert(name.to_string(), args[i + 1].clone());
                    i += 2;
                    continue;
                }
                switches.push(name.to_string());
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Opts {
            positional,
            flags,
            switches,
            consumed: std::cell::RefCell::new(Vec::new()),
        }
    }

    fn note(&self, key: &str) {
        self.consumed.borrow_mut().push(key.to_string());
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<String> {
        self.note(key);
        self.flags.get(key).cloned()
    }

    /// String flag with default.
    pub fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or_else(|| default.to_string())
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<String, OptError> {
        self.get(key).ok_or_else(|| OptError::Required(key.into()))
    }

    /// Typed flag with default.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, OptError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| OptError::BadValue {
                flag: key.into(),
                value: v,
                expected,
            }),
        }
    }

    /// Boolean switch (present or not).
    pub fn switch(&self, key: &str) -> bool {
        self.note(key);
        self.switches.iter().any(|s| s == key)
    }

    /// Errors out if any flag or switch was never consulted — catches
    /// typos like `--thread 4`.
    pub fn finish(&self) -> Result<(), OptError> {
        let seen = self.consumed.borrow();
        let unknown: Vec<String> = self
            .flags
            .keys()
            .chain(self.switches.iter())
            .filter(|k| !seen.contains(k))
            .cloned()
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(OptError::Unknown(unknown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(s: &str) -> Opts {
        Opts::parse(s.split_whitespace().map(|x| x.to_string()))
    }

    #[test]
    fn positional_and_flags() {
        let o = opts("train data.svm --epochs 5 --quiet --algo is-asgd");
        assert_eq!(o.positional, vec!["train", "data.svm"]);
        assert_eq!(o.get("epochs"), Some("5".into()));
        assert_eq!(o.get("algo"), Some("is-asgd".into()));
        assert!(o.switch("quiet"));
        assert!(!o.switch("verbose"));
        assert!(o.finish().is_ok());
    }

    #[test]
    fn typed_defaults_and_errors() {
        let o = opts("--epochs 5 --step nope");
        assert_eq!(o.get_parsed_or("epochs", 1usize, "usize").unwrap(), 5);
        assert_eq!(o.get_parsed_or("threads", 4usize, "usize").unwrap(), 4);
        let e = o.get_parsed_or("step", 0.5f64, "float").unwrap_err();
        assert!(matches!(e, OptError::BadValue { .. }));
        assert_eq!(
            e.to_string(),
            "bad value 'nope' for --step (expected float)"
        );
    }

    #[test]
    fn required_flags() {
        let o = opts("--data x.svm");
        assert_eq!(o.require("data").unwrap(), "x.svm");
        assert_eq!(o.require("model"), Err(OptError::Required("model".into())));
    }

    #[test]
    fn unknown_flags_detected() {
        let o = opts("--epochs 5 --typo 3");
        let _ = o.get("epochs");
        let err = o.finish().unwrap_err();
        assert_eq!(err, OptError::Unknown(vec!["typo".into()]));
    }

    #[test]
    fn switch_followed_by_flag() {
        // `--quiet --epochs 5`: quiet must be a switch, not eat "--epochs".
        let o = opts("--quiet --epochs 5");
        assert!(o.switch("quiet"));
        assert_eq!(o.get("epochs"), Some("5".into()));
    }

    #[test]
    fn negative_numbers_are_values() {
        // A value starting with '-' but not '--' is consumed as a value.
        let o = opts("--bias -0.5");
        assert_eq!(o.get("bias"), Some("-0.5".into()));
    }
}
