//! `isasgd worker` — one node of the cross-process distributed runtime.
//!
//! Spawned by the coordinator (`isasgd train --cluster-transport
//! process`). The worker owns nothing at launch but the coordinator's
//! address: its node id, training configuration, and the dataset
//! itself all arrive over the wire session handshake. (Hand-launched
//! remote workers speak the same protocol but would race the
//! coordinator's local spawns for admission slots — remote join is a
//! ROADMAP item.)

use crate::opts::Opts;
use isasgd_cluster::{run_worker, WorkerOptions};

/// Runs the command; returns a process exit code.
pub fn run(o: &Opts) -> i32 {
    match run_inner(o) {
        Ok(()) => 0,
        Err(e) => {
            // lint: allow(raw-eprintln) — CLI error path: must print even when no recorder exists
            eprintln!("isasgd worker: {e}");
            2
        }
    }
}

fn run_inner(o: &Opts) -> Result<(), String> {
    let connect = o
        .get("connect")
        .ok_or("usage: isasgd worker --connect <host:port> (see --help)")?;
    let die_at_round: Option<u64> = match o.get("die-at-round") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad value '{v}' for --die-at-round (expected u64)"))?,
        ),
    };
    let quiet = o.switch("quiet");
    o.finish().map_err(|e| e.to_string())?;
    let opts = WorkerOptions {
        die_at_round,
        ..WorkerOptions::default()
    };
    let report = run_worker(&connect, &opts).map_err(|e| e.to_string())?;
    if !quiet {
        // lint: allow(raw-eprintln) — worker status line; workers never install a recorder (timing ships over the wire)
        eprintln!(
            "[worker {}] session complete after {} rounds",
            report.node, report.rounds
        );
    }
    Ok(())
}

/// Usage string for `--help`.
pub const HELP: &str = "\
isasgd worker --connect <host:port> [flags]

Runs one worker of a distributed training run. The coordinator
(`isasgd train --cluster <k> --cluster-transport process`) spawns these
automatically; there is normally no reason to launch one by hand.

  --connect <addr>     coordinator listener address        (required)
  --die-at-round <r>   chaos hook: abort abruptly at round r (testing;
                       the coordinator's --on-worker-loss policy decides
                       what happens next)
  --quiet              suppress the session-complete line
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    #[test]
    fn missing_connect_is_an_error() {
        let o = Opts::parse(["worker".to_string()]);
        assert_eq!(run(&o), 2);
    }

    #[test]
    fn unreachable_coordinator_is_an_error() {
        // Port 1 on loopback: nothing listens there.
        let o = Opts::parse(["worker", "--connect", "127.0.0.1:1"].map(String::from));
        assert_eq!(run(&o), 2);
    }

    #[test]
    fn bad_die_at_round_is_an_error() {
        let o = Opts::parse(
            [
                "worker",
                "--connect",
                "127.0.0.1:1",
                "--die-at-round",
                "soon",
            ]
            .map(String::from),
        );
        assert_eq!(run(&o), 2);
    }
}
