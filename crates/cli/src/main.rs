//! `isasgd` — command-line interface to the IS-ASGD solver family.
//!
//! ```text
//! isasgd train   <data.svm> [flags]   train any solver, optionally save model
//! isasgd predict <data.svm> --model m.json [--out preds.txt]
//! isasgd info    <data.svm>           Table-1 stats, ψ/ρ, Δ̄, τ budget
//! isasgd gen     --out f.svm          synthesize a calibrated dataset
//! isasgd check   [flags]              model-check the cluster protocol
//! ```

#![forbid(unsafe_code)]

mod cmd_check;
mod cmd_gen;
mod cmd_info;
mod cmd_predict;
mod cmd_report;
mod cmd_train;
mod cmd_worker;
mod opts;
mod spec;

use opts::Opts;

const HELP: &str = "\
isasgd — lock-free asynchronous SGD with importance sampling (ICPP'18 repro)

USAGE: isasgd <command> [args]

COMMANDS
  train     train SGD / IS-SGD / ASGD / IS-ASGD / SVRG / SAGA on LibSVM data
  predict   score a LibSVM file with a saved model
  info      dataset diagnostics (Table-1 stats, importance & conflict structure)
  gen       synthesize a Table-1-calibrated dataset
  worker    one node of a distributed run (spawned by train --cluster-transport
            process, or launched by hand against a remote coordinator)
  check     deterministic protocol model checker: explore message schedules
            systematically, replay committed .schedule counterexamples
  report    render a train --trace-out JSONL trace: round timelines,
            per-worker latency histograms, respawns, wire totals

Run `isasgd <command> --help` for command flags.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = Opts::parse(args);
    let cmd = o.positional.first().map(String::as_str);
    if o.switch("help") {
        let text = match cmd {
            Some("train") => cmd_train::HELP,
            Some("predict") => cmd_predict::HELP,
            Some("info") => cmd_info::HELP,
            Some("gen") => cmd_gen::HELP,
            Some("worker") => cmd_worker::HELP,
            Some("check") => cmd_check::HELP,
            Some("report") => cmd_report::HELP,
            _ => HELP,
        };
        print!("{text}");
        return;
    }
    let code = match cmd {
        Some("train") => cmd_train::run(&o),
        Some("predict") => cmd_predict::run(&o),
        Some("info") => cmd_info::run(&o),
        Some("gen") => cmd_gen::run(&o),
        Some("worker") => cmd_worker::run(&o),
        Some("check") => cmd_check::run(&o),
        Some("report") => cmd_report::run(&o),
        Some(other) => {
            // lint: allow(raw-eprintln) — CLI error path: usage text for an unknown command
            eprintln!("unknown command '{other}'\n\n{HELP}");
            2
        }
        None => {
            print!("{HELP}");
            2
        }
    };
    std::process::exit(code);
}
