//! `isasgd train` — train any solver of the family on a LibSVM file.

use crate::opts::Opts;
use crate::spec::{LossKind, TrainSpec};
use isasgd_core::{
    train, train_from, LogisticLoss, Objective, RunResult, SquaredHingeLoss, TrainConfig,
};
use isasgd_model::SavedModel;
use isasgd_sparse::{holdout_split, Dataset};

/// Runs the command; returns a process exit code.
pub fn run(o: &Opts) -> i32 {
    match run_inner(o) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("isasgd train: {e}");
            2
        }
    }
}

fn run_inner(o: &Opts) -> Result<(), String> {
    let data_path = o
        .positional
        .get(1)
        .cloned()
        .or_else(|| o.get("data"))
        .ok_or("usage: isasgd train <data.svm> [flags] (see --help)")?;
    let spec = TrainSpec::from_opts(o).map_err(|e| e.to_string())?;
    let model_out = o.get("model");
    let init_model = o.get("init-model");
    let quiet = o.switch("quiet");
    o.finish().map_err(|e| e.to_string())?;
    let init: Option<Vec<f64>> = match &init_model {
        Some(p) => {
            let m = SavedModel::load(p).map_err(|e| e.to_string())?;
            Some(m.to_dense())
        }
        None => None,
    };

    let ds = isasgd_sparse::libsvm::read_file(&data_path, None)
        .map_err(|e| format!("reading {data_path}: {e}"))?;
    if !quiet {
        eprintln!(
            "[load] {}: n={} d={} nnz={} density={:.2e}",
            data_path,
            ds.n_samples(),
            ds.dim(),
            ds.nnz(),
            ds.density()
        );
    }

    let (train_ds, test_ds) = if spec.holdout > 0.0 {
        let (tr, te) = holdout_split(&ds, spec.holdout, spec.seed)
            .map_err(|e| format!("holdout split: {e}"))?;
        (tr, Some(te))
    } else {
        (ds, None)
    };

    let r = run_training(&spec, &train_ds, &data_path, init.as_deref())?;
    report(&spec, &r, test_ds.as_ref(), quiet);

    if let Some(path) = model_out {
        let m = SavedModel::from_dense(
            &r.model,
            spec.algorithm.name(),
            &data_path,
            spec.step_size,
            spec.epochs,
            spec.seed,
        )
        .map_err(|e| e.to_string())?;
        m.save(&path).map_err(|e| e.to_string())?;
        if !quiet {
            eprintln!("[save] model → {path} ({} non-zeros)", m.nnz());
        }
    }
    Ok(())
}

/// Dispatches over the (static) loss type.
fn run_training(
    spec: &TrainSpec,
    ds: &Dataset,
    name: &str,
    init: Option<&[f64]>,
) -> Result<RunResult, String> {
    let mut cfg = TrainConfig::default()
        .with_epochs(spec.epochs)
        .with_step_size(spec.step_size)
        .with_seed(spec.seed);
    cfg.importance = spec.importance;
    cfg.balance = spec.balance;
    cfg.sampling = spec.sampling;
    cfg.obs_model = spec.obs_model;
    cfg.commit = spec.commit;
    match (spec.loss, init) {
        (LossKind::Logistic, None) => {
            let obj = Objective::new(LogisticLoss, spec.regularizer);
            train(ds, &obj, spec.algorithm, spec.execution, &cfg, name)
        }
        (LossKind::Logistic, Some(w0)) => {
            let obj = Objective::new(LogisticLoss, spec.regularizer);
            train_from(ds, &obj, spec.algorithm, spec.execution, &cfg, name, w0)
        }
        (LossKind::SquaredHinge, None) => {
            let obj = Objective::new(SquaredHingeLoss, spec.regularizer);
            train(ds, &obj, spec.algorithm, spec.execution, &cfg, name)
        }
        (LossKind::SquaredHinge, Some(w0)) => {
            let obj = Objective::new(SquaredHingeLoss, spec.regularizer);
            train_from(ds, &obj, spec.algorithm, spec.execution, &cfg, name, w0)
        }
    }
    .map_err(|e| e.to_string())
}

fn report(spec: &TrainSpec, r: &RunResult, test: Option<&Dataset>, quiet: bool) {
    if !quiet {
        for p in &r.trace.points {
            eprintln!(
                "[epoch {:>4}] t={:>8.3}s  obj={:<10.5} rmse={:<10.5} err={:.5}",
                p.epoch, p.wall_secs, p.objective, p.rmse, p.error_rate
            );
        }
        if r.sampler_commits.last().copied().unwrap_or(0) > 0 {
            // Cumulative commit versions per epoch: growth beyond one
            // per worker per epoch is intra-epoch (--commit every-k)
            // adaptivity firing mid-epoch.
            eprintln!(
                "[sampler] cumulative commits per epoch: {:?}",
                r.sampler_commits
            );
        }
    }
    println!(
        "algorithm={} epochs={} train_secs={:.3} setup_secs={:.4} final_obj={:.6} \
         final_err={:.6} sampler_commits={}",
        r.trace.algorithm,
        spec.epochs,
        r.train_secs,
        r.setup_secs,
        r.final_metrics.objective,
        r.final_metrics.error_rate,
        r.sampler_commits.last().copied().unwrap_or(0)
    );
    if let Some(te) = test {
        // Held-out metrics under the same loss type.
        let metrics = match spec.loss {
            LossKind::Logistic => Objective::new(LogisticLoss, spec.regularizer).eval(te, &r.model),
            LossKind::SquaredHinge => {
                Objective::new(SquaredHingeLoss, spec.regularizer).eval(te, &r.model)
            }
        };
        println!(
            "holdout_n={} holdout_obj={:.6} holdout_err={:.6}",
            te.n_samples(),
            metrics.objective,
            metrics.error_rate
        );
    }
}

/// Usage string for `--help`.
pub const HELP: &str = "\
isasgd train <data.svm> [flags]

  --algo <name>      sgd | is-sgd | asgd | is-asgd | svrg | svrg-asgd |
                     svrg-skipmu | saga                     [is-asgd]
  --threads <k>      Hogwild threads (async solvers)        [2]
  --tau <t>          simulate delay τ instead of threads    [off]
  --workers <w>      simulated shards with --tau            [4]
  --loss <name>      logistic | squared-hinge               [logistic]
  --reg <kind>       none | l1 | l2                         [l1]
  --eta <f>          regularization strength                [1e-5]
  --scheme <name>    gradnorm | smoothness | partial | uniform [gradnorm]
  --sampling <name>  uniform | static | adaptive (overrides the
                     algorithm's default sampling distribution)
  --obs-model <m>    gradnorm | loss-bound | staleness — how adaptive
                     sampling scores observations            [gradnorm]
  --commit <when>    epoch | every-k | every-<n> — when adaptive
                     samplers re-weight (every-k = intra-epoch, streamed
                     on every exec mode; needs --sampling adaptive) [epoch]
  --bias <f>         uniform mix for --scheme partial       [0.5]
  --balance <name>   adaptive | head-tail | greedy | shuffle | identity
  --epochs <n>       passes over the data                   [10]
  --step <f>         step size λ                            [0.5]
  --holdout <f>      held-out fraction for test metrics     [0]
  --seed <n>         master seed
  --model <path>     save the trained model as JSON
  --init-model <p>   warm-start from a previously saved model
  --quiet            suppress per-epoch progress
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    #[test]
    fn missing_data_file_is_an_error() {
        let o = Opts::parse(["train".to_string()]);
        assert_eq!(run(&o), 2);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let o = Opts::parse(["train", "x.svm", "--nonsense", "1"].map(String::from));
        assert_eq!(run(&o), 2);
    }

    #[test]
    fn nonexistent_file_is_an_error() {
        let o = Opts::parse(["train", "/no/such/file.svm"].map(String::from));
        assert_eq!(run(&o), 2);
    }
}
