//! `isasgd train` — train any solver of the family on a LibSVM file.

use crate::opts::Opts;
use crate::spec::{ClusterSpec, LossKind, TrainSpec};
use isasgd_cluster::{ClusterConfig, ClusterRun};
use isasgd_core::{
    train, train_from, LogisticLoss, Objective, RunResult, SamplingStrategy, SquaredHingeLoss,
    TrainConfig,
};
use isasgd_model::SavedModel;
use isasgd_obs::{Event, ObsClock, Recorder};
use isasgd_sparse::{holdout_split, Dataset};
use std::path::Path;
use std::sync::Arc;

/// Runs the command; returns a process exit code.
pub fn run(o: &Opts) -> i32 {
    match run_inner(o) {
        Ok(()) => 0,
        Err(e) => {
            // lint: allow(raw-eprintln) — CLI error path: must print even when no recorder exists
            eprintln!("isasgd train: {e}");
            2
        }
    }
}

/// Arms the global event recorder when any observability flag asked for
/// it. Returns the recorder so [`finish_observability`] can drain it;
/// `None` means telemetry is off and nothing was installed.
fn install_observability(spec: &TrainSpec) -> Result<Option<Arc<Recorder>>, String> {
    if !spec.telemetry_enabled() {
        return Ok(None);
    }
    let mut rec = Recorder::new(spec.log_level, ObsClock::Wall);
    if let Some(path) = &spec.trace_out {
        rec = rec
            .trace_to_file(Path::new(path))
            .map_err(|e| format!("--trace-out {path}: {e}"))?;
    }
    let rec = Arc::new(rec);
    isasgd_obs::install(Arc::clone(&rec));
    Ok(Some(rec))
}

/// Tears the recorder down: flushes the JSONL trace and writes the
/// metrics dump, reporting (rather than swallowing) either IO failure.
fn finish_observability(rec: Option<Arc<Recorder>>, spec: &TrainSpec) -> Result<(), String> {
    let Some(rec) = rec else { return Ok(()) };
    isasgd_obs::uninstall();
    if let Err(e) = rec.flush() {
        return Err(format!("flushing --trace-out: {e}"));
    }
    if let Some(path) = &spec.metrics_out {
        std::fs::write(path, rec.metrics_json())
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
    }
    Ok(())
}

fn run_inner(o: &Opts) -> Result<(), String> {
    let data_path = o
        .positional
        .get(1)
        .cloned()
        .or_else(|| o.get("data"))
        .ok_or("usage: isasgd train <data.svm> [flags] (see --help)")?;
    let spec = TrainSpec::from_opts(o).map_err(|e| e.to_string())?;
    let model_out = o.get("model");
    let init_model = o.get("init-model");
    let quiet = o.switch("quiet");
    o.finish().map_err(|e| e.to_string())?;
    let init: Option<Vec<f64>> = match &init_model {
        Some(p) => {
            let m = SavedModel::load(p).map_err(|e| e.to_string())?;
            Some(m.to_dense())
        }
        None => None,
    };

    let recorder = install_observability(&spec)?;
    let result = execute(&spec, &data_path, model_out, init, quiet);
    // Finalize even when training failed, so a partial trace still
    // flushes — but report the training error first if both fail.
    let finished = finish_observability(recorder, &spec);
    result.and(finished)
}

fn execute(
    spec: &TrainSpec,
    data_path: &str,
    model_out: Option<String>,
    init: Option<Vec<f64>>,
    quiet: bool,
) -> Result<(), String> {
    let ds = isasgd_sparse::libsvm::read_file(data_path, None)
        .map_err(|e| format!("reading {data_path}: {e}"))?;
    isasgd_obs::emit(&Event::DatasetLoaded {
        path: data_path.to_string(),
        rows: ds.n_samples() as u64,
        dim: ds.dim() as u64,
        nnz: ds.nnz() as u64,
    });

    let (train_ds, test_ds) = if spec.holdout > 0.0 {
        let (tr, te) = holdout_split(&ds, spec.holdout, spec.seed)
            .map_err(|e| format!("holdout split: {e}"))?;
        (tr, Some(te))
    } else {
        (ds, None)
    };

    let r = match &spec.cluster {
        Some(cluster) => {
            if init.is_some() {
                return Err("--init-model is not supported with --cluster \
                            (cluster training starts from the zero model)"
                    .into());
            }
            let run = run_cluster(spec, cluster, &train_ds)?;
            report_cluster(spec, cluster, &run, test_ds.as_ref(), quiet);
            // Reuse the model-save path below through a RunResult-free
            // early return.
            if let Some(path) = model_out {
                // Record what actually ran (e.g. "Cluster-AIS-SGD"),
                // not the engine solver the cluster path never uses.
                save_model(&run.model, &run.trace.algorithm, spec, data_path, &path)?;
            }
            return Ok(());
        }
        None => run_training(spec, &train_ds, data_path, init.as_deref())?,
    };
    report(spec, &r, test_ds.as_ref(), quiet);

    if let Some(path) = model_out {
        save_model(&r.model, spec.algorithm.name(), spec, data_path, &path)?;
    }
    Ok(())
}

fn save_model(
    model: &[f64],
    algorithm: &str,
    spec: &TrainSpec,
    data_path: &str,
    path: &str,
) -> Result<(), String> {
    let m = SavedModel::from_dense(
        model,
        algorithm,
        data_path,
        spec.step_size,
        spec.epochs,
        spec.seed,
    )
    .map_err(|e| e.to_string())?;
    m.save(path).map_err(|e| e.to_string())?;
    isasgd_obs::emit(&Event::ModelSaved {
        path: path.to_string(),
        nnz: m.nnz() as u64,
    });
    Ok(())
}

/// Runs `train` through the distributed runtime: epochs become
/// synchronization rounds of `--local-epochs` local passes each.
fn run_cluster(
    spec: &TrainSpec,
    cluster: &ClusterSpec,
    ds: &Dataset,
) -> Result<ClusterRun, String> {
    // Process transport: `ProcessConfig.worker == None` makes the fleet
    // spawn the current executable — which here IS the isasgd binary,
    // re-entered as `isasgd worker`. No CLI-side resolution needed.
    let cfg = ClusterConfig {
        nodes: cluster.nodes,
        rounds: spec.epochs,
        local_epochs: cluster.local_epochs,
        step_size: spec.step_size,
        importance: spec.importance,
        balance: spec.balance,
        sync: cluster.sync,
        // The cluster runtime has no per-algorithm dispatch; the
        // sampling flag picks the distribution (paper default: static
        // offline IS sequences).
        sampling: spec.sampling.unwrap_or(SamplingStrategy::Static),
        obs_model: spec.obs_model,
        commit: spec.commit,
        transport: cluster.transport.clone(),
        seed: spec.seed,
        // Mirror the fleet flag so the config is self-consistent; the
        // process transport reads its own copy when building the wire
        // session.
        checkpoint_every: match &cluster.transport {
            isasgd_cluster::TransportConfig::Process(pc) => pc.checkpoint_every,
            _ => 0,
        },
        // Any observability flag arms wire-shipped worker timing; the
        // frames are provably inert (absorbed or dropped before the
        // round protocol sees them), so results stay bit-identical.
        telemetry: spec.telemetry_enabled(),
        // Historical-bug flags exist only for the model checker's
        // regression rediscovery; production runs never enable them.
        bugs: Default::default(),
    };
    match spec.loss {
        LossKind::Logistic => {
            let obj = Objective::new(LogisticLoss, spec.regularizer);
            isasgd_cluster::run(ds, &obj, &cfg)
        }
        LossKind::SquaredHinge => {
            let obj = Objective::new(SquaredHingeLoss, spec.regularizer);
            isasgd_cluster::run(ds, &obj, &cfg)
        }
    }
    .map_err(|e| e.to_string())
}

/// Cluster-run reporting. Per-round lines (stderr) carry no wall-clock
/// fields, so two runs of the same seed/config are textually identical
/// across transports — the property the e2e parity test compares.
fn report_cluster(
    spec: &TrainSpec,
    cluster: &ClusterSpec,
    r: &ClusterRun,
    test: Option<&Dataset>,
    quiet: bool,
) {
    if !quiet {
        for p in &r.rounds {
            // lint: allow(raw-eprintln) — the parity e2e compares these lines byte-for-byte across transports
            eprintln!(
                "[round {:>4}] obj={:<12.8} rmse={:<12.8} err={:.6}",
                p.round, p.objective, p.rmse, p.error_rate
            );
        }
        if let Some(observed) = r.observed_phi_imbalance {
            // lint: allow(raw-eprintln) — the parity e2e compares these lines byte-for-byte across transports
            eprintln!(
                "[feedback] rows={} observed_phi_imbalance={observed:.4}",
                r.feedback_rows
            );
        }
        // Per-link wire counters travel the event layer now: the
        // coordinator emits a `net_summary` event per slot (in slot-id
        // order), so `--log-level info` or `--trace-out` renders what
        // the old `[net]` lines printed.
    }
    let last = r.rounds.last().expect("≥1 round");
    // Coordinator-side wire totals across all links (socket transports
    // only — in-process channel runs report no counters).
    let wire = if r.net.is_empty() {
        String::new()
    } else {
        let tx: u64 = r.net.iter().map(|s| s.tx_total_bytes()).sum();
        let rx: u64 = r.net.iter().map(|s| s.rx_total_bytes()).sum();
        format!(" wire_tx_bytes={tx} wire_rx_bytes={rx}")
    };
    println!(
        "algorithm={} transport={} nodes={} rounds={} local_epochs={} \
         phi_imbalance={:.4} final_obj={:.6} final_err={:.6} train_secs={:.3}{}",
        r.trace.algorithm,
        cluster.transport.name(),
        cluster.nodes,
        r.syncs,
        cluster.local_epochs,
        r.phi_imbalance,
        last.objective,
        last.error_rate,
        r.trace.points.last().map(|p| p.wall_secs).unwrap_or(0.0),
        wire,
    );
    if let Some(te) = test {
        let metrics = match spec.loss {
            LossKind::Logistic => Objective::new(LogisticLoss, spec.regularizer).eval(te, &r.model),
            LossKind::SquaredHinge => {
                Objective::new(SquaredHingeLoss, spec.regularizer).eval(te, &r.model)
            }
        };
        println!(
            "holdout_n={} holdout_obj={:.6} holdout_err={:.6}",
            te.n_samples(),
            metrics.objective,
            metrics.error_rate
        );
    }
}

/// Dispatches over the (static) loss type.
fn run_training(
    spec: &TrainSpec,
    ds: &Dataset,
    name: &str,
    init: Option<&[f64]>,
) -> Result<RunResult, String> {
    let mut cfg = TrainConfig::default()
        .with_epochs(spec.epochs)
        .with_step_size(spec.step_size)
        .with_seed(spec.seed);
    cfg.importance = spec.importance;
    cfg.balance = spec.balance;
    cfg.sampling = spec.sampling;
    cfg.obs_model = spec.obs_model;
    cfg.commit = spec.commit;
    match (spec.loss, init) {
        (LossKind::Logistic, None) => {
            let obj = Objective::new(LogisticLoss, spec.regularizer);
            train(ds, &obj, spec.algorithm, spec.execution, &cfg, name)
        }
        (LossKind::Logistic, Some(w0)) => {
            let obj = Objective::new(LogisticLoss, spec.regularizer);
            train_from(ds, &obj, spec.algorithm, spec.execution, &cfg, name, w0)
        }
        (LossKind::SquaredHinge, None) => {
            let obj = Objective::new(SquaredHingeLoss, spec.regularizer);
            train(ds, &obj, spec.algorithm, spec.execution, &cfg, name)
        }
        (LossKind::SquaredHinge, Some(w0)) => {
            let obj = Objective::new(SquaredHingeLoss, spec.regularizer);
            train_from(ds, &obj, spec.algorithm, spec.execution, &cfg, name, w0)
        }
    }
    .map_err(|e| e.to_string())
}

fn report(spec: &TrainSpec, r: &RunResult, test: Option<&Dataset>, quiet: bool) {
    if !quiet {
        for p in &r.trace.points {
            // lint: allow(raw-eprintln) — sequential-engine progress line; the event layer covers the cluster runtime
            eprintln!(
                "[epoch {:>4}] t={:>8.3}s  obj={:<10.5} rmse={:<10.5} err={:.5}",
                p.epoch, p.wall_secs, p.objective, p.rmse, p.error_rate
            );
        }
        if r.sampler_commits.last().copied().unwrap_or(0) > 0 {
            // Cumulative commit versions per epoch: growth beyond one
            // per worker per epoch is intra-epoch (--commit every-k)
            // adaptivity firing mid-epoch.
            // lint: allow(raw-eprintln) — sequential-engine progress line; the event layer covers the cluster runtime
            eprintln!(
                "[sampler] cumulative commits per epoch: {:?}",
                r.sampler_commits
            );
        }
    }
    println!(
        "algorithm={} epochs={} train_secs={:.3} setup_secs={:.4} final_obj={:.6} \
         final_err={:.6} sampler_commits={}",
        r.trace.algorithm,
        spec.epochs,
        r.train_secs,
        r.setup_secs,
        r.final_metrics.objective,
        r.final_metrics.error_rate,
        r.sampler_commits.last().copied().unwrap_or(0)
    );
    if let Some(te) = test {
        // Held-out metrics under the same loss type.
        let metrics = match spec.loss {
            LossKind::Logistic => Objective::new(LogisticLoss, spec.regularizer).eval(te, &r.model),
            LossKind::SquaredHinge => {
                Objective::new(SquaredHingeLoss, spec.regularizer).eval(te, &r.model)
            }
        };
        println!(
            "holdout_n={} holdout_obj={:.6} holdout_err={:.6}",
            te.n_samples(),
            metrics.objective,
            metrics.error_rate
        );
    }
}

/// Usage string for `--help`.
pub const HELP: &str = "\
isasgd train <data.svm> [flags]

  --algo <name>      sgd | is-sgd | asgd | is-asgd | svrg | svrg-asgd |
                     svrg-skipmu | saga                     [is-asgd]
  --threads <k>      Hogwild threads (async solvers)        [2]
  --tau <t>          simulate delay τ instead of threads    [off]
  --workers <w>      simulated shards with --tau            [4]
  --loss <name>      logistic | squared-hinge               [logistic]
  --reg <kind>       none | l1 | l2                         [l1]
  --eta <f>          regularization strength                [1e-5]
  --scheme <name>    gradnorm | smoothness | partial | uniform [gradnorm]
  --sampling <name>  uniform | static | adaptive (overrides the
                     algorithm's default sampling distribution)
  --obs-model <m>    gradnorm | loss-bound | staleness — how adaptive
                     sampling scores observations            [gradnorm]
  --commit <when>    epoch | every-k | every-<n> — when adaptive
                     samplers re-weight (every-k = intra-epoch, streamed
                     on every exec mode; needs --sampling adaptive) [epoch]
  --bias <f>         uniform mix for --scheme partial       [0.5]
  --balance <name>   adaptive | head-tail | greedy | shuffle | identity
  --cluster <k>      distributed run with k nodes (epochs become
                     synchronization rounds)                [off]
  --cluster-transport <t>  inproc | tcp | process — how coordinator and
                     workers talk; either flag enables cluster mode.
                     `process` spawns real `isasgd worker` OS processes
                     under a supervisor                     [inproc]
  --cluster-bind <a> listener bind address (tcp/process transports)
                                                            [127.0.0.1:0]
  --wire-encoding <e>  dense | delta | auto — how socket transports
                     encode round model updates: always-dense frames,
                     always sparse deltas against the link's last
                     synced model, or per-update selection by sparsity
                     (delta iff nnz ≤ dim/3). Bit-identical results
                     either way                             [auto]
  --on-worker-loss <p>  fail | respawn — what the process-transport
                     supervisor does when a worker dies mid-run:
                     abort with a typed error, or respawn + replay the
                     session (bit-identical recovery)       [fail]
  --chaos-kill <n:r> testing hook (process transport): worker n aborts
                     abruptly at round r, exercising --on-worker-loss
  --checkpoint-every <r>  process transport: workers checkpoint their
                     state every r rounds, bounding respawn replay (and
                     the supervisor's log) by one interval instead of
                     the whole session. Bit-identical results with or
                     without it                              [off]
  --round-timeout <s>  per-round worker liveness deadline in seconds
                     (process transport; workers scale their own read
                     deadline from it)                      [120]
  --local-epochs <n> local passes per round (cluster mode)  [1]
  --sync <name>      average | weighted — round model reducer
                     (cluster mode)                         [average]
  --epochs <n>       passes over the data                   [10]
  --step <f>         step size λ                            [0.5]
  --holdout <f>      held-out fraction for test metrics     [0]
  --seed <n>         master seed
  --model <path>     save the trained model as JSON
  --init-model <p>   warm-start from a previously saved model
  --quiet            suppress per-epoch progress
  --log-level <l>    off | info | debug — structured-event verbosity on
                     stderr (events also arm wire telemetry)    [off]
  --trace-out <p>    write every event as one JSON object per line;
                     render with `isasgd report --trace <p>`    [off]
  --metrics-out <p>  dump the run's counters/gauges/histograms as JSON
                     at exit                                    [off]

Any of the three observability flags arms per-round worker timing over
the wire (cluster runs). Telemetry is inert: results are bit-identical
with it on or off.
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    #[test]
    fn missing_data_file_is_an_error() {
        let o = Opts::parse(["train".to_string()]);
        assert_eq!(run(&o), 2);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let o = Opts::parse(["train", "x.svm", "--nonsense", "1"].map(String::from));
        assert_eq!(run(&o), 2);
    }

    #[test]
    fn nonexistent_file_is_an_error() {
        let o = Opts::parse(["train", "/no/such/file.svm"].map(String::from));
        assert_eq!(run(&o), 2);
    }
}
