//! `isasgd info` — dataset diagnostics: the paper's Table-1 statistics
//! plus the §3 theory quantities (conflict degree Δ̄, τ budget, IS gain).

use crate::opts::Opts;
use isasgd_analysis::theory::{is_improvement_factor, LipschitzSummary};
use isasgd_analysis::ConflictStats;
use isasgd_balance::ImportanceProfile;
use isasgd_core::{ImportanceScheme, LogisticLoss, Regularizer};
use isasgd_losses::importance_weights;

/// Runs the command; returns a process exit code.
pub fn run(o: &Opts) -> i32 {
    match run_inner(o) {
        Ok(()) => 0,
        Err(e) => {
            // lint: allow(raw-eprintln) — CLI error path: must print even when no recorder exists
            eprintln!("isasgd info: {e}");
            2
        }
    }
}

fn run_inner(o: &Opts) -> Result<(), String> {
    let data_path = o
        .positional
        .get(1)
        .cloned()
        .or_else(|| o.get("data"))
        .ok_or("usage: isasgd info <data.svm> [--conflict-sample n] [--seed s]")?;
    let sample: usize = o
        .get_parsed_or("conflict-sample", 2000usize, "usize")
        .map_err(|e| e.to_string())?;
    let seed: u64 = o
        .get_parsed_or("seed", 0x15A5_6D00u64, "u64")
        .map_err(|e| e.to_string())?;
    o.finish().map_err(|e| e.to_string())?;

    let ds = isasgd_sparse::libsvm::read_file(&data_path, None)
        .map_err(|e| format!("reading {data_path}: {e}"))?;
    let stats = isasgd_sparse::DatasetStats::compute(&ds);

    println!("dataset            {data_path}");
    println!("instances          {}", ds.n_samples());
    println!("dimension          {}", ds.dim());
    println!("nnz                {}", ds.nnz());
    println!("density            {:.3e}", ds.density());
    println!("mean nnz/row       {:.2}", ds.mean_nnz());
    println!("positive fraction  {:.4}", stats.positive_fraction);
    println!("active features    {}", stats.active_features);

    // Importance structure under the paper's Eq. 12 constants.
    let w = importance_weights(
        &ds,
        &LogisticLoss,
        Regularizer::None,
        ImportanceScheme::LipschitzSmoothness,
    );
    let profile = ImportanceProfile::compute(&w);
    let l = LipschitzSummary::from_weights(&w);
    println!("\nimportance (L_i = ‖x_i‖²/4, logistic)");
    println!("psi/n (Eq. 15)     {:.4}", profile.psi_normalized);
    println!("rho   (Eq. 20)     {:.4e}", profile.rho);
    println!(
        "L mean/sup/inf     {:.4} / {:.4} / {:.4}",
        l.mean, l.sup, l.inf
    );
    println!("IS gain (Eq13/14)  {:.4}x", is_improvement_factor(&w));
    println!(
        "balancing hint     {}",
        if profile.rho >= 5e-4 {
            "rho ≥ ζ — importance balancing recommended (Alg. 3)"
        } else {
            "rho < ζ — random shuffling suffices (§2.4)"
        }
    );

    // Conflict structure (paper §3.1); sampled estimate for big files.
    let c = if ds.n_samples() <= sample {
        ConflictStats::exact(&ds)
    } else {
        ConflictStats::estimate(&ds, sample, seed)
    };
    println!("\nconflict graph (§3.1)");
    println!("avg degree Δ̄      {:.2}", c.avg_degree);
    println!(
        "Δ̄/n               {:.4}",
        c.avg_degree / ds.n_samples().max(1) as f64
    );
    println!(
        "τ budget hint      n/Δ̄ ≈ {:.0} (Eq. 27 first term)",
        ds.n_samples() as f64 / c.avg_degree.max(1e-12)
    );
    Ok(())
}

/// Usage string for `--help`.
pub const HELP: &str = "\
isasgd info <data.svm> [--conflict-sample n] [--seed s]

  Prints Table-1-style statistics (n, d, density, ψ, ρ), the Lipschitz
  profile and theoretical IS gain, and the §3.1 conflict-graph degree
  with the Eq. 27 τ budget hint.
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    #[test]
    fn requires_a_path() {
        let o = Opts::parse(["info"].map(String::from));
        assert_eq!(run(&o), 2);
    }
}
