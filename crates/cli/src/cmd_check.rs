//! `isasgd check` — the deterministic protocol model checker.
//!
//! Explores message schedules of a small cluster configuration
//! systematically (bounded-exhaustive DFS by default, seeded random
//! walks with `--walks`), judging every completed schedule against the
//! sequential-engine oracle; or replays a committed `.schedule`
//! counterexample byte-for-byte.
//!
//! Exit codes: 0 = clean (or replay reproduced its expectation),
//! 1 = violation found (or replay diverged), 2 = usage error.

use crate::opts::Opts;
use isasgd_check::{
    explore_scenario, read_schedule, sample_scenario, write_schedule, Budget, Expected,
    Exploration, FaultSpec, ScenarioSpec, ScheduleFile,
};
use isasgd_cluster::ProtocolBugs;
use std::time::Duration;

/// Runs the command; returns a process exit code.
pub fn run(o: &Opts) -> i32 {
    match run_inner(o) {
        Ok(code) => code,
        Err(e) => {
            // lint: allow(raw-eprintln) — CLI error path: must print even when no recorder exists
            eprintln!("isasgd check: {e}");
            2
        }
    }
}

fn parse_faults(s: &str, window: u8, budget: u8) -> Result<FaultSpec, String> {
    let mut f = FaultSpec {
        reorder_window: window,
        budget,
        ..FaultSpec::none()
    };
    for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match tok {
            "none" => {
                f = FaultSpec {
                    reorder_window: window,
                    budget,
                    ..FaultSpec::none()
                }
            }
            "lossless" => {
                f = FaultSpec {
                    reorder_window: window,
                    ..FaultSpec::lossless(budget)
                }
            }
            "all" => {
                f = FaultSpec {
                    reorder_window: window,
                    ..FaultSpec::all(budget)
                }
            }
            "reorder" => f.reorder = true,
            "duplicate" | "dup" => f.duplicate = true,
            "hold" | "delay" => f.hold = true,
            "drop" => f.drop = true,
            other => {
                return Err(format!(
                    "unknown fault '{other}' (known: none, lossless, all, reorder, \
                     duplicate, hold, drop)"
                ))
            }
        }
    }
    Ok(f)
}

fn parse_bugs(s: &str) -> Result<ProtocolBugs, String> {
    let mut b = ProtocolBugs::default();
    for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match tok {
            "drop-preassignment" => b.drop_preassignment_traffic = true,
            "eager-teardown" => b.eager_link_teardown = true,
            "strict-extras" => b.strict_extra_sends = true,
            other => {
                return Err(format!(
                    "unknown bug '{other}' (known: drop-preassignment, eager-teardown, \
                     strict-extras)"
                ))
            }
        }
    }
    Ok(b)
}

fn report(out: &Exploration, quiet: bool, require_exhaustive: bool) -> i32 {
    let s = &out.stats;
    if !quiet {
        // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
        eprintln!(
            "schedules explored : {} ({} decisions, max depth {})",
            s.schedules, s.decisions, s.max_depth_seen
        );
        // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
        eprintln!(
            "expected deadlocks : {} (starvation under drop faults)",
            s.expected_deadlocks
        );
        // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
        eprintln!("pruned (state hash): {}", s.pruned);
        // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
        eprintln!("depth-capped runs  : {}", s.depth_capped);
        match &s.truncated {
            // Never silent: either the space was exhausted or the reason
            // it was not is printed.
            // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
            None => eprintln!("coverage           : exhaustive"),
            // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
            Some(why) => eprintln!("coverage           : TRUNCATED — {why}"),
        }
    }
    match &out.counterexample {
        None => {
            if let (true, Some(why)) = (require_exhaustive, &out.stats.truncated) {
                // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
                eprintln!(
                    "FAILED             : --require-exhaustive, but the search was cut off ({why})"
                );
                return 1;
            }
            if !quiet {
                // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
                eprintln!("verdict            : no invariant violations");
            }
            0
        }
        Some(ce) => {
            // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
            eprintln!("VIOLATION          : {}", ce.what);
            // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
            eprintln!("counterexample     : {:?}", ce.choices);
            1
        }
    }
}

fn run_inner(o: &Opts) -> Result<i32, String> {
    let replay = o.get("replay");
    let write = o.get("write");
    let nodes = o
        .get_parsed_or("nodes", 2usize, "usize")
        .map_err(|e| e.to_string())?;
    let rounds = o
        .get_parsed_or("rounds", 2usize, "usize")
        .map_err(|e| e.to_string())?;
    let local_epochs = o
        .get_parsed_or("local-epochs", 1usize, "usize")
        .map_err(|e| e.to_string())?;
    let rows = o
        .get_parsed_or("rows", 96u32, "u32")
        .map_err(|e| e.to_string())?;
    let seed = o
        .get_parsed_or("seed", 0x15A5_6D00u64, "u64")
        .map_err(|e| e.to_string())?;
    let checkpoint_every = o
        .get_parsed_or("checkpoint-every", 0u64, "u64")
        .map_err(|e| e.to_string())?;
    let depth = o
        .get_parsed_or("depth", 48usize, "usize")
        .map_err(|e| e.to_string())?;
    let window = o
        .get_parsed_or("window", 2u8, "u8")
        .map_err(|e| e.to_string())?;
    let budget = o
        .get_parsed_or("budget", 1u8, "u8")
        .map_err(|e| e.to_string())?;
    let max_schedules = o
        .get_parsed_or("max-schedules", 0u64, "u64")
        .map_err(|e| e.to_string())?;
    let time_budget = o
        .get_parsed_or("time-budget", 0u64, "u64 seconds")
        .map_err(|e| e.to_string())?;
    let walks = o
        .get_parsed_or("walks", 0u64, "u64")
        .map_err(|e| e.to_string())?;
    let walk_seed = o
        .get_parsed_or("walk-seed", 0xC0_FFEE_u64, "u64")
        .map_err(|e| e.to_string())?;
    let faults = parse_faults(&o.get_or("faults", "lossless"), window, budget)?;
    let bugs = parse_bugs(&o.get_or("bugs", ""))?;
    let is_static = o.switch("static");
    let require_exhaustive = o.switch("require-exhaustive");
    let quiet = o.switch("quiet");
    o.finish().map_err(|e| e.to_string())?;

    if let Some(path) = replay {
        let bytes = std::fs::read(&path).map_err(|e| format!("read {path}: {e}"))?;
        let file = read_schedule(&bytes).map_err(|e| format!("{path}: {e}"))?;
        if !quiet {
            // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
            eprintln!(
                "replaying {path}: {} choices against {:?} (faults {:?}, bugs {:?})",
                file.choices.len(),
                (file.spec.nodes, file.spec.rounds),
                file.spec.faults,
                file.spec.bugs
            );
        }
        return match file.replay() {
            Ok(outcome) => {
                if !quiet {
                    // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
                    eprintln!("reproduced expected outcome: {:?}", outcome.verdict);
                }
                Ok(0)
            }
            Err(e) => {
                // lint: allow(raw-eprintln) — CLI error path: must print even when no recorder exists
                eprintln!("replay FAILED: {e}");
                Ok(1)
            }
        };
    }

    let spec = ScenarioSpec {
        nodes,
        rounds,
        local_epochs,
        rows,
        seed,
        adaptive: !is_static,
        checkpoint_every,
        faults,
        bugs,
    };
    if !quiet {
        // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
        eprintln!(
            "checking {nodes} worker(s) x {rounds} round(s), depth {depth}, faults {faults:?}{}",
            if bugs == ProtocolBugs::default() {
                String::new()
            } else {
                format!(", bugs {bugs:?}")
            }
        );
    }
    let out = if walks > 0 {
        sample_scenario(&spec, depth, walks, walk_seed)
    } else {
        let budget = Budget {
            max_runs: max_schedules,
            wall_clock: (time_budget > 0).then(|| Duration::from_secs(time_budget)),
        };
        explore_scenario(&spec, depth, budget)
    };
    let code = report(&out, quiet, require_exhaustive);
    if let (Some(path), Some(ce)) = (&write, &out.counterexample) {
        let file = ScheduleFile {
            spec,
            max_decisions: depth,
            expected: Expected::Violation,
            contains: ce.what.clone(),
            choices: ce.choices.clone(),
        };
        std::fs::write(path, write_schedule(&file)).map_err(|e| format!("write {path}: {e}"))?;
        // lint: allow(raw-eprintln) — model-checker report channel; `check` runs install no recorder
        eprintln!("counterexample written to {path}");
    }
    Ok(code)
}

/// Usage string for `--help`.
pub const HELP: &str = "\
isasgd check [flags] — deterministic protocol model checker

Explores message schedules of a small cluster run systematically; every
completed schedule must match the sequential engine bit-for-bit. Exit
code 0 = clean, 1 = invariant violation found, 2 = usage error.

Scenario
  --nodes <k>          workers                              (default 2)
  --rounds <r>         synchronization rounds               (default 2)
  --local-epochs <e>   local epochs per round               (default 1)
  --rows <n>           synthetic dataset rows               (default 96)
  --seed <s>           cluster RNG seed                     (default 0x15a56d00)
  --static             static sampling (default: adaptive feedback)
  --checkpoint-every <r>  workers emit Checkpoint frames every r rounds
                       (0 = disabled); the coordinator must absorb them
                       without perturbing bit-identity  (default 0)

Fault vocabulary (what the scheduler may do to messages)
  --faults <list>      comma list of reorder,duplicate,hold,drop —
                       or none / lossless / all          (default lossless)
  --window <w>         reorder window depth                 (default 2)
  --budget <b>         total fault-action budget            (default 1)
  --bugs <list>        re-enable historical bugs: drop-preassignment,
                       eager-teardown, strict-extras     (default none)

Exploration budget (truncation is always reported, never silent)
  --depth <d>          max scheduling decisions per run     (default 48)
  --max-schedules <n>  stop after n schedules (0 = unlimited)
  --time-budget <s>    stop after s seconds    (0 = unlimited)
  --walks <n>          sample n seeded random walks instead of DFS
  --walk-seed <s>      walk RNG seed                        (default 0xc0ffee)
  --require-exhaustive exit 1 when the search is cut off by any budget,
                       even without a violation (the CI contract)

Counterexamples
  --write <file>       serialize the first violation as a .schedule file
  --replay <file>      re-execute a committed .schedule byte-for-byte;
                       exit 0 iff it reproduces its recorded outcome
  --quiet              suppress progress; print only violations
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    fn opts(s: &str) -> Opts {
        Opts::parse(s.split_whitespace().map(|x| x.to_string()))
    }

    #[test]
    fn bad_fault_token_is_usage_error() {
        assert_eq!(run(&opts("check --faults gremlins")), 2);
    }

    #[test]
    fn bad_bug_token_is_usage_error() {
        assert_eq!(run(&opts("check --bugs y2k")), 2);
    }

    #[test]
    fn unknown_flag_is_usage_error() {
        assert_eq!(run(&opts("check --dpeth 4")), 2);
    }

    #[test]
    fn missing_replay_file_is_usage_error() {
        assert_eq!(run(&opts("check --replay /nonexistent/x.schedule")), 2);
    }

    #[test]
    fn faultless_single_worker_is_clean() {
        assert_eq!(
            run(&opts(
                "check --nodes 1 --rounds 1 --rows 48 --faults none --depth 32 --quiet"
            )),
            0
        );
    }

    #[test]
    fn checkpointing_workers_explore_clean() {
        // The Checkpoint frames a worker emits every round must be
        // absorbed by the coordinator without opening a violation.
        assert_eq!(
            run(&opts(
                "check --nodes 1 --rounds 2 --rows 48 --checkpoint-every 1 \
                 --faults none --depth 48 --require-exhaustive --quiet"
            )),
            0
        );
    }

    #[test]
    fn bad_checkpoint_every_is_usage_error() {
        assert_eq!(run(&opts("check --checkpoint-every often")), 2);
    }

    #[test]
    fn known_bug_is_rediscovered_with_exit_code_1() {
        assert_eq!(
            run(&opts(
                "check --nodes 1 --rounds 1 --rows 48 --faults reorder \
                 --bugs drop-preassignment --depth 32 --quiet"
            )),
            1
        );
    }

    #[test]
    fn require_exhaustive_turns_truncation_into_failure() {
        let flags = "check --nodes 1 --rounds 1 --rows 48 --faults lossless --depth 32 --quiet";
        // Truncated by --max-schedules: clean exit without the flag,
        // failure with it; the full search is exhaustive either way.
        assert_eq!(run(&opts(&format!("{flags} --max-schedules 1"))), 0);
        assert_eq!(
            run(&opts(&format!(
                "{flags} --max-schedules 1 --require-exhaustive"
            ))),
            1
        );
        assert_eq!(run(&opts(&format!("{flags} --require-exhaustive"))), 0);
    }

    #[test]
    fn fault_spec_parsing_composes() {
        let f = parse_faults("reorder,dup", 3, 2).unwrap();
        assert!(f.reorder && f.duplicate && !f.hold && !f.drop);
        assert_eq!((f.reorder_window, f.budget), (3, 2));
        let all = parse_faults("all", 2, 1).unwrap();
        assert!(all.reorder && all.duplicate && all.hold && all.drop);
        assert_eq!(all.reorder_window, 2);
    }
}
