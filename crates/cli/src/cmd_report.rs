//! `isasgd report` — render a `--trace-out` JSONL trace as a run report.
//!
//! The analyzer is strict where CI needs it to be: any line that fails
//! to parse as a flat JSONL event is a hard error (exit 2), and
//! `--expect-rounds n` fails the command unless every round `1..=n`
//! closed with a `round_end` event. Everything else is best-effort
//! rendering — unknown event names pass through untouched so newer
//! traces stay readable by older binaries.

use crate::opts::Opts;
use isasgd_obs::{parse_jsonl_line, Histogram, JsonValue};
use std::collections::BTreeMap;

/// Runs the command; returns a process exit code.
pub fn run(o: &Opts) -> i32 {
    match run_inner(o) {
        Ok(()) => 0,
        Err(e) => {
            // lint: allow(raw-eprintln) — CLI error path: must print even when no recorder exists
            eprintln!("isasgd report: {e}");
            2
        }
    }
}

fn run_inner(o: &Opts) -> Result<(), String> {
    let path = o
        .positional
        .get(1)
        .cloned()
        .or_else(|| o.get("trace"))
        .ok_or("usage: isasgd report <run.jsonl> [--expect-rounds n] (see --help)")?;
    let expect_rounds: u64 = o
        .get_parsed_or("expect-rounds", 0, "u64")
        .map_err(|e| e.to_string())?;
    o.finish().map_err(|e| e.to_string())?;

    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading trace {path}: {e}"))?;
    let report = analyze(&text)?;
    print!("{}", report.render(&path));
    if expect_rounds > 0 {
        let missing: Vec<u64> = (1..=expect_rounds)
            .filter(|r| !report.rounds.get(r).is_some_and(|row| row.closed))
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "trace covers {} of {expect_rounds} expected rounds; missing round_end for {missing:?}",
                report.rounds.len()
            ));
        }
    }
    Ok(())
}

/// What one `round_end` event recorded.
#[derive(Debug)]
struct RoundRow {
    /// Whether a `round_end` event closed this round (worker timing
    /// alone opens a row but does not close it).
    closed: bool,
    objective: f64,
    rmse: f64,
    error_rate: f64,
    wall_us: u64,
    /// Worker timings tagged with this round, in arrival order:
    /// `(node, compute_us, barrier_wait_us)`. Respawn replay can
    /// legitimately duplicate a `(node, round)` pair; duplicates stay
    /// visible here exactly as they arrived.
    timings: Vec<(u64, u64, u64)>,
}

/// Per-worker latency aggregation across the whole trace.
#[derive(Debug, Default)]
struct WorkerStats {
    compute: Histogram,
    barrier: Histogram,
    rows: u64,
    commits: u64,
}

/// Everything [`analyze`] extracts from a trace.
#[derive(Debug)]
struct TraceReport {
    events: usize,
    rounds: BTreeMap<u64, RoundRow>,
    workers: BTreeMap<u64, WorkerStats>,
    /// `(node, respawn, dur_us)` per handshake, in trace order.
    handshakes: Vec<(u64, bool, u64)>,
    /// `(node, replay_frames, replay_bytes, replay_us)` per respawn.
    respawns: Vec<(u64, u64, u64, u64)>,
    /// `(node, tx_bytes, rx_bytes, summary)` per link, in trace order
    /// (the coordinator emits these sorted by slot id).
    net: Vec<(u64, u64, u64, String)>,
}

fn field<'a>(fields: &'a [(String, JsonValue)], name: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn need_u64(fields: &[(String, JsonValue)], name: &str, line_no: usize) -> Result<u64, String> {
    field(fields, name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer field '{name}'"))
}

fn need_f64(fields: &[(String, JsonValue)], name: &str, line_no: usize) -> Result<f64, String> {
    match field(fields, name) {
        Some(JsonValue::Null) => Ok(f64::NAN),
        other => other
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("line {line_no}: missing or non-number field '{name}'")),
    }
}

fn analyze(text: &str) -> Result<TraceReport, String> {
    let mut report = TraceReport {
        events: 0,
        rounds: BTreeMap::new(),
        workers: BTreeMap::new(),
        handshakes: Vec::new(),
        respawns: Vec::new(),
        net: Vec::new(),
    };
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_jsonl_line(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let name = field(&fields, "event")
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or_else(|| format!("line {line_no}: missing 'event' field"))?;
        report.events += 1;
        match name.as_str() {
            "round_end" => {
                let round = need_u64(&fields, "round", line_no)?;
                let timings = report
                    .rounds
                    .remove(&round)
                    .map(|r| r.timings)
                    .unwrap_or_default();
                report.rounds.insert(
                    round,
                    RoundRow {
                        closed: true,
                        objective: need_f64(&fields, "objective", line_no)?,
                        rmse: need_f64(&fields, "rmse", line_no)?,
                        error_rate: need_f64(&fields, "error_rate", line_no)?,
                        wall_us: need_u64(&fields, "wall_us", line_no)?,
                        timings,
                    },
                );
            }
            "worker_timing" => {
                let node = need_u64(&fields, "node", line_no)?;
                let round = need_u64(&fields, "round", line_no)?;
                let compute_us = need_u64(&fields, "compute_us", line_no)?;
                let barrier_wait_us = need_u64(&fields, "barrier_wait_us", line_no)?;
                report
                    .rounds
                    .entry(round)
                    .or_insert_with(|| RoundRow {
                        closed: false,
                        objective: f64::NAN,
                        rmse: f64::NAN,
                        error_rate: f64::NAN,
                        wall_us: 0,
                        timings: Vec::new(),
                    })
                    .timings
                    .push((node, compute_us, barrier_wait_us));
                let w = report.workers.entry(node).or_default();
                w.compute.record(compute_us);
                w.barrier.record(barrier_wait_us);
                w.rows += need_u64(&fields, "rows", line_no)?;
                w.commits += need_u64(&fields, "commits", line_no)?;
            }
            "handshake" => {
                let respawn = matches!(field(&fields, "respawn"), Some(JsonValue::Bool(true)));
                report.handshakes.push((
                    need_u64(&fields, "node", line_no)?,
                    respawn,
                    need_u64(&fields, "dur_us", line_no)?,
                ));
            }
            "respawn" => {
                report.respawns.push((
                    need_u64(&fields, "node", line_no)?,
                    need_u64(&fields, "replay_frames", line_no)?,
                    need_u64(&fields, "replay_bytes", line_no)?,
                    need_u64(&fields, "replay_us", line_no)?,
                ));
            }
            "net_summary" => {
                let summary = field(&fields, "summary")
                    .and_then(|v| v.as_str().map(str::to_string))
                    .unwrap_or_default();
                report.net.push((
                    need_u64(&fields, "node", line_no)?,
                    need_u64(&fields, "tx_bytes", line_no)?,
                    need_u64(&fields, "rx_bytes", line_no)?,
                    summary,
                ));
            }
            // Every other event (dataset_loaded, barrier_wait, shard
            // streaming, checkpoints, …) contributes to the event count
            // but has no dedicated section yet.
            _ => {}
        }
    }
    Ok(report)
}

fn ms(us: u64) -> String {
    format!("{:.1}ms", us as f64 / 1e3)
}

impl TraceReport {
    fn render(&self, path: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace {path}: {} events, {} rounds, {} workers with timing\n",
            self.events,
            self.rounds.len(),
            self.workers.len()
        ));

        if !self.rounds.is_empty() {
            out.push_str("\n[rounds]\n");
            for (round, row) in &self.rounds {
                let timings: Vec<String> = row
                    .timings
                    .iter()
                    .map(|&(n, c, b)| format!("{n}:{}/{}", ms(c), ms(b)))
                    .collect();
                out.push_str(&format!(
                    "round {round:>4}  obj={:<12.6} rmse={:<12.6} err={:<8.4} wall={:<9} workers(compute/barrier): {}\n",
                    row.objective,
                    row.rmse,
                    row.error_rate,
                    ms(row.wall_us),
                    if timings.is_empty() { "-".to_string() } else { timings.join(" ") }
                ));
            }
        }

        if !self.workers.is_empty() {
            out.push_str("\n[workers]\n");
            for (node, w) in &self.workers {
                out.push_str(&format!(
                    "worker {node}: rows={} commits={}\n  compute {}\n  barrier {}\n",
                    w.rows,
                    w.commits,
                    w.compute.render_ascii(),
                    w.barrier.render_ascii()
                ));
            }
        }

        if !self.handshakes.is_empty() {
            out.push_str("\n[handshakes]\n");
            for &(node, respawn, dur_us) in &self.handshakes {
                out.push_str(&format!(
                    "node {node}: {} in {}\n",
                    if respawn { "respawn" } else { "admitted" },
                    ms(dur_us)
                ));
            }
        }

        if !self.respawns.is_empty() {
            out.push_str("\n[respawns]\n");
            for &(node, frames, bytes, us) in &self.respawns {
                out.push_str(&format!(
                    "node {node}: replayed {frames} frames / {bytes} bytes in {}\n",
                    ms(us)
                ));
            }
        }

        if !self.net.is_empty() {
            out.push_str("\n[net]\n");
            for (node, tx, rx, summary) in &self.net {
                out.push_str(&format!("link {node}: tx={tx}B rx={rx}B {summary}\n"));
            }
        }
        out
    }
}

/// Usage string for `--help`.
pub const HELP: &str = "\
isasgd report <run.jsonl> [flags]

  --trace <path>       trace file (alternative to the positional arg)
  --expect-rounds <n>  fail unless rounds 1..=n all closed (CI gate)

Renders a --trace-out JSONL trace: per-round timeline with worker
compute/barrier timings, per-worker latency histograms, handshakes,
respawn replay footprints, and per-link wire totals. Exits nonzero on
any unparseable trace line or missing round coverage.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn line(s: &str) -> String {
        s.to_string()
    }

    #[test]
    fn empty_trace_renders() {
        let r = analyze("").unwrap();
        assert_eq!(r.events, 0);
        assert!(r.render("t.jsonl").contains("0 events"));
    }

    #[test]
    fn round_and_timing_lines_aggregate() {
        let trace = [
            line(r#"{"ts_us":1,"event":"worker_timing","node":0,"round":1,"compute_us":900,"barrier_wait_us":30,"rows":64,"commits":8}"#),
            line(r#"{"ts_us":2,"event":"worker_timing","node":1,"round":1,"compute_us":800,"barrier_wait_us":40,"rows":64,"commits":0}"#),
            line(r#"{"ts_us":3,"event":"round_end","round":1,"objective":0.5,"rmse":0.7,"error_rate":0.25,"wall_us":2000}"#),
        ]
        .join("\n");
        let r = analyze(&trace).unwrap();
        assert_eq!(r.events, 3);
        assert_eq!(r.rounds.len(), 1);
        assert_eq!(r.rounds[&1].timings.len(), 2);
        assert_eq!(r.workers.len(), 2);
        assert_eq!(r.workers[&0].rows, 64);
        assert_eq!(r.workers[&0].compute.count(), 1);
        let text = r.render("t.jsonl");
        assert!(text.contains("[rounds]"), "{text}");
        assert!(text.contains("[workers]"), "{text}");
        assert!(text.contains("0:0.9ms/0.0ms"), "{text}");
    }

    #[test]
    fn malformed_lines_are_hard_errors_with_line_numbers() {
        let trace = "{\"ts_us\":1,\"event\":\"round_end\",\"round\":1,\"objective\":0.5,\"rmse\":0.7,\"error_rate\":0.25,\"wall_us\":10}\nnot json";
        let err = analyze(trace).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        // Missing required fields are errors too, not silent zeros.
        let err = analyze(r#"{"ts_us":1,"event":"round_end","round":1}"#).unwrap_err();
        assert!(err.contains("objective"), "{err}");
        // ... and so is a record with no event name.
        let err = analyze(r#"{"ts_us":1,"round":1}"#).unwrap_err();
        assert!(err.contains("event"), "{err}");
    }

    #[test]
    fn respawn_handshake_and_net_sections_render() {
        let trace = [
            line(r#"{"ts_us":1,"event":"handshake","node":1,"respawn":false,"dur_us":500}"#),
            line(r#"{"ts_us":2,"event":"handshake","node":1,"respawn":true,"dur_us":700}"#),
            line(r#"{"ts_us":3,"event":"respawn","node":1,"replay_frames":5,"replay_bytes":4096,"replay_us":900}"#),
            line(r#"{"ts_us":4,"event":"net_summary","node":0,"tx_bytes":10,"rx_bytes":20,"summary":"tx 10 B rx 20 B"}"#),
        ]
        .join("\n");
        let r = analyze(&trace).unwrap();
        let text = r.render("t.jsonl");
        assert!(text.contains("[handshakes]"), "{text}");
        assert!(text.contains("respawn in 0.7ms"), "{text}");
        assert!(text.contains("replayed 5 frames / 4096 bytes"), "{text}");
        assert!(text.contains("link 0: tx=10B rx=20B"), "{text}");
    }

    #[test]
    fn unknown_events_count_but_do_not_fail() {
        let r = analyze(r#"{"ts_us":1,"event":"brand_new_thing","x":1}"#).unwrap();
        assert_eq!(r.events, 1);
    }

    #[test]
    fn run_requires_a_trace_path() {
        let o = Opts::parse(["report".to_string()]);
        assert_eq!(run(&o), 2);
    }

    #[test]
    fn run_rejects_missing_file() {
        let o = Opts::parse(["report", "/no/such/trace.jsonl"].map(String::from));
        assert_eq!(run(&o), 2);
    }
}
