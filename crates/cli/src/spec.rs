//! Shared option-to-configuration mapping for the CLI commands.

use crate::opts::{OptError, Opts};
use isasgd_cluster::{SyncStrategy, TransportConfig, WireEncoding, WorkerLossPolicy};
use isasgd_core::{
    Algorithm, BalancePolicy, CommitPolicy, Execution, ImportanceScheme, ObservationModel,
    Regularizer, SamplingStrategy, SvrgVariant,
};
use isasgd_obs::LogLevel;

/// Distributed-run settings: present when any `--cluster*` flag was
/// given, routing `train` through the `isasgd-cluster` runtime instead
/// of the in-process engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Node count `numT`.
    pub nodes: usize,
    /// Local epochs per synchronization round.
    pub local_epochs: usize,
    /// Coordinator↔worker transport.
    pub transport: TransportConfig,
    /// Model reducer at each round.
    pub sync: SyncStrategy,
}

/// Everything `train` needs besides the dataset itself.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// Solver.
    pub algorithm: Algorithm,
    /// Execution mode.
    pub execution: Execution,
    /// Distributed execution (`--cluster`/`--cluster-transport`);
    /// `None` keeps the single-process engine.
    pub cluster: Option<ClusterSpec>,
    /// Loss selection (by name; the CLI trains logistic or squared-hinge).
    pub loss: LossKind,
    /// Regularizer.
    pub regularizer: Regularizer,
    /// Importance scheme.
    pub importance: ImportanceScheme,
    /// Balance policy.
    pub balance: BalancePolicy,
    /// Sampling-strategy override (`None` keeps the algorithm's default).
    pub sampling: Option<SamplingStrategy>,
    /// Observation model for adaptive sampling.
    pub obs_model: ObservationModel,
    /// Commit policy for adaptive sampling.
    pub commit: CommitPolicy,
    /// Epochs.
    pub epochs: usize,
    /// Step size λ.
    pub step_size: f64,
    /// Master seed.
    pub seed: u64,
    /// Held-out fraction (0 disables).
    pub holdout: f64,
    /// Stderr event verbosity (`--log-level`; default off).
    pub log_level: LogLevel,
    /// JSONL trace destination (`--trace-out`).
    pub trace_out: Option<String>,
    /// Metrics-dump destination (`--metrics-out`).
    pub metrics_out: Option<String>,
}

/// CLI-selectable losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// L-something-regularized logistic regression (the paper's objective).
    Logistic,
    /// Squared hinge SVM (the paper's Eq. 16 example).
    SquaredHinge,
}

fn bad(flag: &str, value: String, expected: &'static str) -> OptError {
    OptError::BadValue {
        flag: flag.into(),
        value,
        expected,
    }
}

/// Parses the solver name.
pub fn parse_algorithm(s: &str) -> Option<Algorithm> {
    Some(match s {
        "sgd" => Algorithm::Sgd,
        "is-sgd" => Algorithm::IsSgd,
        "asgd" => Algorithm::Asgd,
        "is-asgd" => Algorithm::IsAsgd,
        "svrg" | "svrg-sgd" => Algorithm::SvrgSgd(SvrgVariant::Literature),
        "svrg-asgd" => Algorithm::SvrgAsgd(SvrgVariant::Literature),
        "svrg-skipmu" => Algorithm::SvrgSgd(SvrgVariant::SkipMu),
        "saga" => Algorithm::Saga(SvrgVariant::Literature),
        _ => return None,
    })
}

impl TrainSpec {
    /// Builds a spec from parsed options (flags: `--algo --threads --tau
    /// --workers --epochs --step --loss --reg --eta --scheme --bias
    /// --balance --holdout --seed`).
    pub fn from_opts(o: &Opts) -> Result<TrainSpec, OptError> {
        let algo_s = o.get_or("algo", "is-asgd");
        let algorithm =
            parse_algorithm(&algo_s).ok_or_else(|| bad("algo", algo_s, "solver name"))?;

        let threads: usize = o.get_parsed_or("threads", 0, "usize")?;
        let tau: usize = o.get_parsed_or("tau", 0, "usize")?;
        let workers: usize = o.get_parsed_or("workers", 4, "usize")?;
        let execution = if tau > 0 {
            Execution::Simulated { tau, workers }
        } else if threads > 1 {
            Execution::Threads(threads)
        } else {
            // Async algorithms need a parallel execution; default modestly.
            match algorithm {
                Algorithm::Asgd | Algorithm::IsAsgd | Algorithm::SvrgAsgd(_) => {
                    Execution::Threads(2)
                }
                _ => Execution::Sequential,
            }
        };

        let loss = match o.get_or("loss", "logistic").as_str() {
            "logistic" => LossKind::Logistic,
            "squared-hinge" | "svm" => LossKind::SquaredHinge,
            other => return Err(bad("loss", other.into(), "logistic|squared-hinge")),
        };

        let eta: f64 = o.get_parsed_or("eta", 1e-5, "float")?;
        let regularizer = match o.get_or("reg", "l1").as_str() {
            "none" => Regularizer::None,
            "l1" => Regularizer::L1 { eta },
            "l2" => Regularizer::L2 { eta },
            other => return Err(bad("reg", other.into(), "none|l1|l2")),
        };

        let bias: f64 = o.get_parsed_or("bias", 0.5, "float")?;
        let importance = match o.get_or("scheme", "gradnorm").as_str() {
            "gradnorm" => ImportanceScheme::GradNormBound { radius: 1.0 },
            "smoothness" | "lipschitz" => ImportanceScheme::LipschitzSmoothness,
            "partial" => ImportanceScheme::PartiallyBiased { bias },
            "uniform" => ImportanceScheme::Uniform,
            other => {
                return Err(bad(
                    "scheme",
                    other.into(),
                    "gradnorm|smoothness|partial|uniform",
                ))
            }
        };

        let balance = match o.get_or("balance", "adaptive").as_str() {
            "adaptive" => BalancePolicy::default(),
            "head-tail" | "balance" => BalancePolicy::ForceBalance,
            "greedy" | "lpt" => BalancePolicy::ForceGreedy,
            "shuffle" => BalancePolicy::ForceShuffle,
            "identity" | "none" => BalancePolicy::Identity,
            other => {
                return Err(bad(
                    "balance",
                    other.into(),
                    "adaptive|head-tail|greedy|shuffle|identity",
                ))
            }
        };

        let sampling = match o.get("sampling") {
            None => None,
            Some(v) => Some(
                SamplingStrategy::parse(&v)
                    .ok_or_else(|| bad("sampling", v, "uniform|static|adaptive"))?,
            ),
        };

        let obs_model = match o.get("obs-model") {
            None => ObservationModel::default(),
            Some(v) => ObservationModel::parse(&v)
                .ok_or_else(|| bad("obs-model", v, "gradnorm|loss-bound|staleness"))?,
        };

        let commit = match o.get("commit") {
            None => CommitPolicy::default(),
            Some(v) => CommitPolicy::parse(&v)
                .ok_or_else(|| bad("commit", v, "epoch|every-k|every-<n>"))?,
        };

        let holdout: f64 = o.get_parsed_or("holdout", 0.0, "float in [0,1)")?;
        if !(0.0..1.0).contains(&holdout) {
            return Err(bad("holdout", holdout.to_string(), "float in [0,1)"));
        }

        // Cluster mode turns on when any --cluster* flag appears;
        // `--cluster-transport tcp` alone implies the default 4 nodes.
        let cluster_nodes = o.get("cluster");
        let cluster_transport = o.get("cluster-transport");
        let sync_name = o.get("sync");
        let cluster = if cluster_nodes.is_some() || cluster_transport.is_some() {
            let local_epochs: usize = o.get_parsed_or("local-epochs", 1, "usize")?;
            // The cluster runtime has no per-algorithm dispatch — nodes
            // run local (IS-)SGD. Reject an explicit solver request it
            // would silently ignore.
            if o.get("algo").is_some() && !matches!(algorithm, Algorithm::Sgd | Algorithm::IsSgd) {
                return Err(bad(
                    "algo",
                    algorithm.name().into(),
                    "cluster nodes run local (is-)sgd; use --algo sgd or is-sgd \
                     (sampling/importance flags still apply)",
                ));
            }
            if tau > 0 || threads > 1 {
                return Err(bad(
                    "cluster",
                    "with --tau/--threads".into(),
                    "cluster nodes run sequential local SGD; drop --tau/--threads",
                ));
            }
            let nodes: usize = match cluster_nodes {
                Some(v) => v
                    .parse()
                    .map_err(|_| bad("cluster", v, "node count (usize)"))?,
                None => 4,
            };
            let mut transport = match cluster_transport {
                Some(v) => TransportConfig::parse(&v)
                    .ok_or_else(|| bad("cluster-transport", v, "inproc|tcp|process"))?,
                None => TransportConfig::InProcess,
            };
            // Fleet/socket flags, validated against the chosen transport
            // so a silently-ignored flag is impossible. Each mismatch
            // error names the flag the offending value came from.
            let bind = o.get("cluster-bind");
            let on_loss = o.get("on-worker-loss");
            let chaos = o.get("chaos-kill");
            let round_timeout = o.get("round-timeout");
            let wire_encoding = o.get("wire-encoding");
            let checkpoint_every = o.get("checkpoint-every");
            let needs_process = |flag: &str, v: String| {
                Err(bad(flag, v, "only valid with --cluster-transport process"))
            };
            let parse_encoding = |v: String| {
                WireEncoding::parse(&v).ok_or_else(|| bad("wire-encoding", v, "dense|delta|auto"))
            };
            match &mut transport {
                TransportConfig::Process(pc) => {
                    if let Some(b) = bind {
                        pc.bind = b;
                    }
                    if let Some(v) = on_loss {
                        pc.on_loss = WorkerLossPolicy::parse(&v)
                            .ok_or_else(|| bad("on-worker-loss", v, "fail|respawn"))?;
                    }
                    if let Some(v) = chaos {
                        let parsed = v.split_once(':').and_then(|(n, r)| {
                            Some((n.parse::<u32>().ok()?, r.parse::<u64>().ok()?))
                        });
                        pc.chaos_kill =
                            Some(parsed.ok_or_else(|| {
                                bad("chaos-kill", v, "<node>:<round> (e.g. 1:2)")
                            })?);
                    }
                    if let Some(v) = round_timeout {
                        let secs: u64 = v
                            .parse()
                            .ok()
                            .filter(|&s| s > 0)
                            .ok_or_else(|| bad("round-timeout", v, "seconds (u64, ≥ 1)"))?;
                        pc.round_timeout_ms = secs.saturating_mul(1000);
                    }
                    if let Some(v) = wire_encoding {
                        pc.encoding = parse_encoding(v)?;
                    }
                    if let Some(v) = checkpoint_every {
                        // 0 would silently disable the feature the user
                        // just asked for — reject it; omit the flag to
                        // disable checkpointing.
                        pc.checkpoint_every = v
                            .parse()
                            .ok()
                            .filter(|&n: &u64| n > 0)
                            .ok_or_else(|| bad("checkpoint-every", v, "rounds (u64, ≥ 1)"))?;
                    }
                }
                TransportConfig::Tcp {
                    bind: tcp_bind,
                    encoding,
                } => {
                    if let Some(v) = on_loss {
                        return needs_process("on-worker-loss", v);
                    }
                    if let Some(v) = chaos {
                        return needs_process("chaos-kill", v);
                    }
                    if let Some(v) = round_timeout {
                        return needs_process("round-timeout", v);
                    }
                    if let Some(v) = checkpoint_every {
                        return needs_process("checkpoint-every", v);
                    }
                    if let Some(b) = bind {
                        *tcp_bind = b;
                    }
                    if let Some(v) = wire_encoding {
                        *encoding = parse_encoding(v)?;
                    }
                }
                TransportConfig::InProcess => {
                    for (flag, value) in [
                        ("cluster-bind", bind),
                        ("on-worker-loss", on_loss),
                        ("chaos-kill", chaos),
                        ("round-timeout", round_timeout),
                        ("wire-encoding", wire_encoding),
                        ("checkpoint-every", checkpoint_every),
                    ] {
                        if let Some(v) = value {
                            return Err(bad(flag, v, "needs a socket transport (tcp or process)"));
                        }
                    }
                }
            }
            let sync = match sync_name.as_deref() {
                None | Some("average") => SyncStrategy::Average,
                Some("weighted") => SyncStrategy::WeightedByShard,
                Some(other) => return Err(bad("sync", other.into(), "average|weighted")),
            };
            Some(ClusterSpec {
                nodes,
                local_epochs,
                transport,
                sync,
            })
        } else {
            if let Some(v) = sync_name {
                return Err(bad(
                    "sync",
                    v,
                    "only valid with --cluster/--cluster-transport",
                ));
            }
            None
        };

        let log_level = match o.get("log-level") {
            None => LogLevel::Off,
            Some(v) => LogLevel::parse(&v).ok_or_else(|| bad("log-level", v, "off|info|debug"))?,
        };

        Ok(TrainSpec {
            algorithm,
            execution,
            cluster,
            loss,
            regularizer,
            importance,
            balance,
            sampling,
            obs_model,
            commit,
            epochs: o.get_parsed_or("epochs", 10, "usize")?,
            step_size: o.get_parsed_or("step", 0.5, "float")?,
            seed: o.get_parsed_or("seed", 0x15A5_6D00, "u64")?,
            holdout,
            log_level,
            trace_out: o.get("trace-out"),
            metrics_out: o.get("metrics-out"),
        })
    }

    /// Whether any observability channel was requested — the switch that
    /// arms the recorder *and* the wire-level [`Message::Telemetry`]
    /// frames in cluster runs. Everything downstream is inert when this
    /// is false: no clock reads, no extra frames, no recorder.
    ///
    /// [`Message::Telemetry`]: isasgd_cluster::Message::Telemetry
    pub fn telemetry_enabled(&self) -> bool {
        self.log_level != LogLevel::Off || self.trace_out.is_some() || self.metrics_out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    fn spec(s: &str) -> Result<TrainSpec, OptError> {
        TrainSpec::from_opts(&Opts::parse(s.split_whitespace().map(String::from)))
    }

    #[test]
    fn defaults_are_paperlike() {
        let t = spec("").unwrap();
        assert_eq!(t.algorithm, Algorithm::IsAsgd);
        assert_eq!(t.execution, Execution::Threads(2));
        assert_eq!(t.loss, LossKind::Logistic);
        assert!(matches!(t.regularizer, Regularizer::L1 { .. }));
        assert_eq!(t.epochs, 10);
        assert_eq!(t.step_size, 0.5);
        assert_eq!(t.holdout, 0.0);
    }

    #[test]
    fn algorithm_names_roundtrip() {
        for (name, algo) in [
            ("sgd", Algorithm::Sgd),
            ("is-sgd", Algorithm::IsSgd),
            ("asgd", Algorithm::Asgd),
            ("is-asgd", Algorithm::IsAsgd),
            ("svrg", Algorithm::SvrgSgd(SvrgVariant::Literature)),
            ("svrg-asgd", Algorithm::SvrgAsgd(SvrgVariant::Literature)),
            ("saga", Algorithm::Saga(SvrgVariant::Literature)),
        ] {
            assert_eq!(parse_algorithm(name), Some(algo), "{name}");
        }
        assert_eq!(parse_algorithm("adamw"), None);
    }

    #[test]
    fn tau_selects_simulation() {
        let t = spec("--algo asgd --tau 32 --workers 8").unwrap();
        assert_eq!(
            t.execution,
            Execution::Simulated {
                tau: 32,
                workers: 8
            }
        );
    }

    #[test]
    fn threads_select_hogwild() {
        let t = spec("--algo is-asgd --threads 4").unwrap();
        assert_eq!(t.execution, Execution::Threads(4));
    }

    #[test]
    fn sequential_for_sgd_by_default() {
        let t = spec("--algo sgd").unwrap();
        assert_eq!(t.execution, Execution::Sequential);
    }

    #[test]
    fn reg_and_scheme_parsing() {
        let t = spec("--reg l2 --eta 0.01 --scheme partial --bias 0.25").unwrap();
        assert_eq!(t.regularizer, Regularizer::L2 { eta: 0.01 });
        assert_eq!(
            t.importance,
            ImportanceScheme::PartiallyBiased { bias: 0.25 }
        );
        assert!(spec("--reg l3").is_err());
        assert!(spec("--scheme magic").is_err());
    }

    #[test]
    fn obs_model_and_commit_flag_parsing() {
        let d = spec("").unwrap();
        assert_eq!(d.obs_model, ObservationModel::GradNorm);
        assert_eq!(d.commit, CommitPolicy::EpochBoundary);
        let t = spec("--sampling adaptive --obs-model loss-bound --commit every-64").unwrap();
        assert_eq!(t.obs_model, ObservationModel::LossBound);
        assert_eq!(t.commit, CommitPolicy::EveryK(64));
        let t = spec("--obs-model staleness --commit every-k").unwrap();
        assert!(matches!(
            t.obs_model,
            ObservationModel::StalenessDiscounted { .. }
        ));
        assert_eq!(
            t.commit,
            CommitPolicy::EveryK(CommitPolicy::DEFAULT_EVERY_K)
        );
        assert!(spec("--obs-model psychic").is_err());
        assert!(spec("--commit never").is_err());
    }

    #[test]
    fn sampling_flag_parsing() {
        assert_eq!(spec("").unwrap().sampling, None);
        assert_eq!(
            spec("--sampling adaptive").unwrap().sampling,
            Some(SamplingStrategy::Adaptive)
        );
        assert_eq!(
            spec("--sampling static").unwrap().sampling,
            Some(SamplingStrategy::Static)
        );
        assert_eq!(
            spec("--sampling uniform").unwrap().sampling,
            Some(SamplingStrategy::Uniform)
        );
        assert!(spec("--sampling magic").is_err());
    }

    #[test]
    fn cluster_flags_parse() {
        // Off by default.
        assert_eq!(spec("").unwrap().cluster, None);
        // --cluster alone.
        let t = spec("--cluster 6").unwrap();
        let c = t.cluster.unwrap();
        assert_eq!(c.nodes, 6);
        assert_eq!(c.local_epochs, 1);
        assert_eq!(c.transport, TransportConfig::InProcess);
        assert_eq!(c.sync, SyncStrategy::Average);
        // --cluster-transport alone implies cluster mode with defaults.
        let t = spec("--cluster-transport tcp").unwrap();
        let c = t.cluster.unwrap();
        assert_eq!(c.nodes, 4);
        assert_eq!(c.transport, TransportConfig::tcp());
        // The full set.
        let t = spec("--cluster 3 --cluster-transport inproc --local-epochs 2 --sync weighted")
            .unwrap();
        let c = t.cluster.unwrap();
        assert_eq!(c.nodes, 3);
        assert_eq!(c.local_epochs, 2);
        assert_eq!(c.sync, SyncStrategy::WeightedByShard);
        // Bad values are rejected with the flag named.
        assert!(spec("--cluster-transport udp").is_err());
        assert!(spec("--cluster zero").is_err());
        assert!(spec("--cluster 2 --sync median").is_err());
        // --sync without cluster mode is rejected.
        assert!(spec("--sync weighted").is_err());
        // Cluster nodes run sequential local SGD; parallel-exec flags
        // conflict.
        assert!(spec("--cluster 2 --threads 4").is_err());
        assert!(spec("--cluster 2 --tau 8").is_err());
        // ... and so does an explicit solver the runtime would ignore.
        assert!(spec("--cluster 2 --algo svrg").is_err());
        assert!(spec("--cluster 2 --algo asgd").is_err());
        assert!(spec("--cluster 2 --algo is-sgd").is_ok());
        assert!(spec("--cluster 2").is_ok(), "default algo stays implicit");
    }

    #[test]
    fn process_transport_flags_parse() {
        use isasgd_cluster::ProcessConfig;
        // Bare process transport: defaults (fail policy, loopback bind).
        let t = spec("--cluster 3 --cluster-transport process").unwrap();
        let c = t.cluster.unwrap();
        assert_eq!(
            c.transport,
            TransportConfig::Process(ProcessConfig::default())
        );
        // The full fleet flag set.
        let t = spec(
            "--cluster 3 --cluster-transport process --on-worker-loss respawn \
             --chaos-kill 1:2 --cluster-bind 127.0.0.1:7070 --round-timeout 300 \
             --checkpoint-every 4",
        )
        .unwrap();
        match t.cluster.unwrap().transport {
            TransportConfig::Process(pc) => {
                assert_eq!(pc.on_loss, WorkerLossPolicy::Respawn);
                assert_eq!(pc.chaos_kill, Some((1, 2)));
                assert_eq!(pc.bind, "127.0.0.1:7070");
                assert_eq!(pc.round_timeout_ms, 300_000);
                assert_eq!(pc.checkpoint_every, 4);
                assert_eq!(pc.worker, None, "worker binary resolved at run time");
            }
            other => panic!("expected process transport, got {other:?}"),
        }
        // Checkpointing is off unless asked for; zero and junk are
        // rejected rather than silently disabling the flag.
        let t = spec("--cluster 2 --cluster-transport process").unwrap();
        match t.cluster.unwrap().transport {
            TransportConfig::Process(pc) => assert_eq!(pc.checkpoint_every, 0),
            other => panic!("expected process transport, got {other:?}"),
        }
        assert!(spec("--cluster 2 --cluster-transport process --checkpoint-every 0").is_err());
        assert!(spec("--cluster 2 --cluster-transport process --checkpoint-every often").is_err());
        // --cluster-bind also applies to tcp.
        let t = spec("--cluster 2 --cluster-transport tcp --cluster-bind 127.0.0.1:9000").unwrap();
        assert_eq!(
            t.cluster.unwrap().transport,
            TransportConfig::Tcp {
                bind: "127.0.0.1:9000".into(),
                encoding: WireEncoding::default(),
            }
        );
        // Bad values are rejected with the flag named.
        assert!(spec("--cluster 2 --cluster-transport process --on-worker-loss retry").is_err());
        assert!(spec("--cluster 2 --cluster-transport process --chaos-kill soonish").is_err());
        assert!(spec("--cluster 2 --cluster-transport process --chaos-kill 1").is_err());
        // Fleet flags demand the process transport — and the error
        // names the flag the offending value came from.
        for (line, flag) in [
            ("--cluster 2 --on-worker-loss respawn", "on-worker-loss"),
            (
                "--cluster 2 --cluster-transport tcp --chaos-kill 1:2",
                "chaos-kill",
            ),
            ("--cluster 2 --cluster-bind 127.0.0.1:9000", "cluster-bind"),
            (
                "--cluster 2 --cluster-transport tcp --round-timeout 5",
                "round-timeout",
            ),
            (
                "--cluster 2 --cluster-transport tcp --checkpoint-every 4",
                "checkpoint-every",
            ),
            ("--cluster 2 --checkpoint-every 4", "checkpoint-every"),
        ] {
            match spec(line) {
                Err(OptError::BadValue { flag: f, .. }) => {
                    assert_eq!(f, flag, "{line}: wrong flag attributed");
                }
                other => panic!("{line}: expected BadValue, got {other:?}"),
            }
        }
        assert!(spec("--cluster 2 --cluster-transport process --round-timeout soon").is_err());
    }

    #[test]
    fn wire_encoding_flag_parses() {
        use isasgd_cluster::ProcessConfig;
        // Socket transports accept all three spellings; default is auto.
        assert_eq!(ProcessConfig::default().encoding, WireEncoding::Auto);
        for (name, enc) in [
            ("dense", WireEncoding::Dense),
            ("delta", WireEncoding::Delta),
            ("auto", WireEncoding::Auto),
        ] {
            let t = spec(&format!(
                "--cluster 2 --cluster-transport tcp --wire-encoding {name}"
            ))
            .unwrap();
            match t.cluster.unwrap().transport {
                TransportConfig::Tcp { encoding, .. } => assert_eq!(encoding, enc, "{name}"),
                other => panic!("expected tcp transport, got {other:?}"),
            }
            let t = spec(&format!(
                "--cluster 2 --cluster-transport process --wire-encoding {name}"
            ))
            .unwrap();
            match t.cluster.unwrap().transport {
                TransportConfig::Process(pc) => assert_eq!(pc.encoding, enc, "{name}"),
                other => panic!("expected process transport, got {other:?}"),
            }
        }
        // Bad values and the channel transport are rejected with the
        // flag named.
        assert!(spec("--cluster 2 --cluster-transport tcp --wire-encoding rle").is_err());
        match spec("--cluster 2 --wire-encoding delta") {
            Err(OptError::BadValue { flag, .. }) => assert_eq!(flag, "wire-encoding"),
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn observability_flags_parse() {
        let t = spec("").unwrap();
        assert_eq!(t.log_level, LogLevel::Off);
        assert_eq!(t.trace_out, None);
        assert_eq!(t.metrics_out, None);
        assert!(!t.telemetry_enabled(), "observability is strictly opt-in");
        for (name, level) in [
            ("off", LogLevel::Off),
            ("info", LogLevel::Info),
            ("debug", LogLevel::Debug),
        ] {
            assert_eq!(
                spec(&format!("--log-level {name}")).unwrap().log_level,
                level,
                "{name}"
            );
        }
        assert!(spec("--log-level info").unwrap().telemetry_enabled());
        let t = spec("--trace-out /tmp/t.jsonl --metrics-out /tmp/m.json").unwrap();
        assert_eq!(t.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(t.metrics_out.as_deref(), Some("/tmp/m.json"));
        assert!(t.telemetry_enabled());
        match spec("--log-level loud") {
            Err(OptError::BadValue { flag, .. }) => assert_eq!(flag, "log-level"),
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn holdout_validation() {
        assert_eq!(spec("--holdout 0.2").unwrap().holdout, 0.2);
        assert!(spec("--holdout 1.5").is_err());
        assert!(spec("--holdout -0.1").is_err());
    }
}
