//! End-to-end tests driving the compiled `isasgd` binary:
//! gen → info → train (with holdout + model save) → predict.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_isasgd"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("isasgd_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn full_pipeline_gen_info_train_predict() {
    let dir = tmpdir("pipeline");
    let data = dir.join("d.svm");
    let model = dir.join("m.json");

    // gen
    let out = bin()
        .args(["gen", "--out"])
        .arg(&data)
        .args(["--profile", "news20", "--scale", "0.05", "--training"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(data.exists());

    // info
    let out = bin().arg("info").arg(&data).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("psi/n"), "info output missing ψ: {text}");
    assert!(text.contains("avg degree"), "info output missing Δ̄: {text}");

    // train with holdout and model output
    let out = bin()
        .arg("train")
        .arg(&data)
        .args([
            "--algo",
            "is-asgd",
            "--threads",
            "2",
            "--epochs",
            "5",
            "--holdout",
            "0.2",
            "--quiet",
            "--model",
        ])
        .arg(&model)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("algorithm=IS-ASGD"), "{text}");
    assert!(text.contains("holdout_n=40"), "{text}");
    assert!(model.exists());

    // predict against the training file
    let preds = dir.join("preds.txt");
    let out = bin()
        .arg("predict")
        .arg(&data)
        .arg("--model")
        .arg(&model)
        .arg("--out")
        .arg(&preds)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "predict failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error_rate="), "{text}");
    // One prediction line per sample, each "±1 margin".
    let lines: Vec<String> = std::fs::read_to_string(&preds)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(lines.len(), 200);
    for l in &lines {
        let mut parts = l.split_whitespace();
        let p: f64 = parts.next().unwrap().parse().unwrap();
        let m: f64 = parts.next().unwrap().parse().unwrap();
        assert!(p == 1.0 || p == -1.0);
        assert!(m.is_finite());
    }

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn train_all_solvers_smoke() {
    let dir = tmpdir("solvers");
    let data = dir.join("d.svm");
    let out = bin()
        .args(["gen", "--out"])
        .arg(&data)
        .args(["--profile", "news20", "--scale", "0.03", "--training"])
        .output()
        .unwrap();
    assert!(out.status.success());

    for algo in ["sgd", "is-sgd", "asgd", "is-asgd", "svrg", "saga"] {
        let out = bin()
            .arg("train")
            .arg(&data)
            .args(["--algo", algo, "--epochs", "2", "--quiet", "--step", "0.1"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("final_err="), "{algo}: {text}");
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn sampling_strategies_end_to_end() {
    // The acceptance path: `train --sampling adaptive` works end-to-end
    // and its per-epoch trace differs from `--sampling static` on the
    // same (importance-skewed) dataset and seed.
    let dir = tmpdir("sampling");
    let data = dir.join("d.svm");
    let out = bin()
        .args(["gen", "--out"])
        .arg(&data)
        .args(["--profile", "news20", "--scale", "0.05", "--training"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run = |sampling: &str| {
        let out = bin()
            .arg("train")
            .arg(&data)
            .args([
                "--algo",
                "is-sgd",
                "--epochs",
                "4",
                "--step",
                "0.2",
                "--seed",
                "7",
                "--sampling",
                sampling,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--sampling {sampling} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Per-epoch progress lines go to stderr; the summary to stdout.
        let summary = String::from_utf8_lossy(&out.stdout).to_string();
        let trace = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(summary.contains("final_obj="), "{summary}");
        (summary, trace)
    };

    let (stat_summary, stat_trace) = run("static");
    let (adap_summary, adap_trace) = run("adaptive");
    let (_uni_summary, _) = run("uniform");
    assert_ne!(
        stat_trace, adap_trace,
        "adaptive trace must be distinguishable from static"
    );
    assert_ne!(stat_summary, adap_summary);

    // Rejected value reports a helpful error.
    let out = bin()
        .arg("train")
        .arg(&data)
        .args([
            "--algo",
            "is-sgd",
            "--epochs",
            "1",
            "--sampling",
            "magic",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("sampling"));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn obs_model_and_commit_flags_end_to_end() {
    // `--obs-model` and `--commit` steer the adaptive feedback protocol;
    // each variant must run, and intra-epoch commits must produce a
    // trace distinguishable from epoch-boundary commits.
    let dir = tmpdir("feedback");
    let data = dir.join("d.svm");
    let out = bin()
        .args(["gen", "--out"])
        .arg(&data)
        .args(["--profile", "news20", "--scale", "0.05", "--training"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run = |extra: &[&str]| {
        let out = bin()
            .arg("train")
            .arg(&data)
            .args([
                "--algo",
                "is-sgd",
                "--epochs",
                "4",
                "--step",
                "0.2",
                "--seed",
                "7",
                "--sampling",
                "adaptive",
            ])
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Compare only the final objective: raw stdout/stderr embed
        // wall-clock fields that differ between any two runs, which
        // would make an inequality assertion vacuous.
        let summary = String::from_utf8_lossy(&out.stdout).to_string();
        summary
            .split_whitespace()
            .find(|t| t.starts_with("final_obj="))
            .unwrap_or_else(|| panic!("no final_obj in summary: {summary}"))
            .to_string()
    };

    let epoch_obj = run(&["--commit", "epoch"]);
    let everyk_obj = run(&["--commit", "every-32"]);
    assert_ne!(
        epoch_obj, everyk_obj,
        "intra-epoch commits must change the trajectory"
    );
    for model in ["gradnorm", "loss-bound", "staleness"] {
        run(&["--obs-model", model]);
    }

    // `--commit every-k` without adaptive sampling used to be silently
    // accepted (the sampler ignores feedback, so the run degraded to
    // epoch-boundary semantics); it must be rejected with a pointer at
    // the fix.
    let out = bin()
        .arg("train")
        .arg(&data)
        .args([
            "--algo", "is-sgd", "--epochs", "2", "--quiet", "--commit", "every-k",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "every-k without adaptive sampling must be a config error"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("adaptive"), "error must name the fix: {err}");

    // Threaded runs consume intra-epoch commits too (the streamed
    // worker schedules): the summary's cumulative sampler commit count
    // must exceed one-per-worker-per-epoch.
    let out = bin()
        .arg("train")
        .arg(&data)
        .args([
            "--algo",
            "is-asgd",
            "--threads",
            "2",
            "--epochs",
            "3",
            "--step",
            "0.2",
            "--seed",
            "7",
            "--sampling",
            "adaptive",
            "--commit",
            "every-32",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout).to_string();
    let commits: u64 = summary
        .split_whitespace()
        .find_map(|t| t.strip_prefix("sampler_commits="))
        .unwrap_or_else(|| panic!("no sampler_commits in summary: {summary}"))
        .parse()
        .unwrap();
    assert!(
        commits > 2 * 3,
        "threaded every-k must commit inside epochs, got {commits}"
    );

    // Rejected values report helpful errors.
    for (flag, value) in [("--obs-model", "psychic"), ("--commit", "never")] {
        let out = bin()
            .arg("train")
            .arg(&data)
            .args(["--algo", "is-sgd", "--epochs", "1", "--quiet", flag, value])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag} {value}");
        assert!(String::from_utf8_lossy(&out.stderr).contains(flag.trim_start_matches("--")));
    }

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn cluster_transports_produce_identical_round_traces() {
    // The PR-4 acceptance path: `train --cluster-transport tcp` on
    // localhost must produce a bit-identical RoundPoint trace to
    // `--cluster-transport inproc` for the same seed — the per-round
    // lines carry no wall-clock fields, so the comparison is textual.
    let dir = tmpdir("cluster");
    let data = dir.join("d.svm");
    let out = bin()
        .args(["gen", "--out"])
        .arg(&data)
        .args(["--profile", "news20", "--scale", "0.05", "--training"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run = |transport: &str| {
        let out = bin()
            .arg("train")
            .arg(&data)
            .args([
                "--algo",
                "is-sgd",
                "--cluster",
                "3",
                "--cluster-transport",
                transport,
                "--sampling",
                "adaptive",
                "--epochs",
                "4",
                "--step",
                "0.2",
                "--seed",
                "7",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--cluster-transport {transport} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let trace: Vec<String> = String::from_utf8_lossy(&out.stderr)
            .lines()
            .filter(|l| l.starts_with("[round") || l.starts_with("[feedback"))
            .map(String::from)
            .collect();
        let summary = String::from_utf8_lossy(&out.stdout).to_string();
        (trace, summary)
    };

    let (inproc_trace, inproc_summary) = run("inproc");
    let (tcp_trace, tcp_summary) = run("tcp");
    assert!(
        inproc_trace.len() >= 5,
        "expected 4 rounds + initial point, got {inproc_trace:?}"
    );
    assert_eq!(
        inproc_trace, tcp_trace,
        "tcp round trace must be bit-identical to inproc"
    );
    assert!(
        inproc_summary.contains("transport=inproc"),
        "{inproc_summary}"
    );
    assert!(tcp_summary.contains("transport=tcp"), "{tcp_summary}");
    assert!(
        tcp_summary.contains("algorithm=Cluster-AIS-SGD"),
        "{tcp_summary}"
    );

    // Bad transport name is caught with the flag named.
    let out = bin()
        .arg("train")
        .arg(&data)
        .args(["--cluster-transport", "udp", "--quiet"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cluster-transport"));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn simulated_tau_execution() {
    let dir = tmpdir("tau");
    let data = dir.join("d.svm");
    bin()
        .args(["gen", "--out"])
        .arg(&data)
        .args(["--profile", "news20", "--scale", "0.03", "--training"])
        .output()
        .unwrap();
    let out = bin()
        .arg("train")
        .arg(&data)
        .args([
            "--algo",
            "is-asgd",
            "--tau",
            "16",
            "--workers",
            "4",
            "--epochs",
            "2",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn helpful_errors_and_help() {
    // No args → usage, exit 2.
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // --help works for every command.
    for cmd in ["train", "predict", "info", "gen"] {
        let out = bin().args([cmd, "--help"]).output().unwrap();
        assert!(out.status.success());
        assert!(String::from_utf8_lossy(&out.stdout).contains(cmd));
    }

    // Unknown command names itself.
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));

    // Typo'd flag is caught.
    let out = bin()
        .args(["gen", "--out", "/tmp/x.svm", "--sclae", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("sclae"));
}

#[test]
fn warm_start_resumes_training() {
    let dir = tmpdir("warm");
    let data = dir.join("d.svm");
    let m1 = dir.join("m1.json");
    let m2 = dir.join("m2.json");
    bin()
        .args(["gen", "--out"])
        .arg(&data)
        .args(["--profile", "news20", "--scale", "0.03", "--training"])
        .output()
        .unwrap();
    let out = bin()
        .arg("train")
        .arg(&data)
        .args([
            "--algo", "sgd", "--epochs", "3", "--quiet", "--step", "0.2", "--model",
        ])
        .arg(&m1)
        .output()
        .unwrap();
    assert!(out.status.success());
    let obj1: f64 = String::from_utf8_lossy(&out.stdout)
        .split("final_obj=")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    // Resume for 3 more epochs; the final objective must not regress.
    let out = bin()
        .arg("train")
        .arg(&data)
        .args([
            "--algo",
            "sgd",
            "--epochs",
            "3",
            "--quiet",
            "--step",
            "0.2",
            "--init-model",
        ])
        .arg(&m1)
        .arg("--model")
        .arg(&m2)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let obj2: f64 = String::from_utf8_lossy(&out.stdout)
        .split("final_obj=")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(obj2 <= obj1 + 1e-9, "resume {obj2} vs first {obj1}");
    assert!(m2.exists());
    std::fs::remove_dir_all(dir).ok();
}
