//! End-to-end tests of the cross-process distributed runtime with
//! **genuine subprocesses**: `isasgd train --cluster-transport process`
//! spawns real `isasgd worker` OS processes that handshake over real
//! TCP and run the round protocol.
//!
//! Pinned here (CI runs this file release-mode so the spawn/handshake
//! path is exercised optimized on every PR):
//! * the 4-way equivalence — process ≡ tcp ≡ inproc round traces and
//!   saved models across {average, weighted} × {static, adaptive}
//!   (the sequential-engine leg is pinned bitwise at the library level
//!   in `isasgd-cluster/tests/process_fleet.rs`);
//! * kill-a-worker: `--chaos-kill` + `--on-worker-loss respawn`
//!   completes identically to an undisturbed run, `fail` exits with a
//!   typed error promptly;
//! * flag/handshake validation errors name their cause.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_isasgd"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("isasgd_proc_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn gen_data(dir: &Path) -> PathBuf {
    let data = dir.join("d.svm");
    let out = bin()
        .args(["gen", "--out"])
        .arg(&data)
        .args(["--profile", "news20", "--scale", "0.05", "--training"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    data
}

/// Runs a cluster training and returns (filtered round trace, summary
/// line, model JSON) — everything that must match across transports.
fn run_cluster(
    data: &Path,
    model: &Path,
    transport: &str,
    sync: &str,
    sampling: &str,
    extra: &[&str],
) -> (Vec<String>, String, String) {
    let out = bin()
        .arg("train")
        .arg(data)
        .args([
            "--algo",
            "is-sgd",
            "--cluster",
            "3",
            "--cluster-transport",
            transport,
            "--sync",
            sync,
            "--sampling",
            sampling,
            "--scheme",
            "smoothness",
            "--epochs",
            "3",
            "--step",
            "0.2",
            "--seed",
            "7",
            "--model",
        ])
        .arg(model)
        .args(extra)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "--cluster-transport {transport} ({sync}/{sampling}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace: Vec<String> = String::from_utf8_lossy(&out.stderr)
        .lines()
        .filter(|l| l.starts_with("[round") || l.starts_with("[feedback"))
        .map(String::from)
        .collect();
    let summary = String::from_utf8_lossy(&out.stdout).to_string();
    let model_json = std::fs::read_to_string(model).unwrap();
    (trace, summary, model_json)
}

#[test]
fn process_transport_matrix_matches_tcp_and_inproc() {
    let dir = tmpdir("matrix");
    let data = gen_data(&dir);
    for sync in ["average", "weighted"] {
        for sampling in ["static", "adaptive"] {
            let tag = format!("{sync}/{sampling}");
            let m_in = dir.join("m_inproc.json");
            let m_tcp = dir.join("m_tcp.json");
            let m_proc = dir.join("m_proc.json");
            let (tr_in, sum_in, js_in) = run_cluster(&data, &m_in, "inproc", sync, sampling, &[]);
            let (tr_tcp, _, js_tcp) = run_cluster(&data, &m_tcp, "tcp", sync, sampling, &[]);
            let (tr_proc, sum_proc, js_proc) =
                run_cluster(&data, &m_proc, "process", sync, sampling, &[]);
            assert!(
                tr_in.len() >= 4,
                "{tag}: expected 3 rounds + initial point, got {tr_in:?}"
            );
            assert_eq!(tr_proc, tr_in, "{tag}: process trace ≠ inproc");
            assert_eq!(tr_proc, tr_tcp, "{tag}: process trace ≠ tcp");
            // Saved models embed the raw weights; identical JSON bytes
            // mean identical models (same writer, same metadata fields).
            assert_eq!(js_proc, js_in, "{tag}: process model ≠ inproc");
            assert_eq!(js_proc, js_tcp, "{tag}: process model ≠ tcp");
            assert!(sum_proc.contains("transport=process"), "{sum_proc}");
            assert!(sum_in.contains("transport=inproc"), "{sum_in}");
        }
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn process_worker_loss_respawn_is_bit_identical() {
    let dir = tmpdir("respawn");
    let data = gen_data(&dir);
    let m_clean = dir.join("m_clean.json");
    let m_chaos = dir.join("m_chaos.json");
    let (tr_clean, _, js_clean) =
        run_cluster(&data, &m_clean, "process", "average", "adaptive", &[]);
    let (tr_chaos, _, js_chaos) = run_cluster(
        &data,
        &m_chaos,
        "process",
        "average",
        "adaptive",
        &["--chaos-kill", "1:2", "--on-worker-loss", "respawn"],
    );
    assert_eq!(
        tr_chaos, tr_clean,
        "killed+respawned run's round trace diverged from the undisturbed run"
    );
    assert_eq!(
        js_chaos, js_clean,
        "killed+respawned run's final model diverged from the undisturbed run"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn checkpointed_respawn_is_bit_identical_through_real_subprocesses() {
    // The whole checkpoint path over genuine fork/exec workers: state
    // frames every round, a chaos kill, checkpoint-installed recovery —
    // and the result is bit-equal to a run that never checkpointed and
    // never died.
    let dir = tmpdir("ckpt");
    let data = gen_data(&dir);
    let m_clean = dir.join("m_clean.json");
    let m_ckpt = dir.join("m_ckpt.json");
    let (tr_clean, _, js_clean) =
        run_cluster(&data, &m_clean, "process", "average", "adaptive", &[]);
    let (tr_ckpt, _, js_ckpt) = run_cluster(
        &data,
        &m_ckpt,
        "process",
        "average",
        "adaptive",
        &[
            "--checkpoint-every",
            "1",
            "--chaos-kill",
            "1:2",
            "--on-worker-loss",
            "respawn",
        ],
    );
    assert_eq!(
        tr_ckpt, tr_clean,
        "checkpointed recovery's round trace diverged from the undisturbed run"
    );
    assert_eq!(
        js_ckpt, js_clean,
        "checkpointed recovery's final model diverged from the undisturbed run"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn process_worker_loss_fail_is_a_typed_error() {
    let dir = tmpdir("fail");
    let data = gen_data(&dir);
    let out = bin()
        .arg("train")
        .arg(&data)
        .args([
            "--algo",
            "is-sgd",
            "--cluster",
            "3",
            "--cluster-transport",
            "process",
            "--chaos-kill",
            "1:2",
            "--on-worker-loss",
            "fail",
            "--epochs",
            "3",
            "--step",
            "0.2",
            "--seed",
            "7",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "a lost worker under fail policy must exit with an error, not hang"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("worker 1 lost"),
        "error must name the lost worker: {err}"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn process_flag_validation() {
    let dir = tmpdir("flags");
    let data = gen_data(&dir);
    // Fleet flags without the process transport.
    for flags in [
        &["--cluster", "2", "--on-worker-loss", "respawn"][..],
        &[
            "--cluster",
            "2",
            "--cluster-transport",
            "tcp",
            "--chaos-kill",
            "1:2",
        ][..],
        &[
            "--cluster",
            "2",
            "--cluster-transport",
            "process",
            "--on-worker-loss",
            "retry",
        ][..],
    ] {
        let out = bin()
            .arg("train")
            .arg(&data)
            .args(flags)
            .args(["--epochs", "1", "--quiet"])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flags:?} must be rejected");
    }
    // `worker --help` documents the subcommand; a worker pointed at a
    // dead address reports a connect error.
    let out = bin().args(["worker", "--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("--connect"));
    let out = bin()
        .args(["worker", "--connect", "127.0.0.1:1", "--quiet"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("connect"));
    std::fs::remove_dir_all(dir).ok();
}
