//! Property-based tests for the sparse substrate.

use isasgd_sparse::{libsvm, Dataset, DatasetBuilder, SparseVec};
use proptest::prelude::*;

/// Strategy producing a valid row: sorted unique indices below `dim` with
/// finite values, plus a ±1 label.
fn row_strategy(dim: u32) -> impl Strategy<Value = (Vec<(u32, f64)>, f64)> {
    (
        proptest::collection::btree_map(0..dim, -100.0f64..100.0, 0..16),
        prop_oneof![Just(1.0f64), Just(-1.0f64)],
    )
        .prop_map(|(m, label)| {
            let pairs: Vec<(u32, f64)> = m.into_iter().filter(|&(_, v)| v != 0.0).collect();
            (pairs, label)
        })
}

fn dataset_strategy(dim: u32, max_rows: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(row_strategy(dim), 1..=max_rows).prop_map(move |rows| {
        let mut b = DatasetBuilder::new(dim as usize);
        for (pairs, label) in rows {
            b.push_row(&pairs, label).unwrap();
        }
        b.finish()
    })
}

proptest! {
    #[test]
    fn sparse_dot_matches_dense_dot(pairs in proptest::collection::btree_map(0u32..64, -10.0f64..10.0, 0..20),
                                    dense in proptest::collection::vec(-10.0f64..10.0, 64)) {
        let pairs: Vec<(u32, f64)> = pairs.into_iter().collect();
        let v = SparseVec::from_pairs(&pairs).unwrap();
        let full = v.to_dense(64);
        let expect: f64 = full.iter().zip(&dense).map(|(a, b)| a * b).sum();
        prop_assert!((v.dot_dense(&dense) - expect).abs() < 1e-9);
    }

    #[test]
    fn sparse_sparse_dot_symmetric(a in proptest::collection::btree_map(0u32..48, -5.0f64..5.0, 0..12),
                                   b in proptest::collection::btree_map(0u32..48, -5.0f64..5.0, 0..12)) {
        let va = SparseVec::from_pairs(&a.into_iter().collect::<Vec<_>>()).unwrap();
        let vb = SparseVec::from_pairs(&b.into_iter().collect::<Vec<_>>()).unwrap();
        prop_assert!((va.dot_sparse(&vb) - vb.dot_sparse(&va)).abs() < 1e-12);
        // dot != 0 implies overlap
        if va.dot_sparse(&vb).abs() > 1e-12 {
            prop_assert!(va.overlaps(&vb));
        }
    }

    #[test]
    fn axpy_is_linear(pairs in proptest::collection::btree_map(0u32..32, -5.0f64..5.0, 1..10),
                      s1 in -3.0f64..3.0, s2 in -3.0f64..3.0) {
        let v = SparseVec::from_pairs(&pairs.into_iter().collect::<Vec<_>>()).unwrap();
        let mut once = vec![0.0; 32];
        v.axpy_into(s1 + s2, &mut once);
        let mut twice = vec![0.0; 32];
        v.axpy_into(s1, &mut twice);
        v.axpy_into(s2, &mut twice);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn libsvm_roundtrip(ds in dataset_strategy(40, 12)) {
        let mut buf = Vec::new();
        libsvm::write_writer(&ds, &mut buf).unwrap();
        let back = libsvm::parse_reader(buf.as_slice(), Some(ds.dim())).unwrap();
        prop_assert_eq!(ds, back);
    }

    #[test]
    fn reorder_preserves_multiset_of_labels(ds in dataset_strategy(24, 10), seed in 0u64..1000) {
        // Build a permutation deterministically from the seed.
        let n = ds.n_samples();
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let rd = ds.reordered(&order).unwrap();
        let mut l1: Vec<i64> = ds.labels().iter().map(|&l| l as i64).collect();
        let mut l2: Vec<i64> = rd.labels().iter().map(|&l| l as i64).collect();
        l1.sort_unstable();
        l2.sort_unstable();
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(ds.nnz(), rd.nnz());
    }

    #[test]
    fn shard_ranges_partition(n in 1usize..500, k in 1usize..32) {
        prop_assume!(k <= n);
        let ranges = isasgd_sparse::dataset::shard_ranges(n, k).unwrap();
        prop_assert_eq!(ranges.len(), k);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges[k - 1].end, n);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Shards differ in size by at most 1.
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }
}

/// Builds an arbitrary small labelled dataset for the split properties.
fn arb_dataset(n: usize, seed: u64) -> isasgd_sparse::Dataset {
    let mut b = isasgd_sparse::DatasetBuilder::new(32);
    let mut state = seed | 1;
    for i in 0..n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % 32) as u32;
        let y = if state.is_multiple_of(3) { 1.0 } else { -1.0 };
        // Unique value per row lets the partition property track rows.
        b.push_row(&[(j, i as f64 + 1.0)], y).unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Holdout splits partition the rows: every row lands on exactly one
    /// side, test size matches the requested fraction.
    #[test]
    fn holdout_split_partitions(n in 10usize..400, seed in 0u64..1000, pct in 5u32..95) {
        let frac = pct as f64 / 100.0;
        let ds = arb_dataset(n, seed);
        let n_test = ((n as f64) * frac).round() as usize;
        prop_assume!(n_test > 0 && n_test < n);
        let (train, test) = isasgd_sparse::holdout_split(&ds, frac, seed).unwrap();
        prop_assert_eq!(test.n_samples(), n_test);
        prop_assert_eq!(train.n_samples() + test.n_samples(), n);
        let mut vals: Vec<u64> = train
            .rows()
            .chain(test.rows())
            .map(|r| r.values[0] as u64)
            .collect();
        vals.sort_unstable();
        let expect: Vec<u64> = (1..=n as u64).collect();
        prop_assert_eq!(vals, expect, "every row exactly once across the halves");
    }

    /// Stratified splits partition too, and keep the positive fraction of
    /// both halves within a couple of rows of the original.
    #[test]
    fn stratified_split_partitions_and_balances(n in 30usize..400, seed in 0u64..1000) {
        let ds = arb_dataset(n, seed);
        let frac = 0.25;
        if let Ok((train, test)) = isasgd_sparse::stratified_holdout_split(&ds, frac, seed) {
            prop_assert_eq!(train.n_samples() + test.n_samples(), n);
            let pos = |d: &isasgd_sparse::Dataset| {
                d.labels().iter().filter(|&&y| y > 0.0).count()
            };
            let total_pos = pos(&ds);
            prop_assert_eq!(pos(&train) + pos(&test), total_pos);
            // Test side holds frac of each class ± 1 rounding.
            let expect = (total_pos as f64 * frac).round() as isize;
            prop_assert!((pos(&test) as isize - expect).abs() <= 1);
        }
    }

    /// k-fold indices cover 0..n exactly once with near-equal folds.
    #[test]
    fn kfold_partitions(n in 4usize..300, k in 2usize..12, seed in 0u64..1000) {
        prop_assume!(k <= n);
        let folds = isasgd_sparse::kfold_indices(n, k, seed).unwrap();
        prop_assert_eq!(folds.len(), k);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        let (mn, mx) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }
}
