//! Dense-vector helpers shared by the solvers.
//!
//! These exist so the *dense* code paths (SVRG's full gradient µ, model
//! snapshots) are implemented once and benchmarked against the
//! index-compressed paths in the Figure-1 experiment.

/// `y += alpha * x` over full dense vectors — the `O(d)` operation that
/// dominates SVRG-ASGD's per-iteration cost on sparse data (paper §1.2).
///
/// Unrolled 4-wide. Unlike a dot product, every coordinate update is
/// independent, so the unrolling is **bit-identical** to the scalar
/// loop — there is no reduction order to perturb.
#[inline]
pub fn dense_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dense_axpy length mismatch");
    let chunks = x.len() - x.len() % 4;
    let mut i = 0;
    while i < chunks {
        y[i] += alpha * x[i];
        y[i + 1] += alpha * x[i + 1];
        y[i + 2] += alpha * x[i + 2];
        y[i + 3] += alpha * x[i + 3];
        i += 4;
    }
    for j in chunks..x.len() {
        y[j] += alpha * x[j];
    }
}

/// Dense dot product.
#[inline]
pub fn dense_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dense_dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm of a dense vector.
#[inline]
pub fn dense_norm_sq(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum()
}

/// Euclidean distance between two dense vectors.
#[inline]
pub fn dense_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dense_dist length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Scales a dense vector in place.
#[inline]
pub fn dense_scale(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Fills a dense vector with zeros (kept as a named op for benches).
#[inline]
pub fn dense_zero(a: &mut [f64]) {
    a.fill(0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_and_dot() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        dense_axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        assert_eq!(dense_dot(&x, &y), 3.0 + 10.0 + 21.0);
    }

    #[test]
    fn norms_and_distance() {
        let a = [3.0, 4.0];
        let b = [0.0, 0.0];
        assert_eq!(dense_norm_sq(&a), 25.0);
        assert_eq!(dense_dist(&a, &b), 5.0);
    }

    #[test]
    fn scale_zero() {
        let mut a = [1.0, -2.0];
        dense_scale(&mut a, -2.0);
        assert_eq!(a, [-2.0, 4.0]);
        dense_zero(&mut a);
        assert_eq!(a, [0.0, 0.0]);
    }

    #[test]
    fn axpy_unroll_is_bit_identical_across_lengths() {
        // Chunked and scalar paths must agree exactly for every tail
        // length (coordinate updates are independent of each other).
        for d in 0..13usize {
            let x: Vec<f64> = (0..d).map(|i| (i as f64 * 0.73).cos() * 3.1).collect();
            let mut fast = vec![0.25; d];
            let mut strict = vec![0.25; d];
            dense_axpy(-1.7, &x, &mut fast);
            for (yi, &xi) in strict.iter_mut().zip(&x) {
                *yi += -1.7 * xi;
            }
            for (a, b) in fast.iter().zip(&strict) {
                assert_eq!(a.to_bits(), b.to_bits(), "d={d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut y = [0.0];
        dense_axpy(1.0, &[1.0, 2.0], &mut y);
    }
}
