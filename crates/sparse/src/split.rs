//! Train/test splitting utilities.
//!
//! The paper evaluates on training error (its "error rate" metric is
//! updated on the training set); downstream users of this library almost
//! always want a held-out estimate too, so the CLI and several examples
//! split with these helpers. Splits are deterministic under a seed.

use crate::dataset::Dataset;
use crate::error::SparseError;

/// SplitMix64 step — a tiny, high-quality mixer; keeps this crate free of
/// RNG dependencies (the dedicated generators live in `isasgd-sampling`,
/// which sits *above* this crate in the dependency graph).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fisher–Yates shuffle of `0..n` under a seed.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut s = seed;
    for i in (1..n).rev() {
        let j = (splitmix64(&mut s) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Splits a dataset into `(train, test)` with `test_fraction` of the rows
/// held out, after a seeded shuffle.
///
/// `test_fraction` must lie in `(0, 1)` and both sides must end up
/// non-empty.
pub fn holdout_split(
    ds: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), SparseError> {
    let n = ds.n_samples();
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(SparseError::Empty);
    }
    let n_test = ((n as f64) * test_fraction).round() as usize;
    if n_test == 0 || n_test >= n {
        return Err(SparseError::Empty);
    }
    let idx = shuffled_indices(n, seed);
    let test = ds.reordered(&idx[..n_test])?;
    let train = ds.reordered(&idx[n_test..])?;
    Ok((train, test))
}

/// Stratified variant of [`holdout_split`]: positives and negatives are
/// held out in (approximately) the same proportion, so a rare class does
/// not vanish from a small test side.
pub fn stratified_holdout_split(
    ds: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), SparseError> {
    let n = ds.n_samples();
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 || n < 2 {
        return Err(SparseError::Empty);
    }
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (i, &y) in ds.labels().iter().enumerate() {
        if y > 0.0 {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    // Shuffle each class independently, then take the head as test.
    let shuffle_class = |class: &mut Vec<usize>, salt: u64| {
        let order = shuffled_indices(class.len(), seed ^ salt);
        let copy: Vec<usize> = order.iter().map(|&k| class[k]).collect();
        *class = copy;
    };
    shuffle_class(&mut pos, 0x505);
    shuffle_class(&mut neg, 0xA0A);
    let take = |class: &[usize]| ((class.len() as f64) * test_fraction).round() as usize;
    let (tp, tn) = (take(&pos), take(&neg));
    let mut test_idx: Vec<usize> = pos[..tp].iter().chain(neg[..tn].iter()).copied().collect();
    let mut train_idx: Vec<usize> = pos[tp..].iter().chain(neg[tn..].iter()).copied().collect();
    if test_idx.is_empty() || train_idx.is_empty() {
        return Err(SparseError::Empty);
    }
    // Deterministic order within the halves (indices sorted) so the split
    // does not leak class-grouping into downstream contiguous sharding.
    let mut s = seed ^ 0xC0FFEE;
    for v in [&mut test_idx, &mut train_idx] {
        for i in (1..v.len()).rev() {
            let j = (splitmix64(&mut s) % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
    }
    Ok((ds.reordered(&train_idx)?, ds.reordered(&test_idx)?))
}

/// `k`-fold index partition of `0..n` after a seeded shuffle; fold sizes
/// differ by at most one. Returns an error when `k < 2` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<Vec<usize>>, SparseError> {
    if k < 2 || k > n {
        return Err(SparseError::Empty);
    }
    let idx = shuffled_indices(n, seed);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = n * f / k;
        let hi = n * (f + 1) / k;
        folds.push(idx[lo..hi].to_vec());
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn ds(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(8);
        for i in 0..n {
            let y = if i % 3 == 0 { 1.0 } else { -1.0 };
            b.push_row(&[((i % 8) as u32, i as f64 + 1.0)], y).unwrap();
        }
        b.finish()
    }

    #[test]
    fn holdout_partitions_all_rows() {
        let d = ds(100);
        let (train, test) = holdout_split(&d, 0.2, 7).unwrap();
        assert_eq!(test.n_samples(), 20);
        assert_eq!(train.n_samples(), 80);
        assert_eq!(train.dim(), d.dim());
        // Every original row value appears exactly once across the halves
        // (values are unique by construction).
        let mut vals: Vec<u64> = train
            .rows()
            .chain(test.rows())
            .map(|r| r.values[0] as u64)
            .collect();
        vals.sort_unstable();
        let expect: Vec<u64> = (1..=100).collect();
        assert_eq!(vals, expect);
    }

    #[test]
    fn holdout_is_deterministic_and_seed_sensitive() {
        let d = ds(50);
        let (a1, b1) = holdout_split(&d, 0.3, 1).unwrap();
        let (a2, b2) = holdout_split(&d, 0.3, 1).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (a3, _) = holdout_split(&d, 0.3, 2).unwrap();
        assert_ne!(a1, a3, "different seeds must give different splits");
    }

    #[test]
    fn holdout_rejects_degenerate_fractions() {
        let d = ds(10);
        assert!(holdout_split(&d, 0.0, 1).is_err());
        assert!(holdout_split(&d, 1.0, 1).is_err());
        assert!(holdout_split(&d, -0.1, 1).is_err());
        assert!(holdout_split(&d, 0.01, 1).is_err(), "rounds to empty test");
    }

    #[test]
    fn stratified_preserves_class_ratio() {
        let d = ds(300); // 100 positives, 200 negatives
        let (train, test) = stratified_holdout_split(&d, 0.2, 3).unwrap();
        let frac_pos = |x: &Dataset| {
            x.labels().iter().filter(|&&y| y > 0.0).count() as f64 / x.n_samples() as f64
        };
        assert!(
            (frac_pos(&test) - 1.0 / 3.0).abs() < 0.02,
            "{}",
            frac_pos(&test)
        );
        assert!((frac_pos(&train) - 1.0 / 3.0).abs() < 0.02);
        assert_eq!(train.n_samples() + test.n_samples(), 300);
    }

    #[test]
    fn stratified_test_is_shuffled_not_class_grouped() {
        let d = ds(300);
        let (_, test) = stratified_holdout_split(&d, 0.3, 3).unwrap();
        // If labels were grouped (all + then all −), the number of label
        // changes along the row order would be 1; a shuffle gives many.
        let changes = test
            .labels()
            .windows(2)
            .filter(|w| (w[0] > 0.0) != (w[1] > 0.0))
            .count();
        assert!(changes > 10, "labels look grouped: {changes} changes");
    }

    #[test]
    fn kfold_covers_everything_once() {
        let folds = kfold_indices(103, 5, 11).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        for f in &folds {
            assert!(f.len() == 20 || f.len() == 21);
        }
    }

    #[test]
    fn kfold_rejects_bad_k() {
        assert!(kfold_indices(10, 1, 0).is_err());
        assert!(kfold_indices(10, 11, 0).is_err());
        assert!(kfold_indices(10, 10, 0).is_ok());
    }
}
