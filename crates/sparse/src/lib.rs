//! Index-compressed sparse linear algebra for IS-ASGD.
//!
//! This crate is the "data compression for performance" substrate of the
//! paper's Figure 1: stochastic gradients of sparse generalized linear
//! models have the same support as the training sample, so both samples and
//! gradients are stored *index-compressed* — only non-zero `(index, value)`
//! pairs are kept — and every model update touches `O(nnz)` coordinates
//! instead of `O(d)`.
//!
//! The central types are:
//!
//! * [`SparseVec`] — an owned index-compressed vector.
//! * [`SparseRow`] — a borrowed view of one sample inside a dataset.
//! * [`Dataset`] — a CSR (compressed sparse row) collection of labelled
//!   samples, the input to every solver in the workspace.
//! * [`libsvm`] — text IO in the LibSVM format used by the paper's
//!   evaluation datasets.
//!
//! # Example
//!
//! ```
//! use isasgd_sparse::{Dataset, DatasetBuilder};
//!
//! let mut b = DatasetBuilder::new(4);
//! b.push_row(&[(0, 1.0), (2, -0.5)], 1.0).unwrap();
//! b.push_row(&[(1, 2.0), (3, 0.25)], -1.0).unwrap();
//! let ds: Dataset = b.finish();
//! assert_eq!(ds.n_samples(), 2);
//! assert_eq!(ds.dim(), 4);
//! assert_eq!(ds.row(0).dot_dense(&[1.0, 1.0, 2.0, 1.0]), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod libsvm;
pub mod ops;
pub mod split;
pub mod stats;
pub mod vector;

pub use dataset::{Dataset, DatasetBuilder, SparseRow};
pub use error::SparseError;
pub use split::{holdout_split, kfold_indices, stratified_holdout_split};
pub use stats::DatasetStats;
pub use vector::SparseVec;
