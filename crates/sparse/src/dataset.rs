//! CSR dataset container and row views.

use crate::error::SparseError;
use crate::vector::SparseVec;

/// A borrowed view of one sample: index-compressed features plus its label.
///
/// Rows are the unit every solver iterates over; all operations are
/// `O(nnz)`.
#[derive(Debug, Clone, Copy)]
pub struct SparseRow<'a> {
    /// Strictly increasing feature indices.
    pub indices: &'a [u32],
    /// Feature values parallel to `indices`.
    pub values: &'a [f64],
    /// Binary label in {-1.0, +1.0}.
    pub label: f64,
}

impl<'a> SparseRow<'a> {
    /// Number of non-zero features.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Dot product against a dense model vector — the margin kernel
    /// `wᵀx_i` every solver evaluates once per step.
    ///
    /// Unrolled 4-wide: four independent accumulators break the
    /// loop-carried add dependency so the gathers pipeline. Summation
    /// order differs from the strict left-to-right reduction for rows
    /// with ≥ 4 non-zeros (the accumulators combine as
    /// `(a₀+a₁)+(a₂+a₃)` before the strict-order tail); rows shorter
    /// than 4 non-zeros take only the tail loop and are bit-identical
    /// to [`SparseRow::dot_dense_strict`].
    #[inline]
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let (idx, val) = (self.indices, self.values);
        let chunks = idx.len() - idx.len() % 4;
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0, 0.0, 0.0);
        let mut i = 0;
        while i < chunks {
            a0 += val[i] * dense[idx[i] as usize];
            a1 += val[i + 1] * dense[idx[i + 1] as usize];
            a2 += val[i + 2] * dense[idx[i + 2] as usize];
            a3 += val[i + 3] * dense[idx[i + 3] as usize];
            i += 4;
        }
        // (0+0)+(0+0) is exactly 0.0, so the chunk-free case degenerates
        // to the strict loop bit-for-bit.
        let mut acc = (a0 + a1) + (a2 + a3);
        for j in chunks..idx.len() {
            acc += val[j] * dense[idx[j] as usize];
        }
        acc
    }

    /// The strict left-to-right dot product — the pre-unroll reduction
    /// order, kept for callers (and benches) that pin exact values
    /// against a sequential accumulation.
    #[inline]
    pub fn dot_dense_strict(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&i, &x) in self.indices.iter().zip(self.values) {
            acc += x * dense[i as usize];
        }
        acc
    }

    /// `dense += scale * x_i`, touching only the support.
    #[inline]
    pub fn axpy_into(&self, scale: f64, dense: &mut [f64]) {
        for (&i, &x) in self.indices.iter().zip(self.values) {
            dense[i as usize] += scale * x;
        }
    }

    /// Squared Euclidean norm of the features.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Euclidean norm of the features.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Copies this row into an owned [`SparseVec`].
    pub fn to_sparse_vec(&self) -> SparseVec {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
            .collect()
    }
}

/// An immutable CSR (compressed sparse row) dataset of labelled samples.
///
/// Storage is three parallel arrays (`offsets`, `indices`, `values`) plus a
/// label per row, exactly the layout used by high-performance ASGD
/// implementations: row access is two slice borrows, no hashing, no
/// indirection per non-zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    offsets: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.labels.len()
    }

    /// Declared dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Borrow row `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_samples()`.
    #[inline]
    pub fn row(&self, i: usize) -> SparseRow<'_> {
        let lo = self.offsets[i];
        let hi = self.offsets[i + 1];
        SparseRow {
            indices: &self.indices[lo..hi],
            values: &self.values[lo..hi],
            label: self.labels[i],
        }
    }

    /// Label of row `i` (±1).
    #[inline]
    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Iterates over all rows in order.
    pub fn rows(&self) -> impl Iterator<Item = SparseRow<'_>> + '_ {
        (0..self.n_samples()).map(move |i| self.row(i))
    }

    /// Average non-zeros per sample.
    pub fn mean_nnz(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.n_samples() as f64
        }
    }

    /// Fraction of non-zero entries relative to the dense `n × d` matrix —
    /// the "∇f_i sparsity" column of the paper's Table 1.
    pub fn density(&self) -> f64 {
        if self.is_empty() || self.dim == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.n_samples() as f64 * self.dim as f64)
        }
    }

    /// Builds a new dataset containing the rows at `order`, in that order.
    ///
    /// Used by importance balancing (paper Algorithm 3) and random shuffling
    /// to rearrange samples before sharding. Returns an error if any index
    /// is out of range; duplicate indices are allowed (bootstrap-style
    /// resampling is legitimate).
    pub fn reordered(&self, order: &[usize]) -> Result<Dataset, SparseError> {
        let mut b = DatasetBuilder::with_capacity(self.dim, order.len(), self.nnz());
        for &i in order {
            if i >= self.n_samples() {
                return Err(SparseError::IndexOutOfBounds {
                    index: i as u32,
                    dim: self.n_samples(),
                });
            }
            let r = self.row(i);
            b.push_row_unchecked(r.indices, r.values, r.label);
        }
        Ok(b.finish())
    }

    /// Splits `0..n` into `k` contiguous equal shards of row index ranges —
    /// Algorithm 4 line 9 (`D_tid = D_r[n*tid/numT : n*(tid+1)/numT]`).
    ///
    /// Returns an error when `k == 0` or `k > n`.
    pub fn shard_ranges(&self, k: usize) -> Result<Vec<std::ops::Range<usize>>, SparseError> {
        shard_ranges(self.n_samples(), k)
    }

    /// Estimated heap bytes of the CSR arrays (indices, values, offsets,
    /// labels); useful in the Figure-1 cost discussion.
    pub fn heap_bytes(&self) -> usize {
        self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.labels.len() * std::mem::size_of::<f64>()
    }
}

/// Computes `k` contiguous, nearly-equal ranges covering `0..n`.
pub fn shard_ranges(n: usize, k: usize) -> Result<Vec<std::ops::Range<usize>>, SparseError> {
    if k == 0 || k > n {
        return Err(SparseError::Empty);
    }
    // Same arithmetic as the paper's Algorithm 4 line 9.
    let mut out = Vec::with_capacity(k);
    for t in 0..k {
        let lo = n * t / k;
        let hi = n * (t + 1) / k;
        out.push(lo..hi);
    }
    Ok(out)
}

/// Incremental builder for [`Dataset`].
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    dim: usize,
    offsets: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
    labels: Vec<f64>,
}

impl DatasetBuilder {
    /// Starts a builder for dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        Self::with_capacity(dim, 0, 0)
    }

    /// Starts a builder with row/non-zero capacity hints.
    pub fn with_capacity(dim: usize, rows: usize, nnz: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Self {
            dim,
            offsets,
            indices: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
            labels: Vec::with_capacity(rows),
        }
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no rows were pushed yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Validates and appends a row given `(index, value)` pairs (may be
    /// unsorted) and a ±1 label.
    pub fn push_row(&mut self, pairs: &[(u32, f64)], label: f64) -> Result<(), SparseError> {
        let row = self.labels.len();
        if label != 1.0 && label != -1.0 {
            return Err(SparseError::BadLabel { row, label });
        }
        let v = SparseVec::from_pairs(pairs).map_err(|e| match e {
            SparseError::DuplicateIndex { index, .. } => SparseError::DuplicateIndex { row, index },
            SparseError::NonFiniteValue { .. } => SparseError::NonFiniteValue { row },
            other => other,
        })?;
        if let Some(&last) = v.indices().last() {
            if last as usize >= self.dim {
                return Err(SparseError::IndexOutOfBounds {
                    index: last,
                    dim: self.dim,
                });
            }
        }
        self.indices.extend_from_slice(v.indices());
        self.values.extend_from_slice(v.values());
        self.offsets.push(self.indices.len());
        self.labels.push(label);
        Ok(())
    }

    /// Appends a row assumed to be already validated (sorted, in-bounds,
    /// finite). Used on hot rebuild paths such as reordering.
    pub fn push_row_unchecked(&mut self, indices: &[u32], values: &[f64], label: f64) {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(indices.last().is_none_or(|&l| (l as usize) < self.dim));
        debug_assert_eq!(indices.len(), values.len());
        self.indices.extend_from_slice(indices);
        self.values.extend_from_slice(values);
        self.offsets.push(self.indices.len());
        self.labels.push(label);
    }

    /// Finalizes the dataset.
    pub fn finish(self) -> Dataset {
        Dataset {
            dim: self.dim,
            offsets: self.offsets,
            indices: self.indices,
            values: self.values,
            labels: self.labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut b = DatasetBuilder::new(5);
        b.push_row(&[(0, 1.0), (2, 2.0)], 1.0).unwrap();
        b.push_row(&[(1, -1.0)], -1.0).unwrap();
        b.push_row(&[(2, 0.5), (4, 4.0)], 1.0).unwrap();
        b.finish()
    }

    #[test]
    fn builder_roundtrip() {
        let ds = tiny();
        assert_eq!(ds.n_samples(), 3);
        assert_eq!(ds.dim(), 5);
        assert_eq!(ds.nnz(), 5);
        let r = ds.row(2);
        assert_eq!(r.indices, &[2, 4]);
        assert_eq!(r.values, &[0.5, 4.0]);
        assert_eq!(r.label, 1.0);
    }

    #[test]
    fn builder_rejects_bad_rows() {
        let mut b = DatasetBuilder::new(3);
        assert!(matches!(
            b.push_row(&[(3, 1.0)], 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            b.push_row(&[(0, 1.0)], 0.5),
            Err(SparseError::BadLabel { .. })
        ));
        assert!(matches!(
            b.push_row(&[(0, 1.0), (0, 2.0)], 1.0),
            Err(SparseError::DuplicateIndex { row: 0, index: 0 })
        ));
    }

    #[test]
    fn density_and_mean_nnz() {
        let ds = tiny();
        assert!((ds.density() - 5.0 / 15.0).abs() < 1e-12);
        assert!((ds.mean_nnz() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_ops_match_vector_ops() {
        let ds = tiny();
        let dense = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = ds.row(0);
        assert_eq!(r.dot_dense(&dense), 1.0 + 6.0);
        let mut acc = vec![0.0; 5];
        r.axpy_into(2.0, &mut acc);
        assert_eq!(acc, vec![2.0, 0.0, 4.0, 0.0, 0.0]);
        assert_eq!(r.norm_sq(), 5.0);
        assert_eq!(r.to_sparse_vec().nnz(), 2);
    }

    #[test]
    fn reordered_permutes_rows() {
        let ds = tiny();
        let rd = ds.reordered(&[2, 0, 1]).unwrap();
        assert_eq!(rd.row(0).indices, ds.row(2).indices);
        assert_eq!(rd.label(1), ds.label(0));
        assert_eq!(rd.nnz(), ds.nnz());
        assert!(ds.reordered(&[9]).is_err());
    }

    #[test]
    fn reordered_allows_duplicates() {
        let ds = tiny();
        let rd = ds.reordered(&[0, 0, 0]).unwrap();
        assert_eq!(rd.n_samples(), 3);
        assert_eq!(rd.row(2).indices, ds.row(0).indices);
    }

    #[test]
    fn shard_ranges_cover_and_partition() {
        let ranges = shard_ranges(10, 3).unwrap();
        assert_eq!(ranges, vec![0..3, 3..6, 6..10]);
        assert!(shard_ranges(2, 0).is_err());
        assert!(shard_ranges(2, 3).is_err());
        let ranges = shard_ranges(4, 4).unwrap();
        assert!(ranges.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn unrolled_dot_matches_strict_for_short_rows_exactly() {
        // Rows with fewer than 4 non-zeros skip the unrolled chunks
        // entirely — the tail loop IS the strict loop, bit-for-bit.
        let mut b = DatasetBuilder::new(8);
        b.push_row(&[(1, 0.1)], 1.0).unwrap();
        b.push_row(&[(0, 0.3), (5, -0.7)], -1.0).unwrap();
        b.push_row(&[(2, 1e-3), (3, 0.11), (7, -9.4)], 1.0).unwrap();
        let ds = b.finish();
        let w: Vec<f64> = (0..8).map(|i| 0.1 + 0.77 * i as f64).collect();
        for i in 0..ds.n_samples() {
            let r = ds.row(i);
            assert_eq!(r.dot_dense(&w).to_bits(), r.dot_dense_strict(&w).to_bits());
        }
    }

    #[test]
    fn unrolled_dot_matches_strict_for_long_rows_closely() {
        // ≥ 4 non-zeros: the 4-wide reduction order differs, but only by
        // floating-point associativity — values agree to relative 1e-12.
        for nnz in [4usize, 5, 7, 8, 13, 64, 101] {
            let pairs: Vec<(u32, f64)> = (0..nnz)
                .map(|j| (j as u32, ((j * 37 + 11) % 19) as f64 * 0.31 - 2.0))
                .collect();
            let mut b = DatasetBuilder::new(nnz);
            b.push_row(&pairs, 1.0).unwrap();
            let ds = b.finish();
            let w: Vec<f64> = (0..nnz).map(|i| (i as f64 * 1.37).sin()).collect();
            let r = ds.row(0);
            let (fast, strict) = (r.dot_dense(&w), r.dot_dense_strict(&w));
            assert!(
                (fast - strict).abs() <= 1e-12 * (1.0 + strict.abs()),
                "nnz={nnz}: {fast} vs {strict}"
            );
        }
    }

    #[test]
    fn rows_iterator_visits_all() {
        let ds = tiny();
        let total: usize = ds.rows().map(|r| r.nnz()).sum();
        assert_eq!(total, ds.nnz());
    }

    #[test]
    fn heap_bytes_positive() {
        assert!(tiny().heap_bytes() > 0);
    }
}
