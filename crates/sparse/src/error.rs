//! Error types for sparse data structures and IO.

use std::fmt;

/// Errors produced while building, validating or parsing sparse data.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A feature index was outside the declared dimensionality.
    IndexOutOfBounds {
        /// The offending feature index.
        index: u32,
        /// The declared dimensionality.
        dim: usize,
    },
    /// Indices within a row were not strictly increasing.
    UnsortedIndices {
        /// Row in which the violation occurred (if known).
        row: usize,
    },
    /// A duplicate feature index appeared within one row.
    DuplicateIndex {
        /// Row in which the violation occurred (if known).
        row: usize,
        /// The duplicated feature index.
        index: u32,
    },
    /// A value was NaN or infinite.
    NonFiniteValue {
        /// Row in which the violation occurred (if known).
        row: usize,
    },
    /// A label could not be interpreted as a binary ±1 class.
    BadLabel {
        /// Row in which the violation occurred.
        row: usize,
        /// The raw label encountered.
        label: f64,
    },
    /// A malformed line was found while parsing LibSVM text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// An underlying IO error (message-only so the error stays `Clone`).
    Io(String),
    /// The dataset is empty where a non-empty one is required.
    Empty,
    /// Two datasets/shards had incompatible dimensionality.
    DimMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dimensionality actually found.
        found: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { index, dim } => {
                write!(f, "feature index {index} out of bounds for dimension {dim}")
            }
            SparseError::UnsortedIndices { row } => {
                write!(f, "indices not strictly increasing in row {row}")
            }
            SparseError::DuplicateIndex { row, index } => {
                write!(f, "duplicate feature index {index} in row {row}")
            }
            SparseError::NonFiniteValue { row } => {
                write!(f, "non-finite feature value in row {row}")
            }
            SparseError::BadLabel { row, label } => {
                write!(f, "label {label} in row {row} is not interpretable as ±1")
            }
            SparseError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            SparseError::Io(msg) => write!(f, "io error: {msg}"),
            SparseError::Empty => write!(f, "dataset is empty"),
            SparseError::DimMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds { index: 7, dim: 4 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));
        let e = SparseError::Parse {
            line: 3,
            msg: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
