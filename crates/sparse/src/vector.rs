//! Owned index-compressed sparse vectors.

use crate::error::SparseError;

/// An owned sparse vector stored as parallel `(indices, values)` arrays with
/// strictly increasing indices.
///
/// This is the representation of a single stochastic gradient in the paper's
/// Figure 1: for GLM losses the gradient support equals the sample support,
/// so a gradient is a scalar multiple of the sample and can be kept
/// index-compressed end-to-end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Creates an empty sparse vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sparse vector with capacity for `cap` non-zeros.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            indices: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Builds a sparse vector from `(index, value)` pairs.
    ///
    /// Pairs may arrive unsorted; they are sorted by index. Returns an error
    /// on duplicate indices or non-finite values.
    pub fn from_pairs(pairs: &[(u32, f64)]) -> Result<Self, SparseError> {
        let mut sorted: Vec<(u32, f64)> = pairs.to_vec();
        sorted.sort_unstable_by_key(|&(i, _)| i);
        let mut v = Self::with_capacity(sorted.len());
        for &(i, x) in &sorted {
            if !x.is_finite() {
                return Err(SparseError::NonFiniteValue { row: 0 });
            }
            if let Some(&last) = v.indices.last() {
                if last == i {
                    return Err(SparseError::DuplicateIndex { row: 0, index: i });
                }
            }
            v.indices.push(i);
            v.values.push(x);
        }
        Ok(v)
    }

    /// Builds a dense `Vec<f64>` of length `dim` from this vector.
    pub fn to_dense(&self, dim: usize) -> Vec<f64> {
        let mut out = vec![0.0; dim];
        for (&i, &x) in self.indices.iter().zip(&self.values) {
            out[i as usize] = x;
        }
        out
    }

    /// Builds a sparse vector from a dense slice, dropping exact zeros.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut v = Self::new();
        for (i, &x) in dense.iter().enumerate() {
            if x != 0.0 {
                v.indices.push(i as u32);
                v.values.push(x);
            }
        }
        v
    }

    /// Appends a non-zero entry; `index` must exceed the current last index.
    pub fn push(&mut self, index: u32, value: f64) -> Result<(), SparseError> {
        if let Some(&last) = self.indices.last() {
            if index <= last {
                return Err(SparseError::UnsortedIndices { row: 0 });
            }
        }
        if !value.is_finite() {
            return Err(SparseError::NonFiniteValue { row: 0 });
        }
        self.indices.push(index);
        self.values.push(value);
        Ok(())
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True when no non-zeros are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The stored indices (strictly increasing).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored values, parallel to [`Self::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Removes all entries, keeping capacity.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Dot product against a dense vector.
    ///
    /// Cost is `O(nnz)` — this is the index-compressed fast path the paper's
    /// performance argument rests on.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&i, &x) in self.indices.iter().zip(&self.values) {
            acc += x * dense[i as usize];
        }
        acc
    }

    /// `dense += scale * self`, touching only `nnz` coordinates.
    pub fn axpy_into(&self, scale: f64, dense: &mut [f64]) {
        for (&i, &x) in self.indices.iter().zip(&self.values) {
            dense[i as usize] += scale * x;
        }
    }

    /// Scales all values in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// L1 norm.
    pub fn norm_l1(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Sparse-sparse dot product via index merge, `O(nnz_a + nnz_b)`.
    pub fn dot_sparse(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b) = (0usize, 0usize);
        let mut acc = 0.0;
        while a < self.nnz() && b < other.nnz() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[a] * other.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        acc
    }

    /// True when the two vectors share at least one index (a "conflict" edge
    /// in the paper's §3.1 conflict graph).
    pub fn overlaps(&self, other: &SparseVec) -> bool {
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.nnz() && b < other.nnz() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl FromIterator<(u32, f64)> for SparseVec {
    /// Collects pairs that are assumed sorted and unique; panics in debug
    /// builds otherwise. Use [`SparseVec::from_pairs`] for untrusted input.
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        let mut v = SparseVec::new();
        for (i, x) in iter {
            debug_assert!(v.indices.last().is_none_or(|&l| l < i));
            v.indices.push(i);
            v.values.push(x);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(pairs).unwrap()
    }

    #[test]
    fn from_pairs_sorts() {
        let v = sv(&[(3, 1.0), (0, 2.0)]);
        assert_eq!(v.indices(), &[0, 3]);
        assert_eq!(v.values(), &[2.0, 1.0]);
    }

    #[test]
    fn from_pairs_rejects_duplicates() {
        assert!(matches!(
            SparseVec::from_pairs(&[(1, 1.0), (1, 2.0)]),
            Err(SparseError::DuplicateIndex { .. })
        ));
    }

    #[test]
    fn from_pairs_rejects_nan() {
        assert!(matches!(
            SparseVec::from_pairs(&[(1, f64::NAN)]),
            Err(SparseError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn push_requires_increasing_indices() {
        let mut v = SparseVec::new();
        v.push(2, 1.0).unwrap();
        assert!(v.push(2, 1.0).is_err());
        assert!(v.push(1, 1.0).is_err());
        v.push(5, -1.0).unwrap();
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dense_roundtrip() {
        let v = sv(&[(0, 1.5), (4, -2.0)]);
        let d = v.to_dense(6);
        assert_eq!(d, vec![1.5, 0.0, 0.0, 0.0, -2.0, 0.0]);
        assert_eq!(SparseVec::from_dense(&d), v);
    }

    #[test]
    fn dot_dense_matches_dense_math() {
        let v = sv(&[(1, 2.0), (3, -1.0)]);
        let d = [0.5, 1.0, 7.0, 2.0];
        assert_eq!(v.dot_dense(&d), 2.0 - 2.0);
    }

    #[test]
    fn axpy_touches_only_support() {
        let v = sv(&[(0, 1.0), (2, 2.0)]);
        let mut d = vec![0.0; 4];
        v.axpy_into(-0.5, &mut d);
        assert_eq!(d, vec![-0.5, 0.0, -1.0, 0.0]);
    }

    #[test]
    fn norms() {
        let v = sv(&[(0, 3.0), (9, -4.0)]);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_l1(), 7.0);
    }

    #[test]
    fn sparse_dot_and_overlap() {
        let a = sv(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = sv(&[(2, 4.0), (4, 1.0), (5, -1.0)]);
        assert_eq!(a.dot_sparse(&b), 8.0 - 3.0);
        assert!(a.overlaps(&b));
        let c = sv(&[(1, 1.0), (3, 1.0)]);
        assert_eq!(a.dot_sparse(&c), 0.0);
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn scale_and_clear() {
        let mut v = sv(&[(1, 2.0)]);
        v.scale(3.0);
        assert_eq!(v.values(), &[6.0]);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn empty_vector_behaviour() {
        let v = SparseVec::new();
        assert_eq!(v.dot_dense(&[1.0, 2.0]), 0.0);
        assert_eq!(v.norm(), 0.0);
        assert!(!v.overlaps(&v));
    }
}
