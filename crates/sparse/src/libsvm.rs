//! LibSVM text format IO.
//!
//! The paper evaluates on LibSVM-distributed datasets (News20, URL,
//! KDD2010-Algebra/Bridge). This module parses and writes the standard
//! `label idx:val idx:val ...` text format with 1-based indices, so any real
//! LibSVM file can be dropped into the experiment harness in place of the
//! synthetic profiles.

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::SparseError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses LibSVM text from a reader.
///
/// * `dim` — optional dimensionality override; when `None`, the maximum
///   feature index observed defines the dimension.
/// * Labels: any value `> 0` maps to `+1`, `<= 0` (including `0`, and the
///   `-1`/`0` conventions in the wild) maps to `-1`.
pub fn parse_reader<R: Read>(reader: R, dim: Option<usize>) -> Result<Dataset, SparseError> {
    let reader = BufReader::new(reader);
    // Two-pass parsing would need a seekable reader; collect rows first.
    let mut rows: Vec<(Vec<(u32, f64)>, f64)> = Vec::new();
    let mut max_index: u32 = 0;
    let mut line_buf = String::new();
    let mut lines = reader.lines();
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        let Some(line) = lines.next() else { break };
        let line = line?;
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_ascii_whitespace();
        let label_tok = parts.next().ok_or_else(|| SparseError::Parse {
            line: line_no,
            msg: "missing label".into(),
        })?;
        let raw_label: f64 = label_tok.parse().map_err(|_| SparseError::Parse {
            line: line_no,
            msg: format!("bad label token '{label_tok}'"),
        })?;
        let label = if raw_label > 0.0 { 1.0 } else { -1.0 };
        let mut pairs = Vec::new();
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| SparseError::Parse {
                line: line_no,
                msg: format!("expected idx:val, got '{tok}'"),
            })?;
            let idx: u32 = idx_s.parse().map_err(|_| SparseError::Parse {
                line: line_no,
                msg: format!("bad index '{idx_s}'"),
            })?;
            if idx == 0 {
                return Err(SparseError::Parse {
                    line: line_no,
                    msg: "LibSVM indices are 1-based; found 0".into(),
                });
            }
            let val: f64 = val_s.parse().map_err(|_| SparseError::Parse {
                line: line_no,
                msg: format!("bad value '{val_s}'"),
            })?;
            max_index = max_index.max(idx);
            pairs.push((idx - 1, val)); // store 0-based
        }
        rows.push((pairs, label));
    }
    let inferred = max_index as usize;
    let dim = match dim {
        Some(d) => {
            if d < inferred {
                return Err(SparseError::DimMismatch {
                    expected: d,
                    found: inferred,
                });
            }
            d
        }
        None => inferred,
    };
    let mut b =
        DatasetBuilder::with_capacity(dim, rows.len(), rows.iter().map(|r| r.0.len()).sum());
    for (i, (pairs, label)) in rows.into_iter().enumerate() {
        b.push_row(&pairs, label).map_err(|e| match e {
            SparseError::DuplicateIndex { index, .. } => {
                SparseError::DuplicateIndex { row: i, index }
            }
            other => other,
        })?;
    }
    Ok(b.finish())
}

/// Parses a LibSVM file from disk.
pub fn read_file<P: AsRef<Path>>(path: P, dim: Option<usize>) -> Result<Dataset, SparseError> {
    let f = std::fs::File::open(path)?;
    parse_reader(f, dim)
}

/// Writes a dataset as LibSVM text (1-based indices, `%.17g`-style values).
pub fn write_writer<W: Write>(ds: &Dataset, mut w: W) -> Result<(), SparseError> {
    let mut line = String::new();
    for row in ds.rows() {
        line.clear();
        line.push_str(if row.label > 0.0 { "+1" } else { "-1" });
        for (i, v) in row.indices.iter().zip(row.values) {
            line.push(' ');
            line.push_str(&format!("{}:{}", i + 1, v));
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Writes a dataset to a LibSVM file on disk.
pub fn write_file<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<(), SparseError> {
    let f = std::fs::File::create(path)?;
    write_writer(ds, std::io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let text = "+1 1:0.5 3:2\n-1 2:1\n";
        let ds = parse_reader(text.as_bytes(), None).unwrap();
        assert_eq!(ds.n_samples(), 2);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.row(0).indices, &[0, 2]);
        assert_eq!(ds.row(0).values, &[0.5, 2.0]);
        assert_eq!(ds.label(1), -1.0);
    }

    #[test]
    fn label_conventions() {
        let text = "1 1:1\n0 1:1\n-1 1:1\n2 1:1\n";
        let ds = parse_reader(text.as_bytes(), None).unwrap();
        assert_eq!(ds.labels(), &[1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let text = "# header\n\n+1 1:1\n";
        let ds = parse_reader(text.as_bytes(), None).unwrap();
        assert_eq!(ds.n_samples(), 1);
    }

    #[test]
    fn rejects_zero_index() {
        let text = "+1 0:1\n";
        assert!(matches!(
            parse_reader(text.as_bytes(), None),
            Err(SparseError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_malformed_tokens() {
        for bad in ["+1 1-2", "+1 a:1", "+1 1:x", "notalabel 1:1"] {
            let r = parse_reader(format!("{bad}\n").as_bytes(), None);
            assert!(r.is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn dim_override_checked() {
        let text = "+1 5:1\n";
        assert!(parse_reader(text.as_bytes(), Some(3)).is_err());
        let ds = parse_reader(text.as_bytes(), Some(10)).unwrap();
        assert_eq!(ds.dim(), 10);
    }

    #[test]
    fn roundtrip_through_text() {
        let text = "+1 1:0.5 3:2\n-1 2:1.25\n+1 1:-3\n";
        let ds = parse_reader(text.as_bytes(), None).unwrap();
        let mut buf = Vec::new();
        write_writer(&ds, &mut buf).unwrap();
        let ds2 = parse_reader(buf.as_slice(), Some(ds.dim())).unwrap();
        assert_eq!(ds, ds2);
    }

    #[test]
    fn unsorted_indices_within_line_are_sorted() {
        let text = "+1 3:3 1:1\n";
        let ds = parse_reader(text.as_bytes(), None).unwrap();
        assert_eq!(ds.row(0).indices, &[0, 2]);
    }

    #[test]
    fn duplicate_index_within_line_rejected() {
        let text = "+1 2:1 2:5\n";
        assert!(parse_reader(text.as_bytes(), None).is_err());
    }
}
