//! Per-dataset statistics: density, norms, feature frequencies.
//!
//! These feed the paper's Table 1 (dimension, instances, ∇f_i sparsity) and
//! the conflict-graph analysis of §3.1 (feature popularity determines the
//! conflict degree Δ̄).

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Summary statistics of a [`Dataset`], serializable for experiment logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dimensionality `d`.
    pub dim: usize,
    /// Number of samples `n`.
    pub n_samples: usize,
    /// Total non-zeros.
    pub nnz: usize,
    /// `nnz / (n * d)` — the sparsity column of Table 1.
    pub density: f64,
    /// Mean non-zeros per row.
    pub mean_nnz: f64,
    /// Maximum non-zeros in any row.
    pub max_nnz: usize,
    /// Minimum non-zeros in any row.
    pub min_nnz: usize,
    /// Mean squared feature norm `E‖x_i‖²`.
    pub mean_norm_sq: f64,
    /// Maximum squared feature norm.
    pub max_norm_sq: f64,
    /// Fraction of positive labels.
    pub positive_fraction: f64,
    /// Number of features that appear in at least one sample.
    pub active_features: usize,
}

impl DatasetStats {
    /// Computes statistics in one pass over the dataset (plus one bitmap of
    /// size `d` for active features).
    pub fn compute(ds: &Dataset) -> Self {
        let n = ds.n_samples();
        let mut max_nnz = 0usize;
        let mut min_nnz = usize::MAX;
        let mut sum_norm_sq = 0.0;
        let mut max_norm_sq: f64 = 0.0;
        let mut positives = 0usize;
        let mut active = vec![false; ds.dim()];
        for row in ds.rows() {
            let k = row.nnz();
            max_nnz = max_nnz.max(k);
            min_nnz = min_nnz.min(k);
            let ns = row.norm_sq();
            sum_norm_sq += ns;
            max_norm_sq = max_norm_sq.max(ns);
            if row.label > 0.0 {
                positives += 1;
            }
            for &i in row.indices {
                active[i as usize] = true;
            }
        }
        if n == 0 {
            min_nnz = 0;
        }
        DatasetStats {
            dim: ds.dim(),
            n_samples: n,
            nnz: ds.nnz(),
            density: ds.density(),
            mean_nnz: ds.mean_nnz(),
            max_nnz,
            min_nnz,
            mean_norm_sq: if n == 0 { 0.0 } else { sum_norm_sq / n as f64 },
            max_norm_sq,
            positive_fraction: if n == 0 {
                0.0
            } else {
                positives as f64 / n as f64
            },
            active_features: active.iter().filter(|&&a| a).count(),
        }
    }
}

/// Number of samples containing each feature (inverted-index row counts).
///
/// The degree of sample `i` in the conflict graph is governed by how popular
/// its features are; this histogram is the raw input for estimating Δ̄.
pub fn feature_frequencies(ds: &Dataset) -> Vec<u32> {
    let mut freq = vec![0u32; ds.dim()];
    for row in ds.rows() {
        for &i in row.indices {
            freq[i as usize] += 1;
        }
    }
    freq
}

/// Squared feature norms `‖x_i‖²` for all rows.
pub fn row_norms_sq(ds: &Dataset) -> Vec<f64> {
    ds.rows().map(|r| r.norm_sq()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn ds() -> Dataset {
        let mut b = DatasetBuilder::new(4);
        b.push_row(&[(0, 3.0), (1, 4.0)], 1.0).unwrap();
        b.push_row(&[(1, 1.0)], -1.0).unwrap();
        b.finish()
    }

    #[test]
    fn stats_basic() {
        let s = DatasetStats::compute(&ds());
        assert_eq!(s.n_samples, 2);
        assert_eq!(s.dim, 4);
        assert_eq!(s.nnz, 3);
        assert_eq!(s.max_nnz, 2);
        assert_eq!(s.min_nnz, 1);
        assert_eq!(s.max_norm_sq, 25.0);
        assert!((s.mean_norm_sq - 13.0).abs() < 1e-12);
        assert_eq!(s.positive_fraction, 0.5);
        assert_eq!(s.active_features, 2);
        assert!((s.density - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_dataset() {
        let b = DatasetBuilder::new(3);
        let s = DatasetStats::compute(&b.finish());
        assert_eq!(s.n_samples, 0);
        assert_eq!(s.min_nnz, 0);
        assert_eq!(s.mean_norm_sq, 0.0);
    }

    #[test]
    fn frequencies_and_norms() {
        let d = ds();
        assert_eq!(feature_frequencies(&d), vec![1, 2, 0, 0]);
        assert_eq!(row_norms_sq(&d), vec![25.0, 1.0]);
    }

    #[test]
    fn stats_serialize_roundtrip() {
        let s = DatasetStats::compute(&ds());
        let json = serde_json::to_string(&s).unwrap();
        let back: DatasetStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
