//! Per-sample importance weights (paper §2.2, Eq. 11–12, 16).
//!
//! The optimal IS distribution `p_i ∝ ‖∇f_i(w_t)‖` (Eq. 11) is
//! impractical — it changes every iteration — so the paper follows
//! Zhao–Zhang and uses the static supremum bound `sup‖∇f_i(w)‖ ≤ R·L_i`,
//! giving `p_i = L_i / Σ_j L_j` (Eq. 12). Several choices of the
//! per-sample constant are in circulation; this module implements the ones
//! the paper references so experiments can compare them.

use crate::loss::Loss;
use crate::regularizer::Regularizer;
use isasgd_sparse::Dataset;

/// How the static per-sample importance `L_i` is computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImportanceScheme {
    /// Gradient-Lipschitz (smoothness) constants:
    /// `L_i = ℓ''_max·‖x_i‖² + curvature(reg)`. The standard choice for
    /// smooth losses (Needell et al. 2014; used in the paper's Lemma 2,
    /// where bounds are expressed in `supL`, `L̄`, `inf L`).
    LipschitzSmoothness,
    /// Gradient-norm bounds under a model-radius assumption:
    /// `L_i = ℓ'_bound(‖x_i‖, R)·‖x_i‖ + η·√d_reg` — the Eq. 16 style
    /// bound the paper derives for the squared-hinge SVM.
    GradNormBound {
        /// Assumed bound `R ≥ ‖w_t‖` for all t (paper's `‖w_t‖ ≤ R`).
        radius: f64,
    },
    /// Uniform weights — degrades IS-SGD to plain SGD; baseline/ablation.
    Uniform,
    /// Partially biased sampling (Needell et al. 2014, §5): a convex mix
    /// `p_i ∝ bias·L̄ + (1−bias)·L_i` of uniform and Lipschitz weights.
    /// Caps the step correction at `1/bias`, trading a bounded amount of
    /// variance reduction for robustness against tiny-`L_i` samples.
    PartiallyBiased {
        /// Mixing weight of the uniform component, in (0, 1].
        bias: f64,
    },
}

/// Computes the per-sample importance vector `{L_i}` for a dataset.
///
/// The returned weights are the *unnormalized* sampling weights of paper
/// Eq. 12; normalize via the samplers. Weights are strictly positive: an
/// empty row receives the smallest positive weight observed (or 1.0) so
/// the distribution never loses support — a zero-probability sample would
/// never be visited and its loss never reduced.
pub fn importance_weights<L: Loss>(
    ds: &Dataset,
    loss: &L,
    reg: Regularizer,
    scheme: ImportanceScheme,
) -> Vec<f64> {
    let n = ds.n_samples();
    let mut w = Vec::with_capacity(n);
    match scheme {
        ImportanceScheme::Uniform => {
            w.resize(n, 1.0);
            return w;
        }
        ImportanceScheme::LipschitzSmoothness => {
            let s = loss.smoothness();
            let c = reg.curvature();
            for row in ds.rows() {
                w.push(s * row.norm_sq() + c);
            }
        }
        ImportanceScheme::GradNormBound { radius } => {
            let eta = reg.eta();
            for row in ds.rows() {
                let xn = row.norm();
                w.push(loss.derivative_bound(xn, radius) * xn + eta);
            }
        }
        ImportanceScheme::PartiallyBiased { bias } => {
            let bias = bias.clamp(0.0, 1.0);
            let s = loss.smoothness();
            let c = reg.curvature();
            for row in ds.rows() {
                w.push(s * row.norm_sq() + c);
            }
            let mean = w.iter().sum::<f64>() / n.max(1) as f64;
            for x in &mut w {
                *x = bias * mean + (1.0 - bias) * *x;
            }
        }
    }
    // Re-floor degenerate weights (all-zero rows).
    let min_pos = w
        .iter()
        .copied()
        .filter(|&x| x > 0.0)
        .fold(f64::INFINITY, f64::min);
    let floor = if min_pos.is_finite() { min_pos } else { 1.0 };
    for x in &mut w {
        if *x <= 0.0 {
            *x = floor;
        }
    }
    w
}

/// Inverse-probability step correction `1/(n·p_i)` for each sample
/// (paper Eq. 8): with `p_i = L_i/ΣL`, this equals `L̄/L_i`.
/// (Canonical implementation lives in `isasgd-sampling`, next to the
/// samplers that consume it.)
pub use isasgd_sampling::step_corrections;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{LogisticLoss, SquaredHingeLoss};
    use isasgd_sparse::DatasetBuilder;

    fn ds() -> Dataset {
        let mut b = DatasetBuilder::new(4);
        b.push_row(&[(0, 1.0)], 1.0).unwrap(); // ‖x‖² = 1
        b.push_row(&[(1, 2.0)], -1.0).unwrap(); // ‖x‖² = 4
        b.push_row(&[(2, 2.0), (3, 1.0)], 1.0).unwrap(); // ‖x‖² = 5
        b.finish()
    }

    #[test]
    fn lipschitz_weights_scale_with_norm_sq() {
        let w = importance_weights(
            &ds(),
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::LipschitzSmoothness,
        );
        assert_eq!(w.len(), 3);
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 1.0).abs() < 1e-12);
        assert!((w[2] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn l2_curvature_enters_weights() {
        let w = importance_weights(
            &ds(),
            &LogisticLoss,
            Regularizer::L2 { eta: 0.5 },
            ImportanceScheme::LipschitzSmoothness,
        );
        assert!((w[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gradnorm_weights_positive_and_ordered() {
        let w = importance_weights(
            &ds(),
            &SquaredHingeLoss,
            Regularizer::L2 { eta: 0.1 },
            ImportanceScheme::GradNormBound { radius: 2.0 },
        );
        assert!(w.iter().all(|&x| x > 0.0));
        // Larger norm ⇒ larger weight under this scheme too.
        assert!(w[2] > w[1] && w[1] > w[0]);
    }

    #[test]
    fn uniform_weights() {
        let w = importance_weights(
            &ds(),
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::Uniform,
        );
        assert_eq!(w, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_rows_get_positive_floor() {
        let mut b = DatasetBuilder::new(2);
        b.push_row(&[], 1.0).unwrap();
        b.push_row(&[(0, 3.0)], -1.0).unwrap();
        let d = b.finish();
        let w = importance_weights(
            &d,
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::LipschitzSmoothness,
        );
        assert!(w[0] > 0.0);
        assert_eq!(w[0], w.iter().cloned().fold(f64::INFINITY, f64::min));
    }

    #[test]
    fn partially_biased_interpolates() {
        let d = ds();
        let pure = importance_weights(
            &d,
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::LipschitzSmoothness,
        );
        let mean = pure.iter().sum::<f64>() / pure.len() as f64;
        // bias = 1 ⇒ uniform at the mean level.
        let w1 = importance_weights(
            &d,
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::PartiallyBiased { bias: 1.0 },
        );
        for &x in &w1 {
            assert!((x - mean).abs() < 1e-12);
        }
        // bias = 0 ⇒ pure Lipschitz weights.
        let w0 = importance_weights(
            &d,
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::PartiallyBiased { bias: 0.0 },
        );
        for (a, b) in w0.iter().zip(&pure) {
            assert!((a - b).abs() < 1e-12);
        }
        // bias = 0.5 caps the correction at 2 = 1/bias.
        let w5 = importance_weights(
            &d,
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::PartiallyBiased { bias: 0.5 },
        );
        let corr = step_corrections(&w5);
        assert!(corr.iter().all(|&c| c <= 2.0 + 1e-9), "{corr:?}");
    }

    #[test]
    fn step_corrections_are_mean_over_weight() {
        let c = step_corrections(&[1.0, 2.0, 3.0]);
        let mean = 2.0;
        assert!((c[0] - mean / 1.0).abs() < 1e-12);
        assert!((c[1] - mean / 2.0).abs() < 1e-12);
        assert!((c[2] - mean / 3.0).abs() < 1e-12);
        // Expectation of correction under p_i = L_i/ΣL is 1.
        let total: f64 = 6.0;
        let e: f64 = c
            .iter()
            .zip([1.0, 2.0, 3.0])
            .map(|(&ci, li)| ci * li / total)
            .sum();
        assert!((e - 1.0).abs() < 1e-12);
    }
}
