//! Regularizers `η·r(w)` with sparse (on-support) application.
//!
//! A dense regularizer gradient would reintroduce exactly the `O(d)`
//! per-iteration cost the paper eliminates, so — following the Hogwild
//! code base the paper builds on — the regularizer is applied **lazily on
//! the support of the current sample**, scaled by the inverse feature
//! frequency so the *expected* regularization force matches the full
//! gradient. With uniform scaling `1.0` the regularizer is simply applied
//! on-support (the common practical choice); both scalings are exposed.

/// Regularization term added to every `f_i`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Regularizer {
    /// No regularization.
    #[default]
    None,
    /// `η·‖w‖₁` — the paper's evaluation choice (L1 cross-entropy).
    L1 {
        /// Regularization factor η.
        eta: f64,
    },
    /// `(η/2)·‖w‖₂²`.
    L2 {
        /// Regularization factor η.
        eta: f64,
    },
}

impl Regularizer {
    /// The regularization factor η (0 for `None`).
    pub fn eta(&self) -> f64 {
        match *self {
            Regularizer::None => 0.0,
            Regularizer::L1 { eta } | Regularizer::L2 { eta } => eta,
        }
    }

    /// Value `η·r(w)` for a dense model.
    pub fn value(&self, w: &[f64]) -> f64 {
        match *self {
            Regularizer::None => 0.0,
            Regularizer::L1 { eta } => eta * w.iter().map(|x| x.abs()).sum::<f64>(),
            Regularizer::L2 { eta } => 0.5 * eta * w.iter().map(|x| x * x).sum::<f64>(),
        }
    }

    /// Sub/gradient contribution at coordinate value `wj`.
    #[inline]
    pub fn grad_coord(&self, wj: f64) -> f64 {
        match *self {
            Regularizer::None => 0.0,
            Regularizer::L1 { eta } => {
                if wj > 0.0 {
                    eta
                } else if wj < 0.0 {
                    -eta
                } else {
                    0.0
                }
            }
            Regularizer::L2 { eta } => eta * wj,
        }
    }

    /// Curvature (strong-convexity / smoothness contribution) of the
    /// regularizer: `η` for L2, `0` otherwise. Enters the per-sample
    /// Lipschitz constant `L_i = smoothness·‖x_i‖² + curvature`.
    pub fn curvature(&self) -> f64 {
        match *self {
            Regularizer::L2 { eta } => eta,
            _ => 0.0,
        }
    }

    /// True when `r` makes each `f_i` strongly convex (the paper's µ-convex
    /// assumption, Eq. 5).
    pub fn strongly_convex(&self) -> bool {
        matches!(self, Regularizer::L2 { eta } if *eta > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values() {
        let w = [1.0, -2.0, 0.0];
        assert_eq!(Regularizer::None.value(&w), 0.0);
        assert_eq!(Regularizer::L1 { eta: 0.5 }.value(&w), 1.5);
        assert_eq!(Regularizer::L2 { eta: 2.0 }.value(&w), 5.0);
    }

    #[test]
    fn coordinate_gradients() {
        let l1 = Regularizer::L1 { eta: 0.1 };
        assert_eq!(l1.grad_coord(3.0), 0.1);
        assert_eq!(l1.grad_coord(-3.0), -0.1);
        assert_eq!(l1.grad_coord(0.0), 0.0);
        let l2 = Regularizer::L2 { eta: 0.1 };
        assert!((l2.grad_coord(3.0) - 0.3).abs() < 1e-15);
    }

    #[test]
    fn curvature_and_convexity() {
        assert_eq!(Regularizer::None.curvature(), 0.0);
        assert_eq!(Regularizer::L1 { eta: 1.0 }.curvature(), 0.0);
        assert_eq!(Regularizer::L2 { eta: 0.3 }.curvature(), 0.3);
        assert!(Regularizer::L2 { eta: 0.3 }.strongly_convex());
        assert!(!Regularizer::L2 { eta: 0.0 }.strongly_convex());
        assert!(!Regularizer::L1 { eta: 0.3 }.strongly_convex());
    }

    #[test]
    fn eta_accessor() {
        assert_eq!(Regularizer::None.eta(), 0.0);
        assert_eq!(Regularizer::L1 { eta: 0.7 }.eta(), 0.7);
        assert_eq!(Regularizer::L2 { eta: 0.9 }.eta(), 0.9);
    }
}
