//! Objective functions for the ERM problem of the paper (Eq. 1–2):
//!
//! ```text
//! min_w F(w) = (1/n) Σ_i f_i(w),   f_i(w) = φ_i(w) + η·r(w)
//! ```
//!
//! All losses here are GLM margin losses `φ_i(w) = ℓ(y_i · wᵀx_i)`, so the
//! stochastic gradient is `ℓ'(y_i wᵀx_i) · y_i · x_i` — a scalar multiple
//! of the sample, hence index-compressed (the property the paper's whole
//! performance argument rests on, Fig. 1).
//!
//! The crate provides:
//! * [`Loss`] — scalar margin-loss trait (value, derivative, curvature
//!   bound, gradient-norm bound).
//! * [`LogisticLoss`] — cross-entropy, the paper's evaluation objective.
//! * [`SquaredHingeLoss`] — L2-SVM with the paper's Eq. 16 bound.
//! * [`SquaredLoss`] — least squares (Kaczmarz-style IS analysis heritage).
//! * [`Regularizer`] — none / L1 / L2 with lazy on-support application.
//! * [`Objective`] — a loss+regularizer bundle evaluating `F`, RMSE, error
//!   rate and per-sample importance weights `L_i` (Eq. 12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod importance;
pub mod loss;
pub mod objective;
pub mod regularizer;

pub use importance::{importance_weights, step_corrections, ImportanceScheme};
pub use loss::{LogisticLoss, Loss, SquaredHingeLoss, SquaredLoss};
pub use objective::{EvalMetrics, Objective, PartialEval};
pub use regularizer::Regularizer;
