//! Scalar margin losses `ℓ(m)` with `m = y · wᵀx`.

/// A differentiable (or subdifferentiable) margin loss.
///
/// Implementations provide the scalar value/derivative at margin `m`; the
/// solver composes them with the sample to form the sparse stochastic
/// gradient `∇φ_i(w) = ℓ'(m_i) · y_i · x_i`.
pub trait Loss: Send + Sync {
    /// Loss value at margin `m = y · wᵀx`.
    fn value(&self, m: f64) -> f64;

    /// Derivative `dℓ/dm` at margin `m`.
    fn derivative(&self, m: f64) -> f64;

    /// Smoothness constant of the scalar loss: an upper bound on `|ℓ''|`.
    ///
    /// The per-sample gradient Lipschitz constant is then
    /// `L_i = smoothness() · ‖x_i‖²` (plus the regularizer's curvature).
    fn smoothness(&self) -> f64;

    /// Upper bound on `|ℓ'(m)|` for `‖w‖ ≤ radius`, `‖x‖ = x_norm`.
    ///
    /// Used for the paper's Eq. 12 importance weights under the bounded-
    /// iterate assumption (`sup‖∇f_i(w)‖ ≤ R·L_i` discussion in §2.2).
    fn derivative_bound(&self, x_norm: f64, radius: f64) -> f64;

    /// Short stable name used in experiment logs.
    fn name(&self) -> &'static str;

    /// True if the loss treats `m ≥ threshold` as correctly classified
    /// (all margin losses here do, with threshold 0).
    fn classifies_correctly(&self, m: f64) -> bool {
        m > 0.0
    }
}

/// Logistic (cross-entropy) loss `ℓ(m) = ln(1 + e^{-m})`.
///
/// The paper's evaluation objective ("L1-regularized cross-entropy loss",
/// §4). Numerically stable via the standard `log1p(exp(-|m|))` split.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogisticLoss;

impl Loss for LogisticLoss {
    #[inline]
    fn value(&self, m: f64) -> f64 {
        // ln(1 + e^{-m}) computed without overflow for very negative m.
        if m >= 0.0 {
            (-m).exp().ln_1p()
        } else {
            -m + m.exp().ln_1p()
        }
    }

    #[inline]
    fn derivative(&self, m: f64) -> f64 {
        // dℓ/dm = -σ(-m) = -1 / (1 + e^m)
        if m >= 0.0 {
            let e = (-m).exp();
            -e / (1.0 + e)
        } else {
            -1.0 / (1.0 + m.exp())
        }
    }

    fn smoothness(&self) -> f64 {
        0.25 // sup σ'(m) = 1/4
    }

    fn derivative_bound(&self, _x_norm: f64, _radius: f64) -> f64 {
        1.0 // |σ(-m)| ≤ 1 everywhere
    }

    fn name(&self) -> &'static str {
        "logistic"
    }
}

/// Squared hinge loss `ℓ(m) = max(0, 1 - m)²` — the L2-SVM objective the
/// paper uses to illustrate the Eq. 16 gradient bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct SquaredHingeLoss;

impl Loss for SquaredHingeLoss {
    #[inline]
    fn value(&self, m: f64) -> f64 {
        let g = (1.0 - m).max(0.0);
        g * g
    }

    #[inline]
    fn derivative(&self, m: f64) -> f64 {
        let g = (1.0 - m).max(0.0);
        -2.0 * g
    }

    fn smoothness(&self) -> f64 {
        2.0
    }

    fn derivative_bound(&self, x_norm: f64, radius: f64) -> f64 {
        // |ℓ'(m)| = 2·max(0, 1-m) ≤ 2·(1 + |m|) ≤ 2·(1 + radius·x_norm).
        2.0 * (1.0 + radius * x_norm)
    }

    fn name(&self) -> &'static str {
        "squared_hinge"
    }
}

/// Squared loss `ℓ(m) = (1 - m)²/2`, i.e. least squares on the margin —
/// the randomized-Kaczmarz setting where IS theory originated
/// (Strohmer–Vershynin 2009, cited by the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct SquaredLoss;

impl Loss for SquaredLoss {
    #[inline]
    fn value(&self, m: f64) -> f64 {
        let r = 1.0 - m;
        0.5 * r * r
    }

    #[inline]
    fn derivative(&self, m: f64) -> f64 {
        m - 1.0
    }

    fn smoothness(&self) -> f64 {
        1.0
    }

    fn derivative_bound(&self, x_norm: f64, radius: f64) -> f64 {
        1.0 + radius * x_norm
    }

    fn name(&self) -> &'static str {
        "squared"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff<L: Loss>(loss: &L, m: f64) -> f64 {
        let h = 1e-6;
        (loss.value(m + h) - loss.value(m - h)) / (2.0 * h)
    }

    #[test]
    fn logistic_values() {
        let l = LogisticLoss;
        assert!((l.value(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(l.value(100.0) < 1e-12);
        assert!((l.value(-100.0) - 100.0).abs() < 1e-9);
        assert!(l.value(-745.0).is_finite(), "must not overflow");
        assert!(l.value(745.0).is_finite());
    }

    #[test]
    fn logistic_derivative_matches_finite_difference() {
        let l = LogisticLoss;
        for &m in &[-5.0, -1.0, -0.1, 0.0, 0.1, 1.0, 5.0] {
            let fd = finite_diff(&l, m);
            assert!((l.derivative(m) - fd).abs() < 1e-5, "m={m}");
        }
    }

    #[test]
    fn logistic_derivative_bounded() {
        let l = LogisticLoss;
        for &m in &[-700.0, -10.0, 0.0, 10.0, 700.0] {
            let d = l.derivative(m);
            assert!((-1.0..=0.0).contains(&d), "m={m} d={d}");
        }
    }

    #[test]
    fn squared_hinge_derivative_matches_finite_difference() {
        let l = SquaredHingeLoss;
        for &m in &[-3.0, 0.0, 0.5, 0.99, 1.5, 4.0] {
            let fd = finite_diff(&l, m);
            assert!((l.derivative(m) - fd).abs() < 1e-5, "m={m}");
        }
    }

    #[test]
    fn squared_hinge_zero_beyond_margin() {
        let l = SquaredHingeLoss;
        assert_eq!(l.value(1.0), 0.0);
        assert_eq!(l.value(2.0), 0.0);
        assert_eq!(l.derivative(1.5), 0.0);
        assert!(l.value(0.0) == 1.0);
    }

    #[test]
    fn squared_loss_derivative_matches_finite_difference() {
        let l = SquaredLoss;
        for &m in &[-2.0, 0.0, 1.0, 3.0] {
            let fd = finite_diff(&l, m);
            assert!((l.derivative(m) - fd).abs() < 1e-5, "m={m}");
        }
    }

    #[test]
    fn smoothness_upper_bounds_second_derivative() {
        // Empirical: |ℓ'(a)-ℓ'(b)| ≤ smoothness·|a-b| on a grid.
        let losses: Vec<(Box<dyn Loss>, &str)> = vec![
            (Box::new(LogisticLoss), "logistic"),
            (Box::new(SquaredHingeLoss), "hinge2"),
            (Box::new(SquaredLoss), "squared"),
        ];
        for (l, name) in &losses {
            let grid: Vec<f64> = (-40..=40).map(|i| i as f64 * 0.25).collect();
            for w in grid.windows(2) {
                let lhs = (l.derivative(w[0]) - l.derivative(w[1])).abs();
                let rhs = l.smoothness() * (w[0] - w[1]).abs() + 1e-9;
                assert!(lhs <= rhs, "{name}: at {} {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn derivative_bounds_hold_on_grid() {
        let l = SquaredHingeLoss;
        let (x_norm, radius) = (2.0, 3.0);
        let bound = l.derivative_bound(x_norm, radius);
        // margins reachable with ‖w‖≤radius, ‖x‖=x_norm: |m| ≤ 6
        for i in -24..=24 {
            let m = i as f64 * 0.25;
            assert!(l.derivative(m).abs() <= bound + 1e-9, "m={m}");
        }
    }

    #[test]
    fn classification_convention() {
        let l = LogisticLoss;
        assert!(l.classifies_correctly(0.3));
        assert!(!l.classifies_correctly(0.0));
        assert!(!l.classifies_correctly(-0.3));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LogisticLoss.name(), "logistic");
        assert_eq!(SquaredHingeLoss.name(), "squared_hinge");
        assert_eq!(SquaredLoss.name(), "squared");
    }
}
