//! The full ERM objective `F(w) = (1/n) Σ f_i(w)` (paper Eq. 2).

use crate::loss::Loss;
use crate::regularizer::Regularizer;
use isasgd_sparse::{Dataset, SparseRow};

/// Evaluation metrics reported per epoch, matching the paper's §4 metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// Mean objective `F(w)` including regularization.
    pub objective: f64,
    /// Root-mean-square of per-sample objective values
    /// ("RMSE, objective value as the error", §4).
    pub rmse: f64,
    /// Misclassification fraction.
    pub error_rate: f64,
}

/// Partial sums from evaluating a sub-range of the dataset; mergeable so
/// evaluation parallelizes over shards.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialEval {
    /// Σ φ_i over the range.
    pub loss_sum: f64,
    /// Σ φ_i² over the range (for RMSE; the regularizer is added at
    /// finalize time because it is a per-model constant).
    pub loss_sq_sum: f64,
    /// Misclassified count.
    pub errors: usize,
    /// Samples visited.
    pub count: usize,
}

impl PartialEval {
    /// Merges two partials (associative, commutative).
    pub fn merge(self, other: PartialEval) -> PartialEval {
        PartialEval {
            loss_sum: self.loss_sum + other.loss_sum,
            loss_sq_sum: self.loss_sq_sum + other.loss_sq_sum,
            errors: self.errors + other.errors,
            count: self.count + other.count,
        }
    }
}

/// A margin loss bundled with a regularizer: the trainable objective.
#[derive(Debug, Clone, Copy)]
pub struct Objective<L: Loss> {
    /// The scalar margin loss.
    pub loss: L,
    /// The regularization term.
    pub reg: Regularizer,
}

impl<L: Loss> Objective<L> {
    /// Bundles a loss and regularizer.
    pub fn new(loss: L, reg: Regularizer) -> Self {
        Self { loss, reg }
    }

    /// Margin `m_i = y_i · wᵀx_i` against a dense model.
    #[inline]
    pub fn margin(&self, row: &SparseRow<'_>, w: &[f64]) -> f64 {
        row.label * row.dot_dense(w)
    }

    /// The scalar `g` such that `∇φ_i(w) = g · x_i`, given the margin.
    #[inline]
    pub fn grad_scale(&self, row: &SparseRow<'_>, margin: f64) -> f64 {
        self.loss.derivative(margin) * row.label
    }

    /// Applies one (IS-corrected) SGD update in place: the sparse axpy
    /// `w += coeff·x` followed by the on-support lazy regularizer
    /// subgradient scaled by `reg_scale` — the single GLM step kernel
    /// shared by the core solvers and the cluster nodes.
    #[inline]
    pub fn apply_sgd_update(&self, row: &SparseRow<'_>, coeff: f64, reg_scale: f64, w: &mut [f64]) {
        for (&j, &x) in row.indices.iter().zip(row.values) {
            let j = j as usize;
            let wj = w[j] + coeff * x;
            w[j] = wj - reg_scale * self.reg.grad_coord(wj);
        }
    }

    /// Per-sample raw loss `φ_i(w)` (no regularizer).
    #[inline]
    pub fn sample_loss(&self, row: &SparseRow<'_>, w: &[f64]) -> f64 {
        self.loss.value(self.margin(row, w))
    }

    /// Evaluates a contiguous row range; combine with
    /// [`PartialEval::merge`] and finish with [`Objective::finalize`].
    pub fn eval_range(
        &self,
        ds: &Dataset,
        w: &[f64],
        range: std::ops::Range<usize>,
    ) -> PartialEval {
        let mut p = PartialEval::default();
        for i in range {
            let row = ds.row(i);
            let m = self.margin(&row, w);
            let v = self.loss.value(m);
            p.loss_sum += v;
            p.loss_sq_sum += v * v;
            // Prediction is sign(wᵀx) with ties resolved to +1 (the usual
            // convention; makes the zero model's error the negative-class
            // fraction instead of 1.0).
            let correct = m > 0.0 || (m == 0.0 && row.label > 0.0);
            if !correct {
                p.errors += 1;
            }
            p.count += 1;
        }
        p
    }

    /// Converts merged partials plus the model into final metrics.
    ///
    /// Per the paper's Eq. 1, `f_i(w) = φ_i(w) + η·r(w)`; the regularizer
    /// is a model-level constant so it shifts every per-sample error
    /// equally: `RMSE² = mean((φ_i + ηr)²)`.
    pub fn finalize(&self, p: PartialEval, w: &[f64]) -> EvalMetrics {
        let n = p.count.max(1) as f64;
        let r = self.reg.value(w);
        let objective = p.loss_sum / n + r;
        // mean((φ+r)²) = mean(φ²) + 2r·mean(φ) + r²
        let mean_sq = p.loss_sq_sum / n + 2.0 * r * (p.loss_sum / n) + r * r;
        EvalMetrics {
            objective,
            rmse: mean_sq.max(0.0).sqrt(),
            error_rate: p.errors as f64 / n,
        }
    }

    /// Full single-threaded evaluation.
    pub fn eval(&self, ds: &Dataset, w: &[f64]) -> EvalMetrics {
        let p = self.eval_range(ds, w, 0..ds.n_samples());
        self.finalize(p, w)
    }

    /// Accumulates the *full* dense gradient `∇F(w)` into `out`
    /// (overwritten). This is the SVRG `µ` computation — intentionally
    /// `O(n·nnz + d)` and dense, as in paper Algorithm 1 line 6.
    pub fn full_gradient_into(&self, ds: &Dataset, w: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), w.len(), "gradient buffer dimension mismatch");
        out.fill(0.0);
        let n = ds.n_samples().max(1) as f64;
        for row in ds.rows() {
            let m = self.margin(&row, w);
            let g = self.grad_scale(&row, m) / n;
            row.axpy_into(g, out);
        }
        // Dense regularizer gradient (exact, only used by SVRG/snapshots).
        for (o, &wj) in out.iter_mut().zip(w) {
            *o += self.reg.grad_coord(wj);
        }
    }

    /// Gradient of a sub-range accumulated into `out` (not zeroed), scaled
    /// by `1/n_total`. Lets callers parallelize `µ` over shards.
    pub fn partial_gradient_into(
        &self,
        ds: &Dataset,
        w: &[f64],
        range: std::ops::Range<usize>,
        n_total: usize,
        out: &mut [f64],
    ) {
        let n = n_total.max(1) as f64;
        for i in range {
            let row = ds.row(i);
            let m = self.margin(&row, w);
            let g = self.grad_scale(&row, m) / n;
            row.axpy_into(g, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{LogisticLoss, SquaredLoss};
    use isasgd_sparse::DatasetBuilder;

    fn ds() -> Dataset {
        let mut b = DatasetBuilder::new(3);
        b.push_row(&[(0, 1.0), (1, 1.0)], 1.0).unwrap();
        b.push_row(&[(1, 2.0)], -1.0).unwrap();
        b.push_row(&[(2, 1.0)], 1.0).unwrap();
        b.finish()
    }

    #[test]
    fn margin_and_grad_scale() {
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let w = [0.5, -1.0, 2.0];
        let d = ds();
        let r0 = d.row(0);
        assert!((obj.margin(&r0, &w) - (-0.5)).abs() < 1e-12);
        let r1 = d.row(1);
        assert!((obj.margin(&r1, &w) - 2.0).abs() < 1e-12);
        // grad scale = ℓ'(m)·y
        let m = obj.margin(&r1, &w);
        assert!((obj.grad_scale(&r1, m) + LogisticLoss.derivative(m)).abs() < 1e-15);
    }

    #[test]
    fn eval_counts_errors() {
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let w = [0.5, -1.0, 2.0];
        // margins: -0.5 (wrong), 2.0 (right), 2.0 (right)
        let m = obj.eval(&ds(), &w);
        assert!((m.error_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!(m.objective > 0.0);
        assert!(m.rmse > 0.0);
    }

    #[test]
    fn eval_range_merge_equals_full() {
        let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 0.01 });
        let w = [0.1, 0.2, -0.3];
        let d = ds();
        let full = obj.eval(&d, &w);
        let a = obj.eval_range(&d, &w, 0..1);
        let b = obj.eval_range(&d, &w, 1..3);
        let merged = obj.finalize(a.merge(b), &w);
        assert!((full.objective - merged.objective).abs() < 1e-12);
        assert!((full.rmse - merged.rmse).abs() < 1e-12);
        assert_eq!(full.error_rate, merged.error_rate);
    }

    #[test]
    fn regularizer_shifts_objective() {
        let plain = Objective::new(LogisticLoss, Regularizer::None);
        let reg = Objective::new(LogisticLoss, Regularizer::L1 { eta: 0.5 });
        let w = [1.0, -1.0, 0.0];
        let d = ds();
        let mo = plain.eval(&d, &w);
        let mr = reg.eval(&d, &w);
        assert!((mr.objective - (mo.objective + 1.0)).abs() < 1e-12);
        assert!(mr.rmse > mo.rmse);
    }

    #[test]
    fn full_gradient_matches_finite_difference() {
        let obj = Objective::new(LogisticLoss, Regularizer::L2 { eta: 0.1 });
        let d = ds();
        let w = [0.3, -0.2, 0.7];
        let mut g = vec![0.0; 3];
        obj.full_gradient_into(&d, &w, &mut g);
        let h = 1e-6;
        for j in 0..3 {
            let mut wp = w;
            wp[j] += h;
            let mut wm = w;
            wm[j] -= h;
            let fd = (obj.eval(&d, &wp).objective - obj.eval(&d, &wm).objective) / (2.0 * h);
            assert!((g[j] - fd).abs() < 1e-5, "coord {j}: {} vs {fd}", g[j]);
        }
    }

    #[test]
    fn partial_gradients_sum_to_full() {
        let obj = Objective::new(SquaredLoss, Regularizer::None);
        let d = ds();
        let w = [0.3, -0.2, 0.7];
        let mut full = vec![0.0; 3];
        obj.full_gradient_into(&d, &w, &mut full);
        let mut parts = vec![0.0; 3];
        obj.partial_gradient_into(&d, &w, 0..2, d.n_samples(), &mut parts);
        obj.partial_gradient_into(&d, &w, 2..3, d.n_samples(), &mut parts);
        for j in 0..3 {
            assert!((full[j] - parts[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_range_eval_is_neutral() {
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let d = ds();
        let p = obj.eval_range(&d, &[0.0; 3], 0..0);
        assert_eq!(p.count, 0);
        let merged = p.merge(obj.eval_range(&d, &[0.0; 3], 0..3));
        assert_eq!(merged.count, 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn gradient_buffer_mismatch_panics() {
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let mut g = vec![0.0; 2];
        obj.full_gradient_into(&ds(), &[0.0; 3], &mut g);
    }
}
