//! Deterministic bounded-staleness simulation of asynchronous SGD.
//!
//! **Why this exists.** The paper's concurrency axis runs to 44 hardware
//! threads; this reproduction must run anywhere. Its own analysis (§3.1,
//! perturbed iterate) abstracts concurrency into the *delay parameter τ*:
//! a gradient computed at logical time `t` is applied at time `t + τ`, so
//! every gradient is evaluated on a model missing up to τ in-flight
//! updates — `ŵ_t = w_t + θ_t` in Eq. 21. This crate implements exactly
//! that semantics, sequentially and deterministically:
//!
//! * [`DelayQueue`] — a FIFO holding at most τ in-flight items, with a
//!   logical clock that measures each item's *actual* in-flight delay
//!   (an epoch-end barrier flushes younger items before their τ expires;
//!   the staleness-discounted feedback path consumes those measurements).
//!
//! The solver runtime in `isasgd-core` drives its compute/apply-split
//! [`Solver`](../isasgd_core/solvers/solver/trait.Solver.html) updates
//! through the queue, drawing each worker's stream lazily round-robin —
//! at global step `t`, worker `t mod k` takes a step from its live
//! `ScheduleStream` (no schedule is ever materialized): with `τ = 0` the
//! simulation *is* the sequential algorithm (the queue passes items
//! straight through), and growing τ reproduces the convergence
//! degradation that the paper's Figures 3–5 show for 16/32/44 threads —
//! on any machine, with a fixed seed. (An earlier in-crate
//! `StalenessEngine` hard-coded the SGD kernel here, and an earlier
//! `round_robin_interleave` pre-materialized the worker schedules; both
//! were superseded by the streaming engine and removed.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;

pub use queue::DelayQueue;
