//! Deterministic bounded-staleness simulation of asynchronous SGD.
//!
//! **Why this exists.** The paper's concurrency axis runs to 44 hardware
//! threads; this reproduction must run anywhere. Its own analysis (§3.1,
//! perturbed iterate) abstracts concurrency into the *delay parameter τ*:
//! a gradient computed at logical time `t` is applied at time `t + τ`, so
//! every gradient is evaluated on a model missing up to τ in-flight
//! updates — `ŵ_t = w_t + θ_t` in Eq. 21. This crate implements exactly
//! that semantics, sequentially and deterministically:
//!
//! * [`DelayQueue`] — a FIFO holding at most τ in-flight items.
//! * [`round_robin_interleave`] — the schedule a homogeneous worker pool
//!   produces.
//!
//! The solver runtime in `isasgd-core` drives its compute/apply-split
//! [`Solver`](../isasgd_core/solvers/solver/trait.Solver.html) updates
//! through the queue: with `τ = 0` the simulation *is* the sequential
//! algorithm (the queue passes items straight through), and growing τ
//! reproduces the convergence degradation that the paper's Figures 3–5
//! show for 16/32/44 threads — on any machine, with a fixed seed.
//! (An earlier in-crate `StalenessEngine` hard-coded the SGD kernel here;
//! it was superseded by the generic engine and removed.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;

pub use queue::DelayQueue;

/// Interleaves per-worker iteration streams round-robin, the schedule a
/// homogeneous pool of workers produces: at global step `t`, worker
/// `t mod k` takes a step. Streams of unequal length drain as workers
/// finish their local shards.
pub fn round_robin_interleave<T: Copy>(streams: &[Vec<T>]) -> Vec<T> {
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; streams.len()];
    let mut remaining = total;
    while remaining > 0 {
        for (k, stream) in streams.iter().enumerate() {
            if cursors[k] < stream.len() {
                out.push(stream[cursors[k]]);
                cursors[k] += 1;
                remaining -= 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_round_robin_order() {
        let s = vec![vec![1, 2, 3], vec![10, 20, 30]];
        assert_eq!(round_robin_interleave(&s), vec![1, 10, 2, 20, 3, 30]);
    }

    #[test]
    fn interleave_unequal_lengths() {
        let s = vec![vec![1, 2, 3], vec![10]];
        assert_eq!(round_robin_interleave(&s), vec![1, 10, 2, 3]);
    }

    #[test]
    fn interleave_empty() {
        let s: Vec<Vec<u32>> = vec![vec![], vec![]];
        assert!(round_robin_interleave(&s).is_empty());
        let s: Vec<Vec<u32>> = vec![];
        assert!(round_robin_interleave(&s).is_empty());
    }
}
