//! The staleness update engine: Eq. 21's `w_{t+1} = w_t − λ∇f_it(ŵ_t)`.

use crate::queue::DelayQueue;
use isasgd_losses::{Loss, Objective};
use isasgd_sparse::Dataset;

/// One in-flight update: `w += coeff·x_row`, then an on-support
/// regularizer step scaled by `reg_scale` (both already include −λ and the
/// IS correction `1/(n·p_i)`).
#[derive(Debug, Clone, Copy)]
pub struct PendingUpdate {
    /// Row whose feature vector carries the gradient direction.
    pub row: u32,
    /// Multiplier for the sparse axpy (−λ·corr·ℓ'(m)·y).
    pub coeff: f64,
    /// Multiplier for the on-support regularizer subgradient (λ·corr).
    pub reg_scale: f64,
}

/// Deterministic perturbed-iterate engine.
///
/// Each [`StalenessEngine::step`] computes the stochastic gradient of one
/// sample against the *currently visible* model — which is missing the
/// τ updates still in flight, i.e. it is the perturbed iterate `ŵ_t` —
/// and enqueues the update; the update whose delay expired is applied.
///
/// The regularizer is applied lazily on the sample's support at apply
/// time, mirroring how sparse ASGD implementations avoid `O(d)`
/// regularization scans (see `isasgd-losses::regularizer`).
#[derive(Debug)]
pub struct StalenessEngine<'a, L: Loss> {
    ds: &'a Dataset,
    obj: &'a Objective<L>,
    w: Vec<f64>,
    queue: DelayQueue<PendingUpdate>,
    step_size: f64,
    steps: u64,
    applied: u64,
}

impl<'a, L: Loss> StalenessEngine<'a, L> {
    /// Creates an engine over `ds` with delay `tau`, starting from w = 0.
    pub fn new(ds: &'a Dataset, obj: &'a Objective<L>, tau: usize, step_size: f64) -> Self {
        Self::with_model(ds, obj, tau, step_size, vec![0.0; ds.dim()])
    }

    /// Creates an engine starting from an existing model vector.
    pub fn with_model(
        ds: &'a Dataset,
        obj: &'a Objective<L>,
        tau: usize,
        step_size: f64,
        w: Vec<f64>,
    ) -> Self {
        assert_eq!(w.len(), ds.dim(), "model dimension mismatch");
        Self {
            ds,
            obj,
            w,
            queue: DelayQueue::new(tau),
            step_size,
            steps: 0,
            applied: 0,
        }
    }

    /// Takes one logical step on sample `row` with IS step correction
    /// `correction` (1 for uniform sampling, `L̄/L_i` for IS).
    #[inline]
    pub fn step(&mut self, row: u32, correction: f64) {
        let r = self.ds.row(row as usize);
        let margin = self.obj.margin(&r, &self.w);
        let g = self.obj.grad_scale(&r, margin);
        let upd = PendingUpdate {
            row,
            coeff: -self.step_size * correction * g,
            reg_scale: self.step_size * correction,
        };
        self.steps += 1;
        if let Some(expired) = self.queue.push(upd) {
            self.apply(expired);
        }
    }

    fn apply(&mut self, u: PendingUpdate) {
        let r = self.ds.row(u.row as usize);
        for (&j, &x) in r.indices.iter().zip(r.values) {
            let j = j as usize;
            let wj = self.w[j] + u.coeff * x;
            self.w[j] = wj - u.reg_scale * self.obj.reg.grad_coord(wj);
        }
        self.applied += 1;
    }

    /// Applies all in-flight updates (epoch-boundary barrier).
    pub fn flush(&mut self) {
        // Drain into a buffer to appease the borrow checker; τ is small.
        let pending: Vec<PendingUpdate> = self.queue.drain().collect();
        for u in pending {
            self.apply(u);
        }
    }

    /// The currently visible model (excludes in-flight updates).
    pub fn model(&self) -> &[f64] {
        &self.w
    }

    /// Consumes the engine, returning the model (flushing first).
    pub fn into_model(mut self) -> Vec<f64> {
        self.flush();
        self.w
    }

    /// Gradient steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Updates applied so far (≤ steps; differs by in-flight count).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The configured delay τ.
    pub fn tau(&self) -> usize {
        self.queue.tau()
    }

    /// The configured step size λ.
    pub fn step_size(&self) -> f64 {
        self.step_size
    }

    /// Replaces the step size (for step-size schedules between epochs).
    pub fn set_step_size(&mut self, lambda: f64) {
        self.step_size = lambda;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isasgd_losses::{LogisticLoss, Regularizer};
    use isasgd_sparse::DatasetBuilder;

    fn ds() -> Dataset {
        let mut b = DatasetBuilder::new(3);
        b.push_row(&[(0, 1.0), (1, 0.5)], 1.0).unwrap();
        b.push_row(&[(1, 1.0), (2, -0.5)], -1.0).unwrap();
        b.push_row(&[(0, -1.0), (2, 2.0)], 1.0).unwrap();
        b.finish()
    }

    fn sequential_sgd(
        ds: &Dataset,
        obj: &Objective<LogisticLoss>,
        order: &[u32],
        lambda: f64,
    ) -> Vec<f64> {
        let mut w = vec![0.0; ds.dim()];
        for &i in order {
            let r = ds.row(i as usize);
            let m = obj.margin(&r, &w);
            let g = obj.grad_scale(&r, m);
            for (&j, &x) in r.indices.iter().zip(r.values) {
                let j = j as usize;
                let wj = w[j] - lambda * g * x;
                w[j] = wj - lambda * obj.reg.grad_coord(wj);
            }
        }
        w
    }

    #[test]
    fn tau_zero_is_exact_sgd() {
        let d = ds();
        let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 0.01 });
        let order = [0u32, 1, 2, 1, 0, 2, 2, 1];
        let mut eng = StalenessEngine::new(&d, &obj, 0, 0.3);
        for &i in &order {
            eng.step(i, 1.0);
        }
        let expect = sequential_sgd(&d, &obj, &order, 0.3);
        assert_eq!(eng.model(), expect.as_slice(), "τ=0 must be bit-exact SGD");
        assert_eq!(eng.steps(), 8);
        assert_eq!(eng.applied(), 8);
    }

    #[test]
    fn tau_delays_application() {
        let d = ds();
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let mut eng = StalenessEngine::new(&d, &obj, 4, 0.3);
        eng.step(0, 1.0);
        eng.step(1, 1.0);
        // Nothing applied yet: model still zero.
        assert_eq!(eng.model(), &[0.0, 0.0, 0.0]);
        assert_eq!(eng.applied(), 0);
        eng.flush();
        assert_eq!(eng.applied(), 2);
        assert!(eng.model().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn flushed_tau_run_differs_from_sgd_but_stays_finite() {
        let d = ds();
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let order: Vec<u32> = (0..60).map(|i| i % 3).collect();
        let mut eng = StalenessEngine::new(&d, &obj, 8, 0.5);
        for &i in &order {
            eng.step(i, 1.0);
        }
        eng.flush();
        let sgd = sequential_sgd(&d, &obj, &order, 0.5);
        assert_ne!(eng.model(), sgd.as_slice(), "τ>0 should perturb the trajectory");
        assert!(eng.model().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn is_correction_scales_step() {
        let d = ds();
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let mut a = StalenessEngine::new(&d, &obj, 0, 0.1);
        a.step(0, 2.0);
        let mut b = StalenessEngine::new(&d, &obj, 0, 0.2);
        b.step(0, 1.0);
        // λ·corr identical ⇒ identical first step.
        assert_eq!(a.model(), b.model());
    }

    #[test]
    fn into_model_flushes() {
        let d = ds();
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let mut eng = StalenessEngine::new(&d, &obj, 16, 0.3);
        eng.step(0, 1.0);
        let w = eng.into_model();
        assert!(w.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn step_size_schedule() {
        let d = ds();
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let mut eng = StalenessEngine::new(&d, &obj, 0, 0.3);
        assert_eq!(eng.step_size(), 0.3);
        eng.set_step_size(0.15);
        assert_eq!(eng.step_size(), 0.15);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_model_dim_panics() {
        let d = ds();
        let obj = Objective::new(LogisticLoss, Regularizer::None);
        let _ = StalenessEngine::with_model(&d, &obj, 0, 0.1, vec![0.0; 2]);
    }
}
