//! The bounded in-flight queue.

use std::collections::VecDeque;

/// A FIFO that admits at most `tau` in-flight items: pushing the
/// `(tau+1)`-th item pops and returns the oldest.
///
/// Models the paper's delay parameter: an update enqueued at logical step
/// `t` is returned (applied) at step `t + tau`.
///
/// The queue keeps a logical clock (one tick per push) and stamps every
/// item at enqueue time, so the **measured** delay of each item — how
/// many steps it actually spent in flight — is available at pop time via
/// [`DelayQueue::push_timed`] / [`DelayQueue::drain_timed`]. A steady
/// stream measures exactly `tau`, but items flushed by the epoch-end
/// barrier ([`DelayQueue::drain_timed`]) report *shorter* delays: the
/// barrier does not wait `tau` steps for them. Feedback consumers (the
/// staleness-discounted observation model) need those per-item delays;
/// an assumed uniform `tau` would cancel out of any mean-normalized
/// re-weighting.
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    q: VecDeque<(T, u64)>,
    tau: usize,
    /// Logical time: the number of pushes so far.
    clock: u64,
}

impl<T> DelayQueue<T> {
    /// Creates a queue with delay `tau` (0 = apply immediately).
    pub fn new(tau: usize) -> Self {
        Self {
            q: VecDeque::with_capacity(tau + 1),
            tau,
            clock: 0,
        }
    }

    /// The configured delay.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Number of in-flight items.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Enqueues an item; returns the item whose delay expired (if the
    /// queue was full). With `tau == 0`, returns the pushed item itself.
    pub fn push(&mut self, item: T) -> Option<T> {
        self.push_timed(item).map(|(expired, _)| expired)
    }

    /// [`DelayQueue::push`] that also reports the popped item's measured
    /// delay: the number of pushes between its enqueue and this pop
    /// (always `tau` on this path; 0 when `tau == 0`).
    pub fn push_timed(&mut self, item: T) -> Option<(T, usize)> {
        let now = self.clock;
        self.clock += 1;
        if self.tau == 0 {
            return Some((item, 0));
        }
        self.q.push_back((item, now));
        if self.q.len() > self.tau {
            self.q
                .pop_front()
                .map(|(expired, at)| (expired, (now - at) as usize))
        } else {
            None
        }
    }

    /// Drains all in-flight items in FIFO order (the epoch-boundary
    /// barrier of a real implementation).
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.q.drain(..).map(|(item, _)| item)
    }

    /// [`DelayQueue::drain`] that also reports each item's measured
    /// delay, counting the barrier itself as one tick: an item enqueued
    /// at logical time `t` drains with delay `clock − t`, so the oldest
    /// in-flight item reports at most `tau` and younger items report
    /// strictly less — the barrier flushes them *early* relative to the
    /// configured delay.
    pub fn drain_timed(&mut self) -> impl Iterator<Item = (T, usize)> + '_ {
        let clock = self.clock;
        self.q
            .drain(..)
            .map(move |(item, at)| (item, (clock - at) as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_zero_passes_through() {
        let mut q = DelayQueue::new(0);
        assert_eq!(q.push(5), Some(5));
        assert!(q.is_empty());
        assert_eq!(q.push_timed(7), Some((7, 0)), "τ=0 measures zero delay");
    }

    #[test]
    fn delays_by_tau_steps() {
        let mut q = DelayQueue::new(3);
        assert_eq!(q.push(1), None);
        assert_eq!(q.push(2), None);
        assert_eq!(q.push(3), None);
        assert_eq!(q.push(4), Some(1));
        assert_eq!(q.push(5), Some(2));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn steady_stream_measures_exactly_tau() {
        let mut q = DelayQueue::new(4);
        for i in 0..4 {
            assert_eq!(q.push_timed(i), None);
        }
        for i in 4..20 {
            assert_eq!(q.push_timed(i), Some((i - 4, 4)));
        }
    }

    #[test]
    fn drain_returns_fifo() {
        let mut q = DelayQueue::new(2);
        q.push(1);
        q.push(2);
        let drained: Vec<i32> = q.drain().collect();
        assert_eq!(drained, vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_timed_reports_shorter_than_tau_for_flushed_items() {
        // The epoch-end barrier flushes in-flight items without waiting
        // out their configured delay — the measured delays must reflect
        // that (this is exactly the measured ≠ configured case the
        // staleness-discounted feedback path exists for).
        let mut q = DelayQueue::new(8);
        for i in 0..5 {
            assert_eq!(q.push_timed(i), None, "queue deeper than the stream");
        }
        let drained: Vec<(i32, usize)> = q.drain_timed().collect();
        assert_eq!(drained, vec![(0, 5), (1, 4), (2, 3), (3, 2), (4, 1)]);
        assert!(
            drained.iter().all(|&(_, d)| d < 8),
            "every flushed item measured less than the configured τ=8"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn tau_accessor() {
        let q: DelayQueue<u8> = DelayQueue::new(7);
        assert_eq!(q.tau(), 7);
    }
}
