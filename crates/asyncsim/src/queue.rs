//! The bounded in-flight queue.

use std::collections::VecDeque;

/// A FIFO that admits at most `tau` in-flight items: pushing the
/// `(tau+1)`-th item pops and returns the oldest.
///
/// Models the paper's delay parameter: an update enqueued at logical step
/// `t` is returned (applied) at step `t + tau`.
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    q: VecDeque<T>,
    tau: usize,
}

impl<T> DelayQueue<T> {
    /// Creates a queue with delay `tau` (0 = apply immediately).
    pub fn new(tau: usize) -> Self {
        Self {
            q: VecDeque::with_capacity(tau + 1),
            tau,
        }
    }

    /// The configured delay.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Number of in-flight items.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Enqueues an item; returns the item whose delay expired (if the
    /// queue was full). With `tau == 0`, returns the pushed item itself.
    pub fn push(&mut self, item: T) -> Option<T> {
        if self.tau == 0 {
            return Some(item);
        }
        self.q.push_back(item);
        if self.q.len() > self.tau {
            self.q.pop_front()
        } else {
            None
        }
    }

    /// Drains all in-flight items in FIFO order (the epoch-boundary
    /// barrier of a real implementation).
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.q.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_zero_passes_through() {
        let mut q = DelayQueue::new(0);
        assert_eq!(q.push(5), Some(5));
        assert!(q.is_empty());
    }

    #[test]
    fn delays_by_tau_steps() {
        let mut q = DelayQueue::new(3);
        assert_eq!(q.push(1), None);
        assert_eq!(q.push(2), None);
        assert_eq!(q.push(3), None);
        assert_eq!(q.push(4), Some(1));
        assert_eq!(q.push(5), Some(2));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn drain_returns_fifo() {
        let mut q = DelayQueue::new(2);
        q.push(1);
        q.push(2);
        let drained: Vec<i32> = q.drain().collect();
        assert_eq!(drained, vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn tau_accessor() {
        let q: DelayQueue<u8> = DelayQueue::new(7);
        assert_eq!(q.tau(), 7);
    }
}
