//! Shared experiment context: dataset cache, output locations, presets.

use isasgd_core::{Objective, Regularizer};
use isasgd_datagen::{generate, GeneratedData, PaperProfile};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Logistic + L1 objective, as in the paper's evaluation ("L1-regularized
/// cross-entropy loss").
pub fn paper_objective() -> Objective<isasgd_core::LogisticLoss> {
    Objective::new(isasgd_core::LogisticLoss, Regularizer::L1 { eta: 1e-5 })
}

/// Global experiment settings parsed from the CLI.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Output directory for text/CSV/JSON artifacts.
    pub out_dir: PathBuf,
    /// Multiplier on the scaled profiles' (n, d).
    pub scale: f64,
    /// Override epoch counts (None = per-profile paper-like defaults).
    pub epochs: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Simulated delay values — the paper's thread axis.
    pub taus: Vec<usize>,
    /// Real thread counts for wall-clock experiments.
    pub threads: Vec<usize>,
    /// Wall-clock repetitions per configuration in fig4 (median kept).
    pub reps: usize,
    /// Independent seeds averaged per convergence curve (fig3/fig4). The
    /// paper's epochs cover 10⁶–10⁷ samples and its curves self-average;
    /// scaled-down runs need explicit seed-averaging for the same
    /// smoothness.
    pub avg_runs: usize,
}

impl Default for Settings {
    fn default() -> Self {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        Settings {
            out_dir: PathBuf::from("results"),
            scale: 1.0,
            epochs: None,
            seed: 0x5EED_1501,
            taus: vec![16, 32, 44],
            threads: vec![1, host],
            reps: 3,
            avg_runs: 3,
        }
    }
}

impl Settings {
    /// The `--quick` preset: tiny datasets, few epochs — smoke-test sized.
    pub fn quick() -> Self {
        Settings {
            scale: 0.05,
            epochs: Some(4),
            taus: vec![8, 16],
            reps: 1,
            avg_runs: 1,
            ..Settings::default()
        }
    }

    /// Per-profile epoch budget mirroring the paper's figures
    /// (News20: 15, URL: 18, KDD: 72).
    pub fn epochs_for(&self, p: PaperProfile) -> usize {
        if let Some(e) = self.epochs {
            return e;
        }
        match p {
            PaperProfile::News20 => 15,
            PaperProfile::Url => 18,
            // The paper runs 72; scaled-down data converges faster, and 30
            // keeps the full suite within a laptop time budget.
            PaperProfile::KddAlgebra | PaperProfile::KddBridge => 30,
        }
    }
}

/// Lazily generated, process-wide dataset cache.
pub struct Ctx {
    /// CLI settings.
    pub settings: Settings,
    cache: HashMap<&'static str, Arc<GeneratedData>>,
}

impl Ctx {
    /// Creates a context and the output directory.
    pub fn new(settings: Settings) -> std::io::Result<Ctx> {
        std::fs::create_dir_all(&settings.out_dir)?;
        Ok(Ctx {
            settings,
            cache: HashMap::new(),
        })
    }

    /// Returns (generating on first use) the **Table-1-literal** synthetic
    /// dataset for a paper profile at the configured scale. Used by the
    /// statistics artifacts (table1, fig1, fig2, theory).
    pub fn dataset(&mut self, p: PaperProfile) -> Arc<GeneratedData> {
        self.dataset_inner(p, false)
    }

    /// Returns the **training-calibrated** variant (same ψ/shape, norms
    /// rescaled to λ·L̄ ≈ 2; see `PaperProfile::training`). Used by the
    /// convergence artifacts (fig3, fig4, fig5, ablations).
    pub fn dataset_training(&mut self, p: PaperProfile) -> Arc<GeneratedData> {
        self.dataset_inner(p, true)
    }

    fn dataset_inner(&mut self, p: PaperProfile, training: bool) -> Arc<GeneratedData> {
        let scale = self.settings.scale;
        let seed = self.settings.seed;
        let key: &'static str = match (p, training) {
            (PaperProfile::News20, false) => "news20",
            (PaperProfile::Url, false) => "url",
            (PaperProfile::KddAlgebra, false) => "kdd_algebra",
            (PaperProfile::KddBridge, false) => "kdd_bridge",
            (PaperProfile::News20, true) => "news20_t",
            (PaperProfile::Url, true) => "url_t",
            (PaperProfile::KddAlgebra, true) => "kdd_algebra_t",
            (PaperProfile::KddBridge, true) => "kdd_bridge_t",
        };
        self.cache
            .entry(key)
            .or_insert_with(|| {
                let base = if training { p.training() } else { p.scaled() };
                let profile = base.scaled_by(scale);
                eprintln!(
                    "[datagen] {}{} (d={}, n={}, ~{} nnz/row)…",
                    profile.name,
                    if training {
                        " [training-calibrated]"
                    } else {
                        ""
                    },
                    profile.dim,
                    profile.n_samples,
                    profile.mean_nnz
                );
                Arc::new(generate(&profile, seed))
            })
            .clone()
    }

    /// Writes an artifact under the output directory, echoing the path.
    pub fn write(&self, name: &str, content: &str) {
        let path = self.settings.out_dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("[warn] failed to write {}: {e}", path.display());
        } else {
            eprintln!("[out] {}", path.display());
        }
    }
}

/// Error-rate target grid between `lo` (exclusive best) and `hi`,
/// quadratically densified near the optimum, used for Fig. 5 slices.
pub fn error_grid(lo: f64, hi: f64, k: usize) -> Vec<f64> {
    (0..k)
        .map(|i| {
            let f = (i + 1) as f64 / k as f64;
            lo + (hi - lo) * f * f
        })
        .collect()
}

/// Runs `f(run_seed)` once per derived seed and returns the last result
/// with its trace replaced by the pointwise seed-average (timings and
/// setup costs averaged too). See
/// [`average_traces`](isasgd_metrics::trace::average_traces) for why
/// scaled-down curves need this.
pub fn run_averaged<F: FnMut(u64) -> isasgd_core::RunResult>(
    avg_runs: usize,
    master_seed: u64,
    mut f: F,
) -> isasgd_core::RunResult {
    let seeds = isasgd_sampling::rng::derive_seeds(master_seed, avg_runs.max(1));
    merge_results(seeds.iter().map(|&s| f(s)).collect())
}

/// Merges several runs of one configuration into a single result: traces
/// pointwise-averaged, timings averaged, model/metrics from the last run.
pub fn merge_results(runs: Vec<isasgd_core::RunResult>) -> isasgd_core::RunResult {
    let traces: Vec<isasgd_metrics::Trace> = runs.iter().map(|r| r.trace.clone()).collect();
    let k = runs.len() as f64;
    let setup_secs = runs.iter().map(|r| r.setup_secs).sum::<f64>() / k;
    let train_secs = runs.iter().map(|r| r.train_secs).sum::<f64>() / k;
    let eval_secs = runs.iter().map(|r| r.eval_secs).sum::<f64>() / k;
    let mut out = runs
        .into_iter()
        .last()
        .expect("merge_results needs ≥ 1 run");
    out.trace = isasgd_metrics::trace::average_traces(&traces);
    out.setup_secs = setup_secs;
    out.train_secs = train_secs;
    out.eval_secs = eval_secs;
    out
}
