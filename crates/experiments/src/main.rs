//! Regenerates every table and figure of the IS-ASGD paper.
//!
//! ```text
//! isasgd-experiments [FLAGS] <COMMAND>...
//!
//! COMMANDS
//!   table1            Table 1  — dataset statistics (dim, n, sparsity, ψ, ρ)
//!   fig1              Figure 1 — dense µ vs index-compressed update cost
//!   fig2              Figure 2 — importance balancing vs random sharding
//!   fig3              Figure 3 — iterative convergence (epoch axis), τ sweep
//!   fig4              Figure 4 — absolute convergence (wall-clock axis)
//!   fig5              Figure 5 — error-rate → speedup slices
//!   summary           §4.2     — speedup summary numbers
//!   ablation-balance  §2.3/2.4 — balanced vs shuffled IS-ASGD
//!   ablation-seq      §4.2     — regenerate vs shuffle-once sequences
//!   ablation-svrg     §1.2     — literature vs skip-µ SVRG
//!   ablation-scheme   Eq. 12   — importance scheme × ψ × step regime
//!   ablation-adaptive Eq. 11   — static vs adaptive importance sampling
//!   ablation-intra-epoch       — epoch vs every-k adaptive commit policy
//!   is-gain           §2.2     — provable-regime IS speedup sweep
//!   cluster           §2.3     — per-node balancing in the local-SGD setting
//!   theory            §3       — bound calculators, τ budgets, Δ̄
//!   all               everything above
//!
//! FLAGS
//!   --quick           tiny datasets + few epochs (CI smoke preset)
//!   --scale <f>       scale factor on profile sizes       [default 1.0]
//!   --epochs <n>      override per-profile epoch counts
//!   --seed <n>        master seed                         [default fixed]
//!   --taus <a,b,..>   simulated delay sweep               [default 16,32,44]
//!   --threads <a,..>  real-thread sweep for fig4          [default 1,host]
//!   --avg <n>         seeds averaged per curve            [default 3]
//!   --out <dir>       output directory                    [default results/]
//! ```

#![forbid(unsafe_code)]

mod cmds;
mod common;

use common::{Ctx, Settings};

fn parse_list(s: &str) -> Option<Vec<usize>> {
    s.split(',').map(|t| t.trim().parse().ok()).collect()
}

fn next_value<'a>(args: &'a [String], i: &mut usize, key: &str) -> &'a str {
    if *i + 1 < args.len() {
        *i += 1;
        &args[*i]
    } else {
        eprintln!("missing value for {key}");
        std::process::exit(2);
    }
}

fn bad_flag(flag: &str, v: &str) -> ! {
    eprintln!("bad value '{v}' for {flag}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = Settings::default();
    let mut commands: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--quick" => settings = Settings::quick(),
            "--scale" => {
                let v = next_value(&args, &mut i, a);
                settings.scale = v.parse().unwrap_or_else(|_| bad_flag(a, v));
            }
            "--epochs" => {
                let v = next_value(&args, &mut i, a);
                settings.epochs = Some(v.parse().unwrap_or_else(|_| bad_flag(a, v)));
            }
            "--seed" => {
                let v = next_value(&args, &mut i, a);
                settings.seed = v.parse().unwrap_or_else(|_| bad_flag(a, v));
            }
            "--taus" => {
                let v = next_value(&args, &mut i, a);
                settings.taus = parse_list(v).unwrap_or_else(|| bad_flag(a, v));
            }
            "--threads" => {
                let v = next_value(&args, &mut i, a);
                settings.threads = parse_list(v).unwrap_or_else(|| bad_flag(a, v));
            }
            "--reps" => {
                let v = next_value(&args, &mut i, a);
                settings.reps = v.parse().unwrap_or_else(|_| bad_flag(a, v));
            }
            "--avg" => {
                let v = next_value(&args, &mut i, a);
                settings.avg_runs = v.parse().unwrap_or_else(|_| bad_flag(a, v));
            }
            "--out" => {
                let v = next_value(&args, &mut i, a);
                settings.out_dir = v.into();
            }
            "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            cmd if !cmd.starts_with('-') => commands.push(cmd.to_string()),
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if commands.is_empty() {
        print!("{HELP}");
        std::process::exit(2);
    }

    let mut ctx = Ctx::new(settings).expect("cannot create output directory");
    for cmd in &commands {
        run_command(&mut ctx, cmd);
    }
}

fn run_command(ctx: &mut Ctx, cmd: &str) {
    match cmd {
        "table1" => cmds::table1::run(ctx),
        "fig1" => cmds::fig1::run(ctx),
        "fig2" => cmds::fig2::run(ctx),
        "fig3" => {
            cmds::fig3::run(ctx);
        }
        "fig4" => {
            cmds::fig4::run(ctx);
        }
        "fig5" => cmds::fig5::run(ctx),
        "summary" => cmds::summary::run(ctx),
        "ablation-balance" => cmds::ablations::balance(ctx),
        "ablation-seq" => cmds::ablations::sequences(ctx),
        "ablation-svrg" => cmds::ablations::svrg(ctx),
        "ablation-scheme" => cmds::ablations::schemes(ctx),
        "ablation-adaptive" => cmds::adaptive::run(ctx),
        "ablation-intra-epoch" => cmds::intra_epoch::run(ctx),
        "is-gain" => cmds::isgain::run(ctx),
        "cluster" => cmds::cluster::run(ctx),
        "theory" => cmds::theory::run(ctx),
        "variance" => cmds::variance::run(ctx),
        "dense-crossover" => cmds::dense::run(ctx),
        "all" => {
            for c in [
                "table1",
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "summary",
                "ablation-balance",
                "ablation-seq",
                "ablation-svrg",
                "ablation-scheme",
                "ablation-adaptive",
                "ablation-intra-epoch",
                "is-gain",
                "cluster",
                "theory",
                "variance",
                "dense-crossover",
            ] {
                run_command(ctx, c);
            }
        }
        other => {
            eprintln!("unknown command {other}; see --help");
            std::process::exit(2);
        }
    }
}

const HELP: &str = "\
isasgd-experiments — regenerate the IS-ASGD paper's tables and figures

USAGE: isasgd-experiments [FLAGS] <COMMAND>...

COMMANDS
  table1 fig1 fig2 fig3 fig4 fig5 summary
  ablation-balance ablation-seq ablation-svrg ablation-scheme
  ablation-adaptive ablation-intra-epoch is-gain cluster theory variance
  dense-crossover all

FLAGS
  --quick | --scale <f> | --epochs <n> | --seed <n>
  --taus <a,b,..> | --threads <a,b,..> | --reps <n> | --avg <n> | --out <dir>

Run with --release; figures involve full training runs.
";
