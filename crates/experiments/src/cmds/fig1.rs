//! Figure 1 — why SVRG-ASGD loses sparsity: the per-iteration cost of an
//! index-compressed gradient update vs one involving the dense µ.
//!
//! The paper's figure is an illustration; the measurable claim behind it
//! is that the dense-µ add makes each iteration `O(d)` instead of
//! `O(nnz)`, i.e. slower by roughly `d / nnz` — "five to seven magnitudes"
//! at their scales. This command times both update kernels on each
//! profile and reports the measured ratio next to `d / nnz`.

use crate::common::Ctx;
use isasgd_datagen::PaperProfile;
use isasgd_metrics::table::{fmt_num, TextTable};
use std::time::Instant;

/// Times `iters` sparse updates of `w` by rows of the dataset.
fn time_sparse(data: &isasgd_sparse::Dataset, w: &mut [f64], iters: usize) -> f64 {
    let n = data.n_samples();
    let t0 = Instant::now();
    for t in 0..iters {
        let row = data.row(t % n);
        row.axpy_into(-1e-9, w);
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Times `iters` sparse + dense-µ updates (the SVRG literature kernel).
fn time_dense(data: &isasgd_sparse::Dataset, w: &mut [f64], mu: &[f64], iters: usize) -> f64 {
    let n = data.n_samples();
    let t0 = Instant::now();
    for t in 0..iters {
        let row = data.row(t % n);
        row.axpy_into(-1e-9, w);
        for (wj, &mj) in w.iter_mut().zip(mu) {
            *wj -= 1e-9 * mj;
        }
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Runs the Figure-1 cost experiment.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== Figure 1: per-iteration update cost, sparse vs dense µ ===\n");
    let mut table = TextTable::new(vec![
        "dataset",
        "d",
        "nnz/row",
        "sparse_ns",
        "dense_ns",
        "measured_ratio",
        "d/nnz",
    ]);
    for p in PaperProfile::ALL {
        let data = ctx.dataset(p);
        let ds = &data.dataset;
        let d = ds.dim();
        let mean_nnz = ds.mean_nnz();
        let mut w = vec![0.0f64; d];
        let mu = vec![1e-6f64; d];
        // Calibrate iteration counts so each timing takes ~0.1–0.5 s.
        let sparse_iters = 200_000;
        let dense_iters = (50_000_000 / d).clamp(20, 10_000);
        let s = time_sparse(ds, &mut w, sparse_iters);
        let dn = time_dense(ds, &mut w, &mu, dense_iters);
        table.row(vec![
            p.display_name().to_string(),
            d.to_string(),
            format!("{mean_nnz:.1}"),
            format!("{:.1}", s * 1e9),
            format!("{:.1}", dn * 1e9),
            fmt_num(dn / s),
            fmt_num(d as f64 / mean_nnz),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "The dense-µ kernel is slower by ≈ d/nnz — the paper's reason SVRG-ASGD\n\
         cannot finish on large sparse data (§1.2; KDD: 2h per epoch on 44 threads).\n"
    );
    ctx.write("fig1.txt", &rendered);
    ctx.write("fig1.csv", &table.to_csv());
}
