//! The `ablation-intra-epoch` artifact: epoch-boundary vs intra-epoch
//! (`every-k`) commit policies for adaptive importance sampling.
//!
//! The adaptive sampler's distribution is re-estimated from observed
//! gradient magnitudes; *when* those estimates become visible to draws
//! is the [`CommitPolicy`]. Epoch-boundary commits keep every epoch's
//! distribution frozen (deterministic, per-epoch-unbiased — the default
//! since the adaptive sampler landed). `every-k` commits re-weight the
//! live Fenwick distribution every `k` observations, so draws later in
//! the same epoch already prefer the rows the current model finds hard —
//! at the cost of drawing on the hot path (streamed schedules) instead
//! of pre-generated sequences. This command quantifies that trade at the
//! paper's interesting importance spreads, including the acceptance
//! point ψ = 0.35.

use crate::common::{run_averaged, Ctx};
use isasgd_core::{
    train, Algorithm, CommitPolicy, Execution, ImportanceScheme, Objective, Regularizer, RunResult,
    SamplingStrategy, SquaredLoss, TrainConfig,
};
use isasgd_datagen::{DatasetProfile, FeatureKind};
use isasgd_metrics::interpolate::time_to_target;
use isasgd_metrics::table::{fmt_num, TextTable};
use isasgd_metrics::Trace;

/// Monotone best-objective curve keyed by epoch.
fn objective_curve(t: &Trace) -> Vec<(f64, f64)> {
    let mut best = f64::INFINITY;
    t.points
        .iter()
        .map(|p| {
            best = best.min(p.objective);
            (p.epoch, best)
        })
        .collect()
}

/// Epoch-speedup of `fast` over `slow` at a fraction `frac` of `slow`'s
/// own objective decrease (robust common target).
fn epoch_speedup(slow: &Trace, fast: &Trace, frac: f64) -> Option<f64> {
    let cs = objective_curve(slow);
    let cf = objective_curve(fast);
    let start = cs.first()?.1;
    let end = cs.last()?.1;
    let target = end + (start - end) * (1.0 - frac);
    match (time_to_target(&cs, target), time_to_target(&cf, target)) {
        (Some(a), Some(b)) if b > 0.0 => Some(a / b),
        _ => None,
    }
}

/// Runs the commit-policy sweep.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== Intra-epoch adaptivity ablation (commit policy) ===\n");
    let obj = Objective::new(SquaredLoss, Regularizer::L2 { eta: 1e-4 });
    let mut table = TextTable::new(vec![
        "psi_norm",
        "exec",
        "commit",
        "sp@50%",
        "sp@80%",
        "final_obj",
        "commits",
    ]);
    let epochs = ctx.settings.epochs.unwrap_or(12);
    let avg = ctx.settings.avg_runs.max(3);
    let policies = [
        CommitPolicy::EpochBoundary,
        CommitPolicy::EveryK(256),
        CommitPolicy::EveryK(32),
    ];
    for psi in [0.5, 0.35] {
        let p = DatasetProfile {
            name: "intra-epoch",
            dim: 2_000,
            n_samples: 8_000,
            mean_nnz: 16,
            zipf_exponent: 0.8,
            target_psi_norm: psi,
            target_rho: (1.0 / psi - 1.0) * 0.25,
            label_noise: 0.0,
            planted_density: 0.3,
            feature_kind: FeatureKind::GaussianScaled,
            noise_nnz_coupling: 0.0,
        };
        let gen = isasgd_datagen::generate(&p, ctx.settings.seed);
        let w = isasgd_core::importance_weights(
            &gen.dataset,
            &SquaredLoss,
            obj.reg,
            ImportanceScheme::LipschitzSmoothness,
        );
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        let sup = w.iter().cloned().fold(0.0, f64::max);
        // Same tuned-λ protocol as the adaptive ablation: uniform at its
        // own stability edge, IS at the IS edge.
        let lambda_u = 0.5 / sup;
        let lambda_is = 0.4 / mean;

        let run_one = |sampling: Option<SamplingStrategy>,
                       commit: CommitPolicy,
                       lambda: f64,
                       algo: Algorithm,
                       exec: Execution|
         -> RunResult {
            run_averaged(avg, ctx.settings.seed, |s| {
                let mut c = TrainConfig::default()
                    .with_epochs(epochs)
                    .with_step_size(lambda)
                    .with_seed(s);
                c.importance = ImportanceScheme::LipschitzSmoothness;
                c.sampling = sampling;
                c.commit = commit;
                train(&gen.dataset, &obj, algo, exec, &c, "intra-epoch").expect("ablation run")
            })
        };
        // Both the sequential path and real Hogwild threads: streamed
        // worker schedules mean every-k commits steer mid-epoch draws on
        // both (threaded commits used to silently land at the barrier).
        let arms: [(&str, Algorithm, Execution); 2] = [
            ("seq", Algorithm::IsSgd, Execution::Sequential),
            ("thr2", Algorithm::IsAsgd, Execution::Threads(2)),
        ];
        for (exec_name, algo, exec) in arms {
            let uniform = run_one(
                Some(SamplingStrategy::Uniform),
                CommitPolicy::EpochBoundary,
                lambda_u,
                if matches!(exec, Execution::Sequential) {
                    Algorithm::Sgd
                } else {
                    Algorithm::Asgd
                },
                exec,
            );
            for commit in policies {
                let r = run_one(
                    Some(SamplingStrategy::Adaptive),
                    commit,
                    lambda_is,
                    algo,
                    exec,
                );
                table.row(vec![
                    fmt_num(psi),
                    exec_name.to_string(),
                    commit.name(),
                    epoch_speedup(&uniform.trace, &r.trace, 0.50).map_or("-".into(), fmt_num),
                    epoch_speedup(&uniform.trace, &r.trace, 0.80).map_or("-".into(), fmt_num),
                    fmt_num(r.final_metrics.objective),
                    r.sampler_commits.last().copied().unwrap_or(0).to_string(),
                ]);
            }
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected: every-k commits track the shifting gradient distribution\n\
         within each pass, which matters most late in training and at low ψ\n\
         (heavy importance skew). Smaller k reacts faster but re-weights from\n\
         noisier windows; epoch commits are the deterministic baseline. The\n\
         thr2 arm exercises the streamed worker schedules: its `commits`\n\
         column exceeding workers×epochs is intra-epoch adaptivity firing on\n\
         real Hogwild threads. The cost side is structural rather than\n\
         visible here: every-k runs draw on the training path (streamed in\n\
         k-strides) instead of pulling large amortized chunks.\n"
    );
    ctx.write("ablation_intra_epoch.txt", &rendered);
    ctx.write("ablation_intra_epoch.csv", &table.to_csv());
}
