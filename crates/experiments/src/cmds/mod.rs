//! One module per regenerated artifact.

pub mod ablations;
pub mod adaptive;
pub mod cluster;
pub mod dense;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod intra_epoch;
pub mod isgain;
pub mod summary;
pub mod table1;
pub mod theory;
pub mod variance;
