//! Table 1 — evaluation dataset statistics, paper vs synthetic.

use crate::common::{paper_objective, Ctx};
use isasgd_balance::ImportanceProfile;
use isasgd_core::ImportanceScheme;
use isasgd_datagen::PaperProfile;
use isasgd_losses::importance_weights;
use isasgd_metrics::table::{fmt_num, TextTable};
use isasgd_sparse::DatasetStats;

/// Prints the Table-1 analogue: per profile, the synthetic dataset's
/// dimension, instance count, gradient sparsity, ψ/n and ρ next to the
/// paper's values.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== Table 1: evaluation datasets (paper → synthetic) ===\n");
    let obj = paper_objective();
    let mut table = TextTable::new(vec![
        "dataset",
        "dim",
        "n",
        "grad-spa.",
        "psi/n",
        "rho",
        "paper-dim",
        "paper-n",
        "paper-spa.",
        "paper-psi",
        "paper-rho",
    ]);
    for p in PaperProfile::ALL {
        let data = ctx.dataset(p);
        let stats = DatasetStats::compute(&data.dataset);
        let w = importance_weights(
            &data.dataset,
            &obj.loss,
            obj.reg,
            ImportanceScheme::LipschitzSmoothness,
        );
        let prof = ImportanceProfile::compute(&w);
        let (pd, pn, pspa, ppsi, prho) = p.paper_table1();
        table.row(vec![
            p.display_name().to_string(),
            stats.dim.to_string(),
            stats.n_samples.to_string(),
            fmt_num(stats.density),
            fmt_num(prof.psi_normalized),
            fmt_num(prof.rho),
            pd.to_string(),
            pn.to_string(),
            fmt_num(pspa),
            fmt_num(ppsi),
            fmt_num(prho),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    ctx.write("table1.txt", &rendered);
    ctx.write("table1.csv", &table.to_csv());
}
