//! Ablations backing the paper's design-choice claims.

use crate::common::{paper_objective, Ctx};
use isasgd_core::{
    train, Algorithm, BalancePolicy, Execution, SequenceMode, SvrgVariant, TrainConfig,
};
use isasgd_datagen::{DatasetProfile, FeatureKind, PaperProfile};
use isasgd_metrics::table::{fmt_num, TextTable};

/// §2.3–2.4 — does importance balancing matter? Runs IS-ASGD with
/// ForceBalance vs ForceShuffle vs Identity sharding on a deliberately
/// high-ρ profile (where the paper predicts balancing wins) and on the
/// low-ρ KDD-like profile (where shuffling suffices).
pub fn balance(ctx: &mut Ctx) {
    println!("\n=== Ablation: importance balancing (paper §2.3–2.4) ===\n");
    let obj = paper_objective();
    // A skewed profile: heavy-tailed norms ⇒ large ρ ⇒ shard imbalance.
    let skewed = DatasetProfile {
        name: "skewed",
        dim: 5_000,
        n_samples: 8_000,
        mean_nnz: 30,
        zipf_exponent: 0.9,
        target_psi_norm: 0.60,
        target_rho: 5e-2,
        label_noise: 0.02,
        planted_density: 0.10,
        feature_kind: FeatureKind::GaussianScaled,
        noise_nnz_coupling: 1.0,
    };
    let gen = isasgd_datagen::generate(&skewed, ctx.settings.seed);
    let kdd = ctx.dataset_training(PaperProfile::KddAlgebra);

    let mut table = TextTable::new(vec![
        "dataset",
        "policy",
        "balanced?",
        "rho",
        "best_err",
        "final_rmse",
    ]);
    let epochs = ctx.settings.epochs.unwrap_or(10);
    for (name, ds) in [("skewed", &gen.dataset), ("kdd_algebra", &kdd.dataset)] {
        for (policy, label) in [
            (BalancePolicy::ForceBalance, "head-tail"),
            (BalancePolicy::ForceGreedy, "greedy-lpt"),
            (BalancePolicy::ForceShuffle, "shuffle"),
            (BalancePolicy::Identity, "identity"),
            (BalancePolicy::default(), "adaptive"),
        ] {
            let mut cfg = TrainConfig::default()
                .with_epochs(epochs)
                .with_step_size(0.5)
                .with_seed(ctx.settings.seed);
            cfg.balance = policy;
            cfg.importance = isasgd_core::ImportanceScheme::GradNormBound { radius: 1.0 };
            let exec = Execution::Simulated {
                tau: 32,
                workers: 8,
            };
            let r = train(ds, &obj, Algorithm::IsAsgd, exec, &cfg, name).expect("run");
            table.row(vec![
                name.to_string(),
                label.to_string(),
                r.balanced.map_or("-".into(), |b| b.to_string()),
                fmt_num(r.rho.unwrap_or(f64::NAN)),
                fmt_num(r.trace.best_error().unwrap_or(f64::NAN)),
                fmt_num(r.trace.points.last().map_or(f64::NAN, |q| q.rmse)),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected: on the high-ρ profile, 'balance' ≥ 'shuffle' ≥ 'identity';\n\
         on the low-ρ profile the three are indistinguishable and 'adaptive'\n\
         picks shuffle — the paper's Algorithm-4 rule.\n"
    );
    ctx.write("ablation_balance.txt", &rendered);
    ctx.write("ablation_balance.csv", &table.to_csv());
}

/// §4.2 — regenerate-per-epoch vs shuffle-once sample sequences.
pub fn sequences(ctx: &mut Ctx) {
    println!("\n=== Ablation: sequence regeneration vs shuffle-once (§4.2) ===\n");
    let obj = paper_objective();
    let mut table = TextTable::new(vec![
        "dataset",
        "mode",
        "best_err",
        "final_rmse",
        "setup_s",
        "train_s",
    ]);
    for p in [PaperProfile::News20, PaperProfile::KddAlgebra] {
        let data = ctx.dataset_training(p);
        let epochs = ctx.settings.epochs_for(p).min(15);
        for (mode, label) in [
            (SequenceMode::RegeneratePerEpoch, "regenerate"),
            (SequenceMode::ShuffleOnce, "shuffle-once"),
        ] {
            let mut cfg = TrainConfig::default()
                .with_epochs(epochs)
                .with_step_size(p.paper_step_size())
                .with_seed(ctx.settings.seed);
            cfg.sequence = mode;
            cfg.importance = isasgd_core::ImportanceScheme::GradNormBound { radius: 1.0 };
            let exec = Execution::Simulated {
                tau: 16,
                workers: 8,
            };
            let r = train(&data.dataset, &obj, Algorithm::IsAsgd, exec, &cfg, p.id()).expect("run");
            table.row(vec![
                p.id().to_string(),
                label.to_string(),
                fmt_num(r.trace.best_error().unwrap_or(f64::NAN)),
                fmt_num(r.trace.points.last().map_or(f64::NAN, |q| q.rmse)),
                fmt_num(r.setup_secs),
                fmt_num(r.train_secs),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected (paper §4.2): the shuffle-once approximation converges like\n\
         exact regeneration — 'such approximation works well in practice'.\n"
    );
    ctx.write("ablation_seq.txt", &rendered);
    ctx.write("ablation_seq.csv", &table.to_csv());
}

/// Importance scheme × ψ × step-stability regime sweep.
///
/// The paper's Eq. 12 prescribes `p_i ∝ L_i` (smoothness constants) but
/// reports gains (1.13–1.54×) far above what its own Table-1 ψ values
/// predict through the variance bound alone (`1/√ψ_norm` ≈ 1.01–1.07).
/// This grid measures all four Eq.-12 weight choices against uniform
/// sampling across the importance spread ψ and the hotness `h = λ·L̄`
/// (the step-stability regime). At the paper's shared-λ protocol the
/// curvature channel cancels exactly (per-epoch effective step mass per
/// row is λ·L_i under every static sampler), so the measured differences
/// isolate the variance channel and the tail effects of extreme step
/// corrections — see EXPERIMENTS.md, "Where the 1.13–1.54× lives", and
/// the `is-gain` artifact for the tuned-λ regime where the large factors
/// appear.
pub fn schemes(ctx: &mut Ctx) {
    println!("\n=== Ablation: importance scheme × ψ × step regime (Eq. 12 variants) ===\n");
    use isasgd_core::ImportanceScheme as Sch;
    let obj = paper_objective();
    let mut table = TextTable::new(vec![
        "psi_norm",
        "hotness",
        "scheme",
        "best_err",
        "err@25%ep",
        "epochs_to_1.25opt",
        "speedup_ep",
        "max_corr",
    ]);
    // Reduced-size kdd-like profile: enough samples for stable curves,
    // small enough that the ψ × hotness × scheme grid stays in minutes.
    let base_scale = (ctx.settings.scale * 0.25).min(0.25);
    let profile = PaperProfile::KddAlgebra;
    let lambda = profile.paper_step_size();
    let epochs = ctx.settings.epochs.unwrap_or(20);
    // ψ axis: the Table-1 printed value (on normalized constants) down to
    // the raw-constant spread real variable-nnz data exhibits.
    let paper_psi = profile.paper_table1().3;
    for psi in [paper_psi, 0.7, 0.5, 0.35] {
        for hotness in [1.0, 2.0] {
            let mut p = profile.scaled().scaled_by(base_scale);
            p.target_psi_norm = psi;
            let cv_sq = 1.0 / psi - 1.0;
            let mean_l = hotness / lambda;
            p.target_rho = cv_sq * mean_l * mean_l;
            if let FeatureKind::Binary { .. } = p.feature_kind {
                // Binary mode carries the importance scale in the value.
                p.feature_kind = FeatureKind::Binary {
                    value: (4.0 * mean_l / p.mean_nnz as f64).sqrt(),
                };
            }
            let gen = isasgd_datagen::generate(&p, ctx.settings.seed);
            let exec = Execution::Simulated {
                tau: 32,
                workers: 8,
            };
            let mk_cfg = || {
                TrainConfig::default()
                    .with_epochs(epochs)
                    .with_step_size(lambda)
                    .with_seed(ctx.settings.seed)
            };
            let asgd =
                train(&gen.dataset, &obj, Algorithm::Asgd, exec, &mk_cfg(), p.name).expect("asgd");
            // Common target both algorithms plausibly reach: 1.25× ASGD's
            // best error; epoch-speedup is ASGD's time to it over the
            // candidate's.
            let target = 1.25 * asgd.trace.best_error().unwrap_or(f64::NAN);
            let asgd_curve = isasgd_metrics::trace::best_error_curve_by_epoch(&asgd.trace);
            let asgd_to = isasgd_metrics::interpolate::time_to_target(&asgd_curve, target);
            let schemes: [(Sch, &str); 4] = [
                (Sch::Uniform, "uniform(ASGD)"),
                (Sch::GradNormBound { radius: 1.0 }, "gradnorm"),
                (Sch::LipschitzSmoothness, "smoothness"),
                (Sch::PartiallyBiased { bias: 0.5 }, "partial-0.5"),
            ];
            for (scheme, label) in schemes {
                let r = if matches!(scheme, Sch::Uniform) {
                    asgd.clone()
                } else {
                    let mut cfg = mk_cfg();
                    cfg.importance = scheme;
                    train(&gen.dataset, &obj, Algorithm::IsAsgd, exec, &cfg, p.name)
                        .expect("is-asgd")
                };
                let curve = isasgd_metrics::trace::best_error_curve_by_epoch(&r.trace);
                let to_target = isasgd_metrics::interpolate::time_to_target(&curve, target);
                let speedup = match (asgd_to, to_target) {
                    (Some(a), Some(b)) if b > 0.0 => Some(a / b),
                    _ => None,
                };
                // Early-stage error: at 25% of the epoch budget.
                let early = r
                    .trace
                    .points
                    .iter()
                    .find(|q| q.epoch >= epochs as f64 * 0.25)
                    .map_or(f64::NAN, |q| q.error_rate);
                let w = isasgd_core::importance_weights(
                    &gen.dataset,
                    &isasgd_core::LogisticLoss,
                    obj.reg,
                    scheme,
                );
                let corr = isasgd_core::step_corrections(&w);
                let max_corr = corr.iter().cloned().fold(0.0, f64::max);
                table.row(vec![
                    fmt_num(psi),
                    fmt_num(hotness),
                    label.to_string(),
                    fmt_num(r.trace.best_error().unwrap_or(f64::NAN)),
                    fmt_num(early),
                    to_target.map_or("-".into(), fmt_num),
                    speedup.map_or("-".into(), fmt_num),
                    fmt_num(max_corr),
                ]);
            }
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Reading: at the Table-1-printed ψ (normalized constants) the L-spread\n\
         is too small for any scheme to beat uniform by the paper's factors; at\n\
         the raw-constant ψ of variable-nnz data (0.35–0.6) the smoothness and\n\
         partially-biased corrections equalize effective steps and reach common\n\
         error targets with paper-sized epoch speedups.\n"
    );
    ctx.write("ablation_scheme.txt", &rendered);
    ctx.write("ablation_scheme.csv", &table.to_csv());
}

/// §1.2 — the public skip-µ SVRG variant vs the literature algorithm.
pub fn svrg(ctx: &mut Ctx) {
    println!("\n=== Ablation: SVRG literature vs public skip-µ variant (§1.2) ===\n");
    let obj = paper_objective();
    let data = ctx.dataset(PaperProfile::News20);
    let epochs = ctx.settings.epochs_for(PaperProfile::News20);
    let cfg = TrainConfig::default()
        .with_epochs(epochs)
        .with_step_size(0.05) // SVRG needs a gentler step on this objective
        .with_seed(ctx.settings.seed);
    let mut table = TextTable::new(vec!["variant", "epoch", "rmse", "error_rate"]);
    for (variant, label) in [
        (SvrgVariant::Literature, "literature"),
        (SvrgVariant::SkipMu, "skip-mu"),
    ] {
        let r = train(
            &data.dataset,
            &obj,
            Algorithm::SvrgSgd(variant),
            Execution::Sequential,
            &cfg,
            "news20",
        )
        .expect("svrg run");
        for q in &r.trace.points {
            table.row(vec![
                label.to_string(),
                fmt_num(q.epoch),
                fmt_num(q.rmse),
                fmt_num(q.error_rate),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected (paper §1.2): the skip-µ trajectory departs from the literature\n\
         version — 'we found the convergence curve of this public version far\n\
         from the literature version'.\n"
    );
    ctx.write("ablation_svrg.txt", &rendered);
    ctx.write("ablation_svrg.csv", &table.to_csv());
}
