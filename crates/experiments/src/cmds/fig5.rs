//! Figure 5 — error-rate → absolute-speedup slices of IS-ASGD over ASGD
//! and over SGD, per concurrency level.
//!
//! Derived from the Figure-4 traces exactly as the paper derives Fig. 5
//! from Fig. 4: for each error level on the x-axis, the z-axis is the
//! ratio of (linearly interpolated) wall-clock times to first reach it.

use crate::common::{error_grid, Ctx};
use isasgd_metrics::speedup::speedup_curve;
use isasgd_metrics::table::{fmt_num, TextTable};
use isasgd_metrics::Trace;

/// Loads fig4 traces from disk, or reruns fig4 when absent.
fn fig4_traces(ctx: &mut Ctx) -> Vec<Trace> {
    let path = ctx.settings.out_dir.join("fig4_traces.json");
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(traces) = serde_json::from_slice::<Vec<Trace>>(&bytes) {
            eprintln!("[fig5] reusing {}", path.display());
            return traces;
        }
    }
    eprintln!("[fig5] no fig4 traces found — running fig4 first");
    super::fig4::run(ctx)
}

/// Runs the Figure-5 slice computation.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== Figure 5: error-rate → speedup slices ===\n");
    let traces = fig4_traces(ctx);
    let mut table = TextTable::new(vec![
        "dataset",
        "threads",
        "target_err",
        "speedup_vs_ASGD",
        "speedup_vs_SGD",
    ]);
    let mut csv = String::from("dataset,threads,target_err,speedup_vs_asgd,speedup_vs_sgd\n");

    // Group traces by (dataset, concurrency).
    let datasets: std::collections::BTreeSet<String> =
        traces.iter().map(|t| t.dataset.clone()).collect();
    for ds in &datasets {
        let sgd = traces
            .iter()
            .find(|t| &t.dataset == ds && t.algorithm == "SGD");
        let concs: std::collections::BTreeSet<usize> = traces
            .iter()
            .filter(|t| &t.dataset == ds && t.algorithm == "IS-ASGD")
            .map(|t| t.concurrency)
            .collect();
        for &k in &concs {
            let asgd = traces
                .iter()
                .find(|t| &t.dataset == ds && t.algorithm == "ASGD" && t.concurrency == k);
            let is_asgd = traces
                .iter()
                .find(|t| &t.dataset == ds && t.algorithm == "IS-ASGD" && t.concurrency == k);
            let (Some(asgd), Some(is_asgd)) = (asgd, is_asgd) else {
                continue;
            };
            let best = asgd.best_error().unwrap_or(0.0);
            let first = asgd.points.first().map_or(1.0, |p| p.error_rate);
            let grid = error_grid(best, first.max(best + 1e-9), 8);
            let vs_asgd = speedup_curve(asgd, is_asgd, &grid);
            let vs_sgd = sgd.map(|s| speedup_curve(s, is_asgd, &grid));
            for (i, &(e, s_a)) in vs_asgd.iter().enumerate() {
                let s_s = vs_sgd.as_ref().and_then(|v| v[i].1);
                table.row(vec![
                    ds.clone(),
                    k.to_string(),
                    fmt_num(e),
                    s_a.map_or("-".into(), fmt_num),
                    s_s.map_or("-".into(), fmt_num),
                ]);
                csv.push_str(&format!(
                    "{},{},{},{},{}\n",
                    ds,
                    k,
                    e,
                    s_a.map_or(f64::NAN, |x| x),
                    s_s.map_or(f64::NAN, |x| x)
                ));
            }
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected shape (paper Fig. 5): speedups over ASGD are largest early in\n\
         the trajectory, dip mid-way, and (on the large low-ψ profiles) rise\n\
         again near the optimum; speedup over SGD scales with thread count.\n"
    );
    ctx.write("fig5.txt", &rendered);
    ctx.write("fig5.csv", &csv);
}
