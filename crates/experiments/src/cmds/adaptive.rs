//! The `ablation-adaptive` artifact: static vs adaptive importance
//! sampling, in the style of the `is-gain` sweep.
//!
//! The paper freezes its importance distribution at `p_i ∝ L_i` because
//! recomputing `‖∇f_i(w_t)‖` exactly is "completely impractical"
//! (Eq. 11). The `Sampler` runtime makes the practical middle ground a
//! one-flag change: the [`AdaptiveIsSampler`] re-weights each shard's
//! Fenwick distribution between epochs from the *observed* per-sample
//! gradient norms (Katharopoulos & Fleuret 2018; Alain et al. 2015).
//! This command sweeps the importance spread ψ and reports, per pair
//! protocol, the epoch-speedup of each sampling strategy over uniform
//! SGD plus the final objectives — the cost/benefit of adaptivity next
//! to the static scheme it replaces.

use crate::common::{run_averaged, Ctx};
use isasgd_core::{
    train, Algorithm, Execution, ImportanceScheme, Objective, Regularizer, RunResult,
    SamplingStrategy, SquaredLoss, TrainConfig,
};
use isasgd_datagen::{DatasetProfile, FeatureKind};
use isasgd_metrics::interpolate::time_to_target;
use isasgd_metrics::table::{fmt_num, TextTable};
use isasgd_metrics::Trace;

/// Monotone best-objective curve keyed by epoch.
fn objective_curve(t: &Trace) -> Vec<(f64, f64)> {
    let mut best = f64::INFINITY;
    t.points
        .iter()
        .map(|p| {
            best = best.min(p.objective);
            (p.epoch, best)
        })
        .collect()
}

/// Epoch-speedup of `fast` over `slow` at a fraction `frac` of `slow`'s
/// own objective decrease (robust common target).
fn epoch_speedup(slow: &Trace, fast: &Trace, frac: f64) -> Option<f64> {
    let cs = objective_curve(slow);
    let cf = objective_curve(fast);
    let start = cs.first()?.1;
    let end = cs.last()?.1;
    let target = end + (start - end) * (1.0 - frac);
    match (time_to_target(&cs, target), time_to_target(&cf, target)) {
        (Some(a), Some(b)) if b > 0.0 => Some(a / b),
        _ => None,
    }
}

/// Runs the static-vs-adaptive sweep.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== Adaptive IS ablation (static vs adaptive sampling) ===\n");
    let obj = Objective::new(SquaredLoss, Regularizer::L2 { eta: 1e-4 });
    let mut table = TextTable::new(vec![
        "psi_norm",
        "sampling",
        "sp@50%",
        "sp@80%",
        "final_obj",
        "setup_ovh",
    ]);
    let epochs = ctx.settings.epochs.unwrap_or(12);
    let avg = ctx.settings.avg_runs.max(3);
    for psi in [0.9, 0.5, 0.35] {
        let p = DatasetProfile {
            name: "adaptive",
            dim: 2_000,
            n_samples: 8_000,
            mean_nnz: 16,
            zipf_exponent: 0.8,
            target_psi_norm: psi,
            target_rho: (1.0 / psi - 1.0) * 0.25,
            label_noise: 0.0,
            planted_density: 0.3,
            feature_kind: FeatureKind::GaussianScaled,
            noise_nnz_coupling: 0.0,
        };
        let gen = isasgd_datagen::generate(&p, ctx.settings.seed);
        let w = isasgd_core::importance_weights(
            &gen.dataset,
            &SquaredLoss,
            obj.reg,
            ImportanceScheme::LipschitzSmoothness,
        );
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        let sup = w.iter().cloned().fold(0.0, f64::max);
        // IS runs at the IS stability edge (see is-gain's tuned-λ
        // protocol); uniform at its own edge.
        let lambda_u = 0.5 / sup;
        let lambda_is = 0.4 / mean;

        let run_one = |sampling: Option<SamplingStrategy>, lambda: f64| -> RunResult {
            run_averaged(avg, ctx.settings.seed, |s| {
                let mut c = TrainConfig::default()
                    .with_epochs(epochs)
                    .with_step_size(lambda)
                    .with_seed(s);
                c.importance = ImportanceScheme::LipschitzSmoothness;
                c.sampling = sampling;
                train(
                    &gen.dataset,
                    &obj,
                    Algorithm::IsSgd,
                    Execution::Sequential,
                    &c,
                    "adaptive",
                )
                .expect("ablation run")
            })
        };
        let uniform = run_one(Some(SamplingStrategy::Uniform), lambda_u);
        let stat = run_one(Some(SamplingStrategy::Static), lambda_is);
        let adap = run_one(Some(SamplingStrategy::Adaptive), lambda_is);

        for (r, label) in [(&stat, "static"), (&adap, "adaptive")] {
            table.row(vec![
                fmt_num(psi),
                label.to_string(),
                epoch_speedup(&uniform.trace, &r.trace, 0.50).map_or("-".into(), fmt_num),
                epoch_speedup(&uniform.trace, &r.trace, 0.80).map_or("-".into(), fmt_num),
                fmt_num(r.final_metrics.objective),
                fmt_num(r.setup_overhead()),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected: at high ψ (near-uniform importance) the two samplers tie;\n\
         as ψ falls the static scheme wins early epochs (its prior is exact\n\
         at w₀) while the adaptive sampler tracks the shifting gradient\n\
         distribution in later epochs. The setup-overhead column shows\n\
         adaptivity's cost: no offline sequence generation, but O(log n)\n\
         draws during training.\n"
    );
    ctx.write("ablation_adaptive.txt", &rendered);
    ctx.write("ablation_adaptive.csv", &table.to_csv());
}
