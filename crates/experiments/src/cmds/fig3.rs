//! Figure 3 — iterative convergence (RMSE & error-rate vs *epoch*) of
//! SGD, ASGD, IS-ASGD (and SVRG-ASGD on the News20-like profile) under
//! the paper's τ ∈ {16, 32, 44} concurrency sweep.
//!
//! Concurrency is reproduced with the deterministic bounded-staleness
//! simulator (DESIGN.md §2), so these curves are exact functions of the
//! seed — per-epoch behaviour does not depend on host parallelism.

use crate::common::{paper_objective, run_averaged, Ctx};
use isasgd_core::{train, Algorithm, Execution, SvrgVariant, TrainConfig};
use isasgd_datagen::PaperProfile;
use isasgd_metrics::table::{fmt_num, TextTable};
use isasgd_metrics::trace::best_error_curve_by_epoch;
use isasgd_metrics::{interpolate::time_to_target, Trace};

/// Simulated workers backing each τ (the paper equates τ with threads; we
/// shard data over min(τ, 8) workers to keep shards non-trivial).
fn workers_for(tau: usize) -> usize {
    tau.clamp(1, 8)
}

/// Runs the Figure-3 sweep, returning all traces (also written as JSON).
pub fn run(ctx: &mut Ctx) -> Vec<Trace> {
    println!("\n=== Figure 3: iterative convergence (epoch axis) ===\n");
    let obj = paper_objective();
    let taus = ctx.settings.taus.clone();
    let mut traces: Vec<Trace> = Vec::new();
    let mut table = TextTable::new(vec![
        "dataset",
        "tau",
        "algo",
        "final_rmse",
        "final_err",
        "best_err",
        "epochs_to_asgd_opt",
    ]);
    let mut csv = String::from("dataset,algo,tau,epoch,rmse,error_rate,objective\n");

    for p in PaperProfile::ALL {
        let data = ctx.dataset_training(p);
        let ds = &data.dataset;
        let epochs = ctx.settings.epochs_for(p);
        let mut cfg = TrainConfig::default()
            .with_epochs(epochs)
            .with_step_size(p.paper_step_size())
            .with_seed(ctx.settings.seed);
        // Gradient-norm importance weights: for the bounded-derivative
        // logistic loss, sup‖∇φ_i‖ = ‖x_i‖, which is the Eq. 11/12 bound
        // (the smoothness constant over-weights heavy rows and
        // destabilizes the corrections; see DESIGN.md §"importance
        // scheme").
        cfg.importance = isasgd_core::ImportanceScheme::GradNormBound { radius: 1.0 };

        // SGD baseline: sequential (τ-independent).
        let avg = ctx.settings.avg_runs;
        eprintln!("[fig3] {} SGD ({epochs} epochs, {avg}-seed avg)…", p.id());
        let sgd = run_averaged(avg, ctx.settings.seed, |seed| {
            let c = cfg.with_seed(seed);
            train(ds, &obj, Algorithm::Sgd, Execution::Sequential, &c, p.id()).expect("sgd run")
        });
        traces.push(sgd.trace.clone());

        for &tau in &taus {
            let exec = Execution::Simulated {
                tau,
                workers: workers_for(tau),
            };
            let mut runs = vec![(Algorithm::Asgd, "ASGD"), (Algorithm::IsAsgd, "IS-ASGD")];
            // The paper evaluates SVRG-ASGD only on News20 (elsewhere it
            // "fails to finish training in a reasonable time").
            if p == PaperProfile::News20 {
                runs.push((Algorithm::SvrgAsgd(SvrgVariant::Literature), "SVRG-ASGD"));
            }
            let mut asgd_best = f64::NAN;
            for (algo, label) in runs {
                eprintln!("[fig3] {} {} tau={tau}…", p.id(), label);
                let r = run_averaged(avg, ctx.settings.seed, |seed| {
                    let c = cfg.with_seed(seed);
                    train(ds, &obj, algo, exec, &c, p.id()).expect("fig3 run")
                });
                let best = r.trace.best_error().unwrap_or(f64::NAN);
                if label == "ASGD" {
                    asgd_best = best;
                }
                // Iterative acceleration: epochs for this algo to reach
                // ASGD's optimum error.
                let to_opt = if asgd_best.is_finite() {
                    time_to_target(&best_error_curve_by_epoch(&r.trace), asgd_best)
                } else {
                    None
                };
                table.row(vec![
                    p.id().to_string(),
                    tau.to_string(),
                    label.to_string(),
                    fmt_num(r.trace.points.last().map_or(f64::NAN, |q| q.rmse)),
                    fmt_num(r.trace.points.last().map_or(f64::NAN, |q| q.error_rate)),
                    fmt_num(best),
                    to_opt.map_or("-".into(), fmt_num),
                ]);
                for q in &r.trace.points {
                    csv.push_str(&format!(
                        "{},{},{},{},{},{},{}\n",
                        p.id(),
                        label,
                        tau,
                        q.epoch,
                        q.rmse,
                        q.error_rate,
                        q.objective
                    ));
                }
                traces.push(r.trace);
            }
        }
        // SGD rows in the CSV for plotting alongside.
        for q in &sgd.trace.points {
            csv.push_str(&format!(
                "{},SGD,0,{},{},{},{}\n",
                p.id(),
                q.epoch,
                q.rmse,
                q.error_rate,
                q.objective
            ));
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected shape (paper Fig. 3): IS-ASGD ≥ ASGD everywhere per epoch; the\n\
         gap grows on the low-ψ KDD-like profiles; ASGD degrades as τ rises while\n\
         IS-ASGD stays near SGD; SVRG-ASGD has the best per-epoch curve on the\n\
         small dense profile.\n"
    );
    ctx.write("fig3.txt", &rendered);
    ctx.write("fig3_curves.csv", &csv);
    if let Ok(json) = serde_json::to_string_pretty(&traces) {
        ctx.write("fig3_traces.json", &json);
    }
    traces
}
