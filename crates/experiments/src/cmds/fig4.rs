//! Figure 4 — absolute convergence (RMSE & error-rate vs *wall-clock*),
//! with the paper's optimum markers: the wall-clock at which ASGD reaches
//! its best error, and the (earlier) wall-clock at which IS-ASGD reaches
//! the same error.
//!
//! These runs use **real Hogwild threads** over the lock-free shared
//! model, so wall-clock numbers reflect genuine parallel execution at
//! whatever `--threads` the host supports (paper: 16/32/44 on a 44-core
//! Xeon; see DESIGN.md for the substitution note). SVRG-ASGD joins only
//! on the News20-like profile, as in the paper.

use crate::common::{merge_results, paper_objective, run_averaged, Ctx};
use isasgd_core::{train, Algorithm, Execution, SvrgVariant, TrainConfig};
use isasgd_datagen::PaperProfile;
use isasgd_metrics::interpolate::time_to_error;
use isasgd_metrics::table::{fmt_num, TextTable};
use isasgd_metrics::Trace;

/// Runs the Figure-4 sweep; returns all traces and writes
/// `fig4_traces.json` for fig5/summary to reuse.
pub fn run(ctx: &mut Ctx) -> Vec<Trace> {
    println!("\n=== Figure 4: absolute convergence (wall-clock axis) ===\n");
    let obj = paper_objective();
    let threads = ctx.settings.threads.clone();
    let mut traces: Vec<Trace> = Vec::new();
    let mut table = TextTable::new(vec![
        "dataset",
        "threads",
        "algo",
        "train_s",
        "best_err",
        "t_to_asgd_opt_s",
        "speedup_vs_asgd",
        "setup_overhead",
    ]);
    let mut csv = String::from("dataset,algo,threads,epoch,wall_secs,rmse,error_rate,objective\n");

    for p in PaperProfile::ALL {
        let data = ctx.dataset_training(p);
        let ds = &data.dataset;
        let epochs = ctx.settings.epochs_for(p);
        let mut cfg = TrainConfig::default()
            .with_epochs(epochs)
            .with_step_size(p.paper_step_size())
            .with_seed(ctx.settings.seed);
        cfg.importance = isasgd_core::ImportanceScheme::GradNormBound { radius: 1.0 };

        // Sequential SGD baseline for the wall-clock axis.
        let reps = ctx.settings.reps.max(1);
        eprintln!("[fig4] {} SGD ({reps} reps)…", p.id());
        let sgd = run_averaged(reps, ctx.settings.seed, |seed| {
            let c = cfg.with_seed(seed);
            train(ds, &obj, Algorithm::Sgd, Execution::Sequential, &c, p.id()).expect("sgd run")
        });
        push_csv(&mut csv, p.id(), 1, &sgd.trace);
        traces.push(sgd.trace.clone());

        for &k in &threads {
            if k < 2 {
                continue; // threads=1 is the SGD row above
            }
            let exec = Execution::Threads(k);
            // Interleave the two algorithms rep by rep, alternating which
            // goes first, so slow machine-state drift (thermal, cache,
            // background load) cannot masquerade as an algorithmic
            // wall-clock difference; traces and timings are then averaged
            // per algorithm.
            eprintln!(
                "[fig4] {} ASGD/IS-ASGD k={k} ({reps} interleaved reps)…",
                p.id()
            );
            let seeds = isasgd_sampling::rng::derive_seeds(ctx.settings.seed, reps);
            let mut asgd_runs = Vec::with_capacity(reps);
            let mut is_runs = Vec::with_capacity(reps);
            for (i, &seed) in seeds.iter().enumerate() {
                let c = cfg.with_seed(seed);
                let run_asgd = || train(ds, &obj, Algorithm::Asgd, exec, &c, p.id()).expect("asgd");
                let run_is =
                    || train(ds, &obj, Algorithm::IsAsgd, exec, &c, p.id()).expect("is-asgd");
                if i % 2 == 0 {
                    asgd_runs.push(run_asgd());
                    is_runs.push(run_is());
                } else {
                    is_runs.push(run_is());
                    asgd_runs.push(run_asgd());
                }
            }
            let asgd = merge_results(asgd_runs);
            let is_asgd = merge_results(is_runs);

            // The paper's optimum marker: ASGD's best error, and when
            // each algorithm first reaches it.
            let opt = asgd.trace.best_error().unwrap_or(f64::NAN);
            let t_asgd = time_to_error(&asgd.trace, opt);
            let t_is = time_to_error(&is_asgd.trace, opt);
            let speedup = match (t_asgd, t_is) {
                (Some(a), Some(b)) if b > 0.0 => Some(a / b),
                _ => None,
            };

            for (r, label, sp) in [(&asgd, "ASGD", None), (&is_asgd, "IS-ASGD", speedup)] {
                table.row(vec![
                    p.id().to_string(),
                    k.to_string(),
                    label.to_string(),
                    fmt_num(r.train_secs),
                    fmt_num(r.trace.best_error().unwrap_or(f64::NAN)),
                    time_to_error(&r.trace, opt).map_or("-".into(), fmt_num),
                    sp.map_or("-".into(), fmt_num),
                    format!("{:.1}%", r.setup_overhead() * 100.0),
                ]);
                push_csv(&mut csv, p.id(), k, &r.trace);
            }
            traces.push(asgd.trace);
            traces.push(is_asgd.trace);

            // SVRG-ASGD wall-clock only on the dense small profile.
            if p == PaperProfile::News20 {
                eprintln!("[fig4] {} SVRG-ASGD k={k}…", p.id());
                let svrg = run_averaged(1, ctx.settings.seed, |seed| {
                    let c = cfg.with_seed(seed);
                    train(
                        ds,
                        &obj,
                        Algorithm::SvrgAsgd(SvrgVariant::Literature),
                        exec,
                        &c,
                        p.id(),
                    )
                    .expect("svrg")
                });
                table.row(vec![
                    p.id().to_string(),
                    k.to_string(),
                    "SVRG-ASGD".to_string(),
                    fmt_num(svrg.train_secs),
                    fmt_num(svrg.trace.best_error().unwrap_or(f64::NAN)),
                    time_to_error(&svrg.trace, opt).map_or("-".into(), fmt_num),
                    "-".to_string(),
                    "-".to_string(),
                ]);
                push_csv(&mut csv, p.id(), k, &svrg.trace);
                traces.push(svrg.trace);
            }
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected shape (paper Fig. 4): IS-ASGD reaches ASGD's optimum error\n\
         earlier (paper: 1.13–1.54×); SVRG-ASGD's wall-clock is far behind on\n\
         sparse data despite its per-epoch advantage; IS setup overhead is a few\n\
         percent of training time.\n"
    );
    ctx.write("fig4.txt", &rendered);
    ctx.write("fig4_curves.csv", &csv);
    if let Ok(json) = serde_json::to_string_pretty(&traces) {
        ctx.write("fig4_traces.json", &json);
    }
    traces
}

fn push_csv(csv: &mut String, dataset: &str, threads: usize, trace: &Trace) {
    for q in &trace.points {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            dataset,
            trace.algorithm,
            threads,
            q.epoch,
            q.wall_secs,
            q.rmse,
            q.error_rate,
            q.objective
        ));
    }
}
