//! §3 — theoretical quantities: Lipschitz summaries, IS improvement
//! factors (Eqs. 13–14), conflict degrees Δ̄ and τ budgets (Eq. 27).

use crate::common::{paper_objective, Ctx};
use isasgd_analysis::theory::LipschitzSummary;
use isasgd_analysis::{
    is_asgd_iteration_bound, is_improvement_factor, recommended_step_size, sgd_iteration_bound,
    tau_budget, BoundInputs, ConflictStats,
};
use isasgd_core::ImportanceScheme;
use isasgd_datagen::PaperProfile;
use isasgd_losses::importance_weights;
use isasgd_metrics::table::{fmt_num, TextTable};

/// Runs the theory calculators over the four profiles.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== §3 theory: bounds, conflict degrees, τ budgets ===\n");
    let obj = paper_objective();
    let mut table = TextTable::new(vec![
        "dataset",
        "supL",
        "meanL",
        "infL",
        "IS_factor",
        "delta_bar",
        "n/delta",
        "tau_budget",
        "k_sgd",
        "k_is",
        "lambda*",
    ]);
    for p in PaperProfile::ALL {
        let data = ctx.dataset(p);
        let ds = &data.dataset;
        let w = importance_weights(
            ds,
            &obj.loss,
            obj.reg,
            ImportanceScheme::LipschitzSmoothness,
        );
        let l = LipschitzSummary::from_weights(&w);
        let conflicts = ConflictStats::estimate(ds, 300, ctx.settings.seed);
        // Representative constants: ε = 1% of ε₀, strong convexity from a
        // hypothetical L2 term at the paper's η, residual from mean L.
        let inp = BoundInputs {
            mu: 1e-2,
            sigma_sq: 1e-3,
            epsilon: 1e-2,
            epsilon0: 1.0,
        };
        table.row(vec![
            p.id().to_string(),
            fmt_num(l.sup),
            fmt_num(l.mean),
            fmt_num(l.inf),
            fmt_num(is_improvement_factor(&w)),
            fmt_num(conflicts.avg_degree),
            fmt_num(if conflicts.avg_degree > 0.0 {
                ds.n_samples() as f64 / conflicts.avg_degree
            } else {
                f64::INFINITY
            }),
            fmt_num(tau_budget(&inp, &l, ds.n_samples(), conflicts.avg_degree)),
            fmt_num(sgd_iteration_bound(&inp, &l)),
            fmt_num(is_asgd_iteration_bound(&inp, &l)),
            fmt_num(recommended_step_size(&inp, &l)),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "IS_factor = 1/sqrt(psi/n) is the Eq. 13-vs-14 bound improvement; the\n\
         low-psi KDD profiles gain most, matching the paper's Fig. 3 ordering.\n\
         tau_budget is Eq. 27's delay tolerance: sparser data (smaller delta_bar)\n\
         tolerates more asynchrony.\n"
    );
    ctx.write("theory.txt", &rendered);
    ctx.write("theory.csv", &table.to_csv());
}
