//! The `cluster` artifact — paper §2.3/Fig. 2 in the *node* setting.
//!
//! Each node samples only from its local shard, so a skewed contiguous
//! layout distorts the per-node sampling distribution exactly as the
//! paper's Fig. 2 worked example. This sweep measures the shard
//! importance imbalance max Φ_a/mean Φ_a (Eq. 18/19) and the consensus
//! model quality for each balancing policy across cluster sizes.

use crate::common::Ctx;
use isasgd_cluster::{ClusterConfig, SyncStrategy, TransportConfig};
use isasgd_core::{BalancePolicy, ImportanceScheme, LogisticLoss, Objective, Regularizer};
use isasgd_datagen::{DatasetProfile, FeatureKind};
use isasgd_metrics::table::{fmt_num, TextTable};

/// Runs the sweep.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== Cluster: per-node importance balancing (§2.3–2.4, Fig. 2) ===\n");
    // Heavy-tailed importance, *sorted* by importance before sharding —
    // the adversarial arrival order (e.g. documents sorted by length)
    // that contiguous sharding turns into maximal imbalance.
    let profile = DatasetProfile {
        name: "cluster_skewed",
        dim: 5_000,
        n_samples: 12_000,
        mean_nnz: 30,
        zipf_exponent: 0.9,
        target_psi_norm: 0.55,
        target_rho: 10.0,
        label_noise: 0.05,
        planted_density: 0.10,
        feature_kind: FeatureKind::GaussianScaled,
        noise_nnz_coupling: 1.0,
    };
    let gen = isasgd_datagen::generate(&profile, ctx.settings.seed);
    let obj = Objective::new(LogisticLoss, Regularizer::L1 { eta: 1e-5 });
    // Sort rows by row norm (∝ importance) to plant the adversarial
    // layout.
    let mut order: Vec<usize> = (0..gen.dataset.n_samples()).collect();
    let norms = isasgd_core::importance_weights(
        &gen.dataset,
        &LogisticLoss,
        Regularizer::None,
        ImportanceScheme::LipschitzSmoothness,
    );
    order.sort_by(|&a, &b| norms[a].partial_cmp(&norms[b]).expect("finite weights"));
    let sorted = gen.dataset.reordered(&order).expect("permutation");

    let mut table = TextTable::new(vec![
        "nodes",
        "policy",
        "phi_max_over_mean",
        "final_obj",
        "final_err",
    ]);
    let rounds = ctx.settings.epochs.unwrap_or(8);
    for nodes in [2usize, 4, 8, 16] {
        for (policy, label) in [
            (BalancePolicy::Identity, "identity"),
            (BalancePolicy::ForceShuffle, "shuffle"),
            (BalancePolicy::ForceBalance, "head-tail"),
            (BalancePolicy::ForceGreedy, "greedy-lpt"),
        ] {
            let cfg = ClusterConfig {
                nodes,
                rounds,
                local_epochs: 1,
                step_size: 0.1,
                importance: ImportanceScheme::GradNormBound { radius: 1.0 },
                balance: policy,
                sync: SyncStrategy::Average,
                seed: ctx.settings.seed,
                ..ClusterConfig::default()
            };
            let r = isasgd_cluster::node::run(&sorted, &obj, &cfg).expect("cluster run");
            let last = r.rounds.last().expect("≥1 round");
            table.row(vec![
                nodes.to_string(),
                label.to_string(),
                fmt_num(r.phi_imbalance),
                fmt_num(last.objective),
                fmt_num(last.error_rate),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");

    // Transport sanity: re-run one configuration over real loopback
    // sockets and check the consensus trajectory is bit-identical to
    // the in-process run (the tests pin this exhaustively; here it
    // documents that the artifact numbers are transport-independent).
    let parity_cfg = ClusterConfig {
        nodes: 4,
        rounds: rounds.min(3),
        local_epochs: 1,
        step_size: 0.1,
        importance: ImportanceScheme::GradNormBound { radius: 1.0 },
        balance: BalancePolicy::ForceGreedy,
        sync: SyncStrategy::Average,
        seed: ctx.settings.seed,
        ..ClusterConfig::default()
    };
    let inproc = isasgd_cluster::node::run(&sorted, &obj, &parity_cfg).expect("inproc run");
    let tcp_cfg = ClusterConfig {
        transport: TransportConfig::tcp(),
        ..parity_cfg.clone()
    };
    let tcp = isasgd_cluster::node::run(&sorted, &obj, &tcp_cfg).expect("tcp run");
    let parity = if inproc.rounds == tcp.rounds && inproc.model == tcp.model {
        "bit-identical"
    } else {
        "DIVERGED"
    };
    println!("transport parity (inproc vs tcp loopback, 4 nodes, greedy-lpt): {parity}");
    // The cross-*process* leg needs a worker binary to spawn; the
    // experiments harness is not that binary, so this leg only runs
    // when ISASGD_BIN points at the isasgd CLI (the e2e suite pins it
    // unconditionally).
    match std::env::var("ISASGD_BIN") {
        Ok(bin) if !bin.is_empty() => {
            let proc_cfg = ClusterConfig {
                transport: TransportConfig::Process(isasgd_cluster::ProcessConfig {
                    worker: Some(bin),
                    ..isasgd_cluster::ProcessConfig::default()
                }),
                ..parity_cfg
            };
            let process = isasgd_cluster::node::run(&sorted, &obj, &proc_cfg).expect("process run");
            let parity = if inproc.rounds == process.rounds && inproc.model == process.model {
                "bit-identical"
            } else {
                "DIVERGED"
            };
            println!("transport parity (inproc vs real worker subprocesses): {parity}\n");
        }
        _ => println!(
            "transport parity (process): skipped — set ISASGD_BIN=<path to isasgd> \
             to spawn real worker subprocesses\n"
        ),
    }
    println!(
        "Expected: identity sharding of importance-sorted data is maximally\n\
         imbalanced (Φ ratio ≫ 1, growing with node count); greedy-LPT flattens\n\
         Φ to ≈ 1 at every width; head-tail (Alg. 3) helps but *degrades with\n\
         node count on right-skewed importance* (its pair sums concentrate the\n\
         heavy tail in one contiguous block — see EXPERIMENTS.md, 'balancing\n\
         under skew'); shuffling is near-balanced at this n/node ratio, the\n\
         paper's §2.4 observation.\n"
    );
    ctx.write("cluster.txt", &rendered);
    ctx.write("cluster.csv", &table.to_csv());
}
