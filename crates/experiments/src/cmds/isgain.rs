//! The `is-gain` demonstration: the regime where importance sampling
//! *provably* delivers the paper's claimed factors.
//!
//! The paper's Lemma 2 inherits Needell et al.'s bound: uniform sampling
//! needs `k ∝ sup L/µ` iterations where IS needs `k ∝ L̄/µ` — a gain of
//! `sup L/L̄` in the curvature-dominated (Kaczmarz) regime of the
//! *squared* loss with the step size at the uniform-sampling stability
//! edge. The main figures use the paper's saturated logistic objective,
//! where that mechanism is clipped and the measured IS-ASGD gain is ≈ 1×
//! (see EXPERIMENTS.md); this artifact exhibits the claim in the regime
//! its own theory targets, sweeping the importance spread ψ.

use crate::common::{run_averaged, Ctx};
use isasgd_core::{
    train, Algorithm, Execution, ImportanceScheme, Objective, Regularizer, SquaredLoss, TrainConfig,
};
use isasgd_datagen::{DatasetProfile, FeatureKind};
use isasgd_metrics::interpolate::time_to_target;
use isasgd_metrics::table::{fmt_num, TextTable};
use isasgd_metrics::Trace;

/// Monotone best-objective curve keyed by epoch.
fn objective_curve(t: &Trace) -> Vec<(f64, f64)> {
    let mut best = f64::INFINITY;
    t.points
        .iter()
        .map(|p| {
            best = best.min(p.objective);
            (p.epoch, best)
        })
        .collect()
}

/// Epoch-speedup of `fast` over `slow` at a fraction `frac` of `slow`'s
/// own objective decrease (robust common target).
fn epoch_speedup(slow: &Trace, fast: &Trace, frac: f64) -> Option<f64> {
    let cs = objective_curve(slow);
    let cf = objective_curve(fast);
    let start = cs.first()?.1;
    let end = cs.last()?.1;
    let target = end + (start - end) * (1.0 - frac);
    match (time_to_target(&cs, target), time_to_target(&cf, target)) {
        (Some(a), Some(b)) if b > 0.0 => Some(a / b),
        _ => None,
    }
}

/// Runs the ψ sweep.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== IS gain demonstration (squared loss, Eq. 13/14 regime) ===\n");
    let obj = Objective::new(SquaredLoss, Regularizer::L2 { eta: 1e-4 });
    let mut table = TextTable::new(vec![
        "psi_norm",
        "sup_over_mean",
        "pair_protocol",
        "sp@50%",
        "sp@80%",
        "sp@95%",
    ]);
    let epochs = ctx.settings.epochs.unwrap_or(12);
    let avg = ctx.settings.avg_runs.max(3);
    for psi in [0.9, 0.7, 0.5, 0.35] {
        let p = DatasetProfile {
            name: "isgain",
            dim: 2_000,
            n_samples: 8_000,
            mean_nnz: 16,
            zipf_exponent: 0.8,
            target_psi_norm: psi,
            // Moderate norms: L̄ fixed at 0.5 across the sweep so only
            // the *spread* changes, and λ = 1/(2·L̄-ish) sits at the
            // uniform stability edge for the heavy tail.
            target_rho: (1.0 / psi - 1.0) * 0.25,
            label_noise: 0.0,
            planted_density: 0.3,
            feature_kind: FeatureKind::GaussianScaled,
            noise_nnz_coupling: 0.0,
        };
        let gen = isasgd_datagen::generate(&p, ctx.settings.seed);
        let w = isasgd_core::importance_weights(
            &gen.dataset,
            &SquaredLoss,
            obj.reg,
            ImportanceScheme::LipschitzSmoothness,
        );
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        let sup = w.iter().cloned().fold(0.0, f64::max);
        // Uniform sampling must not diverge on the heaviest row, so its
        // stability-edge step is λ_u ≈ 0.5/sup L. The theory bounds
        // (Needell Eqs. 28/29, inherited by Lemma 2) compare each
        // algorithm at its *own* optimal step — IS's effective per-visit
        // step is λ·(L̄/L_i)·L_i = λ·L̄, so its edge is λ_is ≈ 0.4/L̄,
        // larger by ≈ sup L/L̄. The table reports both protocols:
        // `tuned-λ` (theory's comparison — the sup/mean gain) and
        // `same-λ` (the paper's experimental protocol — variance-channel
        // gain only).
        let lambda_u = 0.5 / sup;
        let lambda_is = 0.4 / mean;

        let mk = |seed: u64, lambda: f64| {
            let mut c = TrainConfig::default()
                .with_epochs(epochs)
                .with_step_size(lambda)
                .with_seed(seed);
            c.importance = ImportanceScheme::LipschitzSmoothness;
            c
        };
        let exec = Execution::Simulated {
            tau: 32,
            workers: 8,
        };
        let run_algo = |algo: Algorithm, lambda: f64| {
            run_averaged(avg, ctx.settings.seed, |s| {
                let e = match algo {
                    Algorithm::Sgd | Algorithm::IsSgd => Execution::Sequential,
                    _ => exec,
                };
                train(&gen.dataset, &obj, algo, e, &mk(s, lambda), "isgain").expect("isgain run")
            })
        };
        // Sequential pair (Alg. 2 vs Eq. 3) and async pair (Alg. 4 vs
        // Hogwild, τ = 32), under both step-size protocols.
        let sgd = run_algo(Algorithm::Sgd, lambda_u);
        let is_sgd_same = run_algo(Algorithm::IsSgd, lambda_u);
        let is_sgd_tuned = run_algo(Algorithm::IsSgd, lambda_is);
        let asgd = run_algo(Algorithm::Asgd, lambda_u);
        let is_asgd_same = run_algo(Algorithm::IsAsgd, lambda_u);
        let is_asgd_tuned = run_algo(Algorithm::IsAsgd, lambda_is);

        for (slow, fast, label) in [
            (&sgd, &is_sgd_same, "IS-SGD/SGD same-λ"),
            (&sgd, &is_sgd_tuned, "IS-SGD/SGD tuned-λ"),
            (&asgd, &is_asgd_same, "IS-ASGD/ASGD same-λ"),
            (&asgd, &is_asgd_tuned, "IS-ASGD/ASGD tuned-λ"),
        ] {
            table.row(vec![
                fmt_num(psi),
                fmt_num(sup / mean),
                label.to_string(),
                epoch_speedup(&slow.trace, &fast.trace, 0.50).map_or("-".into(), fmt_num),
                epoch_speedup(&slow.trace, &fast.trace, 0.80).map_or("-".into(), fmt_num),
                epoch_speedup(&slow.trace, &fast.trace, 0.95).map_or("-".into(), fmt_num),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected: tuned-λ speedups grow with sup L/L̄ as ψ falls — into and\n\
         beyond the paper's 1.13–1.54× band — and the asynchronous pair tracks\n\
         the sequential pair (Lemma 2's 'IS-ASGD inherits IS-SGD's bound up to\n\
         an order-wise constant'). Same-λ speedups (the paper's experimental\n\
         protocol) collapse to the variance channel: per-epoch effective step\n\
         mass per row is λ·L_i under both samplers, so only the gradient-noise\n\
         reduction remains.\n"
    );
    ctx.write("is_gain.txt", &rendered);
    ctx.write("is_gain.csv", &table.to_csv());
}
