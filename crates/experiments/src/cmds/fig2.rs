//! Figure 2 — importance balancing: the paper's worked 4-sample example
//! plus a quantitative sweep of shard distortion, shuffled vs balanced.

use crate::common::{paper_objective, Ctx};
use isasgd_balance::{head_tail_balance, random_shuffle_order, ImportanceProfile, ShardReport};
use isasgd_core::ImportanceScheme;
use isasgd_datagen::PaperProfile;
use isasgd_losses::importance_weights;
use isasgd_metrics::table::{fmt_num, TextTable};

/// Reproduces the Fig. 2 example and measures shard distortion on the
/// synthetic profiles.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== Figure 2: importance balancing for sharded IS ===\n");

    // --- The paper's illustration: L = {1,2,3,4}, two nodes. ----------
    let l = [1.0, 2.0, 3.0, 4.0];
    let identity: Vec<usize> = (0..4).collect();
    let balanced = head_tail_balance(&l);
    let id_report = ShardReport::analyze(&l, &identity, 2).unwrap();
    let bal_report = ShardReport::analyze(&l, &balanced, 2).unwrap();
    println!("worked example, L = {{1,2,3,4}}, 2 shards:");
    println!(
        "  sequential shards {{x1,x2|x3,x4}}: Φ = {:?}  (p4 < p2 locally — distorted)",
        id_report.phi
    );
    println!(
        "  head-tail balanced {{x1,x4|x2,x3}}: Φ = {:?}  (global optimum restored)\n",
        bal_report.phi
    );

    // --- Quantitative sweep on the synthetic profiles. ----------------
    let obj = paper_objective();
    let mut table = TextTable::new(vec![
        "dataset",
        "shards",
        "shuffle_imb",
        "balance_imb",
        "shuffle_maxdist",
        "balance_maxdist",
    ]);
    let shards = ctx.settings.taus.clone();
    for p in PaperProfile::ALL {
        let data = ctx.dataset(p);
        let w = importance_weights(
            &data.dataset,
            &obj.loss,
            obj.reg,
            ImportanceScheme::LipschitzSmoothness,
        );
        let prof = ImportanceProfile::compute(&w);
        for &k in &shards {
            let shuffled = random_shuffle_order(w.len(), ctx.settings.seed);
            let balanced = head_tail_balance(&w);
            let rs = ShardReport::analyze(&w, &shuffled, k).unwrap();
            let rb = ShardReport::analyze(&w, &balanced, k).unwrap();
            table.row(vec![
                format!("{} (rho={})", p.id(), fmt_num(prof.rho)),
                k.to_string(),
                fmt_num(rs.imbalance_ratio),
                fmt_num(rb.imbalance_ratio),
                fmt_num(rs.max_distortion),
                fmt_num(rb.max_distortion),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Head-tail balancing (Alg. 3) keeps shard importance sums Φ_a nearly equal\n\
         regardless of shard count; with near-uniform L (low ρ) random shuffling is\n\
         already adequate — exactly the adaptive rule of Alg. 4.\n"
    );
    ctx.write("fig2.txt", &rendered);
    ctx.write("fig2.csv", &table.to_csv());
}
