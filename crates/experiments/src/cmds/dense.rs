//! §4.3 — "When Datasets are Dense": the crossover where SVRG-ASGD's
//! superior per-epoch convergence overcomes its dense-µ cost.
//!
//! The paper argues SVRG-ASGD prevails when gradient sparsity rises
//! toward ~10⁻³ of `d` and above (its per-iteration cost is then within a
//! constant of ASGD's, and its iteration advantage wins); below that the
//! dense µ dominates. This command sweeps density at fixed (n, d) and
//! reports wall-clock to a common RMSE target for ASGD vs SVRG-ASGD,
//! locating the crossover.

use crate::common::{paper_objective, Ctx};
use isasgd_core::{train, Algorithm, Execution, SvrgVariant, TrainConfig};
use isasgd_datagen::{generate, DatasetProfile, FeatureKind};
use isasgd_metrics::interpolate::time_to_objective;
use isasgd_metrics::table::{fmt_num, TextTable};

/// Runs the density sweep.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== §4.3: density sweep — where does SVRG-ASGD win? ===\n");
    let obj = paper_objective();
    let d = 4_000usize;
    let n = 3_000usize;
    let epochs = ctx.settings.epochs.unwrap_or(8);
    let mut table = TextTable::new(vec![
        "density",
        "nnz/row",
        "asgd_s",
        "svrg_s",
        "asgd_obj",
        "svrg_obj",
        "t_to_target_asgd",
        "t_to_target_svrg",
        "winner",
    ]);
    for nnz in [4usize, 40, 400, 4_000] {
        let density = nnz as f64 / d as f64;
        let profile = DatasetProfile {
            name: "density_sweep",
            dim: d,
            n_samples: n,
            mean_nnz: nnz,
            zipf_exponent: 0.6,
            target_psi_norm: 0.9,
            // Stability-matched norms (λ·L̄ ≈ 2 at λ = 0.5).
            target_rho: (1.0 / 0.9 - 1.0) * 16.0,
            label_noise: 0.02,
            planted_density: 0.3,
            feature_kind: FeatureKind::GaussianScaled,
            noise_nnz_coupling: 1.0,
        };
        let data = generate(&profile, ctx.settings.seed);
        let cfg = TrainConfig::default()
            .with_epochs(epochs)
            .with_step_size(0.1)
            .with_seed(ctx.settings.seed);
        let exec = Execution::Simulated {
            tau: 16,
            workers: 4,
        };
        eprintln!("[dense] nnz={nnz} ASGD…");
        let asgd = train(&data.dataset, &obj, Algorithm::Asgd, exec, &cfg, "dense").unwrap();
        eprintln!("[dense] nnz={nnz} SVRG-ASGD…");
        let svrg = train(
            &data.dataset,
            &obj,
            Algorithm::SvrgAsgd(SvrgVariant::Literature),
            exec,
            &cfg,
            "dense",
        )
        .unwrap();
        // Common target: the worse of the two final objectives, so both
        // reach it.
        let target = asgd
            .final_metrics
            .objective
            .max(svrg.final_metrics.objective)
            * 1.02;
        let t_a = time_to_objective(&asgd.trace, target);
        let t_s = time_to_objective(&svrg.trace, target);
        let winner = match (t_a, t_s) {
            (Some(a), Some(s)) if s < a => "SVRG-ASGD",
            (Some(_), _) => "ASGD",
            (None, Some(_)) => "SVRG-ASGD",
            _ => "-",
        };
        table.row(vec![
            fmt_num(density),
            nnz.to_string(),
            fmt_num(asgd.train_secs),
            fmt_num(svrg.train_secs),
            fmt_num(asgd.final_metrics.objective),
            fmt_num(svrg.final_metrics.objective),
            t_a.map_or("-".into(), fmt_num),
            t_s.map_or("-".into(), fmt_num),
            winner.to_string(),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "Expected (paper §4.3): ASGD wins decisively at low density; as density\n\
         approaches 10⁻¹…1 the dense-µ penalty vanishes and SVRG-ASGD's\n\
         per-epoch advantage takes over — the crossover the paper describes.\n"
    );
    ctx.write("dense_crossover.txt", &rendered);
    ctx.write("dense_crossover.csv", &table.to_csv());
}
