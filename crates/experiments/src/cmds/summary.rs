//! §4.2 summary — the headline speedup numbers.
//!
//! The paper reports: average IS-ASGD-over-ASGD speedups of 1.26–1.97×,
//! optimum speedups of 1.13–1.54×, and IS setup overhead of 1.1–7.7%.
//! This command aggregates the Figure-4 traces into the same statistics.

use crate::common::Ctx;
use isasgd_metrics::speedup::SpeedupSummary;
use isasgd_metrics::table::{fmt_num, TextTable};
use isasgd_metrics::Trace;

/// Runs the summary aggregation.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== §4.2 summary: IS-ASGD speedup statistics ===\n");
    let path = ctx.settings.out_dir.join("fig4_traces.json");
    let traces: Vec<Trace> = match std::fs::read(&path)
        .ok()
        .and_then(|b| serde_json::from_slice(&b).ok())
    {
        Some(t) => t,
        None => {
            eprintln!("[summary] no fig4 traces found — running fig4 first");
            super::fig4::run(ctx)
        }
    };

    let mut table = TextTable::new(vec![
        "dataset",
        "threads",
        "avg_speedup",
        "optimum_speedup",
        "max",
        "min",
    ]);
    let mut avg_lo = f64::INFINITY;
    let mut avg_hi = f64::NEG_INFINITY;
    let mut opt_lo = f64::INFINITY;
    let mut opt_hi = f64::NEG_INFINITY;
    let datasets: std::collections::BTreeSet<String> =
        traces.iter().map(|t| t.dataset.clone()).collect();
    for ds in &datasets {
        let concs: std::collections::BTreeSet<usize> = traces
            .iter()
            .filter(|t| &t.dataset == ds && t.algorithm == "IS-ASGD")
            .map(|t| t.concurrency)
            .collect();
        for &k in &concs {
            let asgd = traces
                .iter()
                .find(|t| &t.dataset == ds && t.algorithm == "ASGD" && t.concurrency == k);
            let is_asgd = traces
                .iter()
                .find(|t| &t.dataset == ds && t.algorithm == "IS-ASGD" && t.concurrency == k);
            let (Some(asgd), Some(is_asgd)) = (asgd, is_asgd) else {
                continue;
            };
            if let Some(s) = SpeedupSummary::compute(asgd, is_asgd, 12) {
                avg_lo = avg_lo.min(s.average);
                avg_hi = avg_hi.max(s.average);
                if let Some(o) = s.at_optimum {
                    opt_lo = opt_lo.min(o);
                    opt_hi = opt_hi.max(o);
                }
                table.row(vec![
                    ds.clone(),
                    k.to_string(),
                    fmt_num(s.average),
                    s.at_optimum.map_or("-".into(), fmt_num),
                    fmt_num(s.max),
                    fmt_num(s.min),
                ]);
            }
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    if avg_lo.is_finite() {
        print!("measured: average speedups {avg_lo:.2}–{avg_hi:.2}x");
        if opt_lo.is_finite() && opt_hi.is_finite() {
            println!(", optimum speedups {opt_lo:.2}–{opt_hi:.2}x");
        } else {
            println!(" (optimum unreachable in at least one run)");
        }
    }
    println!("paper §4.2: average 1.26–1.97x, optimum 1.13–1.54x\n");
    ctx.write("summary.txt", &rendered);
    ctx.write("summary.csv", &table.to_csv());
}
