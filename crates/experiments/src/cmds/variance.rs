//! Eq. 4/10 — the quantity everything is about: exact stochastic-gradient
//! variance along a training trajectory, under uniform sampling, the
//! static IS schemes, and the per-iterate optimal distribution (Eq. 11).

use crate::common::{paper_objective, Ctx};
use isasgd_analysis::gradient_variance;
use isasgd_core::{train, Algorithm, Execution, ImportanceScheme, TrainConfig};
use isasgd_datagen::PaperProfile;
use isasgd_losses::importance_weights;
use isasgd_metrics::table::{fmt_num, TextTable};

/// Runs the variance instrumentation on two representative profiles.
pub fn run(ctx: &mut Ctx) {
    println!("\n=== Eq. 10: stochastic-gradient variance along the trajectory ===\n");
    let obj = paper_objective();
    let mut table = TextTable::new(vec![
        "dataset",
        "epoch",
        "V_uniform",
        "V_smoothness",
        "V_gradnorm",
        "V_optimal",
        "gradnorm_reduction",
    ]);
    for p in [PaperProfile::News20, PaperProfile::KddBridge] {
        let data = ctx.dataset_training(p);
        let ds = &data.dataset;
        let w_smooth = importance_weights(
            ds,
            &obj.loss,
            obj.reg,
            ImportanceScheme::LipschitzSmoothness,
        );
        let w_gnorm = importance_weights(
            ds,
            &obj.loss,
            obj.reg,
            ImportanceScheme::GradNormBound { radius: 1.0 },
        );
        // Walk an SGD trajectory and measure at a few checkpoints by
        // re-training to increasing epoch budgets (deterministic seed ⇒
        // nested prefixes of the same trajectory).
        for epochs in [1usize, 4, 10] {
            let cfg = TrainConfig::default()
                .with_epochs(epochs)
                .with_step_size(p.paper_step_size())
                .with_seed(ctx.settings.seed);
            let run = train(
                ds,
                &obj,
                Algorithm::Sgd,
                Execution::Sequential,
                &cfg,
                p.id(),
            )
            .expect("sgd trajectory");
            let rs = gradient_variance(ds, &obj, &run.model, &w_smooth);
            let rg = gradient_variance(ds, &obj, &run.model, &w_gnorm);
            table.row(vec![
                p.id().to_string(),
                epochs.to_string(),
                fmt_num(rs.uniform),
                fmt_num(rs.weighted),
                fmt_num(rg.weighted),
                fmt_num(rg.optimal),
                fmt_num(rg.reduction_factor),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "V_optimal is the Eq. 11 floor (p ∝ ‖∇f_i(w_t)‖, impractical); the static\n\
         gradient-norm scheme tracks it far closer than the smoothness scheme on\n\
         the logistic objective, matching the scheme choice in DESIGN.md.\n"
    );
    ctx.write("variance.txt", &rendered);
    ctx.write("variance.csv", &table.to_csv());
}
