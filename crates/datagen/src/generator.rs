//! The synthetic dataset generator.

use crate::profiles::{calibrate_norms, DatasetProfile, FeatureKind};
use isasgd_sampling::rng::Xoshiro256pp;
use isasgd_sparse::{Dataset, DatasetBuilder};
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Poisson, Zipf};

/// A generated dataset together with its planted ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// The labelled sparse dataset.
    pub dataset: Dataset,
    /// The planted hyperplane normal used to draw labels (dense, length
    /// `d`). `sign(w*·x)` reproduces the labels up to `label_noise` flips.
    pub planted_model: Vec<f64>,
    /// Fraction of labels actually flipped by noise.
    pub flipped_fraction: f64,
}

/// Generates a dataset from a profile, deterministically under `seed`.
///
/// Per sample:
/// 1. `nnz_i` distinct feature indices drawn Zipf(`zipf_exponent`) over
///    `1..=d` — hot features create the conflict structure of §3.1. For
///    [`FeatureKind::GaussianScaled`], `nnz ~ max(1, Poisson(mean_nnz))`;
///    for [`FeatureKind::Binary`], `nnz` follows a discretized log-normal
///    whose coefficient of variation is `√(1/ψ_norm − 1)` so that the
///    support-size-determined constants `L_i = value²·nnz_i/4` hit the
///    profile's ψ target.
/// 2. Values: `GaussianScaled` draws `N(0,1)` rescaled so `‖x_i‖` follows
///    the log-normal law from [`calibrate_norms`] (norm ⊥ nnz, hitting
///    ψ/ρ); `Binary` sets every non-zero to `value` (norm ∝ √nnz — the
///    importance-cost-conflict correlation of indicator-feature data).
/// 3. Label `y = sign(w*·x)` (ties → +1), flipped with probability
///    `label_noise`.
pub fn generate(profile: &DatasetProfile, seed: u64) -> GeneratedData {
    let mut rng = Xoshiro256pp::new(seed);
    let d = profile.dim;
    let n = profile.n_samples;

    // Planted model: `planted_density` of coordinates active, N(0,1).
    // Gaussian via Box–Muller on our deterministic RNG (rand_distr's
    // StandardNormal also works through the RngCore impl; this keeps the
    // hot path allocation-free and explicit).
    let mut planted = vec![0.0f64; d];
    for w in planted.iter_mut() {
        if rng.next_f64() < profile.planted_density {
            *w = gaussian(&mut rng);
        }
    }

    let calib = calibrate_norms(profile.target_psi_norm, profile.target_rho);
    let norm_dist = LogNormal::new(calib.median_norm.ln(), calib.sigma)
        .expect("calibrated sigma is finite and positive");
    let poisson = Poisson::new(profile.mean_nnz as f64).expect("mean_nnz > 0");
    // Binary-mode support-size law: ln nnz ~ N(µ, σ²) with
    // cv² = e^{σ²} − 1 = 1/ψ − 1 and mean e^{µ+σ²/2} = mean_nnz.
    let nnz_lognormal = {
        let cv_sq = (1.0 / profile.target_psi_norm.clamp(1e-6, 1.0 - 1e-12)) - 1.0;
        let sigma_sq = cv_sq.ln_1p();
        let mu = (profile.mean_nnz as f64).ln() - 0.5 * sigma_sq;
        LogNormal::new(mu, sigma_sq.sqrt()).expect("valid nnz law")
    };
    let zipf = Zipf::new(d as u64, profile.zipf_exponent).expect("valid zipf");

    // Importance-coupled label noise: flip probability
    // `label_noise·((1−c) + c·L_i/L̄)` (see `noise_nnz_coupling`). The
    // per-row importance ratio L_i/L̄ is nnz_i/mean_nnz in binary mode and
    // ‖x_i‖²/E‖x‖² in gaussian mode.
    let coupling = profile.noise_nnz_coupling.clamp(0.0, 1.0);
    let mean_norm_sq = {
        // E‖x‖² of LogNormal(ln median, σ): median²·e^{2σ²}.
        let m = calib.median_norm;
        m * m * (2.0 * calib.sigma * calib.sigma).exp()
    };

    let mut b = DatasetBuilder::with_capacity(d, n, n * profile.mean_nnz);
    let mut flipped = 0usize;
    let mut idx_buf: Vec<u32> = Vec::with_capacity(profile.mean_nnz * 2);
    let mut val_buf: Vec<f64> = Vec::with_capacity(profile.mean_nnz * 2);
    for _ in 0..n {
        let nnz = match profile.feature_kind {
            FeatureKind::GaussianScaled => poisson.sample(&mut rng) as usize,
            FeatureKind::Binary { .. } => nnz_lognormal.sample(&mut rng).round() as usize,
        }
        .max(1)
        .min(d);
        idx_buf.clear();
        // Draw distinct indices; Zipf returns 1-based ranks.
        while idx_buf.len() < nnz {
            let f = zipf.sample(&mut rng) as u64 - 1;
            let f = f as u32;
            if !idx_buf.contains(&f) {
                idx_buf.push(f);
            }
        }
        idx_buf.sort_unstable();
        val_buf.clear();
        match profile.feature_kind {
            FeatureKind::GaussianScaled => {
                let mut norm_sq = 0.0;
                for _ in 0..nnz {
                    let v = gaussian(&mut rng);
                    norm_sq += v * v;
                    val_buf.push(v);
                }
                // Rescale to the calibrated norm.
                let target: f64 = norm_dist.sample(&mut rng);
                let scale = if norm_sq > 0.0 {
                    target / norm_sq.sqrt()
                } else {
                    0.0
                };
                for v in val_buf.iter_mut() {
                    *v *= scale;
                }
            }
            FeatureKind::Binary { value } => {
                val_buf.resize(nnz, value);
            }
        }
        // Planted label with noise. Rows whose support misses the planted
        // model entirely (margin exactly 0) get an unbiased coin flip —
        // labelling them all one way would plant an unlearnable class
        // bias.
        let mut margin = 0.0;
        for (&i, &v) in idx_buf.iter().zip(val_buf.iter()) {
            margin += v * planted[i as usize];
        }
        let mut label = if margin > 0.0 {
            1.0
        } else if margin < 0.0 {
            -1.0
        } else if rng.next_f64() < 0.5 {
            1.0
        } else {
            -1.0
        };
        let importance_ratio = match profile.feature_kind {
            FeatureKind::Binary { .. } => nnz as f64 / profile.mean_nnz as f64,
            FeatureKind::GaussianScaled => {
                let norm_sq: f64 = val_buf.iter().map(|v| v * v).sum();
                norm_sq / mean_norm_sq
            }
        };
        let flip_p = (profile.label_noise * ((1.0 - coupling) + coupling * importance_ratio))
            .clamp(0.0, 0.49);
        if flip_p > 0.0 && rng.gen_bool(flip_p) {
            label = -label;
            flipped += 1;
        }
        b.push_row_unchecked(&idx_buf, &val_buf, label);
    }

    GeneratedData {
        dataset: b.finish(),
        planted_model: planted,
        flipped_fraction: flipped as f64 / n.max(1) as f64,
    }
}

/// One standard Gaussian draw via Box–Muller (polar-free form is fine at
/// this call rate).
fn gaussian(rng: &mut Xoshiro256pp) -> f64 {
    // Avoid u1 = 0 exactly.
    let u1 = (rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::PaperProfile;
    use isasgd_balance::metrics::{psi_normalized, rho};
    use isasgd_losses::{importance_weights, ImportanceScheme, LogisticLoss, Regularizer};

    #[test]
    fn deterministic_under_seed() {
        let p = DatasetProfile::tiny();
        let a = generate(&p, 42);
        let b = generate(&p, 42);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.planted_model, b.planted_model);
        let c = generate(&p, 43);
        assert_ne!(a.dataset, c.dataset);
    }

    #[test]
    fn shapes_match_profile() {
        let p = DatasetProfile::tiny();
        let g = generate(&p, 1);
        assert_eq!(g.dataset.n_samples(), p.n_samples);
        assert_eq!(g.dataset.dim(), p.dim);
        let mean_nnz = g.dataset.mean_nnz();
        assert!(
            (mean_nnz - p.mean_nnz as f64).abs() < 2.0,
            "mean nnz {mean_nnz}"
        );
    }

    #[test]
    fn rows_are_valid_csr() {
        let g = generate(&DatasetProfile::tiny(), 2);
        for row in g.dataset.rows() {
            assert!(row.indices.windows(2).all(|w| w[0] < w[1]));
            assert!(row.values.iter().all(|v| v.is_finite()));
            assert!(row.nnz() >= 1);
        }
    }

    #[test]
    fn labels_mostly_match_planted_model() {
        let mut p = DatasetProfile::tiny();
        p.label_noise = 0.0;
        let g = generate(&p, 3);
        let agree = g
            .dataset
            .rows()
            .filter(|r| {
                let m = r.dot_dense(&g.planted_model);
                // Zero-margin rows get an unbiased coin flip, so any label
                // is "correct" for them.
                m == 0.0 || (m > 0.0) == (r.label > 0.0)
            })
            .count();
        assert_eq!(agree, p.n_samples, "zero noise must mean exact agreement");
        assert_eq!(g.flipped_fraction, 0.0);
    }

    #[test]
    fn label_noise_flips_expected_fraction() {
        let mut p = DatasetProfile::tiny();
        p.label_noise = 0.25;
        p.n_samples = 2000;
        let g = generate(&p, 4);
        assert!(
            (g.flipped_fraction - 0.25).abs() < 0.04,
            "{}",
            g.flipped_fraction
        );
    }

    #[test]
    fn psi_and_rho_hit_targets() {
        // Use a bigger sample so the empirical moments settle.
        let mut p = DatasetProfile::tiny();
        p.n_samples = 8000;
        p.target_psi_norm = 0.9;
        p.target_rho = 5e-4;
        let g = generate(&p, 5);
        let w = importance_weights(
            &g.dataset,
            &LogisticLoss,
            Regularizer::None,
            ImportanceScheme::LipschitzSmoothness,
        );
        let psi_hat = psi_normalized(&w);
        let rho_hat = rho(&w);
        assert!(
            (psi_hat - 0.9).abs() < 0.03,
            "psi_norm {psi_hat} vs target 0.9"
        );
        assert!(
            (rho_hat - 5e-4).abs() / 5e-4 < 0.35,
            "rho {rho_hat} vs target 5e-4"
        );
    }

    #[test]
    fn zipf_makes_head_features_hot() {
        let mut p = DatasetProfile::tiny();
        p.n_samples = 2000;
        p.zipf_exponent = 1.1;
        let g = generate(&p, 6);
        let freq = isasgd_sparse::stats::feature_frequencies(&g.dataset);
        let head: u32 = freq[..p.dim / 10].iter().sum();
        let tail: u32 = freq[p.dim / 10..].iter().sum();
        assert!(
            head > tail,
            "first decile of features should dominate: head {head} tail {tail}"
        );
    }

    #[test]
    fn scaled_paper_profile_generates() {
        // Smallest scaled profile at reduced size, as a smoke test.
        let p = PaperProfile::News20.scaled().scaled_by(0.02);
        let g = generate(&p, 7);
        assert!(g.dataset.n_samples() > 0);
        assert!(g.dataset.density() > 0.0);
    }
}
