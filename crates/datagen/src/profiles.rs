//! Dataset profiles and the analytic ψ/ρ calibration.

/// The four evaluation datasets of the paper's Table 1, as presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperProfile {
    /// JMLR News20: small, relatively dense, near-uniform L (ψ/n = 0.972).
    News20,
    /// ICML URL: large, sparse (ψ/n = 0.964).
    Url,
    /// KDD2010 Algebra: very large, extremely sparse (ψ/n = 0.892).
    KddAlgebra,
    /// KDD2010 Bridge-to-Algebra: largest, extremely sparse (ψ/n = 0.877).
    KddBridge,
}

impl PaperProfile {
    /// All four profiles in Table 1 order.
    pub const ALL: [PaperProfile; 4] = [
        PaperProfile::News20,
        PaperProfile::Url,
        PaperProfile::KddAlgebra,
        PaperProfile::KddBridge,
    ];

    /// Stable lowercase identifier used in file names and CLI flags.
    pub fn id(&self) -> &'static str {
        match self {
            PaperProfile::News20 => "news20",
            PaperProfile::Url => "url",
            PaperProfile::KddAlgebra => "kdd_algebra",
            PaperProfile::KddBridge => "kdd_bridge",
        }
    }

    /// Display name as in the paper's figures.
    pub fn display_name(&self) -> &'static str {
        match self {
            PaperProfile::News20 => "JMLR_News20",
            PaperProfile::Url => "ICML_URL",
            PaperProfile::KddAlgebra => "KDD2010_Algebra",
            PaperProfile::KddBridge => "KDD2010_Bridge",
        }
    }

    /// The paper's Table 1 row for this dataset:
    /// `(dimension, instances, density, ψ/n, ρ)`.
    pub fn paper_table1(&self) -> (usize, usize, f64, f64, f64) {
        match self {
            PaperProfile::News20 => (1_355_191, 19_996, 1e-3, 0.972, 5e-4),
            PaperProfile::Url => (3_231_961, 2_396_130, 1e-5, 0.964, 3e-4),
            PaperProfile::KddAlgebra => (20_216_830, 8_407_752, 1e-7, 0.892, 1e-4),
            PaperProfile::KddBridge => (29_890_095, 19_264_097, 1e-7, 0.877, 2e-4),
        }
    }

    /// The step size λ the paper uses for this dataset in Figures 3–5.
    pub fn paper_step_size(&self) -> f64 {
        match self {
            PaperProfile::Url => 0.05,
            _ => 0.5,
        }
    }

    /// The training-calibrated profile: same shape as [`Self::scaled`]
    /// (identical ψ, density, conflict structure) but with row norms
    /// rescaled so that `λ_paper · L̄ ≈ 2` — the stability-matched regime
    /// the paper actually operates in.
    ///
    /// **Why this exists.** Table 1's ρ column is scale-ambiguous: read
    /// literally as `Var(L_i)` (Eq. 20), ρ = 1e-4 forces `L̄ ≈ 0.03`,
    /// i.e. `‖x_i‖ ≈ 0.3` — but the KDD datasets have binary features
    /// with ~20 non-zeros, so their raw `L_i = ‖x_i‖²/4 ≈ 5` and raw
    /// `Var(L_i)` would be O(10), not 1e-4; the paper's ρ must be
    /// computed on *normalized* constants. Norm scaling leaves ψ (and
    /// hence the IS gain factor) invariant — it is equivalent to scaling
    /// `target_rho` by `s⁴` — so this variant keeps every Table-1 shape
    /// quantity while restoring the `λ·L̄ = O(1)` dynamics under which
    /// the paper's λ = 0.5/0.05 are sensible step sizes. The literal
    /// calibration (`scaled()`) is still used to regenerate Table 1
    /// itself; the convergence figures (3–5) use this one. See DESIGN.md.
    pub fn training(&self) -> DatasetProfile {
        self.training_with(2.0)
    }

    /// [`Self::training`] with an explicit *hotness* `h = λ·L̄`: the
    /// product of the paper's step size and the mean smoothness constant,
    /// the dimensionless knob that selects the step-stability regime.
    /// `h ≪ 1` is the cold, variance-dominated regime (all SGD variants
    /// crawl equally); `h ≈ 1–2` is the borderline regime where uniform
    /// sampling overshoots on heavy-`L` rows but IS's `1/(n·p_i)`
    /// correction equalizes every effective step to `λ·L̄`; `h ≫ 2` is
    /// unstable for everyone. The `ablation-scheme` experiment sweeps
    /// this knob.
    pub fn training_with(&self, hotness: f64) -> DatasetProfile {
        let mut p = self.scaled();
        // Choose mean L̄ = h/λ, and convert to the equivalent rho
        // target: ρ = cv²·L̄², with cv² fixed by ψ.
        let cv_sq = 1.0 / p.target_psi_norm - 1.0;
        let mean_l = hotness / self.paper_step_size();
        p.target_rho = cv_sq * mean_l * mean_l;
        if let FeatureKind::Binary { .. } = p.feature_kind {
            // Importance scale is carried by the feature value:
            // L̄ = value²·mean_nnz/4.
            p.feature_kind = FeatureKind::Binary {
                value: (4.0 * mean_l / p.mean_nnz as f64).sqrt(),
            };
        }
        p
    }

    /// The laptop-scale synthetic profile preserving this dataset's
    /// character (see crate docs for what is preserved).
    pub fn scaled(&self) -> DatasetProfile {
        let (_, _, _, psi_norm, rho) = self.paper_table1();
        // Binary profiles carry the importance scale in the feature
        // value: cv is fixed by ψ, then `L̄ = √ρ/cv` and
        // `value = √(4·L̄/mean_nnz)`.
        let binary_value = |mean_nnz: usize| {
            let cv = (1.0 / psi_norm - 1.0).sqrt();
            let mean_l = rho.sqrt() / cv.max(1e-9);
            (4.0 * mean_l / mean_nnz as f64).sqrt()
        };
        match self {
            PaperProfile::News20 => DatasetProfile {
                name: "news20_like",
                dim: 20_000,
                n_samples: 4_000,
                mean_nnz: 200,
                zipf_exponent: 0.9,
                target_psi_norm: psi_norm,
                target_rho: rho,
                label_noise: 0.02,
                planted_density: 0.05,
                // tf-idf-normalized text: ‖x‖ independent of support size.
                feature_kind: FeatureKind::GaussianScaled,
                noise_nnz_coupling: 0.0,
            },
            PaperProfile::Url => DatasetProfile {
                name: "url_like",
                dim: 100_000,
                n_samples: 50_000,
                mean_nnz: 30,
                zipf_exponent: 1.05,
                target_psi_norm: psi_norm,
                target_rho: rho,
                label_noise: 0.02,
                // nnz≈30: 0.2 keeps P(row misses the planted support) < 0.2%
                planted_density: 0.2,
                // lexical/host indicator features.
                feature_kind: FeatureKind::Binary {
                    value: binary_value(30),
                },
                noise_nnz_coupling: 1.0,
            },
            PaperProfile::KddAlgebra => DatasetProfile {
                name: "kdd_algebra_like",
                dim: 500_000,
                n_samples: 100_000,
                mean_nnz: 20,
                zipf_exponent: 1.1,
                target_psi_norm: psi_norm,
                target_rho: rho,
                label_noise: 0.02,
                // nnz≈20: 0.3 keeps P(row misses the planted support) < 0.1%
                planted_density: 0.3,
                // student-step interaction indicators.
                feature_kind: FeatureKind::Binary {
                    value: binary_value(20),
                },
                noise_nnz_coupling: 1.0,
            },
            PaperProfile::KddBridge => DatasetProfile {
                name: "kdd_bridge_like",
                dim: 1_000_000,
                n_samples: 150_000,
                mean_nnz: 20,
                zipf_exponent: 1.1,
                target_psi_norm: psi_norm,
                target_rho: rho,
                label_noise: 0.02,
                // nnz≈20: 0.3 keeps P(row misses the planted support) < 0.1%
                planted_density: 0.3,
                feature_kind: FeatureKind::Binary {
                    value: binary_value(20),
                },
                noise_nnz_coupling: 1.0,
            },
        }
    }
}

/// How feature values are generated — the knob that decides whether
/// per-sample importance correlates with per-sample cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureKind {
    /// Gaussian values rescaled so `‖x_i‖` follows the calibrated
    /// log-normal law *independently of the support size* — the
    /// character of length-normalized text features (News20's tf-idf).
    /// `nnz_i ~ Poisson(mean_nnz)`.
    GaussianScaled,
    /// Constant-valued (binary-style) features: every non-zero equals
    /// `value`, so `‖x_i‖² = value²·nnz_i` and the smoothness constant
    /// `L_i = value²·nnz_i/4` is *determined by the support size* — the
    /// character of the KDD interaction logs and URL lexical features.
    /// Heavy rows are then simultaneously the high-curvature, high-cost
    /// and high-conflict rows, which is the correlation the paper's
    /// importance sampling exploits. `nnz_i` follows a discretized
    /// log-normal whose coefficient of variation is calibrated from the
    /// profile's ψ target (`cv² = 1/ψ_norm − 1`).
    Binary {
        /// The constant feature value (sets the importance *scale*:
        /// `L̄ = value²·mean_nnz/4`).
        value: f64,
    },
}

/// Full specification of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetProfile {
    /// Identifier used in logs and file names.
    pub name: &'static str,
    /// Dimensionality `d`.
    pub dim: usize,
    /// Number of samples `n`.
    pub n_samples: usize,
    /// Mean non-zeros per sample (min 1; distribution set by
    /// [`FeatureKind`]).
    pub mean_nnz: usize,
    /// Zipf exponent of feature popularity (higher = more skew = more
    /// conflicts on hot features).
    pub zipf_exponent: f64,
    /// Target ψ/n of the logistic Lipschitz constants (Table 1 column).
    pub target_psi_norm: f64,
    /// Target ρ of the logistic Lipschitz constants (Table 1 column).
    pub target_rho: f64,
    /// Probability a planted label is flipped (Bayes error floor).
    pub label_noise: f64,
    /// Fraction of coordinates active in the planted ground-truth model.
    pub planted_density: f64,
    /// Feature value law (see [`FeatureKind`]).
    pub feature_kind: FeatureKind,
    /// How strongly the per-row flip probability couples to the row's
    /// importance, in `[0, 1]`: the flip probability of row `i` is
    /// `label_noise·((1−c) + c·L_i/L̄)`, clamped to `[0, 0.49]`.
    ///
    /// `c = 0` is homoscedastic noise — and makes static importance
    /// sampling on `L_i` *provably gain-free*: the IS variance ratio is
    /// `L̄·E[‖∇f_i(w⋆)‖²/L_i] / E[‖∇f_i(w⋆)‖²]`, which equals 1 whenever
    /// the residual scale is independent of `L_i`. The paper's premise
    /// that `sup‖∇f_i(w)‖ ≤ R·L_i` is an informative proxy for Eq. 11's
    /// optimal `p_i ∝ ‖∇f_i(w_t)‖` holds only when hard samples are the
    /// heavy ones — true of the KDD interaction logs, where rows touching
    /// many knowledge components are intrinsically harder to predict.
    /// `c = 1` reproduces that regime (and an IS variance gain of `1/ψ`).
    pub noise_nnz_coupling: f64,
}

impl DatasetProfile {
    /// A minimal profile for unit tests: small but with skewed importance.
    pub fn tiny() -> Self {
        DatasetProfile {
            name: "tiny",
            dim: 200,
            n_samples: 300,
            mean_nnz: 10,
            zipf_exponent: 0.8,
            target_psi_norm: 0.9,
            target_rho: 1e-3,
            label_noise: 0.0,
            planted_density: 0.3,
            feature_kind: FeatureKind::GaussianScaled,
            noise_nnz_coupling: 0.0,
        }
    }

    /// A minimal binary-feature profile for unit tests: importance is
    /// carried by the support size (`L_i ∝ nnz_i`).
    pub fn tiny_binary() -> Self {
        DatasetProfile {
            name: "tiny_binary",
            dim: 200,
            n_samples: 300,
            mean_nnz: 10,
            zipf_exponent: 0.8,
            target_psi_norm: 0.7,
            target_rho: 1e-3,
            label_noise: 0.0,
            planted_density: 0.3,
            feature_kind: FeatureKind::Binary { value: 1.0 },
            noise_nnz_coupling: 1.0,
        }
    }

    /// Returns a copy scaled by `f` in both `n` and `d` (min 16/8).
    pub fn scaled_by(mut self, f: f64) -> Self {
        self.dim = ((self.dim as f64 * f) as usize).max(16);
        self.n_samples = ((self.n_samples as f64 * f) as usize).max(8);
        self
    }

    /// Expected density `mean_nnz / d`.
    pub fn expected_density(&self) -> f64 {
        self.mean_nnz as f64 / self.dim as f64
    }
}

/// Log-normal row-norm parameters hitting the ψ/ρ targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormCalibration {
    /// σ of `ln ‖x_i‖` (shape: controls ψ).
    pub sigma: f64,
    /// Median of `‖x_i‖` (scale: controls ρ given σ).
    pub median_norm: f64,
}

/// Analytic calibration (see crate docs).
///
/// With `‖x‖ ~ LogNormal(µ, σ)` the Lipschitz constants
/// `L = ‖x‖²/4 ~ LogNormal(2µ + ln(1/4), 2σ)` have coefficient of
/// variation `cv² = e^{4σ²} − 1`, and
///
/// * `ψ/n = 1 / (1 + cv²)`        ⇒ `σ = ½·sqrt(¼·ln(1/ψ_norm))`… more
///   precisely `4σ² = ln(1 + cv²) = ln(1/ψ_norm)`.
/// * `ρ = Var(L) = (cv · E[L])²`  ⇒ `E[L] = sqrt(ρ)/cv`,
///   and `E[L] = median(L)·e^{2σ²}` fixes the scale.
pub fn calibrate_norms(target_psi_norm: f64, target_rho: f64) -> NormCalibration {
    let psi = target_psi_norm.clamp(1e-6, 1.0 - 1e-12);
    let cv_sq = 1.0 / psi - 1.0;
    let sigma = 0.5 * (cv_sq.ln_1p()).sqrt(); // 4σ² = ln(1+cv²)
    let cv = cv_sq.sqrt();
    let mean_l = target_rho.sqrt() / cv.max(1e-9);
    // mean(L) = median(L)·e^{(2σ)²/2}; L = ‖x‖²/4 so median(‖x‖²) = 4·median(L).
    let median_l = mean_l / (2.0 * sigma * sigma).exp();
    let median_norm = (4.0 * median_l).sqrt();
    NormCalibration { sigma, median_norm }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1_constants() {
        let (d, n, dens, psi, rho) = PaperProfile::News20.paper_table1();
        assert_eq!(d, 1_355_191);
        assert_eq!(n, 19_996);
        assert_eq!(dens, 1e-3);
        assert_eq!(psi, 0.972);
        assert_eq!(rho, 5e-4);
    }

    #[test]
    fn step_sizes_match_paper() {
        assert_eq!(PaperProfile::Url.paper_step_size(), 0.05);
        assert_eq!(PaperProfile::News20.paper_step_size(), 0.5);
    }

    #[test]
    fn scaled_profiles_preserve_targets() {
        for p in PaperProfile::ALL {
            let s = p.scaled();
            let (_, _, _, psi, rho) = p.paper_table1();
            assert_eq!(s.target_psi_norm, psi, "{}", s.name);
            assert_eq!(s.target_rho, rho, "{}", s.name);
            assert!(s.dim >= 10_000);
            assert!(s.n_samples >= 1_000);
        }
    }

    #[test]
    fn density_ordering_preserved() {
        // news20 densest, kdd sparsest — same ordering as the paper.
        let d: Vec<f64> = PaperProfile::ALL
            .iter()
            .map(|p| p.scaled().expected_density())
            .collect();
        assert!(d[0] > d[1] && d[1] > d[2] && d[2] >= d[3]);
    }

    #[test]
    fn calibration_closed_form_roundtrip() {
        for (psi_t, rho_t) in [(0.972, 5e-4), (0.877, 2e-4), (0.7, 1e-3)] {
            let c = calibrate_norms(psi_t, rho_t);
            // Forward-compute ψ and ρ of LogNormal L and compare.
            let s2 = 4.0 * c.sigma * c.sigma; // Var of ln L
            let cv_sq = s2.exp_m1();
            let psi = 1.0 / (1.0 + cv_sq);
            assert!((psi - psi_t).abs() < 1e-9, "psi {psi} vs {psi_t}");
            let median_l = c.median_norm * c.median_norm / 4.0;
            let mean_l = median_l * (s2 / 2.0).exp();
            let rho = cv_sq * mean_l * mean_l;
            assert!((rho - rho_t).abs() / rho_t < 1e-6, "rho {rho} vs {rho_t}");
        }
    }

    #[test]
    fn calibration_monotonicity() {
        // Lower ψ target (more skew) ⇒ larger σ.
        let a = calibrate_norms(0.95, 1e-4);
        let b = calibrate_norms(0.85, 1e-4);
        assert!(b.sigma > a.sigma);
        // Larger ρ at fixed ψ ⇒ larger norms.
        let c = calibrate_norms(0.9, 1e-4);
        let d = calibrate_norms(0.9, 4e-4);
        assert!(d.median_norm > c.median_norm);
    }

    #[test]
    fn tiny_and_scaled_by() {
        let t = DatasetProfile::tiny();
        assert!(t.n_samples > 0 && t.dim > 0);
        let s = t.scaled_by(0.001);
        assert_eq!(s.dim, 16);
        assert_eq!(s.n_samples, 8);
    }

    #[test]
    fn training_variant_preserves_psi_and_scales_norms() {
        for p in PaperProfile::ALL {
            let lit = p.scaled();
            let tr = p.training();
            // Shape quantities unchanged.
            assert_eq!(tr.target_psi_norm, lit.target_psi_norm);
            assert_eq!(tr.dim, lit.dim);
            assert_eq!(tr.mean_nnz, lit.mean_nnz);
            // Norm scale: mean L = 2/lambda.
            let cv_sq = 1.0 / tr.target_psi_norm - 1.0;
            let mean_l = (tr.target_rho / cv_sq).sqrt();
            let expect = 2.0 / p.paper_step_size();
            assert!(
                (mean_l - expect).abs() / expect < 1e-9,
                "{}: mean L {mean_l} vs {expect}",
                tr.name
            );
        }
    }

    #[test]
    fn ids_unique() {
        let ids: std::collections::HashSet<_> = PaperProfile::ALL.iter().map(|p| p.id()).collect();
        assert_eq!(ids.len(), 4);
    }
}
