//! Synthetic sparse dataset generation calibrated to the paper's Table 1.
//!
//! The paper evaluates on four LibSVM datasets (News20, URL,
//! KDD2010-Algebra, KDD2010-Bridge). Those exact files are not available
//! here, and at full size (up to 19M × 30M) they exceed laptop budgets, so
//! this crate generates **synthetic profiles that preserve the quantities
//! the algorithms are sensitive to**:
//!
//! 1. *Gradient sparsity* (`nnz/(n·d)`): sets the dense-µ vs compressed-
//!    gradient cost ratio that breaks SVRG-ASGD (Fig. 1).
//! 2. *ψ = (ΣL)²/ΣL²* (Eq. 15, reported normalized in Table 1): sets the
//!    convergence-bound gain of importance sampling.
//! 3. *ρ = Var(L)* (Eq. 20): sets the shard-imbalance risk driving the
//!    Algorithm 4 balance/shuffle decision.
//! 4. *Feature popularity skew* (Zipf): sets the conflict-graph degree Δ̄
//!    governing asynchrony noise (§3.1).
//!
//! ψ and ρ are hit analytically: per-sample Lipschitz constants for the
//! logistic loss are `L_i = ‖x_i‖²/4`, and row norms are drawn log-normal,
//! so a closed form maps the targets to the log-normal parameters (see
//! [`profiles::calibrate_norms`]). Labels come from a planted hyperplane
//! with controllable flip noise, so every profile is learnable and error
//! rates behave like the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod profiles;

pub use generator::{generate, GeneratedData};
pub use profiles::{calibrate_norms, DatasetProfile, FeatureKind, NormCalibration, PaperProfile};
