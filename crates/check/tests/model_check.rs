//! The model checker against the real cluster protocol: exhaustive
//! bounded exploration of small configurations, with every completed
//! schedule judged against the sequential-engine oracle.
//!
//! Every exploration runs under a watchdog thread so a checker or
//! protocol regression fails loudly instead of hanging the suite.

use isasgd_check::{
    explore_scenario, sample_scenario, Budget, Exploration, FaultSpec, ScenarioSpec,
};
use std::sync::mpsc::channel;
use std::time::Duration;

fn explore_guarded(spec: ScenarioSpec, max_decisions: usize, budget: Budget) -> Exploration {
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let _ = tx.send(explore_scenario(&spec, max_decisions, budget));
    });
    rx.recv_timeout(Duration::from_secs(240))
        .expect("exploration hung: the model scheduler lost a wakeup or the protocol deadlocked outside scheduler control")
}

fn assert_clean(out: &Exploration) {
    assert!(
        out.counterexample.is_none(),
        "unexpected counterexample: {:?}",
        out.counterexample
    );
    assert_eq!(out.stats.violations, 0, "{:?}", out.stats);
}

/// One worker, one round, no faults: everything is forced, so there is
/// exactly one schedule and it matches the oracle.
#[test]
fn single_worker_faultless_run_is_fully_forced() {
    let spec = ScenarioSpec {
        nodes: 1,
        rounds: 1,
        rows: 48,
        ..ScenarioSpec::default()
    };
    let out = explore_guarded(spec, 32, Budget::default());
    assert_clean(&out);
    assert!(out.stats.exhaustive(), "{:?}", out.stats.truncated);
    assert_eq!(
        out.stats.schedules, 1,
        "a faultless SPSC protocol has no scheduling freedom: {:?}",
        out.stats
    );
}

/// The flagship configuration from the issue: two workers, two rounds,
/// full lossless fault vocabulary — exhaustively explored.
#[test]
fn two_workers_two_rounds_lossless_faults_exhaustive() {
    let spec = ScenarioSpec {
        faults: FaultSpec::lossless(1),
        ..ScenarioSpec::default()
    };
    let out = explore_guarded(spec, 48, Budget::default());
    assert_clean(&out);
    assert!(
        out.stats.exhaustive(),
        "2x2 must be exhaustible: {:?}",
        out.stats.truncated
    );
    assert!(
        out.stats.schedules > 10,
        "the fault vocabulary must open real scheduling freedom: {:?}",
        out.stats
    );
    assert_eq!(
        out.stats.expected_deadlocks, 0,
        "lossless faults cannot starve"
    );
}

/// Checkpoint frames are real protocol traffic: with a checkpoint
/// cadence the workers emit `Checkpoint` state snapshots mid-session,
/// and the coordinator must absorb duplicated / reordered / held
/// copies idempotently — every completed schedule still bit-matches
/// the oracle. The frames must also genuinely enter the scheduler's
/// vocabulary (more scheduling freedom than the checkpoint-free run).
#[test]
fn checkpoint_frames_are_absorbed_idempotently_under_lossless_faults() {
    let base = ScenarioSpec {
        faults: FaultSpec::lossless(1),
        ..ScenarioSpec::default()
    };
    let spec = ScenarioSpec {
        checkpoint_every: 1,
        ..base
    };
    let out = explore_guarded(spec, 64, Budget::default());
    assert_clean(&out);
    assert!(
        out.stats.exhaustive(),
        "2x2 with checkpoints must be exhaustible: {:?}",
        out.stats.truncated
    );
    assert_eq!(
        out.stats.expected_deadlocks, 0,
        "nothing blocks on a checkpoint: lossless faults cannot starve"
    );
    let baseline = explore_guarded(base, 64, Budget::default());
    assert!(
        out.stats.schedules > baseline.stats.schedules,
        "checkpoint frames must open real scheduling freedom: {} vs {}",
        out.stats.schedules,
        baseline.stats.schedules
    );
}

/// A dropped `Checkpoint` frame must never corrupt a completing run:
/// the frame is advisory for recovery, so losing one degrades recovery
/// cost, not correctness.
#[test]
fn dropped_checkpoints_never_corrupt_a_completing_run() {
    let spec = ScenarioSpec {
        nodes: 1,
        rounds: 2,
        rows: 48,
        checkpoint_every: 1,
        faults: FaultSpec {
            drop: true,
            budget: 1,
            ..FaultSpec::none()
        },
        ..ScenarioSpec::default()
    };
    let out = explore_guarded(spec, 64, Budget::default());
    assert_clean(&out);
    assert!(out.stats.exhaustive(), "{:?}", out.stats.truncated);
    assert!(
        out.stats.schedules > out.stats.expected_deadlocks,
        "some schedules must still complete: {:?}",
        out.stats
    );
}

/// Message loss: dropped messages may starve the protocol (expected
/// deadlocks), but must never corrupt a completing run.
#[test]
fn drops_starve_but_never_corrupt() {
    let spec = ScenarioSpec {
        nodes: 1,
        rounds: 1,
        rows: 48,
        faults: FaultSpec {
            drop: true,
            budget: 1,
            ..FaultSpec::none()
        },
        ..ScenarioSpec::default()
    };
    let out = explore_guarded(spec, 32, Budget::default());
    assert_clean(&out);
    assert!(out.stats.exhaustive(), "{:?}", out.stats.truncated);
    assert!(
        out.stats.expected_deadlocks > 0,
        "dropping a required message must starve some schedule: {:?}",
        out.stats
    );
    assert!(
        out.stats.schedules > out.stats.expected_deadlocks,
        "some schedules must still complete: {:?}",
        out.stats
    );
}

/// The declared-truncation path: a run cap far below the tree size must
/// be reported, never silent.
#[test]
fn run_caps_are_reported_not_silent() {
    let spec = ScenarioSpec {
        faults: FaultSpec::lossless(2),
        ..ScenarioSpec::default()
    };
    let out = explore_guarded(
        spec,
        48,
        Budget {
            max_runs: 5,
            wall_clock: None,
        },
    );
    assert_clean(&out);
    assert!(!out.stats.exhaustive());
    assert!(
        out.stats
            .truncated
            .as_deref()
            .unwrap_or("")
            .contains("run cap"),
        "{:?}",
        out.stats.truncated
    );
}

/// Random-walk sampling: the big-config mode also holds the invariants
/// and reports its truncation honestly.
#[test]
fn random_walks_hold_invariants_on_a_bigger_config() {
    let spec = ScenarioSpec {
        nodes: 3,
        rounds: 3,
        rows: 120,
        faults: FaultSpec::lossless(2),
        ..ScenarioSpec::default()
    };
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let _ = tx.send(sample_scenario(&spec, 96, 40, 0xC0FFEE));
    });
    let out = rx
        .recv_timeout(Duration::from_secs(240))
        .expect("sampling hung");
    assert_clean(&out);
    assert!(out.stats.schedules > 0);
    assert!(
        out.stats
            .truncated
            .as_deref()
            .unwrap_or("")
            .contains("random walk"),
        "{:?}",
        out.stats.truncated
    );
}
