//! The two historical PR-4 races, rediscovered systematically and
//! replayed from committed `.schedule` counterexamples.
//!
//! Each race's fix can be reverted behind a test-only `ProtocolBugs`
//! flag; the checker must (a) rediscover the race by bounded-exhaustive
//! exploration, (b) find exactly the committed counterexample (DFS is
//! deterministic), (c) reproduce it by replaying the committed bytes,
//! and (d) pass the same fault vocabulary once the fix is restored.
//!
//! To regenerate the committed files after an intentional protocol
//! change: `REGEN_SCHEDULES=1 cargo test -p isasgd-check --test
//! pr4_regressions` and commit the rewritten `tests/schedules/*`.

use isasgd_check::{
    explore_scenario, read_schedule, write_schedule, Budget, Expected, Exploration, FaultSpec,
    ScenarioSpec, ScheduleFile, Verdict,
};
use isasgd_cluster::ProtocolBugs;
use std::path::PathBuf;
use std::sync::mpsc::channel;
use std::time::Duration;

const MAX_DECISIONS: usize = 32;

fn explore_guarded(spec: ScenarioSpec) -> Exploration {
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let _ = tx.send(explore_scenario(&spec, MAX_DECISIONS, Budget::default()));
    });
    rx.recv_timeout(Duration::from_secs(240))
        .expect("exploration hung")
}

fn schedule_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/schedules")
        .join(name)
}

struct Race {
    file: &'static str,
    spec: ScenarioSpec,
    contains: &'static str,
}

/// PR-4 race 1: a worker that *drops* (instead of stashing) round
/// traffic arriving before its shard assignment starves the round
/// loop when the transport reorders the assignment behind it.
fn race1() -> Race {
    Race {
        file: "pr4_reorder_starvation.schedule",
        spec: ScenarioSpec {
            nodes: 1,
            rounds: 1,
            rows: 48,
            faults: FaultSpec {
                reorder: true,
                reorder_window: 2,
                budget: 1,
                ..FaultSpec::none()
            },
            bugs: ProtocolBugs {
                drop_preassignment_traffic: true,
                ..ProtocolBugs::default()
            },
            ..ScenarioSpec::default()
        },
        contains: "deadlock without any drop fault",
    }
}

/// PR-4 race 2: the coordinator tearing links down eagerly (before
/// joining workers) races a trailing duplicated message; with the
/// historical strict extra-send propagation the worker dies on
/// `Closed` instead of the extra being swallowed best-effort.
fn race2() -> Race {
    Race {
        file: "pr4_teardown_race.schedule",
        spec: ScenarioSpec {
            nodes: 1,
            rounds: 1,
            rows: 48,
            faults: FaultSpec {
                duplicate: true,
                budget: 1,
                ..FaultSpec::none()
            },
            bugs: ProtocolBugs {
                eager_link_teardown: true,
                strict_extra_sends: true,
                ..ProtocolBugs::default()
            },
            ..ScenarioSpec::default()
        },
        contains: "Transport(Closed)",
    }
}

fn races() -> [Race; 2] {
    [race1(), race2()]
}

/// Finds the race by exploration and builds the `.schedule` file its
/// counterexample serializes to.
fn rediscover(race: &Race) -> ScheduleFile {
    let out = explore_guarded(race.spec);
    assert!(
        out.stats.exhaustive(),
        "{}: exploration truncated: {:?}",
        race.file,
        out.stats.truncated
    );
    let ce = out.counterexample.unwrap_or_else(|| {
        panic!(
            "{}: the historical race was NOT rediscovered: {:?}",
            race.file, out.stats
        )
    });
    assert!(
        ce.what.contains(race.contains),
        "{}: rediscovered a different violation: {:?}",
        race.file,
        ce.what
    );
    ScheduleFile {
        spec: race.spec,
        max_decisions: MAX_DECISIONS,
        expected: Expected::Violation,
        contains: race.contains.to_string(),
        choices: ce.choices,
    }
}

/// (a) + (b): with the fix reverted, bounded-exhaustive exploration
/// rediscovers each race, and its DFS-least counterexample is exactly
/// the committed one, byte for byte.
#[test]
fn races_are_rediscovered_as_the_committed_counterexamples() {
    for race in races() {
        let found = write_schedule(&rediscover(&race));
        let path = schedule_path(race.file);
        if std::env::var_os("REGEN_SCHEDULES").is_some() {
            std::fs::write(&path, &found).unwrap();
            continue;
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing committed schedule {}: {e}", path.display()));
        assert_eq!(
            committed, found,
            "{}: the committed counterexample is stale; regenerate with REGEN_SCHEDULES=1",
            race.file
        );
    }
}

/// (c): the committed bytes replay deterministically and reproduce the
/// exact violation class they were found with.
#[test]
fn committed_counterexamples_replay_deterministically() {
    for race in races() {
        let bytes = std::fs::read(schedule_path(race.file)).unwrap();
        let file = read_schedule(&bytes).unwrap();
        assert_eq!(file.spec, race.spec, "{}: spec drifted", race.file);
        for attempt in 0..3 {
            let outcome = file.replay().unwrap_or_else(|e| {
                panic!("{} (attempt {attempt}): replay failed: {e}", race.file)
            });
            assert!(
                matches!(outcome.verdict, Verdict::Violation(_)),
                "{}: {:?}",
                race.file,
                outcome.verdict
            );
        }
    }
}

/// (d): restoring the fix heals the exact committed schedule — the
/// same choices now drive a clean run — and the whole fault vocabulary
/// explores clean.
#[test]
fn fixed_code_passes_the_same_schedules_and_vocabulary() {
    for race in races() {
        let bytes = std::fs::read(schedule_path(race.file)).unwrap();
        let mut file = read_schedule(&bytes).unwrap();
        file.spec.bugs = ProtocolBugs::default();
        assert!(
            file.replay().is_err(),
            "{}: the schedule still violates with the fix restored",
            race.file
        );
        let fixed_spec = ScenarioSpec {
            bugs: ProtocolBugs::default(),
            ..race.spec
        };
        let out = explore_guarded(fixed_spec);
        assert!(out.stats.exhaustive());
        assert_eq!(
            out.stats.violations, 0,
            "{}: fixed code still violates: {:?}",
            race.file, out.counterexample
        );
    }
}
