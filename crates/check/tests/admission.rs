//! Fleet admission under *systematically* adversarial handshake
//! interleavings.
//!
//! `process_fleet.rs` (in the cluster crate) fires one fixed volley of
//! junk at the listener; here the mischief is a small enumerated
//! vocabulary and the tests sweep every single mischief and every
//! ordered pair of the fire-and-forget ones, each injected *ahead of*
//! a real worker's connection. Because the spawner runs on the fleet
//! thread before `accept_worker`, fire-and-forget connections queue in
//! the listener backlog in script order — the interleaving with the
//! real worker's handshake is systematic, not racy.
//!
//! Invariants pinned, per scenario:
//! * admission sheds the adversary (reject, or admit-then-recover via
//!   respawn) and the run completes **bit-equal** to the in-process
//!   transport;
//! * an adversary that *steals* admission with a valid duplicate
//!   `Hello` under the `fail` policy surfaces as a typed
//!   [`ClusterError::WorkerLost`] promptly — never a hang.

use isasgd_cluster::{
    run, run_fleet_with, run_worker, ClusterConfig, ClusterError, ClusterRun, Message,
    ProcessConfig, Tcp, Transport, WorkerHandle, WorkerLossPolicy, WorkerOptions, WorkerSpawner,
    PROTOCOL_VERSION,
};
use isasgd_core::{
    CommitPolicy, ImportanceScheme, LogisticLoss, Objective, Regularizer, SamplingStrategy,
};
use isasgd_sparse::{Dataset, DatasetBuilder};
use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn skewed(n: usize) -> Dataset {
    let mut b = DatasetBuilder::new(8);
    for i in 0..n {
        let norm = if i % 7 == 0 { 5.0 } else { 0.4 };
        let j = (i % 4) as u32;
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
            .unwrap();
    }
    b.finish()
}

fn obj() -> Objective<LogisticLoss> {
    Objective::new(LogisticLoss, Regularizer::None)
}

fn cfg() -> ClusterConfig {
    ClusterConfig {
        nodes: 2,
        rounds: 2,
        local_epochs: 1,
        step_size: 0.3,
        importance: ImportanceScheme::LipschitzSmoothness,
        sampling: SamplingStrategy::Adaptive,
        commit: CommitPolicy::EpochBoundary,
        seed: 0x15A5_6D00,
        ..ClusterConfig::default()
    }
}

fn pc(on_loss: WorkerLossPolicy) -> ProcessConfig {
    ProcessConfig {
        handshake_timeout_ms: 30_000,
        round_timeout_ms: 60_000,
        on_loss,
        ..ProcessConfig::default()
    }
}

/// The adversarial handshake vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mischief {
    /// Correctly framed garbage: valid length prefix, undecodable
    /// payload.
    JunkFrame,
    /// A partial length prefix, then hangup.
    TruncatedFrame,
    /// A well-formed `Hello` announcing a future protocol version.
    WrongVersionHello,
    /// Connect and vanish without a byte.
    InstantClose,
    /// Admission theft: a *valid duplicate* `Hello` (identical to the
    /// real worker's) from a peer that consumes the session stream
    /// until it goes quiet, then dies — the slot is admitted to a
    /// corpse and must be recovered, not hung.
    ImpostorHello,
    /// A valid `Hello` from a peer that dies mid-`DatasetShard`
    /// stream: it reads the `Assign` and then hangs up while the
    /// coordinator is still streaming shard chunks.
    DieMidShard,
}

use Mischief::*;

/// The mischief that completes synchronously on the fleet thread
/// (fire-and-forget writes): its connection is guaranteed to sit in
/// the listener backlog ahead of the real worker's.
const FIRE_AND_FORGET: [Mischief; 4] = [JunkFrame, TruncatedFrame, WrongVersionHello, InstantClose];

fn inflict(m: Mischief, addr: &str) {
    match m {
        JunkFrame => {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.write_all(&[6, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 0x15, 0xa5]);
            }
        }
        TruncatedFrame => {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.write_all(&[9, 0]);
            }
        }
        WrongVersionHello => {
            if let Ok(s) = TcpStream::connect(addr) {
                if let Ok(mut link) = Tcp::new(s) {
                    let _ = link.send(&Message::Hello {
                        version: PROTOCOL_VERSION + 7,
                    });
                }
            }
        }
        InstantClose => {
            let _ = TcpStream::connect(addr);
        }
        // The interactive adversaries must read fleet-side frames, and
        // the fleet only writes them once `accept_worker` runs (after
        // this spawner call returns) — so they get their own threads.
        // Their connections still precede the real worker's.
        ImpostorHello => {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                if let Ok(s) = TcpStream::connect(&addr) {
                    if let Ok(mut link) = Tcp::with_read_timeout(s, Duration::from_secs(1)) {
                        let _ = link.send(&Message::Hello {
                            version: PROTOCOL_VERSION,
                        });
                        // Consume Assign / shard chunks / early round
                        // traffic until the line goes quiet, then die.
                        while link.recv().is_ok() {}
                    }
                }
            });
        }
        DieMidShard => {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                if let Ok(s) = TcpStream::connect(&addr) {
                    if let Ok(mut link) = Tcp::with_read_timeout(s, Duration::from_secs(1)) {
                        let _ = link.send(&Message::Hello {
                            version: PROTOCOL_VERSION,
                        });
                        // One frame (the Assign), then hang up while the
                        // shard chunks are still in flight.
                        let _ = link.recv();
                    }
                }
            });
        }
    }
}

/// A detached worker handle. Under admission theft the slot↔handle
/// pairing shifts (the impostor owns slot k's *connection* while slot
/// k's *handle* belongs to a real worker admitted elsewhere), so a
/// handle that joins its thread on drop would make `recover()` join an
/// active worker mid-round-read — a deadlock. The production
/// `ChildHandle` honors the "never block indefinitely" contract by
/// killing the child after a grace period; a thread cannot be killed,
/// so the thread analogue is: detach here, join everything after the
/// run when every socket is closed and workers exit promptly.
struct DetachedWorker;

impl WorkerHandle for DetachedWorker {}

type Handles = Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>;

/// Runs the scripted mischief ahead of every *initial* worker spawn.
/// Respawn admissions are left clean so recovery converges instead of
/// burning the whole respawn budget on the same adversary.
struct MischiefSpawner {
    script: Vec<Mischief>,
    handles: Handles,
}

impl WorkerSpawner for MischiefSpawner {
    fn spawn(
        &mut self,
        _node: u32,
        addr: &str,
        respawn: bool,
    ) -> Result<Box<dyn WorkerHandle>, ClusterError> {
        if !respawn {
            for &m in &self.script {
                inflict(m, addr);
            }
        }
        let addr = addr.to_string();
        let handle = std::thread::spawn(move || {
            // A short pre-admission read deadline so a *surplus* worker
            // (its slot was won from the backlog by a displaced peer)
            // unblocks itself instead of waiting out the 120 s default.
            let opts = WorkerOptions {
                read_timeout: Duration::from_secs(5),
                ..WorkerOptions::default()
            };
            let _ = run_worker(&addr, &opts);
        });
        self.handles.lock().unwrap().push(handle);
        Ok(Box::new(DetachedWorker))
    }
}

fn run_adversarial(
    ds: &Dataset,
    script: Vec<Mischief>,
    on_loss: WorkerLossPolicy,
) -> Result<ClusterRun, ClusterError> {
    let (ds, cfg, pc) = (ds.clone(), cfg(), pc(on_loss));
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let handles: Handles = Arc::new(Mutex::new(Vec::new()));
        let spawner = MischiefSpawner {
            script,
            handles: handles.clone(),
        };
        let result = run_fleet_with(&ds, &obj(), &cfg, &pc, spawner);
        // Every fleet socket (links and listener) is closed once
        // run_fleet_with returns, so each worker thread errors out of
        // its read promptly; join them all before reporting so no run
        // leaks threads into the next scenario.
        for h in handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        let _ = tx.send(result);
    });
    rx.recv_timeout(Duration::from_secs(120))
        .expect("adversarial fleet run hung")
}

fn assert_undisturbed(tag: &str, clean: &ClusterRun, got: Result<ClusterRun, ClusterError>) {
    let got = got.unwrap_or_else(|e| panic!("{tag}: adversarial run failed: {e}"));
    assert_eq!(
        got.model, clean.model,
        "{tag}: adversary perturbed the model"
    );
    assert_eq!(got.rounds, clean.rounds, "{tag}: round traces diverged");
    assert_eq!(
        got.observed_phi_imbalance, clean.observed_phi_imbalance,
        "{tag}: feedback mirror diverged"
    );
}

/// Every mischief in the vocabulary, alone, ahead of each real worker:
/// admission sheds it (or recovers from it) and the run stays bit-equal
/// to the in-process transport.
#[test]
fn every_single_mischief_is_shed_bit_equally() {
    let ds = skewed(120);
    let clean = run(&ds, &obj(), &cfg()).unwrap();
    for m in [
        JunkFrame,
        TruncatedFrame,
        WrongVersionHello,
        InstantClose,
        ImpostorHello,
        DieMidShard,
    ] {
        let got = run_adversarial(&ds, vec![m], WorkerLossPolicy::Respawn);
        assert_undisturbed(&format!("{m:?}"), &clean, got);
    }
}

/// Every ordered pair of fire-and-forget mischief (16 interleavings),
/// plus a representative mixed pair for each interactive adversary.
#[test]
fn mischief_pairs_are_shed_bit_equally() {
    let ds = skewed(120);
    let clean = run(&ds, &obj(), &cfg()).unwrap();
    let mut scripts: Vec<Vec<Mischief>> = Vec::new();
    for a in FIRE_AND_FORGET {
        for b in FIRE_AND_FORGET {
            scripts.push(vec![a, b]);
        }
    }
    scripts.push(vec![JunkFrame, ImpostorHello]);
    scripts.push(vec![WrongVersionHello, DieMidShard]);
    for script in scripts {
        let got = run_adversarial(&ds, script.clone(), WorkerLossPolicy::Respawn);
        assert_undisturbed(&format!("{script:?}"), &clean, got);
    }
}

/// Admission theft under the `fail` policy: when the duplicate-Hello
/// impostor wins the slot and dies, the loss must surface as a typed
/// `WorkerLost` — promptly, never as a hang. (The impostor may instead
/// be rejected at handshake when its hangup races the shard stream; the
/// real worker then completes the run — also a legal shed.)
#[test]
fn admission_theft_under_fail_policy_is_typed_not_hung() {
    let ds = skewed(120);
    let clean = run(&ds, &obj(), &cfg()).unwrap();
    match run_adversarial(&ds, vec![ImpostorHello], WorkerLossPolicy::Fail) {
        Err(ClusterError::WorkerLost { node, .. }) => {
            assert!(node < 2, "loss attributed to a nonexistent slot: {node}");
        }
        Err(other) => panic!("expected WorkerLost, got {other}"),
        Ok(got) => assert_undisturbed("rejected-impostor path", &clean, Ok(got)),
    }
}
