//! `isasgd-check`: a deterministic protocol model checker for the
//! isasgd cluster runtime.
//!
//! The checker runs the *real* coordinator / `NodeRuntime` code over a
//! model transport whose every delivery, duplication, delay, drop, and
//! teardown step is decided by a central scheduler, then explores the
//! schedule space systematically (bounded-depth DFS with state-hash
//! pruning) and judges each completed schedule against the protocol's
//! invariants:
//!
//! * **no deadlock** — unless a drop fault consumed a required message,
//!   in which case starvation is the *expected* outcome;
//! * **oracle equality** — the final model is bit-identical to the
//!   sequential in-process engine on every schedule;
//! * **idempotent absorption** — duplicated feedback inflates traffic
//!   counters, never the result;
//! * **no leaks** — at teardown of a clean run, no message content is
//!   both undelivered and unaccounted for.
//!
//! Violations serialize as compact `.schedule` replay files (see
//! [`replay`]) that re-execute the exact interleaving as ordinary
//! tests.
//!
//! Module map: [`explore`] (chooser + DFS engine), [`sched`] (the
//! model transport and scheduler), [`scenario`] (real cluster runs
//! under the scheduler, invariant judging), [`replay`] (the
//! `.schedule` wire format).

#![forbid(unsafe_code)]

pub mod explore;
pub mod replay;
pub mod scenario;
pub mod sched;

pub use explore::{
    explore, AbortKind, Budget, Choice, Chooser, Counterexample, Exploration, ExploreStats, Verdict,
};
pub use replay::{read_schedule, write_schedule, Expected, ScheduleFile};
pub use scenario::{explore_scenario, run_schedule, sample_scenario, Outcome, ScenarioSpec};
pub use sched::{FaultCounts, FaultSpec, ModelEndpoint, SchedHandle, SchedReport, Scheduler};
