//! The `.schedule` counterexample format: a compact, hand-rolled
//! binary encoding (wire-codec style — explicit bytes, varints, no
//! serde) of everything needed to re-execute one exact interleaving as
//! an ordinary test: the scenario spec, the expected outcome class,
//! and the choice taken at every decision point.
//!
//! Layout (integers are LEB128 varints unless noted):
//!
//! ```text
//! magic      8 raw bytes  "ISCHED02"
//! nodes, rounds, local_epochs, rows, seed, adaptive, checkpoint_every
//! faults     flags byte (1=reorder 2=duplicate 4=hold 8=drop), window, budget
//! bugs       flags byte (1=drop_preassignment 2=eager_teardown 4=strict_extras)
//! expected   tag (0=pass 1=expected-deadlock 2=violation)
//! contains   len + utf8   substring a violation's description must contain
//! max_decisions
//! choices    count + one varint per decision
//! ```

use crate::explore::Chooser;
use crate::scenario::{run_schedule, Outcome, ScenarioSpec};
use crate::sched::FaultSpec;
use isasgd_cluster::{put_varint, ProtocolBugs};

const MAGIC: &[u8; 8] = b"ISCHED02";

/// The outcome class a replayed schedule must reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// All invariants hold.
    Pass,
    /// Deadlock with a drop fault having fired.
    ExpectedDeadlock,
    /// An invariant violation (optionally matched by substring).
    Violation,
}

/// One committed counterexample (or regression witness): a scenario
/// plus the exact schedule that drives it to `expected`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFile {
    /// The scenario to run.
    pub spec: ScenarioSpec,
    /// The per-run decision bound the schedule was found under.
    pub max_decisions: usize,
    /// The outcome class replaying must reproduce.
    pub expected: Expected,
    /// Substring the violation description must contain (empty: any).
    pub contains: String,
    /// The choice at every decision point.
    pub choices: Vec<u32>,
}

/// Serializes `file` to the `.schedule` byte format.
pub fn write_schedule(file: &ScheduleFile) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let s = &file.spec;
    put_varint(&mut out, s.nodes as u64);
    put_varint(&mut out, s.rounds as u64);
    put_varint(&mut out, s.local_epochs as u64);
    put_varint(&mut out, u64::from(s.rows));
    put_varint(&mut out, s.seed);
    put_varint(&mut out, u64::from(s.adaptive));
    put_varint(&mut out, s.checkpoint_every);
    let f = &s.faults;
    let fault_flags = u64::from(f.reorder)
        | u64::from(f.duplicate) << 1
        | u64::from(f.hold) << 2
        | u64::from(f.drop) << 3;
    put_varint(&mut out, fault_flags);
    put_varint(&mut out, u64::from(f.reorder_window));
    put_varint(&mut out, u64::from(f.budget));
    let b = &s.bugs;
    let bug_flags = u64::from(b.drop_preassignment_traffic)
        | u64::from(b.eager_link_teardown) << 1
        | u64::from(b.strict_extra_sends) << 2;
    put_varint(&mut out, bug_flags);
    let tag = match file.expected {
        Expected::Pass => 0,
        Expected::ExpectedDeadlock => 1,
        Expected::Violation => 2,
    };
    put_varint(&mut out, tag);
    put_varint(&mut out, file.contains.len() as u64);
    out.extend_from_slice(file.contains.as_bytes());
    put_varint(&mut out, file.max_decisions as u64);
    put_varint(&mut out, file.choices.len() as u64);
    for &c in &file.choices {
        put_varint(&mut out, u64::from(c));
    }
    out
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or_else(|| "truncated varint".to_string())?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint overflows u64".into());
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Parses the `.schedule` byte format.
pub fn read_schedule(bytes: &[u8]) -> Result<ScheduleFile, String> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err("not a .schedule file (bad magic)".into());
    }
    let mut pos = MAGIC.len();
    let int = |pos: &mut usize| get_varint(bytes, pos);
    let nodes = int(&mut pos)? as usize;
    let rounds = int(&mut pos)? as usize;
    let local_epochs = int(&mut pos)? as usize;
    let rows = u32::try_from(int(&mut pos)?).map_err(|_| "rows out of range".to_string())?;
    let seed = int(&mut pos)?;
    let adaptive = int(&mut pos)? != 0;
    let checkpoint_every = int(&mut pos)?;
    let fault_flags = int(&mut pos)?;
    let reorder_window =
        u8::try_from(int(&mut pos)?).map_err(|_| "window out of range".to_string())?;
    let budget = u8::try_from(int(&mut pos)?).map_err(|_| "budget out of range".to_string())?;
    let bug_flags = int(&mut pos)?;
    let expected = match int(&mut pos)? {
        0 => Expected::Pass,
        1 => Expected::ExpectedDeadlock,
        2 => Expected::Violation,
        t => return Err(format!("unknown expected-outcome tag {t}")),
    };
    let contains_len = int(&mut pos)? as usize;
    let end = pos
        .checked_add(contains_len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| "truncated contains string".to_string())?;
    let contains = std::str::from_utf8(&bytes[pos..end])
        .map_err(|_| "contains string is not utf8".to_string())?
        .to_string();
    pos = end;
    let max_decisions = int(&mut pos)? as usize;
    let n_choices = int(&mut pos)? as usize;
    if n_choices > bytes.len() {
        return Err("choice count exceeds file size".into());
    }
    let mut choices = Vec::with_capacity(n_choices);
    for _ in 0..n_choices {
        let c = u32::try_from(int(&mut pos)?).map_err(|_| "choice out of range".to_string())?;
        choices.push(c);
    }
    if pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after schedule",
            bytes.len() - pos
        ));
    }
    Ok(ScheduleFile {
        spec: ScenarioSpec {
            nodes,
            rounds,
            local_epochs,
            rows,
            seed,
            adaptive,
            checkpoint_every,
            faults: FaultSpec {
                reorder: fault_flags & 1 != 0,
                reorder_window,
                duplicate: fault_flags & 2 != 0,
                hold: fault_flags & 4 != 0,
                drop: fault_flags & 8 != 0,
                budget,
            },
            bugs: ProtocolBugs {
                drop_preassignment_traffic: bug_flags & 1 != 0,
                eager_link_teardown: bug_flags & 2 != 0,
                strict_extra_sends: bug_flags & 4 != 0,
            },
        },
        max_decisions,
        expected,
        contains,
        choices,
    })
}

impl ScheduleFile {
    /// Re-executes the exact committed interleaving and checks that it
    /// reproduces the expected outcome class. `Ok` carries the judged
    /// outcome for further assertions.
    pub fn replay(&self) -> Result<Outcome, String> {
        let chooser = Chooser::replay(self.choices.clone(), self.max_decisions);
        let (outcome, chooser) = run_schedule(&self.spec, chooser);
        if let Some(kind) = chooser.aborted() {
            return Err(format!(
                "replay did not follow the committed schedule ({kind:?}): the code under \
                 test no longer offers these choices"
            ));
        }
        use crate::explore::Verdict;
        match (&self.expected, &outcome.verdict) {
            (Expected::Pass, Verdict::Pass)
            | (Expected::ExpectedDeadlock, Verdict::ExpectedDeadlock) => Ok(outcome),
            (Expected::Violation, Verdict::Violation(what)) => {
                if self.contains.is_empty() || what.contains(&self.contains) {
                    Ok(outcome)
                } else {
                    Err(format!(
                        "replay violated a different invariant: got {what:?}, expected one \
                         containing {:?}",
                        self.contains
                    ))
                }
            }
            (want, got) => Err(format!(
                "replay outcome class mismatch: expected {want:?}, got {got:?}"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScheduleFile {
        ScheduleFile {
            spec: ScenarioSpec {
                nodes: 3,
                rounds: 2,
                local_epochs: 1,
                rows: 120,
                seed: 0xDEAD_BEEF,
                adaptive: true,
                checkpoint_every: 2,
                faults: FaultSpec {
                    reorder: true,
                    reorder_window: 3,
                    duplicate: true,
                    hold: false,
                    drop: true,
                    budget: 2,
                },
                bugs: ProtocolBugs {
                    drop_preassignment_traffic: true,
                    eager_link_teardown: false,
                    strict_extra_sends: true,
                },
            },
            max_decisions: 40,
            expected: Expected::Violation,
            contains: "deadlock".into(),
            choices: vec![0, 3, 1, 0, 2, 150],
        }
    }

    #[test]
    fn schedule_files_roundtrip() {
        let f = sample();
        let bytes = write_schedule(&f);
        assert_eq!(read_schedule(&bytes).unwrap(), f);
    }

    #[test]
    fn corrupt_schedules_are_rejected() {
        let f = sample();
        let bytes = write_schedule(&f);
        assert!(read_schedule(&bytes[..4]).is_err(), "bad magic");
        assert!(
            read_schedule(&bytes[..bytes.len() - 1]).is_err(),
            "truncated choices"
        );
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(read_schedule(&extra).is_err(), "trailing bytes");
        let mut old = bytes.clone();
        old[..8].copy_from_slice(b"ISCHED01");
        assert!(
            read_schedule(&old).is_err(),
            "pre-checkpoint format version must be rejected, not misparsed"
        );
    }
}
