//! Model-checked cluster scenarios: one [`ScenarioSpec`] describes a
//! small, fully deterministic cluster run (dataset, config, fault
//! vocabulary, optional re-enabled historical bugs); [`run_schedule`]
//! executes it once under a given [`Chooser`] through the *real*
//! coordinator and `NodeRuntime` code, and judges the outcome against
//! the protocol invariants with the sequential in-process engine as
//! oracle.
//!
//! Specs must stay small (2 workers × 2 rounds explores within a CI
//! budget) and *valid*: config validation failures would tear links
//! down before the model's worker threads exist, which the scheduler —
//! by design, it models protocol behaviour, not harness typos — would
//! wait on forever.

use crate::explore::{explore, AbortKind, Budget, Chooser, Exploration, ExploreStats, Verdict};
use crate::sched::{FaultCounts, FaultSpec, SchedReport, Scheduler};
use isasgd_cluster::{
    in_process_links, run_with_links, run_with_links_observed, ClusterConfig, ClusterRun,
    ProtocolBugs, TransportConfig,
};
use isasgd_core::{
    CommitPolicy, ImportanceScheme, LogisticLoss, Objective, Regularizer, SamplingStrategy,
};
use isasgd_sparse::{Dataset, DatasetBuilder};

/// A deterministic model-checking scenario: cluster shape, data, fault
/// vocabulary, and which historical bugs (if any) to re-enable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Worker count.
    pub nodes: usize,
    /// Synchronization rounds.
    pub rounds: usize,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Dataset rows (skewed synthetic data, 8 features).
    pub rows: u32,
    /// Cluster RNG seed.
    pub seed: u64,
    /// Adaptive sampling (exercises the FeedbackBatch path) vs static.
    pub adaptive: bool,
    /// Worker checkpoint cadence in rounds (0 = disabled). Exercises
    /// the `Checkpoint` frame path: workers emit state snapshots that a
    /// plain coordinator must absorb without perturbing bit-identity.
    pub checkpoint_every: u64,
    /// Fault vocabulary the scheduler may enumerate.
    pub faults: FaultSpec,
    /// Historical bugs to re-enable (regression rediscovery).
    pub bugs: ProtocolBugs,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            nodes: 2,
            rounds: 2,
            local_epochs: 1,
            rows: 96,
            seed: 0x15A5_6D00,
            adaptive: true,
            checkpoint_every: 0,
            faults: FaultSpec::none(),
            bugs: ProtocolBugs::default(),
        }
    }
}

/// The judged result of one schedule.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The invariant verdict (meaningful only when `aborted` is None).
    pub verdict: Verdict,
    /// Why the run was cut short, if it was (pruned / depth-capped /
    /// replay divergence) — the verdict of an aborted run is vacuous.
    pub aborted: Option<AbortKind>,
    /// Whether the scheduler flagged a deadlock.
    pub deadlocked: bool,
    /// Fault actions that fired.
    pub counts: FaultCounts,
    /// Undelivered-content leaks at teardown.
    pub leaks: Vec<String>,
    /// The cluster-run error, if the run failed.
    pub run_error: Option<String>,
}

fn skewed(n: u32) -> Dataset {
    let mut b = DatasetBuilder::new(8);
    for i in 0..n as usize {
        let norm = if i % 7 == 0 { 5.0 } else { 0.4 };
        let j = (i % 4) as u32;
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        b.push_row(&[(j, y * norm), (4 + j, 0.5 * y * norm)], y)
            .unwrap();
    }
    b.finish()
}

fn objective() -> Objective<LogisticLoss> {
    Objective::new(LogisticLoss, Regularizer::None)
}

fn cluster_cfg(spec: &ScenarioSpec, bugs: ProtocolBugs) -> ClusterConfig {
    ClusterConfig {
        nodes: spec.nodes,
        rounds: spec.rounds,
        local_epochs: spec.local_epochs,
        step_size: 0.3,
        importance: ImportanceScheme::LipschitzSmoothness,
        sampling: if spec.adaptive {
            SamplingStrategy::Adaptive
        } else {
            SamplingStrategy::Static
        },
        commit: CommitPolicy::EpochBoundary,
        transport: TransportConfig::InProcess,
        seed: spec.seed,
        checkpoint_every: spec.checkpoint_every,
        bugs,
        ..ClusterConfig::default()
    }
}

/// Everything one exploration reuses across schedules: the dataset,
/// the objective, and the clean sequential oracle run.
struct Ctx {
    ds: Dataset,
    cfg: ClusterConfig,
    oracle: ClusterRun,
}

fn ctx(spec: &ScenarioSpec) -> Ctx {
    let ds = skewed(spec.rows);
    let clean_cfg = cluster_cfg(spec, ProtocolBugs::default());
    let oracle = run_with_links(&ds, &objective(), &clean_cfg, in_process_links(spec.nodes))
        .expect("oracle run of a valid spec");
    Ctx {
        ds,
        cfg: cluster_cfg(spec, spec.bugs),
        oracle,
    }
}

fn classify(
    report: &SchedReport,
    result: &Result<ClusterRun, String>,
    oracle: &ClusterRun,
) -> Verdict {
    if report.deadlocked {
        return if report.counts.drops > 0 {
            // Losing a required message is *supposed* to starve the
            // protocol; the invariant is that it never corrupts it.
            Verdict::ExpectedDeadlock
        } else {
            Verdict::Violation("deadlock without any drop fault".into())
        };
    }
    let run = match result {
        // Message loss may also surface as a clean failure instead of
        // starvation: the peer finishes (its send "succeeded"), closes,
        // and the waiting side gets `Closed`. Loss may starve or fail a
        // run; only corrupting one is a violation.
        Err(_) if report.counts.drops > 0 => return Verdict::ExpectedDeadlock,
        Err(e) => {
            return Verdict::Violation(format!("cluster run failed without deadlock: {e}"));
        }
        Ok(run) => run,
    };
    if run.model != oracle.model {
        return Verdict::Violation("final model diverged from the sequential oracle".into());
    }
    if run.rounds != oracle.rounds || run.syncs != oracle.syncs {
        return Verdict::Violation("round trace diverged from the sequential oracle".into());
    }
    if run.phi_imbalance != oracle.phi_imbalance || run.balanced != oracle.balanced {
        return Verdict::Violation("balancing outcome diverged from the sequential oracle".into());
    }
    if report.counts.drops == 0 {
        // Without losses the feedback mirror must be bit-identical;
        // duplicated batches may inflate the applied-entry *count*
        // (idempotent absorption), never the mirror state.
        if run.observed_phi_imbalance != oracle.observed_phi_imbalance {
            return Verdict::Violation(
                "feedback mirror diverged: duplicated/reordered feedback was not absorbed \
                 idempotently"
                    .into(),
            );
        }
        if report.counts.dups > 0 {
            if run.feedback_rows < oracle.feedback_rows {
                return Verdict::Violation("feedback entries lost under duplication".into());
            }
        } else if run.feedback_rows != oracle.feedback_rows {
            return Verdict::Violation("feedback entry count changed without any fault".into());
        }
        if !report.leaks.is_empty() {
            return Verdict::Violation(format!(
                "undelivered message content leaked at teardown: {}",
                report.leaks.join("; ")
            ));
        }
    }
    Verdict::Pass
}

/// Runs `spec` once under `chooser`, returning the judged outcome and
/// the chooser (whose decision log the explorer backtracks on).
pub fn run_schedule(spec: &ScenarioSpec, chooser: Chooser) -> (Outcome, Chooser) {
    run_schedule_in(&ctx(spec), spec, chooser)
}

fn run_schedule_in(ctx: &Ctx, spec: &ScenarioSpec, chooser: Chooser) -> (Outcome, Chooser) {
    let (sched, links) = Scheduler::new(
        spec.nodes,
        spec.faults,
        spec.bugs.strict_extra_sends,
        chooser,
    );
    let handle = sched.handle();
    // The coordinator announces its upcoming endpoint drops so the
    // scheduler can sequence pending worker actions against them: under
    // the eager-teardown bug it closes every link right after the
    // driver; fixed code joins workers first (no closes to wait for).
    let upcoming = if spec.bugs.eager_link_teardown {
        spec.nodes
    } else {
        0
    };
    let result = run_with_links_observed(&ctx.ds, &objective(), &ctx.cfg, links, move || {
        handle.driver_done(upcoming);
    })
    .map_err(|e| format!("{e:?}"));
    let (report, chooser) = sched.finish();
    let aborted = chooser.aborted();
    let verdict = if aborted.is_some() {
        // Cut short by the explorer; nothing to judge.
        Verdict::Pass
    } else {
        classify(&report, &result, &ctx.oracle)
    };
    (
        Outcome {
            verdict,
            aborted,
            deadlocked: report.deadlocked,
            counts: report.counts,
            leaks: report.leaks,
            run_error: result.err(),
        },
        chooser,
    )
}

/// Exhaustively explores `spec` (bounded by `max_decisions` choices per
/// schedule and `budget`), stopping at the first violation.
pub fn explore_scenario(spec: &ScenarioSpec, max_decisions: usize, budget: Budget) -> Exploration {
    let ctx = ctx(spec);
    explore(max_decisions, budget, |ch| {
        let chooser = std::mem::take(ch);
        let (outcome, chooser) = run_schedule_in(&ctx, spec, chooser);
        *ch = chooser;
        outcome.verdict
    })
}

/// Samples `walks` seeded random schedules of `spec` (for configs too
/// large to exhaust). Reports with the same no-silent-truncation stats
/// as [`explore_scenario`]; the walk itself is the declared truncation.
pub fn sample_scenario(
    spec: &ScenarioSpec,
    max_decisions: usize,
    walks: u64,
    seed: u64,
) -> Exploration {
    let ctx = ctx(spec);
    let mut stats = ExploreStats {
        truncated: Some(format!("random walk: {walks} sampled schedules")),
        ..ExploreStats::default()
    };
    let mut counterexample = None;
    for i in 0..walks {
        let chooser = Chooser::walk(seed.wrapping_add(i), max_decisions);
        let (outcome, chooser) = run_schedule_in(&ctx, spec, chooser);
        stats.decisions += chooser.decisions() as u64;
        stats.max_depth_seen = stats.max_depth_seen.max(chooser.decisions() as u64);
        match outcome.aborted {
            Some(AbortKind::DepthCapped) => stats.depth_capped += 1,
            Some(_) => {}
            None => {
                stats.schedules += 1;
                match outcome.verdict {
                    Verdict::Pass => {}
                    Verdict::ExpectedDeadlock => stats.expected_deadlocks += 1,
                    Verdict::Violation(what) => {
                        stats.violations += 1;
                        counterexample = Some(crate::explore::Counterexample {
                            what,
                            choices: chooser.log().iter().map(|&(c, _)| c).collect(),
                        });
                        break;
                    }
                }
            }
        }
    }
    Exploration {
        stats,
        counterexample,
    }
}
