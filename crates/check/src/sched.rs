//! The model scheduler: a [`Transport`] whose every send, receive,
//! teardown, and fault is a *choice* made by a [`Chooser`], so the
//! whole interleaving space of one cluster run becomes an enumerable
//! decision tree.
//!
//! # How a run is sequenced
//!
//! [`Scheduler::new`] builds one pair of [`ModelEndpoint`]s per link:
//! worker `k`'s endpoint belongs to model thread `k`, all coordinator
//! endpoints to thread `nodes`. Every transport operation blocks its
//! thread on the central state; a scheduling step happens only at
//! *quiescence* — no thread running — and is executed by the last
//! thread to block ("last man schedules"), so no separate scheduler
//! thread exists and the decision points are exactly the protocol's
//! communication events:
//!
//! * a blocked `send` resolves as **deliver** (enqueue), or — under
//!   the fault vocabulary, budget permitting — **duplicate** (enqueue
//!   plus an *owed extra copy* that is itself a later, separately
//!   schedulable step, which is precisely the window the historical
//!   teardown race lived in), **hold** (park the message in the
//!   endpoint, [`FaultingTransport`]-style: flushed after the next
//!   send, before the next recv, or at drop), or **drop** (discard);
//! * a blocked `recv` on a non-empty channel resolves by delivering
//!   slot 0, or — with the reorder fault — a later slot;
//! * an endpoint drop is a schedulable **close**, so teardown
//!   interleaves with in-flight traffic under scheduler control;
//! * the round driver's completion is a schedulable **yield** (via
//!   [`SchedHandle::driver_done`]), after which the coordinator is
//!   *passive*: it performs only its announced closes and never
//!   blocks the quiescence test by merely executing `join`.
//!
//! Steps with exactly one enabled action auto-execute without
//! consuming a decision, so schedules stay short and the DFS bound is
//! spent on genuine races. A quiescent state with a blocked receive
//! and no enabled action is a **deadlock**: the run is aborted (every
//! operation unblocks with `Closed`) and flagged.
//!
//! Extra copies (duplicates, held-message flushes) that meet a closed
//! channel are swallowed best-effort, exactly like the fixed
//! [`FaultingTransport`]; `strict_extras` resurrects the historical
//! strict propagation for the PR-4 teardown-race regression.
//!
//! [`FaultingTransport`]: isasgd_cluster::FaultingTransport

use crate::explore::{Choice, Chooser};
use isasgd_cluster::{Message, Transport, TransportError};
use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Which fault actions the scheduler may enumerate, and how many total
/// fault injections one schedule may spend (`budget`). Plain delivery
/// in arrival order is always enabled and never costs budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Enable out-of-order delivery (recv-side slot choice).
    pub reorder: bool,
    /// How deep into a channel queue a reordered delivery may reach.
    pub reorder_window: u8,
    /// Enable duplicate injection (send-side, with an owed extra copy
    /// delivered as a separate scheduled step).
    pub duplicate: bool,
    /// Enable held/delayed sends (send-side).
    pub hold: bool,
    /// Enable message loss (send-side). Losing a required message is
    /// expected to starve the protocol: runs where a drop fired may
    /// deadlock without that counting as a violation.
    pub drop: bool,
    /// Total fault injections allowed per schedule.
    pub budget: u8,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            reorder: false,
            reorder_window: 2,
            duplicate: false,
            hold: false,
            drop: false,
            budget: 0,
        }
    }
}

impl FaultSpec {
    /// No faults: pure delivery-order exploration.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// The full vocabulary except drops, with the given budget.
    pub fn lossless(budget: u8) -> Self {
        FaultSpec {
            reorder: true,
            duplicate: true,
            hold: true,
            budget,
            ..FaultSpec::default()
        }
    }

    /// The full vocabulary including drops, with the given budget.
    pub fn all(budget: u8) -> Self {
        FaultSpec {
            drop: true,
            ..FaultSpec::lossless(budget)
        }
    }
}

/// Counters of fault actions that actually fired during one schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Duplicate injections (owed extras created).
    pub dups: u64,
    /// Held (delayed) sends.
    pub holds: u64,
    /// Dropped (lost) sends.
    pub drops: u64,
    /// Out-of-order deliveries (slot > 0).
    pub reorders: u64,
    /// Extra copies that met a closed channel (swallowed when
    /// best-effort, surfaced as `Closed` when `strict_extras`).
    pub extras_to_closed: u64,
}

impl FaultCounts {
    /// True when any lossless fault fired (dup/hold/reorder).
    pub fn any_lossless(&self) -> bool {
        self.dups > 0 || self.holds > 0 || self.reorders > 0
    }
}

/// What the scheduler knew when the run ended.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// A quiescent state offered no action while a receive stayed
    /// blocked: the protocol starved.
    pub deadlocked: bool,
    /// Fault actions that fired.
    pub counts: FaultCounts,
    /// Messages whose content was never delivered nor consumed by a
    /// drop fault, yet can no longer arrive (undelivered in-flight or
    /// discarded held messages at teardown). Meaningful only for runs
    /// that completed cleanly.
    pub leaks: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Running,
    Blocked,
    /// Declared quiet: does no transport work the scheduler must wait
    /// for (a passive coordinator between its announced closes, or in
    /// `join`).
    Quiet,
    Done,
}

#[derive(Debug, Clone)]
struct InFlight {
    id: u64,
    injected: bool,
    msg: Message,
}

#[derive(Debug)]
enum Pending {
    Recv,
    Send { msg: Message, extra_of: Option<u64> },
    Close,
    Yield { upcoming_closes: u32 },
}

#[derive(Debug)]
enum Reply {
    Recv(Result<Message, TransportError>),
    /// `held = true`: the message was parked, skip the post-send flush.
    Send(Result<bool, TransportError>),
    Unit,
}

struct Th {
    run: RunState,
    passive: bool,
    /// Closes a passive thread has announced and not yet performed.
    announced: u32,
    endpoints_open: u32,
    pending: Option<Pending>,
    /// The endpoint of the pending op (channel derivable from it).
    pending_ep: usize,
    reply: Option<Reply>,
}

struct Ep {
    open: bool,
    held: Option<InFlight>,
}

struct State {
    chooser: Chooser,
    faults: FaultSpec,
    strict_extras: bool,
    threads: Vec<Th>,
    eps: Vec<Ep>,
    queues: Vec<VecDeque<InFlight>>,
    /// Running FNV hash of each channel's delivery history (content).
    rx_hash: Vec<u64>,
    delivered: BTreeSet<u64>,
    dropped: BTreeSet<u64>,
    next_id: u64,
    budget_left: u8,
    counts: FaultCounts,
    leaks: Vec<String>,
    aborted: bool,
    deadlocked: bool,
}

struct Shared {
    mx: Mutex<State>,
    cv: Condvar,
}

/// One enabled scheduling action at a quiescent state.
#[derive(Debug, Clone, Copy)]
enum Action {
    Deliver { t: usize, slot: usize },
    SendPrimary { t: usize },
    SendDup { t: usize },
    SendHold { t: usize },
    SendDrop { t: usize },
    SendExtra { t: usize },
    Close { t: usize },
    Yield { t: usize },
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv(h, &v.to_le_bytes())
}

fn msg_hash(msg: &Message) -> u64 {
    let mut buf = Vec::new();
    msg.encode(&mut buf);
    fnv(FNV_OFFSET, &buf)
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared.mx.lock().unwrap_or_else(|e| e.into_inner())
}

impl State {
    fn tx_chan(&self, ep: usize) -> usize {
        ep
    }

    fn rx_chan(&self, ep: usize) -> usize {
        ep ^ 1
    }

    /// Is channel `c` still writable (its receiving endpoint alive)?
    fn chan_rx_open(&self, c: usize) -> bool {
        self.eps[c ^ 1].open
    }

    /// Is channel `c` still fed (its sending endpoint alive)?
    fn chan_tx_open(&self, c: usize) -> bool {
        self.eps[c].open
    }

    fn resolve(&mut self, t: usize, reply: Reply, run: RunState) {
        self.threads[t].reply = Some(reply);
        self.threads[t].run = run;
    }

    /// Direct (non-scheduled) enqueue of a held message at a flush
    /// point. Returns `Err(Closed)` only under `strict_extras`.
    fn flush_held(&mut self, ep: usize) -> Result<(), TransportError> {
        let Some(h) = self.eps[ep].held.take() else {
            return Ok(());
        };
        let c = self.tx_chan(ep);
        if self.chan_rx_open(c) {
            self.queues[c].push_back(h);
            return Ok(());
        }
        self.counts.extras_to_closed += 1;
        if !self.delivered.contains(&h.id) && !self.dropped.contains(&h.id) {
            self.leaks.push(format!(
                "held {} discarded at closed channel {c} without ever being delivered",
                h.msg.kind()
            ));
        }
        if self.strict_extras {
            return Err(TransportError::Closed);
        }
        Ok(())
    }

    /// Closes endpoint `ep` (flushing its held message first) and
    /// settles its thread's run state.
    fn do_close(&mut self, t: usize, ep: usize) {
        // Drop-time flush is always best-effort (`let _`-style), even
        // under strict extras: a destructor cannot report the error.
        let _ = {
            let strict = self.strict_extras;
            self.strict_extras = false;
            let r = self.flush_held(ep);
            self.strict_extras = strict;
            r
        };
        self.eps[ep].open = false;
        let th = &mut self.threads[t];
        th.endpoints_open -= 1;
        th.announced = th.announced.saturating_sub(1);
        let run = if th.endpoints_open == 0 {
            RunState::Done
        } else if th.passive && th.announced == 0 {
            RunState::Quiet
        } else {
            RunState::Running
        };
        self.resolve(t, Reply::Unit, run);
    }

    fn resolve_all_for_abort(&mut self) {
        for t in 0..self.threads.len() {
            if self.threads[t].run != RunState::Blocked {
                continue;
            }
            let ep = self.threads[t].pending_ep;
            match self.threads[t].pending.take() {
                Some(Pending::Recv) => {
                    self.resolve(
                        t,
                        Reply::Recv(Err(TransportError::Closed)),
                        RunState::Running,
                    );
                }
                Some(Pending::Send { .. }) => {
                    self.resolve(
                        t,
                        Reply::Send(Err(TransportError::Closed)),
                        RunState::Running,
                    );
                }
                Some(Pending::Close) => self.do_close(t, ep),
                Some(Pending::Yield { .. }) => {
                    self.threads[t].passive = true;
                    self.resolve(t, Reply::Unit, RunState::Quiet);
                }
                None => {}
            }
        }
    }

    /// How many delivery slots a blocked receive on channel `c` may
    /// choose among right now. Must agree with [`State::enumerate`].
    fn recv_window(&self, c: usize) -> usize {
        let q = self.queues[c].len();
        if self.faults.reorder && self.budget_left > 0 {
            q.min(self.faults.reorder_window as usize)
        } else {
            q.min(1)
        }
    }

    /// Resolves operations with exactly one possible outcome that
    /// requires no scheduling decision: closed-channel sends/recvs, and
    /// single-slot deliveries. Only ever called at quiescence, so the
    /// queue contents it inspects are fully determined by the decision
    /// history. Returns true if anything was woken.
    fn resolve_forced(&mut self) -> bool {
        #[derive(Clone, Copy)]
        enum Forced {
            RecvClosed,
            Deliver,
            SendClosed { extra: bool },
        }
        let mut woke = false;
        for t in 0..self.threads.len() {
            if self.threads[t].run != RunState::Blocked {
                continue;
            }
            let ep = self.threads[t].pending_ep;
            let forced = match &self.threads[t].pending {
                Some(Pending::Recv) => {
                    let c = self.rx_chan(ep);
                    if self.queues[c].is_empty() {
                        (!self.chan_tx_open(c)).then_some(Forced::RecvClosed)
                    } else {
                        // A single-slot delivery commutes with every
                        // other enabled action (the queue is SPSC and a
                        // close never purges it); cross-quiescence
                        // *delays* are the hold fault's job, so there is
                        // no schedule where waiting longer matters.
                        (self.recv_window(c) == 1).then_some(Forced::Deliver)
                    }
                }
                Some(Pending::Send { extra_of, .. }) => {
                    let c = self.tx_chan(ep);
                    if self.chan_rx_open(c) {
                        None
                    } else {
                        Some(Forced::SendClosed {
                            extra: extra_of.is_some(),
                        })
                    }
                }
                _ => None,
            };
            match forced {
                None => {}
                Some(Forced::RecvClosed) => {
                    self.threads[t].pending = None;
                    self.resolve(
                        t,
                        Reply::Recv(Err(TransportError::Closed)),
                        RunState::Running,
                    );
                    woke = true;
                }
                Some(Forced::Deliver) => {
                    self.apply(Action::Deliver { t, slot: 0 });
                    woke = true;
                }
                Some(Forced::SendClosed { extra }) => {
                    let reply = if extra {
                        self.counts.extras_to_closed += 1;
                        if self.strict_extras {
                            Err(TransportError::Closed)
                        } else {
                            Ok(false)
                        }
                    } else {
                        Err(TransportError::Closed)
                    };
                    self.threads[t].pending = None;
                    self.resolve(t, Reply::Send(reply), RunState::Running);
                    woke = true;
                }
            }
        }
        woke
    }

    fn enumerate(&self) -> Vec<Action> {
        let mut actions = Vec::new();
        for t in 0..self.threads.len() {
            if self.threads[t].run != RunState::Blocked {
                continue;
            }
            let ep = self.threads[t].pending_ep;
            match &self.threads[t].pending {
                Some(Pending::Recv) => {
                    let c = self.rx_chan(ep);
                    for slot in 0..self.recv_window(c) {
                        actions.push(Action::Deliver { t, slot });
                    }
                }
                Some(Pending::Send { extra_of, .. }) => {
                    if extra_of.is_some() {
                        actions.push(Action::SendExtra { t });
                    } else {
                        actions.push(Action::SendPrimary { t });
                        if self.budget_left > 0 {
                            if self.faults.duplicate {
                                actions.push(Action::SendDup { t });
                            }
                            if self.faults.hold && self.eps[ep].held.is_none() {
                                actions.push(Action::SendHold { t });
                            }
                            if self.faults.drop {
                                actions.push(Action::SendDrop { t });
                            }
                        }
                    }
                }
                Some(Pending::Close) => actions.push(Action::Close { t }),
                Some(Pending::Yield { .. }) => actions.push(Action::Yield { t }),
                None => {}
            }
        }
        actions
    }

    fn apply(&mut self, a: Action) {
        match a {
            Action::Deliver { t, slot } => {
                let ep = self.threads[t].pending_ep;
                let c = self.rx_chan(ep);
                let m = self.queues[c].remove(slot).expect("enumerated slot");
                if slot > 0 {
                    self.budget_left -= 1;
                    self.counts.reorders += 1;
                }
                self.delivered.insert(m.id);
                self.rx_hash[c] = fnv_u64(self.rx_hash[c], msg_hash(&m.msg));
                self.threads[t].pending = None;
                self.resolve(t, Reply::Recv(Ok(m.msg)), RunState::Running);
            }
            Action::SendPrimary { t } => {
                let ep = self.threads[t].pending_ep;
                let c = self.tx_chan(ep);
                let Some(Pending::Send { msg, .. }) = self.threads[t].pending.take() else {
                    unreachable!("enumerated send");
                };
                let id = self.next_id;
                self.next_id += 1;
                self.queues[c].push_back(InFlight {
                    id,
                    injected: false,
                    msg,
                });
                self.resolve(t, Reply::Send(Ok(false)), RunState::Running);
            }
            Action::SendDup { t } => {
                let ep = self.threads[t].pending_ep;
                let c = self.tx_chan(ep);
                let Some(Pending::Send { msg, .. }) = self.threads[t].pending.take() else {
                    unreachable!("enumerated send");
                };
                let id = self.next_id;
                self.next_id += 1;
                self.queues[c].push_back(InFlight {
                    id,
                    injected: false,
                    msg: msg.clone(),
                });
                // The sender stays blocked, owing an injected extra
                // copy: completing it is a separate scheduled step that
                // other threads' actions may interleave with.
                self.threads[t].pending = Some(Pending::Send {
                    msg,
                    extra_of: Some(id),
                });
                self.budget_left -= 1;
                self.counts.dups += 1;
            }
            Action::SendExtra { t } => {
                let ep = self.threads[t].pending_ep;
                let c = self.tx_chan(ep);
                let Some(Pending::Send {
                    msg,
                    extra_of: Some(id),
                }) = self.threads[t].pending.take()
                else {
                    unreachable!("enumerated extra");
                };
                self.queues[c].push_back(InFlight {
                    id,
                    injected: true,
                    msg,
                });
                self.resolve(t, Reply::Send(Ok(false)), RunState::Running);
            }
            Action::SendHold { t } => {
                let ep = self.threads[t].pending_ep;
                let Some(Pending::Send { msg, .. }) = self.threads[t].pending.take() else {
                    unreachable!("enumerated send");
                };
                let id = self.next_id;
                self.next_id += 1;
                self.eps[ep].held = Some(InFlight {
                    id,
                    injected: false,
                    msg,
                });
                self.budget_left -= 1;
                self.counts.holds += 1;
                self.resolve(t, Reply::Send(Ok(true)), RunState::Running);
            }
            Action::SendDrop { t } => {
                let Some(Pending::Send { .. }) = self.threads[t].pending.take() else {
                    unreachable!("enumerated send");
                };
                let id = self.next_id;
                self.next_id += 1;
                self.dropped.insert(id);
                self.budget_left -= 1;
                self.counts.drops += 1;
                self.resolve(t, Reply::Send(Ok(false)), RunState::Running);
            }
            Action::Close { t } => {
                let ep = self.threads[t].pending_ep;
                self.threads[t].pending = None;
                self.do_close(t, ep);
            }
            Action::Yield { t } => {
                let Some(Pending::Yield { upcoming_closes }) = self.threads[t].pending.take()
                else {
                    unreachable!("enumerated yield");
                };
                let th = &mut self.threads[t];
                th.passive = true;
                th.announced = upcoming_closes;
                let run = if upcoming_closes > 0 {
                    // The announced closes register momentarily; stay
                    // schedulable-against by counting as running until
                    // each close blocks.
                    RunState::Running
                } else {
                    RunState::Quiet
                };
                self.resolve(t, Reply::Unit, run);
            }
        }
    }

    /// Fingerprint of the decision-relevant state. Message *content*
    /// (never scheduler-assigned ids) is hashed, so schedules that
    /// commute into the same state collide as intended.
    fn state_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_u64(h, self.chooser.decisions() as u64);
        h = fnv_u64(h, self.budget_left as u64);
        for ep in &self.eps {
            h = fnv_u64(h, ep.open as u64);
            match &ep.held {
                Some(m) => h = fnv_u64(fnv_u64(h, 1), msg_hash(&m.msg)),
                None => h = fnv_u64(h, 2),
            }
        }
        for (c, q) in self.queues.iter().enumerate() {
            h = fnv_u64(h, 0x10 + q.len() as u64);
            h = fnv_u64(h, self.rx_hash[c]);
            for m in q {
                h = fnv_u64(h, msg_hash(&m.msg));
                h = fnv_u64(h, m.injected as u64);
                h = fnv_u64(h, self.delivered.contains(&m.id) as u64);
            }
        }
        for th in &self.threads {
            h = fnv_u64(h, th.run as u64);
            h = fnv_u64(h, th.passive as u64);
            h = fnv_u64(h, th.announced as u64);
            h = fnv_u64(h, th.pending_ep as u64);
            match &th.pending {
                None => h = fnv_u64(h, 0x20),
                Some(Pending::Recv) => h = fnv_u64(h, 0x21),
                Some(Pending::Send { msg, extra_of }) => {
                    h = fnv_u64(fnv_u64(h, 0x22 + extra_of.is_some() as u64), msg_hash(msg));
                }
                Some(Pending::Close) => h = fnv_u64(h, 0x24),
                Some(Pending::Yield { upcoming_closes }) => {
                    h = fnv_u64(fnv_u64(h, 0x25), *upcoming_closes as u64);
                }
            }
        }
        h
    }

    /// The scheduling loop, run under the lock by whichever thread's
    /// transition might have produced quiescence. Everything here —
    /// forced resolutions included — happens only when no thread is
    /// running, so every queue it inspects is fully determined by the
    /// decision history, never by OS thread timing.
    fn step(&mut self) {
        loop {
            if self.aborted {
                self.resolve_all_for_abort();
                return;
            }
            if self.threads.iter().any(|t| t.run == RunState::Running) {
                return;
            }
            if self.resolve_forced() {
                return;
            }
            let actions = self.enumerate();
            if actions.is_empty() {
                if self.threads.iter().any(|t| t.run == RunState::Blocked) {
                    self.deadlocked = true;
                    self.aborted = true;
                    continue;
                }
                return;
            }
            // Teardown cascade: when every blocked thread is merely
            // closing (or yielding), the closes touch disjoint channel
            // pairs and commute — no decision to make.
            let teardown_only = self.threads.iter().all(|t| {
                t.run != RunState::Blocked
                    || matches!(
                        t.pending,
                        Some(Pending::Close) | Some(Pending::Yield { .. })
                    )
            });
            let idx = if actions.len() == 1 || teardown_only {
                0
            } else {
                let hash = self.state_hash();
                match self.chooser.choose(actions.len(), Some(hash)) {
                    Choice::Take(i) => i,
                    Choice::Abort(_) => {
                        self.aborted = true;
                        continue;
                    }
                }
            };
            self.apply(actions[idx]);
        }
    }
}

/// The central model scheduler for one schedule of one cluster run.
pub struct Scheduler {
    shared: Arc<Shared>,
}

/// A cloneable handle for marking the round driver done (the
/// `run_with_links_observed` hook).
#[derive(Clone)]
pub struct SchedHandle {
    shared: Arc<Shared>,
    coord_thread: usize,
}

impl Scheduler {
    /// Builds the scheduler and the `(coordinator_end, worker_end)`
    /// model links for `nodes` workers. Model thread ids: worker `k`
    /// is thread `k`, the coordinator is thread `nodes`.
    #[allow(clippy::type_complexity)]
    pub fn new(
        nodes: usize,
        faults: FaultSpec,
        strict_extras: bool,
        chooser: Chooser,
    ) -> (Scheduler, Vec<(ModelEndpoint, ModelEndpoint)>) {
        let n_eps = 2 * nodes;
        let mut threads: Vec<Th> = (0..=nodes)
            .map(|_| Th {
                run: RunState::Running,
                passive: false,
                announced: 0,
                endpoints_open: 0,
                pending: None,
                pending_ep: 0,
                reply: None,
            })
            .collect();
        let mut eps = Vec::with_capacity(n_eps);
        for k in 0..nodes {
            // Endpoint 2k: coordinator's end of link k; 2k+1: worker's.
            eps.push(Ep {
                open: true,
                held: None,
            });
            eps.push(Ep {
                open: true,
                held: None,
            });
            threads[nodes].endpoints_open += 1;
            threads[k].endpoints_open += 1;
        }
        let budget = faults.budget;
        let state = State {
            chooser,
            faults,
            strict_extras,
            threads,
            eps,
            queues: (0..n_eps).map(|_| VecDeque::new()).collect(),
            rx_hash: vec![FNV_OFFSET; n_eps],
            delivered: BTreeSet::new(),
            dropped: BTreeSet::new(),
            next_id: 0,
            budget_left: budget,
            counts: FaultCounts::default(),
            leaks: Vec::new(),
            aborted: false,
            deadlocked: false,
        };
        let shared = Arc::new(Shared {
            mx: Mutex::new(state),
            cv: Condvar::new(),
        });
        let links = (0..nodes)
            .map(|k| {
                (
                    ModelEndpoint {
                        shared: shared.clone(),
                        ep: 2 * k,
                        thread: nodes,
                    },
                    ModelEndpoint {
                        shared: shared.clone(),
                        ep: 2 * k + 1,
                        thread: k,
                    },
                )
            })
            .collect();
        (Scheduler { shared }, links)
    }

    /// A handle for the driver-done hook (coordinator thread = `nodes`).
    pub fn handle(&self) -> SchedHandle {
        let coord = lock(&self.shared).threads.len() - 1;
        SchedHandle {
            shared: self.shared.clone(),
            coord_thread: coord,
        }
    }

    /// Tears the scheduler down after the run, returning what it saw
    /// plus the chooser (whose log the explorer backtracks on).
    pub fn finish(self) -> (SchedReport, Chooser) {
        let mut st = lock(&self.shared);
        let mut leaks = std::mem::take(&mut st.leaks);
        for (c, q) in st.queues.iter().enumerate() {
            for m in q {
                if !st.delivered.contains(&m.id) && !st.dropped.contains(&m.id) {
                    leaks.push(format!(
                        "{} (injected: {}) still in flight on channel {c} at teardown, \
                         its content never delivered",
                        m.msg.kind(),
                        m.injected
                    ));
                }
            }
        }
        let report = SchedReport {
            deadlocked: st.deadlocked,
            counts: st.counts,
            leaks,
        };
        let chooser = std::mem::take(&mut st.chooser);
        (report, chooser)
    }
}

impl SchedHandle {
    /// Marks the round driver finished: a schedulable *yield* step,
    /// after which the coordinator thread is passive. `upcoming_closes`
    /// must equal the number of endpoint drops the coordinator will
    /// perform immediately after this call (its eager teardown), so the
    /// scheduler knows to keep waiting for them; pass 0 when the
    /// coordinator goes straight to joining workers.
    pub fn driver_done(&self, upcoming_closes: usize) {
        let t = self.coord_thread;
        let mut st = lock(&self.shared);
        if st.aborted {
            st.threads[t].passive = true;
            if st.threads[t].run == RunState::Running {
                st.threads[t].run = RunState::Quiet;
            }
            self.shared.cv.notify_all();
            return;
        }
        st.threads[t].pending = Some(Pending::Yield {
            upcoming_closes: upcoming_closes as u32,
        });
        st.threads[t].run = RunState::Blocked;
        st.step();
        self.shared.cv.notify_all();
        while st.threads[t].reply.is_none() {
            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[t].reply = None;
        self.shared.cv.notify_all();
    }
}

/// One endpoint of a model link; implements [`Transport`] by turning
/// every operation into a scheduler-resolved step.
pub struct ModelEndpoint {
    shared: Arc<Shared>,
    ep: usize,
    thread: usize,
}

impl ModelEndpoint {
    fn block_on(&self, pending: Pending) -> Reply {
        let t = self.thread;
        let mut st = lock(&self.shared);
        if st.aborted {
            return match pending {
                Pending::Recv => Reply::Recv(Err(TransportError::Closed)),
                Pending::Send { .. } => Reply::Send(Err(TransportError::Closed)),
                _ => Reply::Unit,
            };
        }
        st.threads[t].pending = Some(pending);
        st.threads[t].pending_ep = self.ep;
        st.threads[t].run = RunState::Blocked;
        st.step();
        self.shared.cv.notify_all();
        while st.threads[t].reply.is_none() {
            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[t].pending = None;
        let reply = st.threads[t].reply.take().expect("reply present");
        // A post-send / pre-recv held flush belongs to the op that woke
        // us and must happen under the same lock acquisition pattern;
        // callers re-lock, which is fine: only this thread runs here.
        self.shared.cv.notify_all();
        reply
    }
}

impl Transport for ModelEndpoint {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        {
            let mut st = lock(&self.shared);
            if st.aborted {
                return Err(TransportError::Closed);
            }
            let c = st.tx_chan(self.ep);
            if !st.chan_rx_open(c) {
                return Err(TransportError::Closed);
            }
            let fault_eligible = st.budget_left > 0
                && (st.faults.duplicate
                    || (st.faults.hold && st.eps[self.ep].held.is_none())
                    || st.faults.drop);
            if !fault_eligible {
                // No fault action can apply: the send has exactly one
                // outcome, so — like the real buffered links — it
                // completes instantly without becoming a scheduling
                // decision. Only delivery order is ever scheduled.
                let id = st.next_id;
                st.next_id += 1;
                st.queues[c].push_back(InFlight {
                    id,
                    injected: false,
                    msg: msg.clone(),
                });
                return st.flush_held(self.ep);
            }
        }
        match self.block_on(Pending::Send {
            msg: msg.clone(),
            extra_of: None,
        }) {
            Reply::Send(Ok(held)) => {
                if held {
                    return Ok(());
                }
                // FaultingTransport parity: release a previously held
                // message *after* this one (the observable reorder).
                let mut st = lock(&self.shared);
                if st.aborted {
                    return Ok(());
                }
                st.flush_held(self.ep)
            }
            Reply::Send(Err(e)) => Err(e),
            _ => unreachable!("send resolves with a send reply"),
        }
    }

    fn recv(&mut self) -> Result<Message, TransportError> {
        {
            // Never block while still owing the peer a held message.
            let mut st = lock(&self.shared);
            if !st.aborted {
                st.flush_held(self.ep)?;
            }
        }
        match self.block_on(Pending::Recv) {
            Reply::Recv(r) => r,
            _ => unreachable!("recv resolves with a recv reply"),
        }
    }
}

impl Drop for ModelEndpoint {
    fn drop(&mut self) {
        let t = self.thread;
        let mut st = lock(&self.shared);
        if !st.eps[self.ep].open {
            return;
        }
        if st.aborted {
            st.threads[t].pending = None;
            st.threads[t].pending_ep = self.ep;
            st.do_close(t, self.ep);
            st.threads[t].reply = None;
            self.shared.cv.notify_all();
            return;
        }
        st.threads[t].pending = Some(Pending::Close);
        st.threads[t].pending_ep = self.ep;
        st.threads[t].run = RunState::Blocked;
        st.step();
        self.shared.cv.notify_all();
        while st.threads[t].reply.is_none() {
            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[t].pending = None;
        st.threads[t].reply = None;
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Budget, Verdict};

    fn barrier(round: u64) -> Message {
        Message::RoundBarrier { node: 0, round }
    }

    /// One worker sends two barriers; the coordinator receives both.
    /// With no faults, every step is forced, so the whole run takes
    /// zero decisions and one schedule covers it.
    #[test]
    fn faultless_ping_is_fully_forced() {
        let out = explore(16, Budget::default(), |ch| {
            let chooser = std::mem::take(ch);
            let (sched, mut links) = Scheduler::new(1, FaultSpec::none(), false, chooser);
            let (mut coord, mut worker) = links.pop().unwrap();
            let got = std::thread::scope(|s| {
                s.spawn(move || {
                    worker.send(&barrier(1)).unwrap();
                    worker.send(&barrier(2)).unwrap();
                });
                let a = coord.recv().unwrap();
                let b = coord.recv().unwrap();
                drop(coord);
                (a, b)
            });
            let handle = sched.handle();
            handle.driver_done(0);
            let (report, chooser) = sched.finish();
            *ch = chooser;
            assert!(!report.deadlocked);
            assert!(report.leaks.is_empty(), "{:?}", report.leaks);
            assert_eq!(got, (barrier(1), barrier(2)));
            Verdict::Pass
        });
        assert_eq!(out.stats.schedules, 1);
        assert_eq!(out.stats.violations, 0);
    }

    /// Two workers racing their hellos at one coordinator: delivery is
    /// forced per channel (SPSC), and the coordinator drains links in
    /// order, so exploration still closes quickly — but the dup fault
    /// opens real choices.
    #[test]
    fn duplicate_fault_explores_multiple_schedules() {
        let mut max_delivered = 0usize;
        let out = explore(16, Budget::default(), |ch| {
            let chooser = std::mem::take(ch);
            let (sched, mut links) = Scheduler::new(1, FaultSpec::lossless(1), false, chooser);
            let (mut coord, mut worker) = links.pop().unwrap();
            let delivered = std::thread::scope(|s| {
                s.spawn(move || {
                    worker.send(&barrier(1)).unwrap();
                    worker.send(&barrier(2)).unwrap();
                });
                let mut got = Vec::new();
                while let Ok(m) = coord.recv() {
                    got.push(m);
                    if got.len() >= 4 {
                        break;
                    }
                }
                drop(coord);
                got.len()
            });
            let handle = sched.handle();
            handle.driver_done(0);
            let (report, chooser) = sched.finish();
            *ch = chooser;
            assert!(!report.deadlocked);
            max_delivered = max_delivered.max(delivered);
            Verdict::Pass
        });
        assert!(
            out.stats.schedules > 1,
            "faults must open schedule choices: {:?}",
            out.stats
        );
        assert!(
            max_delivered > 2,
            "some schedule must deliver a duplicate or a held flush"
        );
        assert_eq!(out.stats.violations, 0, "{:?}", out.counterexample);
    }

    /// A receive nothing will ever satisfy must be flagged as a
    /// deadlock, not hang the suite.
    #[test]
    fn starved_recv_is_deadlock_not_hang() {
        let chooser = Chooser::replay(Vec::new(), 4);
        let (sched, mut links) = Scheduler::new(1, FaultSpec::none(), false, chooser);
        let (coord, mut worker) = links.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                // Never sends; just waits for traffic that never comes.
                assert!(matches!(worker.recv(), Err(TransportError::Closed)));
            });
            let handle = sched.handle();
            handle.driver_done(0);
            drop(coord);
        });
        let (report, _) = sched.finish();
        assert!(report.deadlocked);
    }
}
