//! The DFS schedule explorer and its [`Chooser`] — the single source
//! of nondeterminism for a model-checked run.
//!
//! A *schedule* is the sequence of choices made at every decision
//! point of one run (`choices[i] < n_options[i]`). Exploration is
//! stateless re-execution, loom-style: each run replays a committed
//! prefix of choices and extends it with choice `0`; backtracking
//! increments the last decision that still has untried alternatives
//! and pops exhausted ones, so the whole bounded tree is enumerated in
//! depth-first order without ever snapshotting program state.
//!
//! Soundness of state-hash pruning: every thread in the model is a
//! deterministic function of its receive history, so two schedules
//! that reach the same scheduler state (per-channel delivery-history
//! hashes, in-flight and held messages, thread phases, remaining fault
//! budget, decision count) root identical subtrees. A hash is only
//! consulted — and only inserted — at *extension* decisions (beyond
//! the replayed prefix): replayed decisions must never self-prune the
//! exploration that is enumerating their own subtree.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a run was cut short before reaching a terminal protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortKind {
    /// An extension decision reached a state already explored under an
    /// earlier prefix (implicit partial-order reduction).
    Pruned,
    /// The decision budget (`max_decisions`) was exhausted.
    DepthCapped,
    /// A replayed script asked for a choice the run did not offer —
    /// the committed schedule no longer matches the code under test.
    ReplayDiverged,
}

/// How a [`Chooser`] resolves decisions beyond its scripted prefix.
enum Mode {
    /// Extend with choice 0, consulting/filling the shared visited set.
    Dfs { visited: Arc<Mutex<BTreeSet<u64>>> },
    /// Refuse to extend: a counterexample replay must be fully scripted.
    Replay,
    /// Seeded random walk (schedule sampling for large configs).
    Walk { state: u64 },
}

/// One run's decision maker: replays a scripted choice prefix, then
/// extends it according to its [`Mode`]. Every decision is logged with
/// its fan-out so the explorer can backtrack.
pub struct Chooser {
    script: Vec<u32>,
    pos: usize,
    log: Vec<(u32, u32)>,
    max_decisions: usize,
    mode: Mode,
    aborted: Option<AbortKind>,
}

/// The outcome of one decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Take alternative `i` of the offered actions.
    Take(usize),
    /// Stop the run; see [`AbortKind`].
    Abort(AbortKind),
}

impl Default for Chooser {
    fn default() -> Self {
        Chooser::replay(Vec::new(), 0)
    }
}

impl Chooser {
    fn new(script: Vec<u32>, max_decisions: usize, mode: Mode) -> Self {
        Chooser {
            script,
            pos: 0,
            log: Vec::new(),
            max_decisions,
            mode,
            aborted: None,
        }
    }

    /// DFS mode: replay `script`, then extend with choice 0, pruning
    /// extension states already in `visited`.
    pub fn dfs(script: Vec<u32>, max_decisions: usize, visited: Arc<Mutex<BTreeSet<u64>>>) -> Self {
        Self::new(script, max_decisions, Mode::Dfs { visited })
    }

    /// Replay mode: the run must be fully determined by `script`.
    pub fn replay(script: Vec<u32>, max_decisions: usize) -> Self {
        Self::new(script, max_decisions, Mode::Replay)
    }

    /// Random-walk mode: sample one schedule per seed.
    pub fn walk(seed: u64, max_decisions: usize) -> Self {
        Self::new(
            Vec::new(),
            max_decisions,
            Mode::Walk {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            },
        )
    }

    /// Decides among `n_options` alternatives. `state_hash`, when
    /// given, is a fingerprint of the decision state used for pruning
    /// (DFS mode only). Single-option decisions are free: they consume
    /// no depth and are not logged, so forced protocol steps never
    /// count against the exploration bound.
    pub fn choose(&mut self, n_options: usize, state_hash: Option<u64>) -> Choice {
        if let Some(k) = self.aborted {
            return Choice::Abort(k);
        }
        if n_options <= 1 {
            return Choice::Take(0);
        }
        if self.log.len() >= self.max_decisions {
            return self.abort(AbortKind::DepthCapped);
        }
        if self.pos < self.script.len() {
            let c = self.script[self.pos];
            if (c as usize) >= n_options {
                return self.abort(AbortKind::ReplayDiverged);
            }
            self.pos += 1;
            self.log.push((c, n_options as u32));
            return Choice::Take(c as usize);
        }
        let c = match &mut self.mode {
            Mode::Dfs { visited } => {
                if let Some(h) = state_hash {
                    let mut seen = visited.lock().unwrap_or_else(|e| e.into_inner());
                    if !seen.insert(h) {
                        drop(seen);
                        return self.abort(AbortKind::Pruned);
                    }
                }
                0
            }
            Mode::Replay => return self.abort(AbortKind::ReplayDiverged),
            Mode::Walk { state } => {
                // splitmix64 step — cheap, seeded, self-contained.
                *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) % n_options as u64
            }
        };
        self.log.push((c as u32, n_options as u32));
        Choice::Take(c as usize)
    }

    fn abort(&mut self, kind: AbortKind) -> Choice {
        self.aborted = Some(kind);
        Choice::Abort(kind)
    }

    /// The abort that ended this run, if any.
    pub fn aborted(&self) -> Option<AbortKind> {
        self.aborted
    }

    /// Decisions taken so far (forced steps excluded).
    pub fn decisions(&self) -> usize {
        self.log.len()
    }

    /// The full `(choice, fan_out)` log of this run.
    pub fn log(&self) -> &[(u32, u32)] {
        &self.log
    }
}

/// Aggregate counters for one exploration. Every run is accounted for
/// in exactly one of `schedules` / `pruned` / `depth_capped`, so a
/// bounded exploration can never under-report silently.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Runs that reached a terminal protocol state and were judged.
    pub schedules: u64,
    /// Judged runs that violated an invariant.
    pub violations: u64,
    /// Judged runs that deadlocked *as anticipated* (a drop fault
    /// consumed a required message).
    pub expected_deadlocks: u64,
    /// Runs cut by the state-hash visited set.
    pub pruned: u64,
    /// Runs cut by the decision bound.
    pub depth_capped: u64,
    /// Total decisions taken across all runs.
    pub decisions: u64,
    /// Deepest decision count seen in a single run.
    pub max_depth_seen: u64,
    /// Wall-clock or schedule-cap truncation, if exploration stopped
    /// before exhausting the bounded tree.
    pub truncated: Option<String>,
}

impl ExploreStats {
    /// True when the bounded tree was fully enumerated (no wall-clock
    /// or schedule-count truncation).
    pub fn exhaustive(&self) -> bool {
        self.truncated.is_none()
    }
}

/// What one judged run concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All invariants held.
    Pass,
    /// Deadlocked, but a drop fault fired — losing a required message
    /// is *supposed* to starve the protocol, never to corrupt it.
    ExpectedDeadlock,
    /// An invariant was violated; the string names it.
    Violation(String),
}

/// The first counterexample found: the violated invariant plus the
/// exact choice script that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The violation description.
    pub what: String,
    /// The choice at every decision point of the failing run.
    pub choices: Vec<u32>,
}

/// Exploration limits beyond the per-run decision bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Stop after this many executed runs (0 = unlimited).
    pub max_runs: u64,
    /// Stop after this much wall-clock time (None = unlimited).
    pub wall_clock: Option<Duration>,
}

/// The outcome of [`explore`].
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Aggregate counters.
    pub stats: ExploreStats,
    /// The first (DFS-least) violation found, if any.
    pub counterexample: Option<Counterexample>,
}

/// Enumerates, depth-first, every schedule of `run` up to
/// `max_decisions` choices per run, sharing one visited set across
/// runs for state-hash pruning. `run` executes the scenario once under
/// the given chooser and judges it; it must be deterministic given the
/// chooser's choices. Stops early at the first violation (the DFS-least
/// counterexample) or when `budget` is exhausted — both are reported,
/// never silent.
pub fn explore<F>(max_decisions: usize, budget: Budget, mut run: F) -> Exploration
where
    F: FnMut(&mut Chooser) -> Verdict,
{
    let visited = Arc::new(Mutex::new(BTreeSet::new()));
    let started = Instant::now();
    let mut stats = ExploreStats::default();
    let mut prefix: Vec<(u32, u32)> = Vec::new();
    let mut counterexample = None;
    loop {
        if budget.max_runs > 0
            && stats.schedules + stats.pruned + stats.depth_capped >= budget.max_runs
        {
            stats.truncated = Some(format!("run cap {} reached", budget.max_runs));
            break;
        }
        if let Some(limit) = budget.wall_clock {
            if started.elapsed() >= limit {
                stats.truncated = Some(format!("wall-clock budget {limit:?} exhausted"));
                break;
            }
        }
        let script: Vec<u32> = prefix.iter().map(|&(c, _)| c).collect();
        let mut chooser = Chooser::dfs(script, max_decisions, visited.clone());
        let verdict = run(&mut chooser);
        stats.decisions += chooser.decisions() as u64;
        stats.max_depth_seen = stats.max_depth_seen.max(chooser.decisions() as u64);
        match chooser.aborted() {
            Some(AbortKind::Pruned) => stats.pruned += 1,
            Some(AbortKind::DepthCapped) => stats.depth_capped += 1,
            Some(AbortKind::ReplayDiverged) => {
                // A DFS prefix is replayed against the same code that
                // recorded it; divergence means the scenario is
                // nondeterministic — a checker bug, not a scheduling
                // outcome. Surface it as a violation.
                stats.schedules += 1;
                stats.violations += 1;
                counterexample = Some(Counterexample {
                    what: "nondeterministic scenario: a replayed DFS prefix diverged".into(),
                    choices: chooser.log().iter().map(|&(c, _)| c).collect(),
                });
                break;
            }
            None => {
                stats.schedules += 1;
                match verdict {
                    Verdict::Pass => {}
                    Verdict::ExpectedDeadlock => stats.expected_deadlocks += 1,
                    Verdict::Violation(what) => {
                        stats.violations += 1;
                        counterexample = Some(Counterexample {
                            what,
                            choices: chooser.log().iter().map(|&(c, _)| c).collect(),
                        });
                        break;
                    }
                }
            }
        }
        // Backtrack: drop exhausted trailing decisions, bump the last
        // one that still has an untried alternative.
        let mut log = chooser.log().to_vec();
        loop {
            match log.pop() {
                None => {
                    return Exploration {
                        stats,
                        counterexample,
                    }
                }
                Some((c, n)) if c + 1 < n => {
                    log.push((c + 1, n));
                    break;
                }
                Some(_) => {}
            }
        }
        prefix = log;
    }
    Exploration {
        stats,
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy 3-level tree with fan-out 2: exploration must visit all 8
    /// leaves when nothing prunes.
    #[test]
    fn dfs_enumerates_the_full_tree() {
        let mut seen = Vec::new();
        let out = explore(8, Budget::default(), |ch| {
            let mut path = Vec::new();
            for _ in 0..3 {
                match ch.choose(2, None) {
                    Choice::Take(i) => path.push(i),
                    Choice::Abort(_) => return Verdict::Pass,
                }
            }
            seen.push(path);
            Verdict::Pass
        });
        assert_eq!(out.stats.schedules, 8);
        assert_eq!(out.stats.violations, 0);
        assert!(out.stats.exhaustive());
        assert_eq!(seen.len(), 8);
        seen.dedup();
        assert_eq!(seen.len(), 8, "every leaf distinct");
        // DFS order: first leaf all-zeros, last all-ones.
        assert_eq!(seen[0], vec![0, 0, 0]);
        assert_eq!(seen[7], vec![1, 1, 1]);
    }

    #[test]
    fn first_violation_stops_exploration_with_its_script() {
        let out = explore(8, Budget::default(), |ch| {
            let mut path = Vec::new();
            for _ in 0..2 {
                match ch.choose(3, None) {
                    Choice::Take(i) => path.push(i as u32),
                    Choice::Abort(_) => return Verdict::Pass,
                }
            }
            if path == [0, 2] {
                Verdict::Violation("boom".into())
            } else {
                Verdict::Pass
            }
        });
        let ce = out.counterexample.expect("violation found");
        assert_eq!(ce.what, "boom");
        assert_eq!(ce.choices, vec![0, 2]);
        // DFS-least: [0,0], [0,1] passed first.
        assert_eq!(out.stats.schedules, 3);
        assert_eq!(out.stats.violations, 1);
    }

    #[test]
    fn state_hash_pruning_merges_commuting_paths() {
        // Three binary decisions whose *multiset* of choices determines
        // the state, so differently-ordered prefixes commute. Without
        // pruning: 8 leaves; with it, the subtree under the merged
        // prefix multiset {0,1} is explored only once.
        let mut leaves = 0u32;
        let out = explore(8, Budget::default(), |ch| {
            let mut picked: Vec<u64> = Vec::new();
            for _ in 0..3 {
                picked.sort_unstable();
                let hash = picked.iter().fold(0x9E37 + picked.len() as u64, |a, &x| {
                    a.wrapping_mul(31).wrapping_add(x + 1)
                });
                match ch.choose(2, Some(hash)) {
                    Choice::Take(i) => picked.push(i as u64),
                    Choice::Abort(_) => return Verdict::Pass,
                }
            }
            leaves += 1;
            Verdict::Pass
        });
        assert!(out.stats.pruned > 0, "commuting prefix must prune");
        assert!(
            out.stats.schedules < 8,
            "pruning must cut the leaf count: {:?}",
            out.stats
        );
        assert_eq!(leaves, out.stats.schedules as u32);
    }

    #[test]
    fn depth_cap_is_counted_not_silent() {
        let out = explore(2, Budget::default(), |ch| loop {
            match ch.choose(2, None) {
                Choice::Take(_) => {}
                Choice::Abort(_) => return Verdict::Pass,
            }
        });
        assert!(out.stats.depth_capped > 0);
        assert_eq!(out.stats.schedules, 0);
    }

    #[test]
    fn replay_follows_script_and_rejects_divergence() {
        let mut ch = Chooser::replay(vec![1, 0], 16);
        assert_eq!(ch.choose(3, None), Choice::Take(1));
        assert_eq!(ch.choose(2, None), Choice::Take(0));
        assert_eq!(
            ch.choose(2, None),
            Choice::Abort(AbortKind::ReplayDiverged),
            "script exhausted"
        );
        let mut ch = Chooser::replay(vec![5], 16);
        assert_eq!(
            ch.choose(3, None),
            Choice::Abort(AbortKind::ReplayDiverged),
            "choice out of range"
        );
    }

    #[test]
    fn walks_are_seed_deterministic() {
        let walk = |seed| {
            let mut ch = Chooser::walk(seed, 64);
            (0..10)
                .map(|_| match ch.choose(4, None) {
                    Choice::Take(i) => i,
                    Choice::Abort(_) => usize::MAX,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(walk(7), walk(7));
        assert_ne!(walk(7), walk(8));
    }
}
