//! Walker/Vose alias method for O(1) weighted sampling.
//!
//! Importance sampling draws every training index from the static
//! distribution `p_i = L_i / Σ L_j` (paper Eq. 12). With the alias method a
//! draw costs one uniform variate, one table lookup and one comparison —
//! indistinguishable from uniform sampling in the training loop, which is
//! exactly the "no extra on-line computation" property §1.3 relies on.

use crate::error::SamplingError;
use crate::rng::Xoshiro256pp;

/// A pre-built alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability for each slot (scaled to [0,1]).
    prob: Vec<f64>,
    /// Alias outcome used when the acceptance test fails.
    alias: Vec<u32>,
    /// The normalized probabilities the table was built from.
    p: Vec<f64>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (need not be normalized).
    ///
    /// Vose's stable construction: `O(n)` time and memory, numerically
    /// robust against the classic large/small drift by re-checking the
    /// residual bucket sign.
    pub fn new(weights: &[f64]) -> Result<Self, SamplingError> {
        let p = crate::normalize_weights(weights)?;
        let n = p.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = p.iter().map(|&x| x * n as f64).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // Slot s accepts with probability scaled[s], otherwise yields l.
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains has scaled ≈ 1 (floating point residue).
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Ok(Self { prob, alias, p })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table is over zero outcomes (cannot happen through
    /// [`AliasTable::new`], kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The normalized probability of outcome `i`.
    #[inline]
    pub fn probability(&self, i: usize) -> f64 {
        self.p[i]
    }

    /// All normalized probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.p
    }

    /// Draws one outcome.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> usize {
        let n = self.len();
        let slot = rng.next_index(n);
        if rng.next_f64() < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }

    /// Fills `out` with draws.
    pub fn sample_into(&self, rng: &mut Xoshiro256pp, out: &mut [u32]) {
        for o in out {
            *o = self.sample(rng) as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::new(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 8]).unwrap();
        let h = histogram(&t, 80_000, 1);
        for &f in &h {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&w).unwrap();
        let h = histogram(&t, 200_000, 2);
        for (i, &f) in h.iter().enumerate() {
            let expect = w[i] / 10.0;
            assert!((f - expect).abs() < 0.01, "outcome {i}: {f} vs {expect}");
        }
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = Xoshiro256pp::new(3);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[5.0]).unwrap();
        let mut rng = Xoshiro256pp::new(4);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.probability(0), 1.0);
    }

    #[test]
    fn extreme_skew() {
        let mut w = vec![1e-12; 100];
        w[37] = 1.0;
        let t = AliasTable::new(&w).unwrap();
        let mut rng = Xoshiro256pp::new(5);
        let hits = (0..10_000).filter(|_| t.sample(&mut rng) == 37).count();
        assert!(hits > 9_900, "hits {hits}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let t = AliasTable::new(&[0.3, 0.5, 7.0, 2.2]).unwrap();
        let s: f64 = t.probabilities().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[-1.0]).is_err());
        assert!(AliasTable::new(&[0.0]).is_err());
    }

    #[test]
    fn sample_into_fills() {
        let t = AliasTable::new(&[1.0, 1.0]).unwrap();
        let mut rng = Xoshiro256pp::new(6);
        let mut buf = [9u32; 64];
        t.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().all(|&b| b < 2));
    }
}
