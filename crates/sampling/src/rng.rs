//! Small deterministic PRNGs.
//!
//! Experiments must be bit-reproducible under a fixed seed, including across
//! thread counts (each worker derives its own stream from the master seed
//! via [`splitmix64`]). `Xoshiro256pp` implements `rand::RngCore` so it
//! plugs into `rand`/`rand_distr` samplers while staying dependency-light
//! and allocation-free.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step: the canonical seed expander (Steele et al., 2014).
///
/// Mutates `state` and returns the next 64-bit output. Used to derive
/// independent per-thread seeds from one master seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives `count` independent stream seeds from a master seed.
pub fn derive_seeds(master: u64, count: usize) -> Vec<u64> {
    let mut st = master;
    (0..count).map(|_| splitmix64(&mut st)).collect()
}

/// Xoshiro256++ PRNG (Blackman & Vigna, 2019): fast, 256-bit state,
/// passes BigCrush; the workhorse generator for all training loops.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator; a SplitMix64 expansion guarantees a good state
    /// even for small seeds.
    pub fn new(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        Self { s }
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring it
    /// with [`Xoshiro256pp::from_state`] resumes the exact stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by
    /// [`Xoshiro256pp::state`]. The caller is responsible for only
    /// feeding back states that came from a real generator; an all-zero
    /// state is the one fixed point of the transition and never occurs
    /// from seeding.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)` via Lemire's multiply-shift rejection-free
    /// approximation (bias < 2^-64, negligible for n ≪ 2^64).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`: there is no index to draw from an empty
    /// domain. (This used to be a `debug_assert!`, which vanishes in
    /// release builds and let `next_index(0)` return the in-bounds-looking
    /// index 0 into an empty collection — a silent out-of-domain draw.)
    #[inline]
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_index: cannot draw from an empty domain");
        ((self.next_raw() as u128 * n as u128) >> 64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }
}

impl RngCore for Xoshiro256pp {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut s = 1234567u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        // Determinism.
        let mut s2 = 1234567u64;
        assert_eq!(a, splitmix64(&mut s2));
        assert_eq!(b, splitmix64(&mut s2));
    }

    #[test]
    fn derive_seeds_distinct() {
        let seeds = derive_seeds(42, 64);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 64);
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256pp::new(7);
        let mut b = Xoshiro256pp::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
        let mut c = Xoshiro256pp::new(8);
        assert_ne!(a.next_raw(), c.next_raw());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256pp::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Xoshiro256pp::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_index_bounds_and_coverage() {
        let mut r = Xoshiro256pp::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = r.next_index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn next_index_zero_panics_in_every_build_profile() {
        // Regression: `next_index(0)` only debug-asserted, so release
        // builds returned 0 — an index that *looks* valid but points into
        // an empty domain. It must fail loudly everywhere.
        let mut r = Xoshiro256pp::new(1);
        let _ = r.next_index(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256pp::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<u32>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn fill_bytes_handles_remainders() {
        let mut r = Xoshiro256pp::new(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rngcore_integration_with_rand() {
        use rand::Rng;
        let mut r = Xoshiro256pp::new(2);
        let x: f64 = r.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
